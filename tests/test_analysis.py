"""Tests for the analytical models of paper Sec. II-B and stats helpers."""

import numpy as np
import pytest

from repro.analysis import (
    end_to_end_plr,
    hbh_owd_ratio,
    hbh_throughput_gain,
    jain_fairness,
    mean_owd_e2e,
    mean_owd_hbh,
    percentile,
    simulate_owd_e2e,
    simulate_owd_hbh,
    summarize,
    throughput_e2e,
    throughput_hbh,
)


class TestFormulas:
    def test_e2e_plr_single_hop(self):
        assert end_to_end_plr(1, 0.01) == pytest.approx(0.01)

    def test_e2e_plr_compounds(self):
        assert end_to_end_plr(10, 0.005) == pytest.approx(
            1 - 0.995**10
        )

    def test_e2e_plr_approximates_np(self):
        assert end_to_end_plr(10, 0.005) == pytest.approx(0.05, rel=0.05)

    def test_owd_e2e_lossless(self):
        assert mean_owd_e2e(10, 0.0, 0.01) == pytest.approx(0.1)

    def test_owd_hbh_lossless(self):
        assert mean_owd_hbh(10, 0.0, 0.01) == pytest.approx(0.1)

    def test_hbh_owd_below_e2e(self):
        assert mean_owd_hbh(10, 0.005, 0.01) < mean_owd_e2e(10, 0.005, 0.01)

    def test_throughput_bounds(self):
        assert throughput_e2e(10, 0.005, 20e6) == pytest.approx(20e6 * 0.95)
        assert throughput_hbh(0.005, 20e6) == pytest.approx(20e6 * 0.995)

    def test_paper_example_gain(self):
        """Paper: N=10, p=0.5% -> hop-by-hop gives 4.7% higher throughput
        and 8.7% lower mean OWD."""
        assert hbh_throughput_gain(10, 0.005) == pytest.approx(1.047, abs=0.002)
        assert hbh_owd_ratio(10, 0.005) == pytest.approx(1 - 0.087, abs=0.003)

    def test_validation(self):
        with pytest.raises(ValueError):
            end_to_end_plr(0, 0.01)
        with pytest.raises(ValueError):
            mean_owd_e2e(10, 0.2, 0.01)  # N*p >= 1
        with pytest.raises(ValueError):
            throughput_hbh(1.0, 1e6)


class TestOwdMonteCarlo:
    def test_lossless_is_deterministic(self):
        dist = simulate_owd_e2e(1000, 10, 0.0, 0.01)
        assert dist.mean_s == pytest.approx(0.1)
        assert dist.max_s == pytest.approx(0.1)

    def test_mean_matches_closed_form_e2e(self):
        dist = simulate_owd_e2e(200_000, 10, 0.005, 0.01, seed=1)
        assert dist.mean_s == pytest.approx(mean_owd_e2e(10, 0.005, 0.01), rel=0.03)

    def test_mean_matches_closed_form_hbh(self):
        dist = simulate_owd_hbh(200_000, 10, 0.005, 0.01, seed=2)
        assert dist.mean_s == pytest.approx(mean_owd_hbh(10, 0.005, 0.01), rel=0.03)

    def test_hbh_tail_is_shorter(self):
        """The Fig. 3 claim: hop-by-hop removes the long OWD tail."""
        e2e = simulate_owd_e2e(100_000, 10, 0.005, 0.01, seed=0)
        hbh = simulate_owd_hbh(100_000, 10, 0.005, 0.01, seed=0)
        assert hbh.percentile_s(99) < e2e.percentile_s(99)
        assert hbh.max_s < e2e.max_s

    def test_paper_magnitudes(self):
        """Paper reports p99 300 ms / max 700 ms (e2e) vs p99 120 ms /
        max 160 ms (hbh); allow generous slack for RNG."""
        e2e = simulate_owd_e2e(100_000, 10, 0.005, 0.01, seed=0)
        hbh = simulate_owd_hbh(100_000, 10, 0.005, 0.01, seed=0)
        assert 0.25 <= e2e.percentile_s(99) <= 0.35
        assert 0.10 <= hbh.percentile_s(99) <= 0.15

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_owd_e2e(0)
        with pytest.raises(ValueError):
            simulate_owd_hbh(10, plr_per_hop=1.5)


class TestStats:
    def test_jain_equal_allocations(self):
        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_jain_single_hog(self):
        assert jain_fairness([9.0, 0.0, 0.0]) == pytest.approx(1 / 3)

    def test_jain_validation(self):
        with pytest.raises(ValueError):
            jain_fairness([])
        with pytest.raises(ValueError):
            jain_fairness([-1.0, 2.0])

    def test_jain_all_zero(self):
        assert jain_fairness([0.0, 0.0]) == 1.0

    def test_percentile(self):
        assert percentile(range(101), 99) == pytest.approx(99.0)

    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s["mean"] == pytest.approx(2.5)
        assert s["max"] == 4.0
        assert set(s) == {"mean", "p50", "p95", "p99", "max"}

    def test_summarize_empty(self):
        with pytest.raises(ValueError):
            summarize([])


class TestCcbenchSummary:
    def rows(self):
        out = []
        for cc, rec in (("bbr", 300.0), ("orbcc", 220.0)):
            for cadence in ("low", "high"):
                out.append({
                    "cc": cc, "cadence": cadence, "load": "light",
                    "loss": "clean", "recovery_mean_ms": rec,
                    "recovery_max_ms": rec * 2, "unrecovered": 0,
                    "arrivals": 10, "completed": 9, "goodput_mbps": 3.0,
                    "fct_p90_s": 1.5, "jain_mean": 0.8,
                })
        return out

    def test_renders_and_ranks(self):
        from repro.analysis import ccbench_summary

        text = ccbench_summary(self.rows())
        lines = text.splitlines()
        # Ranked by recovery: orbcc (220 ms) before bbr (300 ms).
        assert lines[1].strip().startswith("orbcc:")
        assert "orbcc=2" in text  # per-cell wins
        assert "orbcc faster in 2/2 cells" in text

    def test_empty_rows(self):
        from repro.analysis import ccbench_summary

        assert "ccbench" in ccbench_summary([])


class TestPlots:
    """The figure writers are matplotlib-optional: with the library
    absent they must return None, never raise."""

    def reports(self):
        return [
            {"cc": "bbr", "fault_start_s": 1.0, "time_to_recovery_s": 0.3},
            {"cc": "bbr", "fault_start_s": 2.0, "time_to_recovery_s": None},
            {"cc": "orbcc", "fault_start_s": 1.0, "time_to_recovery_s": 0.2},
        ]

    def test_probe_is_bool(self):
        from repro.analysis import have_matplotlib

        assert isinstance(have_matplotlib(), bool)

    def test_writers_degrade_or_write(self, tmp_path):
        from repro.analysis import (
            have_matplotlib,
            plot_goodput_cdf,
            plot_rate_ladder,
            plot_recovery_timeline,
        )

        samples = [
            {"event": "sample", "node": "m1", "series": "rate",
             "t": 0.1 * i, "value": 1e6 * i} for i in range(5)
        ]
        rows = [{"cc": "bbr", "goodput_mbps": 3.0},
                {"cc": "orbcc", "goodput_mbps": 4.0}]
        results = [
            plot_rate_ladder(samples, str(tmp_path / "ladder.png")),
            plot_goodput_cdf(rows, str(tmp_path / "cdf.png")),
            plot_recovery_timeline(
                self.reports(), str(tmp_path / "timeline.png")
            ),
        ]
        if have_matplotlib():
            import os

            assert all(r is not None and os.path.exists(r) for r in results)
        else:
            assert results == [None, None, None]

    def test_empty_inputs_return_none_or_path(self, tmp_path):
        from repro.analysis import plot_goodput_cdf, plot_rate_ladder

        # No matching samples/rows: no figure, regardless of matplotlib.
        assert plot_rate_ladder([], str(tmp_path / "l.png")) is None
        assert plot_goodput_cdf([], str(tmp_path / "c.png")) is None
