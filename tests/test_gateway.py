"""Tests for the TCP <-> LEOTP gateway bridge and the streaming producer."""

import pytest

from repro.common.ranges import ByteRange
from repro.core import Consumer, Interest, LeotpConfig
from repro.gateway import StreamingProducer, build_gateway_path
from repro.netsim.link import DuplexLink
from repro.netsim.node import SinkNode
from repro.netsim.topology import HopSpec, uniform_chain_specs
from repro.simcore import RngRegistry, Simulator


class TestStreamingProducer:
    def make(self, sim):
        producer = StreamingProducer(sim, "prod", LeotpConfig())
        sink = SinkNode(sim, "sink")
        link = DuplexLink(sim, sink, producer, rate_bps=50e6, delay_s=0.001)
        return producer, sink, link

    def test_serves_available_content(self):
        sim = Simulator()
        producer, sink, link = self.make(sim)
        producer.append(1400)
        link.ab.send(Interest("f", ByteRange(0, 1400), 0.0, 1e6))
        sim.run(until=0.5)
        assert sum(getattr(p, "payload_bytes", 0) for p in sink.received) == 1400

    def test_parks_future_interest_until_append(self):
        sim = Simulator()
        producer, sink, link = self.make(sim)
        link.ab.send(Interest("f", ByteRange(0, 1400), 0.0, 1e6))
        sim.run(until=0.2)
        assert sink.received == []  # nothing to serve yet
        producer.append(1400)
        sim.run(until=0.5)
        assert sum(getattr(p, "payload_bytes", 0) for p in sink.received) == 1400

    def test_partial_availability_served_incrementally(self):
        sim = Simulator()
        producer, sink, link = self.make(sim)
        link.ab.send(Interest("f", ByteRange(0, 1400), 0.0, 1e6))
        sim.run(until=0.1)
        producer.append(700)   # first half only
        sim.run(until=0.3)
        first = sum(getattr(p, "payload_bytes", 0) for p in sink.received)
        assert first == 700
        producer.append(700)
        sim.run(until=0.6)
        total = sum(getattr(p, "payload_bytes", 0) for p in sink.received)
        assert total == 1400

    def test_finalise_drops_out_of_range(self):
        sim = Simulator()
        producer, sink, link = self.make(sim)
        producer.append(1000)
        producer.finalise()
        link.ab.send(Interest("f", ByteRange(2000, 3400), 0.0, 1e6))
        sim.run(until=0.5)
        assert sink.received == []

    def test_append_validation(self):
        sim = Simulator()
        producer, _, _ = self.make(sim)
        with pytest.raises(ValueError):
            producer.append(0)
        producer.finalise()
        with pytest.raises(RuntimeError):
            producer.append(100)


class TestGatewayBridge:
    def run_bridge(self, total=1_000_000, leo_plr=0.01, until=60.0,
                   terrestrial=None, n_hops=4, seed=5):
        sim = Simulator()
        rng = RngRegistry(seed)
        path = build_gateway_path(
            sim, rng, total_bytes=total,
            leo_hops=uniform_chain_specs(
                n_hops, rate_bps=20e6, delay_s=0.010, plr=leo_plr
            ),
            terrestrial_spec=terrestrial,
        )
        sim.run(until=until)
        return path

    def test_end_to_end_delivery(self):
        path = self.run_bridge()
        assert path.server.finished
        assert path.client.bytes_delivered == 1_000_000

    def test_delivery_despite_satellite_loss(self):
        path = self.run_bridge(leo_plr=0.03)
        assert path.client.bytes_delivered == 1_000_000

    def test_leotp_segment_repairs_locally(self):
        path = self.run_bridge(leo_plr=0.02)
        from repro.core import Midnode

        mids = [s for s in path.satellites if isinstance(s, Midnode)]
        assert sum(m.stats.retx_interests_sent for m in mids) > 0

    def test_slow_terrestrial_parks_interests(self):
        """If the LEO segment outruns the terrestrial ingest, the streaming
        producer must park Interests instead of dropping them."""
        path = self.run_bridge(
            total=500_000,
            terrestrial=HopSpec(rate_bps=2e6, delay_s=0.005),
            until=90.0,
        )
        assert path.client.bytes_delivered == 500_000
        assert path.ingress.producer.parked_peak > 0

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            build_gateway_path(
                sim, RngRegistry(0), total_bytes=0,
                leo_hops=uniform_chain_specs(2),
            )


class TestGatewayChaos:
    """Fault injection on the bridged path (LEO blackout + satellite crash).

    ``GatewayPath`` exposes ``links``/``consumer``/``producer``/``midnodes``
    so ``run_leotp_chaos(builder=...)`` can arm its invariant monitor on
    the LEOTP segment and target LEO hops / satellites by name.
    """

    TOTAL = 400_000

    def _builder(self, n_hops=3):
        def build(sim, rng):
            return build_gateway_path(
                sim, rng, total_bytes=self.TOTAL,
                leo_hops=uniform_chain_specs(
                    n_hops, rate_bps=20e6, delay_s=0.008
                ),
            )

        return build

    def test_leo_blackout_recovers(self):
        from repro.faults import FaultSchedule, LinkDown, run_leotp_chaos

        schedule = FaultSchedule([
            LinkDown(at_s=0.5, link="hop1", duration_s=0.5),
        ])
        result = run_leotp_chaos(
            schedule, duration_s=25.0, seed=2, builder=self._builder()
        )
        result.assert_ok()
        assert result.completed
        # The terrestrial client got every byte despite the LEO outage.
        assert result.path.client.bytes_delivered == self.TOTAL
        assert any("hop1 DOWN" in action for _, action in result.fault_log)

    def test_satellite_crash_recovers(self):
        from repro.faults import FaultSchedule, NodeCrash, run_leotp_chaos

        schedule = FaultSchedule([
            NodeCrash(at_s=0.5, node="sat0", restart_after_s=0.5),
        ])
        result = run_leotp_chaos(
            schedule, duration_s=25.0, seed=2, builder=self._builder()
        )
        result.assert_ok()
        assert result.completed
        assert result.path.client.bytes_delivered == self.TOTAL
        actions = [action for _, action in result.fault_log]
        assert any("sat0 CRASHED" in a for a in actions)
        assert any("sat0 restarted" in a for a in actions)
