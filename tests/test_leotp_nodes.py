"""Focused tests for Producer / Consumer / Midnode behaviours."""

import pytest

from repro.common.ranges import ByteRange
from repro.core import (
    Consumer,
    DataPacket,
    Interest,
    LeotpConfig,
    Midnode,
    Producer,
    build_leotp_path,
)
from repro.netsim.link import DuplexLink
from repro.netsim.node import SinkNode
from repro.netsim.topology import uniform_chain_specs
from repro.simcore import RngRegistry, Simulator


def one_hop_pair(sim, config=None, content=None):
    """Producer <-> Consumer over a single clean hop."""
    config = config or LeotpConfig()
    producer = Producer(sim, "prod", config, content_bytes=content)
    consumer = Consumer(sim, "cons", "flow", config, total_bytes=content)
    link = DuplexLink(sim, producer, consumer, rate_bps=50e6, delay_s=0.005)
    consumer.out_link = link.ba
    return producer, consumer, link


class TestProducer:
    def test_answers_interest_with_data(self):
        sim = Simulator()
        producer, consumer, link = one_hop_pair(sim, content=2800)
        sim.run(until=1.0)
        assert consumer.finished
        assert consumer.bytes_received == 2800

    def test_clips_to_content_length(self):
        sim = Simulator()
        config = LeotpConfig()
        producer = Producer(sim, "prod", config, content_bytes=1000)
        sink = SinkNode(sim, "sink")
        link = DuplexLink(sim, sink, producer, rate_bps=50e6, delay_s=0.001)
        link.ab.send(Interest("f", ByteRange(0, 1400), 0.0, 1e6))
        link.ab.send(Interest("f", ByteRange(2000, 3400), 0.0, 1e6))
        sim.run(until=1.0)
        data = [p for p in sink.received if isinstance(p, DataPacket)]
        assert sum(p.payload_bytes for p in data) == 1000

    def test_re_requested_range_marked_retransmitted(self):
        sim = Simulator()
        config = LeotpConfig()
        producer = Producer(sim, "prod", config)
        sink = SinkNode(sim, "sink")
        link = DuplexLink(sim, sink, producer, rate_bps=50e6, delay_s=0.001)
        link.ab.send(Interest("f", ByteRange(0, 1400), 0.0, 1e6))
        sim.run(until=0.5)
        link.ab.send(Interest("f", ByteRange(0, 1400), sim.now, 1e6))
        sim.run(until=1.0)
        data = [p for p in sink.received if isinstance(p, DataPacket)]
        assert [p.retransmitted for p in data] == [False, True]
        # The retransmitted copy carries the ORIGINAL first-send timestamp.
        assert data[1].origin_ts == pytest.approx(data[0].origin_ts)

    def test_duplicate_interest_absorbed_while_queued(self):
        sim = Simulator()
        config = LeotpConfig()
        producer = Producer(sim, "prod", config)
        sink = SinkNode(sim, "sink")
        link = DuplexLink(sim, sink, producer, rate_bps=50e6, delay_s=0.001)
        # Two identical interests back to back, with a tiny rate so the
        # first response is still queued when the second arrives.
        link.ab.send(Interest("f", ByteRange(0, 1400), 0.0, 100.0))
        link.ab.send(Interest("f", ByteRange(0, 1400), 0.0, 100.0))
        sim.run(until=0.2)
        assert producer.backlog_bytes("f") <= config.data_packet_bytes

    def test_requires_reply_link(self):
        sim = Simulator()
        producer = Producer(sim, "prod", LeotpConfig())
        from repro.netsim.link import Link

        bare = Link(sim, producer, rate_bps=1e6, delay_s=0.001)
        bare.send(Interest("f", ByteRange(0, 100), 0.0, 1e6))
        with pytest.raises(RuntimeError):
            sim.run(until=1.0)


class TestConsumer:
    def test_final_partial_chunk_requested(self):
        sim = Simulator()
        producer, consumer, link = one_hop_pair(sim, content=3000)  # 2x1400+200
        sim.run(until=2.0)
        assert consumer.finished
        assert consumer.bytes_received == 3000

    def test_vph_postpones_tr_deadline(self):
        sim = Simulator()
        config = LeotpConfig()
        consumer = Consumer(sim, "cons", "flow", config, total_bytes=1400)
        sink = SinkNode(sim, "sink")
        link = DuplexLink(sim, sink, consumer, rate_bps=50e6, delay_s=0.001)
        consumer.out_link = link.ba
        sim.run(until=0.05)  # one interest is now outstanding
        state = next(iter(consumer._outstanding.values()))
        deadline_before = state.deadline
        vph = DataPacket("flow", ByteRange(0, 1400), sim.now, is_header=True)
        link.ab.send(vph)
        sim.run(until=0.1)
        assert state.deadline > deadline_before
        assert consumer.vph_received == 1

    def test_tr_resends_unanswered_interest(self):
        sim = Simulator()
        config = LeotpConfig()
        consumer = Consumer(sim, "cons", "flow", config, total_bytes=1400)
        sink = SinkNode(sim, "sink")  # black hole: never answers
        link = DuplexLink(sim, sink, consumer, rate_bps=50e6, delay_s=0.001)
        consumer.out_link = link.ba
        sim.run(until=3.0)
        interests = [p for p in sink.received if isinstance(p, Interest)]
        assert len(interests) >= 2
        assert any(i.is_retransmission for i in interests)
        assert consumer.tr_expirations >= 1

    def test_tr_gives_up_after_max_retries(self):
        sim = Simulator()
        config = LeotpConfig(tr_max_retries=2, tr_initial_rto_s=0.1)
        consumer = Consumer(sim, "cons", "flow", config, total_bytes=1400)
        sink = SinkNode(sim, "sink")
        link = DuplexLink(sim, sink, consumer, rate_bps=50e6, delay_s=0.001)
        consumer.out_link = link.ba
        sim.run(until=20.0)
        state = next(iter(consumer._outstanding.values()))
        assert state.retries == 2

    def test_duplicate_data_not_recorded_twice(self):
        sim = Simulator()
        from repro.netsim.trace import FlowRecorder

        config = LeotpConfig()
        rec = FlowRecorder(sim)
        consumer = Consumer(sim, "cons", "flow", config, recorder=rec)
        sink = SinkNode(sim, "sink")
        link = DuplexLink(sim, sink, consumer, rate_bps=50e6, delay_s=0.001)
        consumer.out_link = link.ba
        for _ in range(2):
            link.ab.send(DataPacket("flow", ByteRange(0, 1400), sim.now))
        sim.run(until=0.5)
        assert rec.total_bytes == 1400

    def test_stop_time_halts_activity(self):
        sim = Simulator()
        config = LeotpConfig()
        consumer = Consumer(sim, "cons", "flow", config, stop_time=0.2)
        sink = SinkNode(sim, "sink")
        link = DuplexLink(sim, sink, consumer, rate_bps=50e6, delay_s=0.001)
        consumer.out_link = link.ba
        sim.run(until=0.2)
        count_at_stop = consumer.interests_sent
        sim.run(until=2.0)
        assert consumer.interests_sent == count_at_stop


class TestMidnode:
    def build_triple(self, sim, config=None):
        """consumer -- midnode -- producer, individually wired."""
        config = config or LeotpConfig()
        producer = Producer(sim, "prod", config)
        midnode = Midnode(sim, "mid", config)
        consumer = Consumer(sim, "cons", "flow", config, total_bytes=5 * 1400)
        up = DuplexLink(sim, producer, midnode, rate_bps=50e6, delay_s=0.005)
        down = DuplexLink(sim, midnode, consumer, rate_bps=50e6, delay_s=0.005)
        consumer.out_link = down.ba
        midnode.set_upstream(up.ba)
        return producer, midnode, consumer

    def test_forwards_interests_and_data(self):
        sim = Simulator()
        producer, midnode, consumer = self.build_triple(sim)
        sim.run(until=2.0)
        assert consumer.finished
        assert midnode.stats.interests_forwarded >= 5
        assert midnode.stats.data_forwarded >= 5

    def test_cache_answers_re_request_locally(self):
        sim = Simulator()
        config = LeotpConfig()
        producer, midnode, consumer = self.build_triple(sim, config)
        sim.run(until=2.0)
        forwarded_before = midnode.stats.interests_forwarded
        # Re-request a range the midnode has cached.
        retx = Interest("flow", ByteRange(0, 1400), sim.now, 1e6,
                        is_retransmission=True)
        consumer.out_link.send(retx)
        sim.run(until=3.0)
        assert midnode.stats.cache_responses >= 1
        assert midnode.stats.interests_forwarded == forwarded_before

    def test_no_cache_flag_always_forwards(self):
        sim = Simulator()
        config = LeotpConfig(enable_cache=False)
        producer, midnode, consumer = self.build_triple(sim, config)
        sim.run(until=2.0)
        retx = Interest("flow", ByteRange(0, 1400), sim.now, 1e6)
        consumer.out_link.send(retx)
        sim.run(until=3.0)
        assert midnode.stats.cache_responses == 0
        assert midnode.cache.stored_bytes == 0

    def test_requires_upstream_configuration(self):
        sim = Simulator()
        config = LeotpConfig()
        midnode = Midnode(sim, "mid", config)
        consumer = Consumer(sim, "cons", "flow", config, total_bytes=1400)
        down = DuplexLink(sim, midnode, consumer, rate_bps=50e6, delay_s=0.001)
        consumer.out_link = down.ba
        with pytest.raises(RuntimeError):
            sim.run(until=1.0)

    def test_per_flow_upstream_routing(self):
        sim = Simulator()
        config = LeotpConfig()
        midnode = Midnode(sim, "mid", config)
        prod_a = Producer(sim, "pa", config)
        prod_b = Producer(sim, "pb", config)
        link_a = DuplexLink(sim, prod_a, midnode, rate_bps=50e6, delay_s=0.001)
        link_b = DuplexLink(sim, prod_b, midnode, rate_bps=50e6, delay_s=0.001)
        cons_a = Consumer(sim, "ca", "flow-a", config, total_bytes=1400)
        cons_b = Consumer(sim, "cb", "flow-b", config, total_bytes=1400)
        down_a = DuplexLink(sim, midnode, cons_a, rate_bps=50e6, delay_s=0.001)
        down_b = DuplexLink(sim, midnode, cons_b, rate_bps=50e6, delay_s=0.001)
        cons_a.out_link = down_a.ba
        cons_b.out_link = down_b.ba
        midnode.set_upstream(link_a.ba, flow_id="flow-a")
        midnode.set_upstream(link_b.ba, flow_id="flow-b")
        sim.run(until=2.0)
        assert cons_a.finished and cons_b.finished
        assert prod_a.interests_received > 0
        assert prod_b.interests_received > 0

    def test_vph_generated_on_hole(self):
        sim = Simulator()
        config = LeotpConfig()
        midnode = Midnode(sim, "mid", config)
        upstream_sink = SinkNode(sim, "up")
        downstream_sink = SinkNode(sim, "down")
        up = DuplexLink(sim, upstream_sink, midnode, rate_bps=50e6, delay_s=0.001)
        down = DuplexLink(sim, midnode, downstream_sink, rate_bps=50e6, delay_s=0.001)
        midnode.set_upstream(up.ba)
        # Teach the midnode its downstream route with one interest.
        down.ba.send(Interest("flow", ByteRange(0, 1400), 0.0, 1e6))
        sim.run(until=0.1)
        # Data arrives with a gap: [0,1400) then [2800,4200).
        up.ab.send(DataPacket("flow", ByteRange(0, 1400), sim.now))
        up.ab.send(DataPacket("flow", ByteRange(2800, 4200), sim.now))
        sim.run(until=0.5)
        vphs = [
            p for p in downstream_sink.received
            if isinstance(p, DataPacket) and p.is_header
        ]
        assert len(vphs) == 1
        assert vphs[0].range == ByteRange(1400, 2800)
        # VPH must precede the out-of-order packet that triggered it.
        idx_vph = downstream_sink.received.index(vphs[0])
        data_oo = [
            p for p in downstream_sink.received
            if isinstance(p, DataPacket) and not p.is_header
            and p.range.start == 2800
        ][0]
        assert idx_vph < downstream_sink.received.index(data_oo)


class TestEndToEndWiring:
    def test_build_leotp_path_validates(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            build_leotp_path(sim, RngRegistry(0), [])

    def test_flow_metrics_exposed(self):
        sim = Simulator()
        path = build_leotp_path(
            sim, RngRegistry(1), uniform_chain_specs(2, rate_bps=20e6),
            total_bytes=14_000,
        )
        sim.run(until=5.0)
        assert path.consumer.finished
        assert path.producer.data_packets_sent >= 10
        assert path.midnodes[0].stats.data_received >= 10


class TestConsumerDeliveryCallback:
    def test_in_order_delivery_callback(self):
        """The deliver callback receives contiguous in-order bytes even when
        packets arrive out of order."""
        sim = Simulator()
        config = LeotpConfig()
        chunks = []
        consumer = Consumer(
            sim, "cons", "flow", config, total_bytes=4200,
            deliver=lambda n, ts: chunks.append(n),
        )
        sink = SinkNode(sim, "sink")
        link = DuplexLink(sim, sink, consumer, rate_bps=50e6, delay_s=0.001)
        consumer.out_link = link.ba
        # Deliver out of order: [1400,2800) before [0,1400).
        link.ab.send(DataPacket("flow", ByteRange(1400, 2800), 0.0))
        link.ab.send(DataPacket("flow", ByteRange(0, 1400), 0.0))
        link.ab.send(DataPacket("flow", ByteRange(2800, 4200), 0.0))
        sim.run(until=1.0)
        assert sum(chunks) == 4200
        # First callback fires only once the head-of-line hole is filled.
        assert chunks[0] == 2800


class TestKarnsRuleAndBackoff:
    """TR timer hygiene at the Consumer: Karn's rule and backoff clamping."""

    def _consumer_with_blackhole(self, total_bytes=2800, config=None):
        sim = Simulator()
        config = config or LeotpConfig()
        consumer = Consumer(sim, "cons", "flow", config, total_bytes=total_bytes)
        sink = SinkNode(sim, "sink")  # absorbs Interests, never answers
        link = DuplexLink(sim, sink, consumer, rate_bps=50e6, delay_s=0.001)
        consumer.out_link = link.ba
        return sim, consumer, link

    def test_clean_interest_feeds_rtt_estimator(self):
        sim, consumer, link = self._consumer_with_blackhole()
        sim.run(until=0.05)
        assert consumer.rto.samples == 0
        link.ab.send(DataPacket("flow", ByteRange(0, 1400), sim.now))
        sim.run(until=0.1)
        assert consumer.rto.samples == 1
        assert consumer.rto.srtt_s is not None

    def test_karns_rule_skips_retried_interests(self):
        sim, consumer, link = self._consumer_with_blackhole()
        sim.run(until=0.05)
        # Mark the second Interest ambiguous, as if TR had re-sent it.
        consumer._outstanding[1400].retries = 1
        link.ab.send(DataPacket("flow", ByteRange(1400, 2800), sim.now))
        sim.run(until=0.1)
        assert consumer.rto.samples == 0  # retried: no sample taken
        assert 1400 not in consumer._outstanding  # but still satisfied

    def test_karn_rtt_measured_from_last_send(self):
        """The one sample a clean Interest yields spans last_sent -> now,
        not first_sent -> now (which would fold queueing history in)."""
        sim, consumer, link = self._consumer_with_blackhole()
        sim.run(until=0.05)
        state = consumer._outstanding[0]
        assert state.last_sent == state.first_sent  # never retried
        link.ab.send(DataPacket("flow", ByteRange(0, 1400), sim.now))
        sim.run(until=0.1)
        measured = consumer.rto.srtt_s
        assert measured == pytest.approx(sim.now - state.first_sent, abs=0.05)

    def test_backoff_deadline_clamped_at_max_rto(self):
        sim, consumer, link = self._consumer_with_blackhole()
        sim.run(until=0.05)
        state = consumer._outstanding[0]
        # Deep into an outage the uncapped product 0.5 * 1.5**30 would be
        # ~96 000 s; the deadline must stay within max_rto of now.
        state.retries = 30
        consumer._send_interest(state.rng, retransmission=True)
        assert state.retries == 31
        timeout = state.deadline - sim.now
        assert timeout == pytest.approx(consumer.rto.max_rto_s)

    def test_backoff_grows_until_clamped(self):
        sim, consumer, link = self._consumer_with_blackhole()
        sim.run(until=0.05)
        state = consumer._outstanding[0]
        timeouts = []
        for _ in range(40):
            consumer._send_interest(state.rng, retransmission=True)
            timeouts.append(state.deadline - sim.now)
        # Monotone non-decreasing, strictly growing early, capped late.
        assert all(b >= a - 1e-12 for a, b in zip(timeouts, timeouts[1:]))
        assert timeouts[1] > timeouts[0]
        assert timeouts[-1] == pytest.approx(consumer.rto.max_rto_s)

    def test_max_retries_bounds_retries_under_long_outage(self):
        sim, consumer, link = self._consumer_with_blackhole(
            config=LeotpConfig(tr_max_retries=5, tr_initial_rto_s=0.05)
        )
        sim.run(until=30.0)
        assert consumer.max_interest_retries <= 5
