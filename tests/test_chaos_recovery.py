"""Chaos acceptance tests: LEOTP under blackout / flap / crash faults.

These encode the robustness bar for the whole reproduction: under a 2 s
handover blackout and under a Midnode crash/restart mid-transfer, LEOTP
must resume delivery with every protocol invariant green and post-fault
goodput at >= 80 % of the pre-fault level within 5 s of simulated time —
deterministically per seed.
"""

import pytest

from repro.faults import (
    CorrelatedLoss,
    FaultSchedule,
    LinkDown,
    LinkFlap,
    NodeCrash,
    run_leotp_chaos,
)

TOTAL_BYTES = 20_000_000  # finishes inside the 15 s runs at 20 Mbps


def _assert_recovered(result):
    result.assert_ok()
    assert result.completed, "transfer did not finish"
    r = result.recovery
    assert r.goodput_ratio >= 0.8, f"goodput only {r.goodput_ratio:.0%}"
    assert r.recovered and r.time_to_recovery_s <= 5.0
    assert r.ttfb_after_fault_s is not None


class TestBlackoutRecovery:
    def test_two_second_blackout(self):
        schedule = FaultSchedule(
            [LinkDown(at_s=5.0, link="hop3", duration_s=2.0)]
        )
        result = run_leotp_chaos(
            schedule, seed=1, duration_s=15.0, total_bytes=TOTAL_BYTES
        )
        _assert_recovered(result)
        # The injector acted exactly twice: down, then up.
        assert [m for _, m in result.fault_log] == [
            "hop3 DOWN for 2.0s (0 flushed)", "hop3 UP",
        ] or len(result.fault_log) == 2

    def test_flapping_link(self):
        schedule = FaultSchedule(
            [LinkFlap(at_s=5.0, link="hop3", down_s=0.3, up_s=0.5, cycles=3)]
        )
        result = run_leotp_chaos(
            schedule, seed=1, duration_s=15.0, total_bytes=TOTAL_BYTES
        )
        _assert_recovered(result)


class TestCrashRecovery:
    def test_midnode_crash_restart(self):
        schedule = FaultSchedule(
            [NodeCrash(at_s=5.0, node="leotp-mid2", restart_after_s=0.5)]
        )
        result = run_leotp_chaos(
            schedule, seed=1, duration_s=15.0, total_bytes=TOTAL_BYTES
        )
        _assert_recovered(result)
        crash_msgs = [m for _, m in result.fault_log]
        assert crash_msgs == ["leotp-mid2 CRASHED", "leotp-mid2 restarted"]

    def test_crash_without_restart_still_bounded(self):
        """A permanently dead Midnode stalls the flow, but the Consumer's
        window and the surviving Responders' buffers must stay bounded."""
        schedule = FaultSchedule(
            [NodeCrash(at_s=2.0, node="leotp-mid2", restart_after_s=None)]
        )
        result = run_leotp_chaos(
            schedule, seed=1, duration_s=8.0, total_bytes=TOTAL_BYTES
        )
        reports = {r.name: r for r in result.invariants}
        # The transfer cannot complete; everything else must hold.
        for name in (
            "no-duplicate-delivery", "bounded-requester-window",
            "bounded-responder-buffers", "rto-sanity", "cwnd-sanity",
        ):
            assert reports[name].ok, str(reports[name])
        assert not result.completed


class TestCorrelatedLossRecovery:
    def test_gilbert_elliott_burst(self):
        schedule = FaultSchedule(
            [CorrelatedLoss(at_s=5.0, link="hop3", duration_s=3.0,
                            p_good_bad=0.05, p_bad_good=0.2, loss_bad=0.6)]
        )
        result = run_leotp_chaos(
            schedule, seed=1, duration_s=15.0, total_bytes=TOTAL_BYTES
        )
        result.assert_ok()
        assert result.completed
        assert result.recovery.goodput_ratio >= 0.8


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        schedule = FaultSchedule(
            [NodeCrash(at_s=3.0, node="leotp-mid1", restart_after_s=0.5)]
        )
        runs = [
            run_leotp_chaos(
                schedule, seed=7, duration_s=10.0, total_bytes=10_000_000
            ).to_dict()
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_different_seed_differs(self):
        schedule = FaultSchedule(
            [CorrelatedLoss(at_s=2.0, link="hop2", duration_s=2.0,
                            p_good_bad=0.05, p_bad_good=0.2, loss_bad=0.6)]
        )
        results = [
            run_leotp_chaos(
                schedule, seed=s, duration_s=8.0, total_bytes=8_000_000
            )
            for s in (1, 2)
        ]
        assert (
            results[0].to_dict()["recovery"] != results[1].to_dict()["recovery"]
        )


class TestReorderTolerance:
    def test_shrinking_delay_reorders_but_transfer_survives(self):
        """A delay spike's restore shrinks delay_s mid-flight, reordering
        packets (the LEO handover phenomenon); the protocol must absorb
        the reordering without duplicate delivery or spurious stalls."""
        from repro.faults import DelaySpike

        schedule = FaultSchedule([
            DelaySpike(at_s=2.0, link="hop3", duration_s=1.0, extra_s=0.04),
            DelaySpike(at_s=4.0, link="hop1", duration_s=0.5, extra_s=0.06),
        ])
        result = run_leotp_chaos(
            schedule, seed=3, duration_s=12.0, total_bytes=10_000_000
        )
        result.assert_ok()
        assert result.completed
