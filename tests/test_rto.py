"""Tests for the RFC 6298 RTO estimator."""

import pytest

from repro.common.rto import RtoEstimator


class TestRtoEstimator:
    def test_initial_rto(self):
        assert RtoEstimator(initial_rto_s=1.0).rto_s == 1.0

    def test_first_sample_initialises_srtt_and_var(self):
        est = RtoEstimator(min_rto_s=0.0001)
        est.on_sample(0.1)
        assert est.srtt_s == pytest.approx(0.1)
        assert est.rttvar_s == pytest.approx(0.05)
        assert est.rto_s == pytest.approx(0.1 + 4 * 0.05)

    def test_subsequent_samples_follow_rfc_formula(self):
        est = RtoEstimator(min_rto_s=0.0001)
        est.on_sample(0.1)
        est.on_sample(0.2)
        # RTTVAR = 3/4*0.05 + 1/4*|0.1-0.2| = 0.0625
        # SRTT = 7/8*0.1 + 1/8*0.2 = 0.1125
        assert est.rttvar_s == pytest.approx(0.0625)
        assert est.srtt_s == pytest.approx(0.1125)
        assert est.rto_s == pytest.approx(0.1125 + 4 * 0.0625)

    def test_constant_samples_converge_to_min_rto(self):
        est = RtoEstimator(min_rto_s=0.2)
        for _ in range(100):
            est.on_sample(0.05)
        # With zero variance the raw RTO approaches SRTT; the floor applies.
        assert est.rto_s == 0.2

    def test_min_rto_clamp(self):
        est = RtoEstimator(min_rto_s=0.5)
        est.on_sample(0.01)
        assert est.rto_s == 0.5

    def test_max_rto_clamp(self):
        est = RtoEstimator(max_rto_s=2.0)
        est.on_sample(10.0)
        assert est.rto_s == 2.0

    def test_backoff_multiplies(self):
        est = RtoEstimator(initial_rto_s=1.0, max_rto_s=60.0)
        est.backoff(2.0)
        assert est.rto_s == 2.0
        est.backoff(1.5)
        assert est.rto_s == 3.0

    def test_backoff_respects_max(self):
        est = RtoEstimator(initial_rto_s=50.0, max_rto_s=60.0)
        est.backoff(2.0)
        assert est.rto_s == 60.0

    def test_backoff_factor_validation(self):
        with pytest.raises(ValueError):
            RtoEstimator().backoff(1.0)

    def test_non_positive_sample_rejected(self):
        with pytest.raises(ValueError):
            RtoEstimator().on_sample(0.0)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            RtoEstimator(min_rto_s=2.0, max_rto_s=1.0)

    def test_repeated_backoff_converges_to_max(self):
        est = RtoEstimator(initial_rto_s=1.0, max_rto_s=8.0)
        for _ in range(20):
            est.backoff(1.5)
        assert est.rto_s == 8.0

    def test_backoff_leaves_estimators_untouched(self):
        est = RtoEstimator()
        est.on_sample(0.1)
        srtt, rttvar = est.srtt_s, est.rttvar_s
        est.backoff(2.0)
        assert est.srtt_s == srtt and est.rttvar_s == rttvar

    def test_fresh_sample_collapses_backoff(self):
        # A clean post-outage sample recomputes the RTO from SRTT/RTTVAR,
        # discarding the backed-off value (RFC 6298 Sec. 5.7 behaviour).
        est = RtoEstimator(min_rto_s=0.2, max_rto_s=60.0)
        est.on_sample(0.1)
        est.backoff(2.0)
        est.backoff(2.0)
        backed_off = est.rto_s
        est.on_sample(0.1)
        assert est.rto_s < backed_off

    def test_sample_counter(self):
        est = RtoEstimator()
        est.on_sample(0.1)
        est.on_sample(0.1)
        assert est.samples == 2

    def test_refresh_drops_backoff(self):
        est = RtoEstimator(min_rto_s=0.2, max_rto_s=60.0)
        est.on_sample(0.1)
        clean = est.rto_s
        est.backoff(2.0)
        est.backoff(2.0)
        assert est.rto_s == pytest.approx(4.0 * clean)
        est.refresh()
        assert est.rto_s == pytest.approx(clean)

    def test_refresh_without_samples_is_noop(self):
        est = RtoEstimator(initial_rto_s=1.0)
        est.backoff(2.0)
        est.refresh()
        assert est.rto_s == pytest.approx(2.0)

    def test_refresh_respects_min_clamp(self):
        est = RtoEstimator(min_rto_s=0.2)
        for _ in range(20):
            est.on_sample(0.01)
        est.backoff(2.0)
        est.refresh()
        assert est.rto_s == pytest.approx(0.2)
