"""The parallel experiment runner must reproduce serial rows bit-exactly.

Every experiment id is parametrized; the cheap ones run on every test
invocation, the expensive ones are gated behind ``LEOTP_FULL_DETERMINISM=1``
(CI's benchmark job sets it for a subset, a nightly/full run can set it
globally) so the tier-1 suite stays fast.  Bit-identity holds by
construction — serial and parallel paths execute the same worker
function (:func:`repro.experiments.runner.run_one`) and every experiment
seeds its own Simulator/RngRegistry — and these tests pin that guarantee
against regressions (e.g. a worker that mutates shared module state).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.runner import RunSpec, run_experiments, run_one

# Experiments cheap enough (at tiny scale) to check on every run.
_CHEAP_IDS = ("fig02", "fig03")
_TINY_SCALE = 0.02
_SPEC = RunSpec(scale=_TINY_SCALE, seed=0)


def _gated(name: str):
    if name in _CHEAP_IDS or os.environ.get("LEOTP_FULL_DETERMINISM") == "1":
        return name
    return pytest.param(
        name,
        marks=pytest.mark.skip(
            reason="expensive; set LEOTP_FULL_DETERMINISM=1 to include"
        ),
    )


@pytest.mark.parametrize("name", [_gated(n) for n in sorted(ALL_EXPERIMENTS)])
def test_parallel_rows_bit_identical(name):
    """--jobs N rows == serial rows, for every experiment id."""
    serial = run_experiments([name], _SPEC, jobs=1)
    parallel = run_experiments([name], _SPEC, jobs=2)
    assert len(serial) == len(parallel) == 1
    assert serial[0].result["rows"] == parallel[0].result["rows"]
    assert serial[0].result["notes"] == parallel[0].result["notes"]


def test_multi_experiment_order_and_rows():
    """A mixed batch returns outcomes in request order with serial rows."""
    names = list(_CHEAP_IDS)
    serial = run_experiments(names, _SPEC, jobs=1)
    parallel = run_experiments(names, _SPEC, jobs=2)
    assert [o.name for o in serial] == names
    assert [o.name for o in parallel] == names
    for s, p in zip(serial, parallel):
        assert s.result == p.result


def test_run_one_is_the_shared_worker():
    """Serial path and pool path both execute run_one (structural pin)."""
    outcome = run_one("fig03", _SPEC)
    serial = run_experiments(["fig03"], _SPEC, jobs=1)
    assert outcome.result == serial[0].result


def test_single_id_parallel_uses_the_pool(monkeypatch):
    """jobs=2 with one id still routes through the process pool.

    The single-experiment bit-identity checks above are only meaningful
    if the parallel leg actually crosses a process boundary.
    """
    import repro.experiments.runner as runner_mod

    submitted = []
    real_pool = runner_mod.ProcessPoolExecutor

    class SpyPool(real_pool):
        def submit(self, fn, *args, **kwargs):
            submitted.append(args[0])
            return super().submit(fn, *args, **kwargs)

    monkeypatch.setattr(runner_mod, "ProcessPoolExecutor", SpyPool)
    outcomes = runner_mod.run_experiments(["fig03"], _SPEC, jobs=2)
    assert submitted == ["fig03"]
    assert outcomes[0].name == "fig03"


def test_profile_dump(tmp_path):
    """profile_dir writes a loadable pstats file per experiment."""
    import pstats

    outcome = run_one(
        "fig03", RunSpec(scale=_TINY_SCALE, seed=0, profile_dir=str(tmp_path))
    )
    assert outcome.profile_path is not None
    stats = pstats.Stats(outcome.profile_path)
    assert stats.total_calls > 0


def test_sampler_interval_override():
    """RunSpec.sampler_interval_s governs observed sampling cadence."""
    from repro.obs import METRICS

    coarse = run_one(
        "fig02",
        RunSpec(scale=_TINY_SCALE, seed=0, observe=True,
                sampler_interval_s=0.5),
    )
    fine = run_one(
        "fig02",
        RunSpec(scale=_TINY_SCALE, seed=0, observe=True,
                sampler_interval_s=0.05),
    )
    n_coarse = len(coarse.metric_samples or [])
    n_fine = len(fine.metric_samples or [])
    assert 0 < n_coarse < n_fine
    # Rows are bit-identical regardless of cadence (observation is
    # read-only) and the global cadence is restored afterwards.
    assert coarse.result["rows"] == fine.result["rows"]
    from repro.obs.metrics import DEFAULT_INTERVAL_S

    assert METRICS.interval_s == DEFAULT_INTERVAL_S


def test_runspec_validation():
    with pytest.raises(ValueError):
        RunSpec(scale=0.0)
    with pytest.raises(ValueError):
        RunSpec(sampler_interval_s=0.0)


def test_jobs_validation():
    with pytest.raises(ValueError):
        run_experiments(["fig03"], _SPEC, jobs=0)
