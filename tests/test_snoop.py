"""Tests for the Snoop proxy baseline."""

import pytest

from repro.netsim.link import DuplexLink
from repro.netsim.topology import HopSpec, build_chain
from repro.netsim.trace import FlowRecorder
from repro.simcore import RngRegistry, Simulator
from repro.tcp import FiniteStream, TcpReceiver, TcpSender, make_cc
from repro.tcp.snoop import SnoopProxy


def build_snoop_path(sim, rng, last_hop_plr=0.02, first_hop_plr=0.0,
                     total=300_000, cc="cubic"):
    """sender --clean hop-- snoop --lossy hop-- receiver."""
    recorder = FlowRecorder(sim)
    sender = TcpSender(sim, "snd", "rcv", None, make_cc(cc),
                       stream=FiniteStream(total) if total else None,
                       flow_id="f")
    snoop = SnoopProxy(sim, "snoop")
    receiver = TcpReceiver(sim, "rcv", None, recorder=recorder, flow_id="f")
    links = build_chain(
        sim, [sender, snoop, receiver],
        [
            HopSpec(rate_bps=20e6, delay_s=0.02, plr=first_hop_plr),
            HopSpec(rate_bps=20e6, delay_s=0.005, plr=last_hop_plr),
        ],
        rng,
    )
    sender.out_link = links[0].ab
    receiver.out_link = links[1].ba
    snoop.connect(
        from_sender=links[0].ab, to_receiver=links[1].ab,
        from_receiver=links[1].ba, to_sender=links[0].ba,
    )
    return sender, snoop, receiver, recorder


class TestSnoopProxy:
    def test_clean_passthrough(self):
        sim = Simulator()
        sender, snoop, receiver, _ = build_snoop_path(
            sim, RngRegistry(1), last_hop_plr=0.0
        )
        sim.run(until=30.0)
        assert sender.finished
        assert receiver.bytes_delivered == 300_000
        assert snoop.local_retransmissions == 0

    def test_repairs_last_hop_loss_locally(self):
        sim = Simulator()
        sender, snoop, receiver, _ = build_snoop_path(
            sim, RngRegistry(1), last_hop_plr=0.03
        )
        sim.run(until=60.0)
        assert sender.finished
        assert receiver.bytes_delivered == 300_000
        assert snoop.local_retransmissions > 0
        assert snoop.suppressed_dup_acks > 0

    def test_hides_loss_from_sender(self):
        """With Snoop, the sender's own retransmission count should be far
        below the number of last-hop losses."""
        sim = Simulator()
        sender, snoop, receiver, _ = build_snoop_path(
            sim, RngRegistry(2), last_hop_plr=0.03
        )
        sim.run(until=60.0)
        assert sender.retransmissions < snoop.local_retransmissions

    def test_snoop_beats_plain_tcp_on_lossy_last_hop(self):
        """Sustained transfer: hiding last-hop loss keeps cubic's window
        open, so goodput is higher with the proxy in place."""
        total = 3_000_000

        def completion(with_snoop: bool) -> float:
            sim = Simulator()
            rng = RngRegistry(3)
            if with_snoop:
                sender, _, _, _ = build_snoop_path(
                    sim, rng, last_hop_plr=0.03, total=total
                )
            else:
                from repro.tcp import build_e2e_tcp_path

                hops = [
                    HopSpec(rate_bps=20e6, delay_s=0.02, plr=0.0),
                    HopSpec(rate_bps=20e6, delay_s=0.005, plr=0.03),
                ]
                path = build_e2e_tcp_path(
                    sim, rng, hops, "cubic", stream=FiniteStream(total)
                )
                sender = path.sender
            sim.run(until=300.0)
            assert sender.finished
            return sender.completed_at

        assert completion(True) < completion(False)

    def test_cannot_repair_upstream_loss(self):
        """Loss before the proxy is invisible to it — the paper's point:
        the sender itself must still retransmit."""
        sim = Simulator()
        sender, snoop, receiver, _ = build_snoop_path(
            sim, RngRegistry(4), last_hop_plr=0.0, first_hop_plr=0.02
        )
        sim.run(until=60.0)
        assert sender.finished
        assert sender.retransmissions > 0

    def test_cache_eviction_bound(self):
        sim = Simulator()
        sender, snoop, receiver, _ = build_snoop_path(sim, RngRegistry(5))
        snoop.cache_bytes = 10_000
        sim.run(until=30.0)
        for flow in snoop._flows.values():
            assert flow.cached_bytes <= 10_000
