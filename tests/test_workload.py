"""Tests for the many-flow workload engine (arrivals, budget, pool).

The acceptance-level test here is ``test_pool_sustains_1000_arrivals``:
a FlowPool must carry >= 1000 flow arrivals over one shared chain with
>= 95 % completing, while the memory-budget ledger proves the configured
ceiling held (peak <= ceiling, zero breaches) and retired flows leave no
soft state behind.
"""

from __future__ import annotations

import pytest

from repro.netsim.topology import uniform_chain_specs
from repro.simcore import RngRegistry, Simulator
from repro.workload import (
    FLOW_STATE_BYTES_PER_NODE,
    FairnessTracker,
    FlowPool,
    FlowRecord,
    MemoryBudget,
    SharedCachePool,
    WorkloadSpec,
    generate_demands,
    offered_load_bytes_s,
)


def _poisson_spec(**overrides):
    base = dict(
        arrival="poisson", rate_per_s=200.0, n_flows=100,
        size_dist="lognormal", mean_size_bytes=8_000, sigma=1.0,
        max_size_bytes=50_000,
    )
    base.update(overrides)
    return WorkloadSpec(**base)


class TestArrivals:
    def test_poisson_deterministic_per_seed(self):
        spec = _poisson_spec()
        a = generate_demands(spec, RngRegistry(7).stream("workload:arrivals"))
        b = generate_demands(spec, RngRegistry(7).stream("workload:arrivals"))
        c = generate_demands(spec, RngRegistry(8).stream("workload:arrivals"))
        assert a == b
        assert a != c

    def test_poisson_sorted_and_sized(self):
        spec = _poisson_spec(n_flows=500)
        demands = generate_demands(
            spec, RngRegistry(0).stream("workload:arrivals")
        )
        assert len(demands) == 500
        times = [d.arrival_s for d in demands]
        assert times == sorted(times)
        for d in demands:
            assert spec.min_size_bytes <= d.size_bytes <= spec.max_size_bytes

    def test_lognormal_mean_parameterisation(self):
        # mu = ln(mean) - sigma^2/2 keeps the configured mean honest
        # (clipping skews it a little; accept a generous band).
        spec = _poisson_spec(n_flows=5000, mean_size_bytes=10_000,
                             max_size_bytes=2_000_000)
        demands = generate_demands(
            spec, RngRegistry(1).stream("workload:arrivals")
        )
        mean = sum(d.size_bytes for d in demands) / len(demands)
        assert 8_000 < mean < 12_500

    def test_fixed_sizes(self):
        spec = _poisson_spec(size_dist="fixed", mean_size_bytes=4_000)
        demands = generate_demands(
            spec, RngRegistry(0).stream("workload:arrivals")
        )
        assert {d.size_bytes for d in demands} == {4_000}

    def test_trace_arrivals(self):
        spec = WorkloadSpec(
            arrival="trace", trace=((0.0, 1000), (0.5, 2000), (0.5, 3000)),
        )
        demands = generate_demands(
            spec, RngRegistry(0).stream("workload:arrivals")
        )
        assert [d.size_bytes for d in demands] == [1000, 2000, 3000]
        assert offered_load_bytes_s(demands) == pytest.approx(6000 / 0.5)

    def test_trace_must_be_sorted(self):
        spec = WorkloadSpec(arrival="trace", trace=((1.0, 100), (0.5, 100)))
        with pytest.raises(ValueError):
            generate_demands(spec, RngRegistry(0).stream("workload:arrivals"))

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(arrival="burst")
        with pytest.raises(ValueError):
            WorkloadSpec(size_dist="pareto")
        with pytest.raises(ValueError):
            WorkloadSpec(rate_per_s=0.0)
        with pytest.raises(ValueError):
            WorkloadSpec(arrival="trace", trace=())
        with pytest.raises(ValueError):
            WorkloadSpec(min_size_bytes=2000, max_size_bytes=1000)
        with pytest.raises(ValueError):
            WorkloadSpec(closed_loop=True, target_concurrency=0)


class TestMemoryBudget:
    def test_accounts_and_peak(self):
        budget = MemoryBudget(1000)
        budget.set_account("cache", 600)
        budget.charge("flows", 300)
        assert budget.total_bytes == 900
        assert budget.headroom_bytes == 100
        assert budget.account("cache") == 600
        budget.set_account("cache", 100)
        assert budget.total_bytes == 400
        assert budget.peak_bytes == 900
        assert budget.breaches == 0

    def test_breach_counting(self):
        budget = MemoryBudget(1000)
        budget.set_account("cache", 1500)
        assert budget.breaches == 1
        assert budget.peak_bytes == 1500

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryBudget(0)
        budget = MemoryBudget(100)
        with pytest.raises(ValueError):
            budget.charge("flows", -1)


class TestSharedCachePool:
    def _store(self, cache, flow, start, nbytes, ts=0.0):
        from repro.common.ranges import ByteRange

        cache.store(flow, ByteRange(start, start + nbytes), ts)

    def test_pool_capacity_enforced_across_members(self):
        budget = MemoryBudget(100_000)
        pool = SharedCachePool(8192, block_bytes=4096, budget=budget)
        a, b = pool.member(), pool.member()
        self._store(a, "f1", 0, 4096)
        self._store(b, "f2", 0, 4096)
        assert pool.stored_bytes == 8192
        assert pool.pool_evictions == 0
        # One more block overflows the pool: the fullest member evicts.
        self._store(a, "f1", 4096, 4096)
        assert pool.stored_bytes <= 8192
        assert pool.pool_evictions == 1
        assert pool.pool_evicted_bytes == 4096
        assert budget.account("cache") == pool.stored_bytes

    def test_eviction_prefers_fullest_member(self):
        pool = SharedCachePool(3 * 4096, block_bytes=4096)
        a, b = pool.member(), pool.member()
        self._store(a, "f1", 0, 4096)
        self._store(a, "f1", 4096, 4096)
        self._store(b, "f2", 0, 4096)
        # Pool is exactly full; the next store evicts from a (2 blocks > 1).
        self._store(b, "f2", 4096, 4096)
        assert a.stored_bytes == 4096
        assert b.stored_bytes == 2 * 4096

    def test_validation(self):
        with pytest.raises(ValueError):
            SharedCachePool(0)


class TestFlowMetrics:
    def test_flow_record_derivations(self):
        rec = FlowRecord("w1", arrival_s=1.0, size_bytes=10_000,
                         start_s=1.0, finish_s=3.0)
        assert rec.completed
        assert rec.fct_s == pytest.approx(2.0)
        assert rec.goodput_bytes_s == pytest.approx(5_000.0)
        aborted = FlowRecord("w2", 0.0, 1, 0.0, finish_s=None, aborted=True)
        assert not aborted.completed
        assert aborted.fct_s is None and aborted.goodput_bytes_s is None

    def test_windowed_jain(self):
        tracker = FairnessTracker(window_s=1.0)
        # Window 0: perfectly fair.  Window 1: single flow (skipped).
        # Window 2: maximally unfair between two flows.
        tracker.on_delivery("a", 1000, 0.1)
        tracker.on_delivery("b", 1000, 0.9)
        tracker.on_delivery("a", 500, 1.5)
        tracker.on_delivery("a", 1000, 2.2)
        tracker.on_delivery("b", 0, 2.3)
        windows = tracker.windowed_jain()
        assert [t for t, _ in windows] == [0.0, 2.0]
        assert windows[0][1] == pytest.approx(1.0)
        assert windows[1][1] == pytest.approx(0.5)
        summary = tracker.summary()
        assert summary["windows"] == 2.0
        assert summary["jain_min"] == pytest.approx(0.5)

    def test_empty_tracker_vacuous(self):
        assert FairnessTracker().summary() == {
            "jain_mean": 1.0, "jain_min": 1.0, "windows": 0.0,
        }

    def test_fct_percentiles_and_cdf(self):
        from repro.analysis.stats import fct_percentiles, goodput_cdf

        stats = fct_percentiles([0.1 * (i + 1) for i in range(100)])
        assert stats["fct_p50_s"] == pytest.approx(5.05, abs=0.1)
        assert stats["fct_p99_s"] <= 10.0
        assert fct_percentiles([]) == {
            "fct_p50_s": 0.0, "fct_p90_s": 0.0,
            "fct_p99_s": 0.0, "fct_mean_s": 0.0,
        }
        cdf = goodput_cdf([1.0, 2.0, 3.0], points=3)
        assert cdf[0] == (1.0, 0.0) and cdf[-1] == (3.0, 1.0)


def _run_pool(protocol="leotp", n_flows=150, seed=0, *, rate_per_s=150.0,
              ceiling=8 << 20, n_hops=2, drain_s=6.0, spec_overrides=None,
              **pool_kwargs):
    spec_kwargs = dict(
        n_flows=n_flows, rate_per_s=rate_per_s, mean_size_bytes=6_000,
        max_size_bytes=30_000,
    )
    spec_kwargs.update(spec_overrides or {})
    spec = _poisson_spec(**spec_kwargs)
    sim = Simulator()
    pool = FlowPool(
        sim, RngRegistry(seed), spec=spec,
        hops=uniform_chain_specs(n_hops, rate_bps=40e6, delay_s=0.004),
        protocol=protocol, memory_ceiling_bytes=ceiling, **pool_kwargs,
    )
    sim.run(until=n_flows / rate_per_s + drain_s)
    pool.finalize()
    return pool


class TestFlowPool:
    def test_pool_sustains_1000_arrivals(self):
        """Acceptance: >= 1000 arrivals, >= 95 % completed, budget held."""
        pool = _run_pool(n_flows=1000, rate_per_s=300.0)
        summary = pool.summary()
        assert summary["arrivals"] >= 1000
        assert summary["completed"] >= 0.95 * summary["arrivals"]
        assert summary["budget_peak_bytes"] <= pool.budget.ceiling_bytes
        assert summary["budget_breaches"] == 0
        # Retirement left no per-flow soft state on the shared nodes.
        assert pool.producer._senders == {}
        for mid in pool.midnodes:
            assert mid._flows == {}

    def test_tcp_pool_completes(self):
        pool = _run_pool(protocol="cubic", n_flows=80)
        summary = pool.summary()
        assert summary["completed"] >= 0.95 * summary["arrivals"]
        assert summary["budget_breaches"] == 0
        # Routes were retired along with the flows.
        for router in pool.routers:
            assert len(router._routes) == 0

    def test_deterministic_per_seed(self):
        a = _run_pool(n_flows=120, seed=3).summary()
        b = _run_pool(n_flows=120, seed=3).summary()
        c = _run_pool(n_flows=120, seed=4).summary()
        assert a == b
        assert a != c

    def test_tight_cache_budget_evicts_not_breaches(self):
        """A tiny ceiling forces pool evictions, never ledger breaches."""
        # A burst of ~simultaneous flows pins far more content than the
        # 512 KB cache slice (0.25 * 2 MiB) can hold at once.
        pool = _run_pool(
            n_flows=250, rate_per_s=500.0, ceiling=2 << 20,
            cache_fraction=0.25,
            spec_overrides=dict(mean_size_bytes=15_000, max_size_bytes=60_000),
        )
        summary = pool.summary()
        assert summary["cache_pool_evictions"] > 0
        assert summary["budget_peak_bytes"] <= 2 << 20
        assert summary["budget_breaches"] == 0
        assert summary["completed"] >= 0.95 * summary["arrivals"]

    def test_admission_control_rejects_over_budget_arrivals(self):
        # Flow share = ceiling - cache slice; make it only big enough for
        # a handful of concurrent flows, then offer a burst.
        responders = 2 + 1
        flow_state = FLOW_STATE_BYTES_PER_NODE * responders
        ceiling = 100_000
        pool = _run_pool(
            n_flows=400, rate_per_s=2000.0, ceiling=ceiling,
            cache_fraction=0.97,
        )
        flow_share = ceiling - int(ceiling * 0.97)
        max_live = flow_share // flow_state
        assert pool.admission_rejects > 0
        assert pool.peak_concurrency <= max_live
        assert pool.summary()["budget_breaches"] == 0

    def test_closed_loop_holds_target_concurrency(self):
        pool = _run_pool(
            n_flows=100,
            spec_overrides=dict(closed_loop=True, target_concurrency=12),
        )
        assert pool.peak_concurrency == 12
        assert pool.summary()["completed"] >= 95

    def test_finalize_aborts_stragglers(self):
        pool = _run_pool(n_flows=200, rate_per_s=100.0, drain_s=-1.4)
        summary = pool.summary()
        assert summary["aborted"] > 0
        assert summary["arrivals"] == summary["completed"] + summary["aborted"]
        assert pool.active_flows == 0

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FlowPool(sim, RngRegistry(0), spec=_poisson_spec(), hops=[])
        with pytest.raises(ValueError):
            FlowPool(
                sim, RngRegistry(0), spec=_poisson_spec(),
                hops=uniform_chain_specs(2), cache_fraction=1.5,
            )
        with pytest.raises(ValueError):
            FlowPool(
                sim, RngRegistry(0), spec=_poisson_spec(),
                hops=uniform_chain_specs(2), name="",
            )


class TestFlowAborts:
    def _mid_run_pool(self, *, abort_at, action, n_flows=60,
                      rate_per_s=60.0, **pool_kwargs):
        spec = _poisson_spec(
            n_flows=n_flows, rate_per_s=rate_per_s,
            mean_size_bytes=20_000, max_size_bytes=80_000,
        )
        sim = Simulator()
        pool = FlowPool(
            sim, RngRegistry(0), spec=spec,
            hops=uniform_chain_specs(2, rate_bps=20e6, delay_s=0.004),
            protocol="leotp", **pool_kwargs,
        )
        sim.schedule_at(abort_at, action, pool)
        sim.run(until=n_flows / rate_per_s + 6.0)
        pool.finalize()
        return pool

    def test_abort_live_records_reason(self):
        aborted = {}

        def act(pool):
            aborted["n"] = pool.abort_live("no_route")

        pool = self._mid_run_pool(abort_at=0.5, action=act)
        assert aborted["n"] > 0
        summary = pool.summary()
        assert summary["aborted"] >= aborted["n"]
        assert summary["aborted_no_route"] == aborted["n"]
        records = [
            r for r in pool.records if r.abort_reason == "no_route"
        ]
        assert len(records) == aborted["n"]
        for record in records:
            assert record.aborted and not record.completed
            assert record.finish_s == pytest.approx(0.5)

    def test_abort_does_not_kill_the_run(self):
        """A transient routing gap aborts affected flows; later arrivals
        still complete and shared nodes carry no dead soft state."""

        def act(pool):
            pool.abort_live("no_route")

        pool = self._mid_run_pool(abort_at=0.3, action=act)
        summary = pool.summary()
        assert summary["completed"] > 0
        assert (
            summary["arrivals"]
            == summary["completed"] + summary["aborted"]
        )
        assert pool.producer._senders == {}
        for mid in pool.midnodes:
            assert mid._flows == {}

    def test_abort_unknown_flow_returns_false(self):
        sim = Simulator()
        pool = FlowPool(
            sim, RngRegistry(0), spec=_poisson_spec(),
            hops=uniform_chain_specs(2),
        )
        assert pool.abort_flow("w99999") is False

    def test_admission_and_unfinished_reasons_recorded(self):
        pool = _run_pool(
            n_flows=200, rate_per_s=2000.0, ceiling=100_000,
            cache_fraction=0.97, drain_s=-0.05,
        )
        summary = pool.summary()
        assert summary.get("aborted_admission", 0) > 0
        by_reason = {}
        for record in pool.records:
            if record.abort_reason:
                by_reason.setdefault(record.abort_reason, 0)
                by_reason[record.abort_reason] += 1
        assert by_reason.get("admission") == summary["aborted_admission"]

    def test_named_pool_namespaces_everything(self):
        spec = _poisson_spec(n_flows=10, rate_per_s=50.0)
        sim = Simulator()
        pool = FlowPool(
            sim, RngRegistry(0), spec=spec,
            hops=uniform_chain_specs(2), name="bjpr",
        )
        assert pool.producer.name == "bjpr-prod"
        assert all(m.name.startswith("bjpr-mid") for m in pool.midnodes)
        sim.run(until=1.0)
        assert all(fid.startswith("bjpr-w") for fid in pool._live)

    def test_two_named_pools_share_one_simulator(self):
        spec = _poisson_spec(n_flows=30, rate_per_s=60.0)
        sim = Simulator()
        rng = RngRegistry(0)
        hops = uniform_chain_specs(2, rate_bps=20e6, delay_s=0.004)
        pools = [
            FlowPool(sim, rng, spec=spec, hops=hops, name=name)
            for name in ("east", "west")
        ]
        sim.run(until=5.0)
        for pool in pools:
            pool.finalize()
            assert pool.summary()["completed"] >= 0.9 * 30

    def test_default_name_preserves_flow_ids(self):
        # Bit-identity guard: the unnamed pool must keep the historical
        # un-prefixed flow ids ("w00000") and node names ("pool-prod").
        sim = Simulator()
        pool = FlowPool(
            sim, RngRegistry(0),
            spec=_poisson_spec(n_flows=5, rate_per_s=100.0),
            hops=uniform_chain_specs(2),
        )
        sim.run(until=1.0)
        pool.finalize()
        assert pool.name == "pool"
        assert pool.producer.name == "pool-prod"
        assert all(r.flow_id.startswith("w000") for r in pool.records)


class TestWorkloadExperiment:
    def test_experiment_smoke(self):
        from repro.experiments import ALL_EXPERIMENTS

        result = ALL_EXPERIMENTS["workload"](scale=0.01)
        assert [row["protocol"] for row in result.rows] == [
            "leotp", "bbr", "cubic",
        ]
        for row in result.rows:
            assert row["arrivals"] == 60
            assert row["completed"] >= 0.95 * row["arrivals"]
            assert row["budget_breaches"] == 0
            assert 0.0 < row["jain_mean"] <= 1.0

    def test_rows_bit_identical_serial_vs_jobs2(self):
        from repro.experiments.runner import RunSpec, run_experiments

        spec = RunSpec(scale=0.01, seed=0)
        serial = run_experiments(["workload"], spec, jobs=1)
        parallel = run_experiments(["workload"], spec, jobs=2)
        assert serial[0].result["rows"] == parallel[0].result["rows"]

    def test_workload_summary_renders(self):
        from repro.analysis.report import workload_summary
        from repro.experiments import ALL_EXPERIMENTS

        result = ALL_EXPERIMENTS["workload"](scale=0.01)
        text = workload_summary(result.rows)
        for needle in ("workload", "fct", "jain", "budget"):
            assert needle in text.lower()
