"""Tests for topology builders: chains, dumbbells, switchable paths."""

import pytest

from repro.netsim.node import ChainForwarder, Router, SinkNode, wire_chain_forwarders
from repro.netsim.packet import Packet
from repro.netsim.topology import (
    HopSpec,
    SwitchablePath,
    build_chain,
    build_dumbbell,
    uniform_chain_specs,
)
from repro.simcore import RngRegistry, Simulator


class TestHopSpec:
    def test_scaled_override(self):
        spec = HopSpec(rate_bps=1e6).scaled(plr=0.1)
        assert spec.plr == 0.1
        assert spec.rate_bps == 1e6

    def test_uniform_chain_specs(self):
        specs = uniform_chain_specs(3, rate_bps=5e6, delay_s=0.02, plr=0.01)
        assert len(specs) == 3
        assert all(s.rate_bps == 5e6 and s.plr == 0.01 for s in specs)

    def test_uniform_chain_specs_validation(self):
        with pytest.raises(ValueError):
            uniform_chain_specs(0)


class TestBuildChain:
    def test_node_hop_count_mismatch(self):
        sim = Simulator()
        nodes = [SinkNode(sim, f"n{i}") for i in range(3)]
        with pytest.raises(ValueError):
            build_chain(sim, nodes, [HopSpec()], RngRegistry(0))

    def test_links_connect_consecutive_nodes(self):
        sim = Simulator()
        nodes = [SinkNode(sim, f"n{i}") for i in range(3)]
        links = build_chain(sim, nodes, [HopSpec(), HopSpec()], RngRegistry(0))
        assert len(links) == 2
        assert links[0].node_a is nodes[0] and links[0].node_b is nodes[1]
        assert links[1].node_a is nodes[1] and links[1].node_b is nodes[2]


class TestChainForwarder:
    def test_forwards_in_both_directions(self):
        sim = Simulator()
        left = SinkNode(sim, "left")
        mid = ChainForwarder(sim, "mid")
        right = SinkNode(sim, "right")
        links = build_chain(
            sim, [left, mid, right], uniform_chain_specs(2), RngRegistry(0)
        )
        wire_chain_forwarders([left, mid, right], links)
        links[0].ab.send(Packet(100))  # left -> right direction
        links[1].ba.send(Packet(100))  # right -> left direction
        sim.run()
        assert len(right.received) == 1
        assert len(left.received) == 1
        assert mid.packets_forwarded == 2

    def test_endpoint_forwarder_rejected(self):
        sim = Simulator()
        fwd = ChainForwarder(sim, "f")
        other = SinkNode(sim, "s")
        links = build_chain(sim, [fwd, other], uniform_chain_specs(1), RngRegistry(0))
        with pytest.raises(ValueError):
            wire_chain_forwarders([fwd, other], links)


class TestRouter:
    def test_routes_by_destination(self):
        sim = Simulator()
        router = Router(sim, "r")
        a, b = SinkNode(sim, "a"), SinkNode(sim, "b")
        from repro.netsim.link import Link

        la = Link(sim, a, name="to-a")
        lb = Link(sim, b, name="to-b")
        router.add_route("a", la)
        router.add_route("b", lb)
        router.receive(Packet(100, dst="b"), la)
        sim.run()
        assert len(b.received) == 1 and len(a.received) == 0

    def test_unrouted_counted(self):
        sim = Simulator()
        router = Router(sim, "r")
        router.receive(Packet(100, dst="nowhere"), None)
        assert router.packets_unrouted == 1


class TestDumbbell:
    def test_bidirectional_paths(self):
        sim = Simulator()
        rng = RngRegistry(0)
        s = [SinkNode(sim, f"s{i}") for i in range(2)]
        r = [SinkNode(sim, f"r{i}") for i in range(2)]
        bell = build_dumbbell(sim, s, r, rng, bottleneck=HopSpec(rate_bps=5e6))
        # Sender 0 -> receiver 0 via left router.
        bell.access_left[0].ab.send(Packet(100, src="s0", dst="r0"))
        # Receiver 1 -> sender 1 (reverse).
        bell.access_right[1].ba.send(Packet(100, src="r1", dst="s1"))
        sim.run()
        assert len(r[0].received) == 1
        assert len(s[1].received) == 1

    def test_flow_count_mismatch(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            build_dumbbell(
                sim, [SinkNode(sim, "s")], [], RngRegistry(0), HopSpec()
            )


class TestSwitchablePath:
    def build(self, sim, **kwargs):
        a, b = SinkNode(sim, "a"), SinkNode(sim, "b")
        path = SwitchablePath(
            sim, a, b, RngRegistry(0), delays_s=[0.040, 0.045], **kwargs
        )
        return a, b, path

    def test_active_path_carries_traffic(self):
        sim = Simulator()
        a, b, path = self.build(sim)
        path.ab.send(Packet(100))
        sim.run()
        assert len(b.received) == 1

    def test_switch_changes_delay(self):
        sim = Simulator()
        a, b, path = self.build(sim)
        assert path.ab.delay_s == 0.040
        path.switch()
        assert path.ab.delay_s == 0.045
        path.switch()
        assert path.ab.delay_s == 0.040
        assert path.switch_count == 2

    def test_switch_drops_stranded_packets(self):
        sim = Simulator()
        a, b, path = self.build(sim)
        path.ab.send(Packet(100))
        sim.run(until=0.01)  # in flight on path 0
        path.switch()
        sim.run()
        assert len(b.received) == 0

    def test_old_path_is_down_after_switch(self):
        sim = Simulator()
        a, b, path = self.build(sim)
        old = path.duplexes[0]
        path.switch()
        assert old.ab.up is False
        assert path.active_duplex.ab.up is True

    def test_reply_link_follows_active_path(self):
        sim = Simulator()
        a, b, path = self.build(sim)
        assert path.ab.reply_link is path.ba

    def test_needs_two_paths(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            SwitchablePath(
                sim, SinkNode(sim, "a"), SinkNode(sim, "b"),
                RngRegistry(0), delays_s=[0.04],
            )

    def test_link_towards(self):
        sim = Simulator()
        a, b, path = self.build(sim)
        assert path.link_towards(b) is path.ab
        assert path.link_towards(a) is path.ba


class TestSwitchBlackout:
    def test_new_path_down_during_blackout(self):
        sim = Simulator()
        a, b = SinkNode(sim, "a"), SinkNode(sim, "b")
        path = SwitchablePath(
            sim, a, b, RngRegistry(0), delays_s=[0.04, 0.045], blackout_s=0.1
        )
        path.switch()
        assert path.active_duplex.ab.up is False  # still in the blackout
        assert path.ab.send(Packet(100)) is False
        sim.run(until=0.2)
        assert path.active_duplex.ab.up is True
        assert path.ab.send(Packet(100)) is True

    def test_zero_blackout_is_instantaneous(self):
        sim = Simulator()
        a, b = SinkNode(sim, "a"), SinkNode(sim, "b")
        path = SwitchablePath(
            sim, a, b, RngRegistry(0), delays_s=[0.04, 0.045]
        )
        path.switch()
        assert path.active_duplex.ab.up is True
