"""Golden-band regression fence for the headline figures.

``benchmarks/golden.json`` pins the current tree's deterministic fig02
and fig10 summary rows inside per-figure tolerance bands (the
``band_pct`` field; fig10 is tightened to ±6 % now that its numbers
are attributed — see below).  Experiments are seeded and
single-threaded, so an in-band-but-moved value means a benign numeric
refactor and an out-of-band value means the *model* changed — which is
either a bug or a deliberate change that must regenerate the bands::

    PYTHONPATH=src python tests/test_golden.py   # rewrites golden.json

Note the bands encode *tree* behaviour, not the paper's targets.  The
fig10 LEOTP recovery cost (tree 276–346 ms vs the paper-style
82–116 ms at scale 0.5) is fully attributed to the responder-side
re-serve suppression window (``responder_retx_suppress_s``): with the
suppressor disabled the tree measures 77–116 ms, squarely in the old
range, and the TR-backoff clamp has no effect either way.  The
suppression is a deliberate trade (per-copy repair latency for storm
damping — see EXPERIMENTS.md), so these bands pin the suppressed
behaviour on purpose.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments import ALL_EXPERIMENTS

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "..", "benchmarks", "golden.json"
)

with open(GOLDEN_PATH) as fh:
    GOLDEN = json.load(fh)


@pytest.mark.parametrize("figure", sorted(GOLDEN["figures"]))
def test_figure_rows_inside_golden_bands(figure):
    spec = GOLDEN["figures"][figure]
    result = ALL_EXPERIMENTS[figure](
        scale=GOLDEN["scale"], seed=GOLDEN["seed"]
    )
    seen = {}
    for row in result.rows:
        label = "/".join(str(row[k]) for k in spec["key"])
        seen[label] = row[spec["metric"]]

    assert set(seen) == set(spec["bands"]), (
        f"{figure}: row set changed — regenerate benchmarks/golden.json "
        f"if deliberate"
    )
    out_of_band = {
        label: (value, spec["bands"][label])
        for label, value in seen.items()
        if not spec["bands"][label][0] <= value <= spec["bands"][label][1]
    }
    assert not out_of_band, (
        f"{figure} {spec['metric']} drifted outside golden bands "
        f"(value, [lo, hi]): {out_of_band}"
    )


def _regenerate() -> None:
    """Rebuild every band as current-value ± its ``band_pct`` (same
    scale/seed/keys; ``band_pct`` defaults to 10)."""
    for figure, spec in GOLDEN["figures"].items():
        result = ALL_EXPERIMENTS[figure](
            scale=GOLDEN["scale"], seed=GOLDEN["seed"]
        )
        frac = spec.get("band_pct", 10) / 100.0
        spec["bands"] = {
            "/".join(str(row[k]) for k in spec["key"]): [
                round(row[spec["metric"]] * (1 - frac), 3),
                round(row[spec["metric"]] * (1 + frac), 3),
            ]
            for row in result.rows
        }
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(GOLDEN, fh, indent=2)
        fh.write("\n")
    print(f"regenerated {GOLDEN_PATH}")


if __name__ == "__main__":
    _regenerate()
