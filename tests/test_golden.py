"""Golden-band regression fence for the headline figures.

``benchmarks/golden.json`` pins the current tree's deterministic fig02
and fig10 summary rows inside ±10 % tolerance bands.  Experiments are
seeded and single-threaded, so an in-band-but-moved value means a
benign numeric refactor and an out-of-band value means the *model*
changed — which is either a bug or a deliberate change that must
regenerate the bands::

    PYTHONPATH=src python tests/test_golden.py   # rewrites golden.json

Note the bands encode *tree* behaviour, not the paper's targets: the
fig10 LEOTP recovery-cost discrepancy (tree 276–346 ms vs paper
82–116 ms at scale 0.5) is an open ROADMAP.md item and is deliberately
inside these bands until it is resolved.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments import ALL_EXPERIMENTS

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "..", "benchmarks", "golden.json"
)

with open(GOLDEN_PATH) as fh:
    GOLDEN = json.load(fh)


@pytest.mark.parametrize("figure", sorted(GOLDEN["figures"]))
def test_figure_rows_inside_golden_bands(figure):
    spec = GOLDEN["figures"][figure]
    result = ALL_EXPERIMENTS[figure](
        scale=GOLDEN["scale"], seed=GOLDEN["seed"]
    )
    seen = {}
    for row in result.rows:
        label = "/".join(str(row[k]) for k in spec["key"])
        seen[label] = row[spec["metric"]]

    assert set(seen) == set(spec["bands"]), (
        f"{figure}: row set changed — regenerate benchmarks/golden.json "
        f"if deliberate"
    )
    out_of_band = {
        label: (value, spec["bands"][label])
        for label, value in seen.items()
        if not spec["bands"][label][0] <= value <= spec["bands"][label][1]
    }
    assert not out_of_band, (
        f"{figure} {spec['metric']} drifted outside golden bands "
        f"(value, [lo, hi]): {out_of_band}"
    )


def _regenerate() -> None:
    """Rebuild every band as current-value ±10 % (same scale/seed/keys)."""
    for figure, spec in GOLDEN["figures"].items():
        result = ALL_EXPERIMENTS[figure](
            scale=GOLDEN["scale"], seed=GOLDEN["seed"]
        )
        spec["bands"] = {
            "/".join(str(row[k]) for k in spec["key"]): [
                round(row[spec["metric"]] * 0.9, 3),
                round(row[spec["metric"]] * 1.1, 3),
            ]
            for row in result.rows
        }
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(GOLDEN, fh, indent=2)
        fh.write("\n")
    print(f"regenerated {GOLDEN_PATH}")


if __name__ == "__main__":
    _regenerate()
