"""Tests for links: serialisation, queueing, loss, flushing, duplexes."""

import pytest

from repro.netsim.bandwidth import SquareWaveBandwidth
from repro.netsim.link import DuplexLink, Link
from repro.netsim.node import SinkNode
from repro.netsim.packet import Packet
from repro.simcore import RngRegistry, Simulator


def make_link(sim, sink, **kwargs):
    defaults = dict(rate_bps=8e6, delay_s=0.01)
    defaults.update(kwargs)
    return Link(sim, sink, **defaults)


class TestPacket:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            Packet(0)

    def test_unique_uids(self):
        assert Packet(10).uid != Packet(10).uid


class TestLinkTiming:
    def test_delivery_time_is_serialisation_plus_propagation(self):
        sim = Simulator()
        sink = SinkNode(sim)
        link = make_link(sim, sink)  # 8 Mbps, 10 ms
        link.send(Packet(1000))  # 1000B at 8Mbps = 1 ms
        sim.run()
        assert sink.receive_times == [pytest.approx(0.011)]

    def test_back_to_back_packets_serialise_sequentially(self):
        sim = Simulator()
        sink = SinkNode(sim)
        link = make_link(sim, sink)
        link.send(Packet(1000))
        link.send(Packet(1000))
        sim.run()
        assert sink.receive_times == [pytest.approx(0.011), pytest.approx(0.012)]

    def test_rate_profile_affects_serialisation(self):
        sim = Simulator()
        sink = SinkNode(sim)
        # Square wave 8/4 Mbps-amplitude: first half-period is 12 Mbps.
        profile = SquareWaveBandwidth(8e6, 4e6, period_s=2.0)
        link = Link(sim, sink, delay_s=0.0, profile=profile)
        link.send(Packet(1500))  # 1500*8/12e6 = 1 ms
        sim.run()
        assert sink.receive_times == [pytest.approx(0.001)]

    def test_delay_change_applies_to_new_packets(self):
        sim = Simulator()
        sink = SinkNode(sim)
        link = make_link(sim, sink, delay_s=0.010)
        link.send(Packet(1000))
        sim.run()
        link.delay_s = 0.050
        link.send(Packet(1000))
        sim.run()
        # Second send starts at t=0.011 (after the first delivery), takes
        # 1 ms serialisation + 50 ms propagation -> arrives at 0.062.
        assert sink.receive_times[1] - sink.receive_times[0] == pytest.approx(0.051)


class TestLinkQueueing:
    def test_queue_overflow_drops(self):
        sim = Simulator()
        sink = SinkNode(sim)
        link = make_link(sim, sink, queue_bytes=2000)
        for _ in range(5):
            link.send(Packet(1000))
        sim.run()
        # 1 in transmission + 2 queued; 2 dropped.
        assert len(sink.received) == 3
        assert link.stats.packets_dropped_queue == 2

    def test_unbounded_queue(self):
        sim = Simulator()
        sink = SinkNode(sim)
        link = make_link(sim, sink, queue_bytes=None)
        for _ in range(50):
            link.send(Packet(1000))
        sim.run()
        assert len(sink.received) == 50

    def test_queued_bytes_tracking(self):
        sim = Simulator()
        sink = SinkNode(sim)
        link = make_link(sim, sink)
        link.send(Packet(1000))
        link.send(Packet(500))
        assert link.queued_bytes == 500  # first is in transmission
        assert link.queued_packets == 1
        sim.run()
        assert link.queued_bytes == 0

    def test_flush_drops_queue(self):
        sim = Simulator()
        sink = SinkNode(sim)
        link = make_link(sim, sink)
        for _ in range(4):
            link.send(Packet(1000))
        dropped = link.flush()
        assert dropped == 3  # in-transmission packet survives
        sim.run()
        assert len(sink.received) == 1
        assert link.stats.packets_dropped_flush == 3

    def test_flush_with_inflight(self):
        sim = Simulator()
        sink = SinkNode(sim)
        link = make_link(sim, sink)
        link.send(Packet(1000))
        sim.run(until=0.005)  # serialised (1ms), now propagating
        link.flush(drop_inflight=True)
        sim.run()
        assert sink.received == []

    def test_down_link_blackholes(self):
        sim = Simulator()
        sink = SinkNode(sim)
        link = make_link(sim, sink)
        link.up = False
        assert link.send(Packet(1000)) is False
        sim.run()
        assert sink.received == []


class TestLinkLoss:
    def test_zero_plr_delivers_everything(self):
        sim = Simulator()
        sink = SinkNode(sim)
        link = make_link(sim, sink)
        for _ in range(200):
            link.send(Packet(100))
        sim.run()
        assert len(sink.received) == 200

    def test_loss_rate_statistics(self):
        sim = Simulator()
        rng = RngRegistry(3)
        sink = SinkNode(sim)
        link = make_link(sim, sink, plr=0.2, rng=rng.stream("l"), queue_bytes=None)
        n = 5000
        for _ in range(n):
            link.send(Packet(100))
        sim.run()
        observed = link.stats.packets_dropped_loss / n
        assert 0.17 < observed < 0.23

    def test_plr_requires_rng(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, SinkNode(sim), plr=0.1)

    def test_plr_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, SinkNode(sim), plr=1.0, rng=RngRegistry(0).stream("x"))


class TestLinkStats:
    def test_byte_accounting(self):
        sim = Simulator()
        sink = SinkNode(sim)
        link = make_link(sim, sink)
        link.send(Packet(1000))
        link.send(Packet(500))
        sim.run()
        assert link.stats.bytes_offered == 1500
        assert link.stats.bytes_delivered == 1500
        assert link.stats.packets_delivered == 2

    def test_utilisation(self):
        sim = Simulator()
        sink = SinkNode(sim)
        link = make_link(sim, sink, rate_bps=8e6, delay_s=0.0)
        link.send(Packet(1000))  # 1 ms busy
        sim.run(until=0.01)
        assert link.stats.utilisation(0.01) == pytest.approx(0.1)


class TestDuplexLink:
    def test_both_directions_work(self):
        sim = Simulator()
        a, b = SinkNode(sim, "a"), SinkNode(sim, "b")
        duplex = DuplexLink(sim, a, b, rate_bps=8e6, delay_s=0.01)
        duplex.ab.send(Packet(100))
        duplex.ba.send(Packet(100))
        sim.run()
        assert len(a.received) == 1 and len(b.received) == 1

    def test_reply_link_wiring(self):
        sim = Simulator()
        a, b = SinkNode(sim, "a"), SinkNode(sim, "b")
        duplex = DuplexLink(sim, a, b)
        assert duplex.ab.reply_link is duplex.ba
        assert duplex.ba.reply_link is duplex.ab

    def test_link_towards(self):
        sim = Simulator()
        a, b = SinkNode(sim, "a"), SinkNode(sim, "b")
        duplex = DuplexLink(sim, a, b)
        assert duplex.link_towards(b) is duplex.ab
        assert duplex.link_towards(a) is duplex.ba
        with pytest.raises(ValueError):
            duplex.link_towards(SinkNode(sim, "c"))

    def test_set_delay_updates_both(self):
        sim = Simulator()
        duplex = DuplexLink(sim, SinkNode(sim, "a"), SinkNode(sim, "b"))
        duplex.set_delay(0.123)
        assert duplex.ab.delay_s == 0.123
        assert duplex.ba.delay_s == 0.123


class TestDelayShrinkReorder:
    """Regression: a shrinking delay_s reorders packets already in flight.

    This is the LEO handover phenomenon — after a path switch the new
    satellite is closer, so packets launched later arrive earlier.  The
    link deliberately models each packet's propagation independently; the
    protocol layers (SHR disorder thresholds, duplicate absorption) are
    what must tolerate the resulting reordering.
    """

    def test_shrinking_delay_reorders_in_flight(self):
        sim = Simulator()
        sink = SinkNode(sim)
        link = make_link(sim, sink, delay_s=0.05)
        first, second = Packet(1000), Packet(1000)
        link.send(first)  # serialises in 1 ms, arrives at 0.051

        def shrink_and_send():
            link.delay_s = 0.001
            link.send(second)  # arrives at ~0.004, overtaking `first`

        sim.schedule_at(0.002, shrink_and_send)
        sim.run()
        assert [p.uid for p in sink.received] == [second.uid, first.uid]
        assert sink.receive_times == sorted(sink.receive_times)

    def test_growing_delay_preserves_order(self):
        sim = Simulator()
        sink = SinkNode(sim)
        link = make_link(sim, sink, delay_s=0.001)
        first, second = Packet(1000), Packet(1000)
        link.send(first)

        def grow_and_send():
            link.delay_s = 0.05
            link.send(second)

        sim.schedule_at(0.002, grow_and_send)
        sim.run()
        assert [p.uid for p in sink.received] == [first.uid, second.uid]


class TestNodeHandler:
    def test_set_handler_overrides_dispatch(self):
        from repro.netsim.node import Node

        sim = Simulator()
        node = Node(sim, "n")
        seen = []
        node.set_handler(lambda pkt, link: seen.append(pkt.uid))
        link = make_link(sim, node)
        link.send(Packet(100))
        sim.run()
        assert len(seen) == 1
        assert node.packets_received == 1

    def test_node_without_handler_raises(self):
        from repro.netsim.node import Node

        sim = Simulator()
        node = Node(sim, "n")
        link = make_link(sim, node)
        link.send(Packet(100))
        with pytest.raises(NotImplementedError):
            sim.run()
