"""Unit tests for the congestion-control algorithms."""

import pytest

from repro.tcp.cc import (
    CC_REGISTRY,
    BbrCC,
    CubicCC,
    HyblaCC,
    PccVivaceCC,
    RenoCC,
    VegasCC,
    WestwoodCC,
    make_cc,
)
from repro.tcp.cc.bbr import DRAIN, PROBE_BW, STARTUP

MSS = 1400


class TestRegistry:
    def test_all_names_resolve(self):
        for name in CC_REGISTRY:
            cc = make_cc(name)
            assert cc.cwnd_bytes > 0

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_cc("quic")


class TestReno:
    def test_slow_start_doubles_per_window(self):
        cc = RenoCC(MSS)
        start = cc.cwnd_bytes
        cc.on_ack(0.1, int(start), 0.05, 0)
        assert cc.cwnd_bytes == pytest.approx(2 * start)

    def test_congestion_avoidance_linear(self):
        cc = RenoCC(MSS)
        cc.on_fast_retransmit(0.0)  # sets ssthresh = cwnd/2 and exits SS
        cwnd = cc.cwnd_bytes
        cc.on_ack(0.1, int(cwnd), 0.05, 0)
        assert cc.cwnd_bytes == pytest.approx(cwnd + MSS)

    def test_fast_retransmit_halves(self):
        cc = RenoCC(MSS)
        cwnd = cc.cwnd_bytes
        cc.on_fast_retransmit(0.0)
        assert cc.cwnd_bytes == pytest.approx(cwnd / 2)

    def test_rto_collapses_to_one_mss(self):
        cc = RenoCC(MSS)
        cc.on_rto(0.0)
        assert cc.cwnd_bytes == MSS

    def test_no_growth_in_recovery(self):
        cc = RenoCC(MSS)
        cwnd = cc.cwnd_bytes
        cc.on_ack(0.1, MSS, 0.05, 0, in_recovery=True)
        assert cc.cwnd_bytes == cwnd


class TestCubic:
    def test_window_grows_after_loss_epoch(self):
        cc = CubicCC(MSS)
        cc.on_fast_retransmit(0.0)
        w0 = cc.cwnd_bytes
        t = 0.0
        for _ in range(200):
            t += 0.01
            cc.on_ack(t, MSS, 0.05, 0)
        assert cc.cwnd_bytes > w0

    def test_beta_decrease(self):
        cc = CubicCC(MSS)
        cc._cwnd = 100.0
        cc._ssthresh = 50.0
        cc.on_fast_retransmit(1.0)
        assert cc.cwnd_bytes == pytest.approx(70.0 * MSS)

    def test_rto_resets_to_one(self):
        cc = CubicCC(MSS)
        cc.on_rto(0.0)
        assert cc.cwnd_bytes == MSS

    def test_recovers_toward_w_max(self):
        """Cubic plateaus near the pre-loss window (its defining shape)."""
        cc = CubicCC(MSS)
        cc._cwnd = 100.0
        cc._ssthresh = 100.0  # not in slow start
        cc.on_fast_retransmit(0.0)
        t = 0.0
        for _ in range(2000):
            t += 0.005
            cc.on_ack(t, MSS, 0.05, 0)
            if cc._cwnd >= 99.0:
                break
        assert 90.0 <= cc._cwnd <= 130.0


class TestHybla:
    def test_rho_uses_min_rtt(self):
        cc = HyblaCC(MSS)
        cc.on_ack(0.1, MSS, 0.5, 0)  # rtt 500 ms -> rho 20 capped at 8
        assert cc.rho == pytest.approx(8.0)
        cc.on_ack(0.2, MSS, 0.05, 0)  # min now 50 ms -> rho 2
        assert cc.rho == pytest.approx(2.0)
        cc.on_ack(0.3, MSS, 0.5, 0)  # inflated sample must not raise rho
        assert cc.rho == pytest.approx(2.0)

    def test_faster_growth_with_higher_rho(self):
        slow, fast = HyblaCC(MSS), HyblaCC(MSS)
        slow.on_ack(0.1, MSS, 0.025, 0)   # rho = 1
        fast.on_ack(0.1, MSS, 0.1, 0)     # rho = 4
        assert fast.cwnd_bytes > slow.cwnd_bytes

    def test_loss_response(self):
        cc = HyblaCC(MSS)
        cwnd = cc.cwnd_bytes
        cc.on_fast_retransmit(0.0)
        assert cc.cwnd_bytes == pytest.approx(cwnd / 2)


class TestWestwood:
    def test_bandwidth_estimate_converges(self):
        cc = WestwoodCC(MSS)
        t = 0.0
        for _ in range(300):
            t += 0.01
            cc.on_ack(t, 12_500, 0.05, 0)  # 10 Mbps of ACKed data
        assert cc.bandwidth_estimate_bps == pytest.approx(10e6, rel=0.05)

    def test_loss_sets_ssthresh_to_bdp(self):
        cc = WestwoodCC(MSS)
        t = 0.0
        for _ in range(300):
            t += 0.01
            cc.on_ack(t, 12_500, 0.05, 0)
        cc.on_fast_retransmit(t)
        expected_bdp = 10e6 * 0.05 / 8
        assert cc.cwnd_bytes <= expected_bdp * 1.2

    def test_rto_resets_window(self):
        cc = WestwoodCC(MSS)
        cc.on_rto(0.0)
        assert cc.cwnd_bytes == MSS


class TestVegas:
    def test_grows_when_queue_small(self):
        cc = VegasCC(MSS)
        cc._in_slow_start = False
        w0 = cc.cwnd_bytes
        cc.on_ack(0.1, MSS, 0.050, 0)  # establishes base
        cc.on_ack(0.2, MSS, 0.0501, 0)  # nearly no queue
        assert cc.cwnd_bytes > w0

    def test_shrinks_when_queue_large(self):
        cc = VegasCC(MSS)
        cc._in_slow_start = False
        cc._base_rtt = 0.05
        cc._cwnd = 50.0
        w0 = cc.cwnd_bytes
        cc.on_ack(0.1, MSS, 0.1, 0)  # rtt doubled: big queue
        assert cc.cwnd_bytes < w0

    def test_slow_start_exits_on_queue(self):
        cc = VegasCC(MSS)
        cc._base_rtt = 0.05
        cc._cwnd = 20.0
        cc.on_ack(0.1, MSS, 0.08, 0)  # diff > gamma
        assert not cc.in_slow_start


class TestBbr:
    def feed(self, cc, rate_bps, rtt, n=100, t0=0.0, dt=0.01):
        t = t0
        for _ in range(n):
            t += dt
            acked = int(rate_bps * dt / 8)
            cc.on_ack(t, acked, rtt, int(rate_bps * rtt / 8), rate_sample_bps=rate_bps)
        return t

    def test_startup_to_drain_to_probe_bw(self):
        cc = BbrCC(MSS)
        assert cc.state == STARTUP
        # Constant-rate samples: full-pipe detector should fire.
        t = self.feed(cc, 10e6, 0.05, n=50)
        assert cc.state in (DRAIN, PROBE_BW)
        self.feed(cc, 10e6, 0.05, n=100, t0=t)
        assert cc.state == PROBE_BW

    def test_btl_bw_tracks_max(self):
        cc = BbrCC(MSS)
        self.feed(cc, 10e6, 0.05, n=50)
        assert cc.btl_bw_bps == pytest.approx(10e6, rel=0.01)

    def test_rt_prop_tracks_min(self):
        cc = BbrCC(MSS)
        self.feed(cc, 10e6, 0.05, n=10)
        cc.on_ack(1.0, 1000, 0.04, 0, rate_sample_bps=10e6)
        assert cc.rt_prop_s == pytest.approx(0.04)

    def test_pacing_rate_positive_before_estimates(self):
        cc = BbrCC(MSS)
        assert cc.pacing_rate_bps(0.0) > 0

    def test_cwnd_is_two_bdp_in_probe_bw(self):
        cc = BbrCC(MSS)
        t = self.feed(cc, 10e6, 0.05, n=200)
        bdp = 10e6 * cc.rt_prop_s / 8
        assert cc.cwnd_bytes == pytest.approx(2 * bdp, rel=0.3)

    def test_loss_does_not_collapse_window(self):
        cc = BbrCC(MSS)
        self.feed(cc, 10e6, 0.05, n=100)
        w0 = cc.cwnd_bytes
        cc.on_fast_retransmit(2.0)
        assert cc.cwnd_bytes == w0


class TestPcc:
    def run_clean_link(self, seconds=20.0, capacity_bps=50e6, rtt=0.05):
        """Feed PCC loss-free feedback at its own rate, delayed by one RTT
        (PCC's MI attribution assumes ACKs lag transmission by ~1 RTT)."""
        from collections import deque

        cc = PccVivaceCC(MSS, initial_rate_bps=2e6)
        t, dt = 0.0, 0.01
        pipeline = deque()
        while t < seconds:
            t += dt
            rate = min(cc.pacing_rate_bps(t), capacity_bps)
            pipeline.append((t + rtt, int(rate * dt / 8)))
            while pipeline and pipeline[0][0] <= t:
                _, nbytes = pipeline.popleft()
                cc.on_ack(t, nbytes, rtt, 0)
        return cc

    def test_rate_climbs_on_clean_link(self):
        cc = self.run_clean_link()
        assert cc.rate_bps > 8e6  # grew at least 4x from 2 Mbps

    def test_loss_penalty_reduces_utility(self):
        cc = PccVivaceCC(MSS)
        clean = cc._utility(10e6, 0.0, 0.0)
        lossy = cc._utility(10e6, 0.1, 0.0)
        assert lossy < clean

    def test_latency_gradient_penalty(self):
        cc = PccVivaceCC(MSS)
        flat = cc._utility(10e6, 0.0, 0.0)
        inflating = cc._utility(10e6, 0.0, 0.5)
        assert inflating < flat

    def test_small_gradient_tolerated(self):
        cc = PccVivaceCC(MSS)
        assert cc._utility(10e6, 0.0, 0.01) == pytest.approx(
            cc._utility(10e6, 0.0, 0.0)
        )

    def test_rto_backs_off_rate(self):
        cc = PccVivaceCC(MSS, initial_rate_bps=10e6)
        cc.on_rto(1.0)
        assert cc.rate_bps == pytest.approx(7e6)

    def test_rate_floor(self):
        cc = PccVivaceCC(MSS, initial_rate_bps=0.3e6)
        for _ in range(50):
            cc.on_rto(1.0)
        assert cc.rate_bps == pytest.approx(cc.MIN_RATE_BPS)


class TestCCSpec:
    def test_coercion_and_case(self):
        from repro.tcp.cc import CCSpec, as_cc_spec

        spec = as_cc_spec("BBR")
        assert spec == CCSpec("bbr")
        assert as_cc_spec(spec) is spec

    def test_params_frozen_sorted(self):
        from repro.tcp.cc import CCSpec

        a = CCSpec("orbcc", {"probe_s": 0.5, "hold_s": 0.1})
        b = CCSpec("orbcc", {"hold_s": 0.1, "probe_s": 0.5})
        assert a == b and hash(a) == hash(b)
        assert a.params == (("hold_s", 0.1), ("probe_s", 0.5))
        assert a.params_dict == {"hold_s": 0.1, "probe_s": 0.5}

    def test_label(self):
        from repro.tcp.cc import CCSpec

        assert CCSpec("bbr").label() == "bbr"
        assert CCSpec("orbcc", {"probe_gain": 2.5}).label() == \
            "orbcc(probe_gain=2.5)"

    def test_duplicate_param_rejected(self):
        from repro.tcp.cc import CCSpec

        with pytest.raises(ValueError):
            CCSpec("orbcc", (("k", 1), ("k", 2)))

    def test_empty_name_rejected(self):
        from repro.tcp.cc import CCSpec

        with pytest.raises(ValueError):
            CCSpec("")

    def test_pickle_round_trip(self):
        import pickle

        from repro.tcp.cc import CCSpec

        spec = CCSpec("orbcc", {"probe_gain": 2.5, "hold_s": 0.1})
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.params_dict == spec.params_dict

    def test_parse_cc_params_types(self):
        from repro.tcp.cc import parse_cc_params

        params = parse_cc_params(
            ["a=1", "b=2.5", "c=true", "d=False", "e=text"]
        )
        assert params == {
            "a": 1, "b": 2.5, "c": True, "d": False, "e": "text"
        }
        assert isinstance(params["a"], int)

    def test_parse_cc_params_rejects_bare_word(self):
        from repro.tcp.cc import parse_cc_params

        with pytest.raises(ValueError):
            parse_cc_params(["noequals"])


class TestMakeCCParams:
    def test_params_forwarded(self):
        from repro.tcp.cc import CCSpec

        cc = make_cc(CCSpec("orbcc", {"probe_gain": 2.5, "hold_s": 0.2}))
        assert cc.probe_gain == 2.5
        assert cc.hold_s == 0.2

    def test_bad_param_is_value_error(self):
        from repro.tcp.cc import CCSpec

        with pytest.raises(ValueError, match="orbcc"):
            make_cc(CCSpec("orbcc", {"no_such_knob": 1}))

    def test_unknown_name_lists_registry(self):
        with pytest.raises(ValueError) as err:
            make_cc("quic")
        for name in sorted(CC_REGISTRY):
            assert name in str(err.value)


class TestRegisterCC:
    def test_duplicate_rejected(self):
        from repro.tcp.cc import register_cc

        with pytest.raises(ValueError, match="already registered"):

            @register_cc("reno")
            class Impostor:  # pragma: no cover - never registered
                pass

    def test_reserved_rejected(self):
        from repro.tcp.cc import register_cc

        with pytest.raises(ValueError, match="reserved"):
            register_cc("leotp")

    def test_invalid_name_rejected(self):
        from repro.tcp.cc import register_cc

        with pytest.raises(ValueError):
            register_cc("bad name!")

    def test_third_party_registration(self):
        from repro.tcp.cc import register_cc

        @register_cc("testonly_cc")
        class TestOnlyCC(RenoCC):
            name = "testonly_cc"

        try:
            cc = make_cc("testonly_cc")
            assert isinstance(cc, TestOnlyCC)
        finally:
            del CC_REGISTRY["testonly_cc"]


def _feed_orbcc(cc, now, bw_bps=8e6, rtt=0.05, n=20, dt=0.05):
    for _ in range(n):
        now += dt
        cc.on_ack(now, 14_000, rtt, 10_000, rate_sample_bps=bw_bps)
    return now


class TestOrbCC:
    def make(self, **kw):
        from repro.tcp.cc import OrbCC

        return OrbCC(MSS, **kw)

    def test_declares_churn_contract(self):
        cc = self.make(hold_s=0.1)
        assert cc.churn_rearm_rto is True
        assert cc.churn_retx_delay_s == pytest.approx(0.15)

    def test_blind_rate_before_estimates(self):
        cc = self.make(blind_rate_bps=2e6)
        assert cc.pacing_rate_bps(0.0) == pytest.approx(2e6)

    def test_startup_fills_then_cruises(self):
        from repro.tcp.cc.orbcc import CRUISE, STARTUP

        cc = self.make()
        assert cc.state == STARTUP
        _feed_orbcc(cc, 0.0)
        assert cc.state == CRUISE
        assert cc.btl_bw_bps == pytest.approx(8e6)
        assert cc.rt_prop_s == pytest.approx(0.05)

    def test_churn_reset_drops_model_keeps_floor(self):
        cc = self.make(carryover=0.85)
        now = _feed_orbcc(cc, 0.0)
        cc.on_churn(now, "PathSwitch")
        assert cc.churn_resets == 1
        # Raw filter cleared; discounted carry-over keeps pacing alive.
        assert cc._btl_bw == 0.0
        assert cc.btl_bw_bps == pytest.approx(0.85 * 8e6)
        # RTprop survives as a working guess.
        assert cc.rt_prop_s == pytest.approx(0.05)

    def test_non_reset_kinds_ignored(self):
        cc = self.make()
        now = _feed_orbcc(cc, 0.0)
        cc.on_churn(now, "RouteLost")
        assert cc.churn_resets == 0
        assert cc.btl_bw_bps == pytest.approx(8e6)

    def test_hold_then_probe_then_drain(self):
        from repro.tcp.cc.orbcc import (
            DRAIN,
            HOLD_HANDOVER,
            PROBE_HANDOVER,
        )

        cc = self.make(hold_s=0.1, probe_s=0.4, probe_gain=2.0)
        now = _feed_orbcc(cc, 0.0)
        cc.on_churn(now, "GsReattach")
        hold_rate = cc.pacing_rate_bps(now + 0.05)
        assert cc.state == HOLD_HANDOVER
        probe_rate = cc.pacing_rate_bps(now + 0.2)
        assert cc.state == PROBE_HANDOVER
        assert probe_rate > hold_rate
        # Past the probe window the burst drains (BBR-style).
        cc.pacing_rate_bps(now + 0.6)
        assert cc.state == DRAIN
        drain_rate = cc.pacing_rate_bps(now + 0.6)
        assert drain_rate < probe_rate

    def test_probe_cwnd_at_least_probe_gain_bdp(self):
        cc = self.make(hold_s=0.0, probe_s=0.5, probe_gain=3.0)
        now = _feed_orbcc(cc, 0.0)
        cc.on_churn(now, "PathSwitch")
        cc.pacing_rate_bps(now + 0.01)  # in PROBE_HANDOVER
        bdp = cc.btl_bw_bps * cc.rt_prop_s / 8.0
        assert cc.cwnd_bytes >= 3.0 * bdp * 0.99

    def test_stale_floor_decays(self):
        cc = self.make(hold_s=0.05, probe_s=0.1, carryover=1.0)
        now = _feed_orbcc(cc, 0.0)
        cc.on_churn(now, "PathSwitch")
        floor_at_churn = cc.btl_bw_bps
        # Ride past hold+probe with ACKs that carry no usable rate
        # sample (delivery stalled): the floor must fade, not persist.
        t = now + 0.2
        for _ in range(12):
            t += 0.05
            cc.on_ack(t, 1400, 0.05, 1400, rate_sample_bps=None)
        assert cc.btl_bw_bps < floor_at_churn * 0.6

    def test_fresh_samples_supersede_floor(self):
        cc = self.make(hold_s=0.0, probe_s=0.1)
        now = _feed_orbcc(cc, 0.0, bw_bps=8e6)
        cc.on_churn(now, "PathSwitch")
        now = _feed_orbcc(cc, now + 0.2, bw_bps=12e6, n=10)
        assert cc.btl_bw_bps == pytest.approx(12e6)

    def test_validation(self):
        from repro.tcp.cc import OrbCC

        with pytest.raises(ValueError):
            OrbCC(MSS, probe_gain=0.5)
        with pytest.raises(ValueError):
            OrbCC(MSS, carryover=1.5)
        with pytest.raises(ValueError):
            OrbCC(MSS, hold_s=-0.1)
        with pytest.raises(ValueError):
            OrbCC(MSS, blind_rate_bps=0)

    def test_rto_does_not_collapse_rate(self):
        cc = self.make()
        now = _feed_orbcc(cc, 0.0)
        rate_before = cc.pacing_rate_bps(now)
        cc.on_rto(now)
        assert cc.pacing_rate_bps(now) == pytest.approx(rate_before)


class TestAdaptive:
    def make(self, **kw):
        from repro.tcp.cc import AdaptiveCC

        return AdaptiveCC(MSS, **kw)

    def feed(self, cc, now, n=40, rtt=0.05, dt=0.05, loss_every=0):
        for i in range(n):
            now += dt
            if loss_every and i % loss_every == 0:
                cc.on_fast_retransmit(now)
            cc.on_ack(now, 14_000, rtt, 10_000)
        return now

    def test_warmup_grows_rate(self):
        cc = self.make(initial_rate_bps=1e6)
        self.feed(cc, 0.0, n=20)
        assert cc.rate_bps > 1e6

    def test_deterministic(self):
        a, b = self.make(), self.make()
        self.feed(a, 0.0, n=60, loss_every=7)
        self.feed(b, 0.0, n=60, loss_every=7)
        assert a.rate_bps == b.rate_bps
        assert a._scores == b._scores

    def test_loss_exits_warmup(self):
        cc = self.make()
        now = self.feed(cc, 0.0, n=5)
        cc.on_fast_retransmit(now)
        self.feed(cc, now, n=5)
        assert not cc._warmup

    def test_rto_halves_rate(self):
        cc = self.make(initial_rate_bps=4e6)
        cc.on_rto(1.0)
        assert cc.rate_bps == pytest.approx(2e6)
        assert not cc._warmup

    def test_churn_resets_learning(self):
        cc = self.make()
        now = self.feed(cc, 0.0, n=40, loss_every=9)
        assert not cc._warmup
        cc.on_churn(now, "PathSwitch")
        assert cc.churn_resets == 1
        assert cc._scores == [0.0, 0.0, 0.0]
        assert cc._warmup

    def test_non_reset_kind_ignored(self):
        cc = self.make()
        cc.on_churn(1.0, "RouteLost")
        assert cc.churn_resets == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            self.make(explore_every=1)


class TestChurnDefaults:
    def test_base_defaults(self):
        for name in CC_REGISTRY:
            cc = make_cc(name)
            if name in ("orbcc",):
                continue
            assert cc.churn_rearm_rto is False
            assert cc.churn_retx_delay_s is None

    def test_on_churn_noop_everywhere(self):
        # Every registered CC must tolerate churn signals (default no-op).
        for name in CC_REGISTRY:
            cc = make_cc(name)
            cc.on_churn(1.0, "PathSwitch")
            cc.on_churn(1.5, "RouteLost")
            assert cc.cwnd_bytes > 0
