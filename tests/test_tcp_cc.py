"""Unit tests for the congestion-control algorithms."""

import pytest

from repro.tcp.cc import (
    CC_REGISTRY,
    BbrCC,
    CubicCC,
    HyblaCC,
    PccVivaceCC,
    RenoCC,
    VegasCC,
    WestwoodCC,
    make_cc,
)
from repro.tcp.cc.bbr import DRAIN, PROBE_BW, STARTUP

MSS = 1400


class TestRegistry:
    def test_all_names_resolve(self):
        for name in CC_REGISTRY:
            cc = make_cc(name)
            assert cc.cwnd_bytes > 0

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_cc("quic")


class TestReno:
    def test_slow_start_doubles_per_window(self):
        cc = RenoCC(MSS)
        start = cc.cwnd_bytes
        cc.on_ack(0.1, int(start), 0.05, 0)
        assert cc.cwnd_bytes == pytest.approx(2 * start)

    def test_congestion_avoidance_linear(self):
        cc = RenoCC(MSS)
        cc.on_fast_retransmit(0.0)  # sets ssthresh = cwnd/2 and exits SS
        cwnd = cc.cwnd_bytes
        cc.on_ack(0.1, int(cwnd), 0.05, 0)
        assert cc.cwnd_bytes == pytest.approx(cwnd + MSS)

    def test_fast_retransmit_halves(self):
        cc = RenoCC(MSS)
        cwnd = cc.cwnd_bytes
        cc.on_fast_retransmit(0.0)
        assert cc.cwnd_bytes == pytest.approx(cwnd / 2)

    def test_rto_collapses_to_one_mss(self):
        cc = RenoCC(MSS)
        cc.on_rto(0.0)
        assert cc.cwnd_bytes == MSS

    def test_no_growth_in_recovery(self):
        cc = RenoCC(MSS)
        cwnd = cc.cwnd_bytes
        cc.on_ack(0.1, MSS, 0.05, 0, in_recovery=True)
        assert cc.cwnd_bytes == cwnd


class TestCubic:
    def test_window_grows_after_loss_epoch(self):
        cc = CubicCC(MSS)
        cc.on_fast_retransmit(0.0)
        w0 = cc.cwnd_bytes
        t = 0.0
        for _ in range(200):
            t += 0.01
            cc.on_ack(t, MSS, 0.05, 0)
        assert cc.cwnd_bytes > w0

    def test_beta_decrease(self):
        cc = CubicCC(MSS)
        cc._cwnd = 100.0
        cc._ssthresh = 50.0
        cc.on_fast_retransmit(1.0)
        assert cc.cwnd_bytes == pytest.approx(70.0 * MSS)

    def test_rto_resets_to_one(self):
        cc = CubicCC(MSS)
        cc.on_rto(0.0)
        assert cc.cwnd_bytes == MSS

    def test_recovers_toward_w_max(self):
        """Cubic plateaus near the pre-loss window (its defining shape)."""
        cc = CubicCC(MSS)
        cc._cwnd = 100.0
        cc._ssthresh = 100.0  # not in slow start
        cc.on_fast_retransmit(0.0)
        t = 0.0
        for _ in range(2000):
            t += 0.005
            cc.on_ack(t, MSS, 0.05, 0)
            if cc._cwnd >= 99.0:
                break
        assert 90.0 <= cc._cwnd <= 130.0


class TestHybla:
    def test_rho_uses_min_rtt(self):
        cc = HyblaCC(MSS)
        cc.on_ack(0.1, MSS, 0.5, 0)  # rtt 500 ms -> rho 20 capped at 8
        assert cc.rho == pytest.approx(8.0)
        cc.on_ack(0.2, MSS, 0.05, 0)  # min now 50 ms -> rho 2
        assert cc.rho == pytest.approx(2.0)
        cc.on_ack(0.3, MSS, 0.5, 0)  # inflated sample must not raise rho
        assert cc.rho == pytest.approx(2.0)

    def test_faster_growth_with_higher_rho(self):
        slow, fast = HyblaCC(MSS), HyblaCC(MSS)
        slow.on_ack(0.1, MSS, 0.025, 0)   # rho = 1
        fast.on_ack(0.1, MSS, 0.1, 0)     # rho = 4
        assert fast.cwnd_bytes > slow.cwnd_bytes

    def test_loss_response(self):
        cc = HyblaCC(MSS)
        cwnd = cc.cwnd_bytes
        cc.on_fast_retransmit(0.0)
        assert cc.cwnd_bytes == pytest.approx(cwnd / 2)


class TestWestwood:
    def test_bandwidth_estimate_converges(self):
        cc = WestwoodCC(MSS)
        t = 0.0
        for _ in range(300):
            t += 0.01
            cc.on_ack(t, 12_500, 0.05, 0)  # 10 Mbps of ACKed data
        assert cc.bandwidth_estimate_bps == pytest.approx(10e6, rel=0.05)

    def test_loss_sets_ssthresh_to_bdp(self):
        cc = WestwoodCC(MSS)
        t = 0.0
        for _ in range(300):
            t += 0.01
            cc.on_ack(t, 12_500, 0.05, 0)
        cc.on_fast_retransmit(t)
        expected_bdp = 10e6 * 0.05 / 8
        assert cc.cwnd_bytes <= expected_bdp * 1.2

    def test_rto_resets_window(self):
        cc = WestwoodCC(MSS)
        cc.on_rto(0.0)
        assert cc.cwnd_bytes == MSS


class TestVegas:
    def test_grows_when_queue_small(self):
        cc = VegasCC(MSS)
        cc._in_slow_start = False
        w0 = cc.cwnd_bytes
        cc.on_ack(0.1, MSS, 0.050, 0)  # establishes base
        cc.on_ack(0.2, MSS, 0.0501, 0)  # nearly no queue
        assert cc.cwnd_bytes > w0

    def test_shrinks_when_queue_large(self):
        cc = VegasCC(MSS)
        cc._in_slow_start = False
        cc._base_rtt = 0.05
        cc._cwnd = 50.0
        w0 = cc.cwnd_bytes
        cc.on_ack(0.1, MSS, 0.1, 0)  # rtt doubled: big queue
        assert cc.cwnd_bytes < w0

    def test_slow_start_exits_on_queue(self):
        cc = VegasCC(MSS)
        cc._base_rtt = 0.05
        cc._cwnd = 20.0
        cc.on_ack(0.1, MSS, 0.08, 0)  # diff > gamma
        assert not cc.in_slow_start


class TestBbr:
    def feed(self, cc, rate_bps, rtt, n=100, t0=0.0, dt=0.01):
        t = t0
        for _ in range(n):
            t += dt
            acked = int(rate_bps * dt / 8)
            cc.on_ack(t, acked, rtt, int(rate_bps * rtt / 8), rate_sample_bps=rate_bps)
        return t

    def test_startup_to_drain_to_probe_bw(self):
        cc = BbrCC(MSS)
        assert cc.state == STARTUP
        # Constant-rate samples: full-pipe detector should fire.
        t = self.feed(cc, 10e6, 0.05, n=50)
        assert cc.state in (DRAIN, PROBE_BW)
        self.feed(cc, 10e6, 0.05, n=100, t0=t)
        assert cc.state == PROBE_BW

    def test_btl_bw_tracks_max(self):
        cc = BbrCC(MSS)
        self.feed(cc, 10e6, 0.05, n=50)
        assert cc.btl_bw_bps == pytest.approx(10e6, rel=0.01)

    def test_rt_prop_tracks_min(self):
        cc = BbrCC(MSS)
        self.feed(cc, 10e6, 0.05, n=10)
        cc.on_ack(1.0, 1000, 0.04, 0, rate_sample_bps=10e6)
        assert cc.rt_prop_s == pytest.approx(0.04)

    def test_pacing_rate_positive_before_estimates(self):
        cc = BbrCC(MSS)
        assert cc.pacing_rate_bps(0.0) > 0

    def test_cwnd_is_two_bdp_in_probe_bw(self):
        cc = BbrCC(MSS)
        t = self.feed(cc, 10e6, 0.05, n=200)
        bdp = 10e6 * cc.rt_prop_s / 8
        assert cc.cwnd_bytes == pytest.approx(2 * bdp, rel=0.3)

    def test_loss_does_not_collapse_window(self):
        cc = BbrCC(MSS)
        self.feed(cc, 10e6, 0.05, n=100)
        w0 = cc.cwnd_bytes
        cc.on_fast_retransmit(2.0)
        assert cc.cwnd_bytes == w0


class TestPcc:
    def run_clean_link(self, seconds=20.0, capacity_bps=50e6, rtt=0.05):
        """Feed PCC loss-free feedback at its own rate, delayed by one RTT
        (PCC's MI attribution assumes ACKs lag transmission by ~1 RTT)."""
        from collections import deque

        cc = PccVivaceCC(MSS, initial_rate_bps=2e6)
        t, dt = 0.0, 0.01
        pipeline = deque()
        while t < seconds:
            t += dt
            rate = min(cc.pacing_rate_bps(t), capacity_bps)
            pipeline.append((t + rtt, int(rate * dt / 8)))
            while pipeline and pipeline[0][0] <= t:
                _, nbytes = pipeline.popleft()
                cc.on_ack(t, nbytes, rtt, 0)
        return cc

    def test_rate_climbs_on_clean_link(self):
        cc = self.run_clean_link()
        assert cc.rate_bps > 8e6  # grew at least 4x from 2 Mbps

    def test_loss_penalty_reduces_utility(self):
        cc = PccVivaceCC(MSS)
        clean = cc._utility(10e6, 0.0, 0.0)
        lossy = cc._utility(10e6, 0.1, 0.0)
        assert lossy < clean

    def test_latency_gradient_penalty(self):
        cc = PccVivaceCC(MSS)
        flat = cc._utility(10e6, 0.0, 0.0)
        inflating = cc._utility(10e6, 0.0, 0.5)
        assert inflating < flat

    def test_small_gradient_tolerated(self):
        cc = PccVivaceCC(MSS)
        assert cc._utility(10e6, 0.0, 0.01) == pytest.approx(
            cc._utility(10e6, 0.0, 0.0)
        )

    def test_rto_backs_off_rate(self):
        cc = PccVivaceCC(MSS, initial_rate_bps=10e6)
        cc.on_rto(1.0)
        assert cc.rate_bps == pytest.approx(7e6)

    def test_rate_floor(self):
        cc = PccVivaceCC(MSS, initial_rate_bps=0.3e6)
        for _ in range(50):
            cc.on_rto(1.0)
        assert cc.rate_bps == pytest.approx(cc.MIN_RATE_BPS)
