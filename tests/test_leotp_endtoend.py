"""End-to-end LEOTP tests: reliability, loss recovery, mobility, ablation."""

import pytest

from repro.core import LeotpConfig, build_leotp_path
from repro.netsim.topology import uniform_chain_specs
from repro.simcore import RngRegistry, Simulator


def run_leotp(
    n_hops=3, plr=0.0, total=150_000, until=30.0, seed=1,
    config=None, coverage=1.0, rate=10e6, delay=0.005,
):
    sim = Simulator()
    rng = RngRegistry(seed)
    path = build_leotp_path(
        sim, rng,
        uniform_chain_specs(n_hops, rate_bps=rate, delay_s=delay, plr=plr),
        config=config or LeotpConfig(),
        total_bytes=total, coverage=coverage,
    )
    sim.run(until=until)
    return sim, path


class TestCleanTransfer:
    def test_completes(self):
        sim, path = run_leotp()
        assert path.consumer.finished
        assert path.consumer.bytes_received == 150_000

    def test_delivery_exactly_once(self):
        sim, path = run_leotp()
        assert path.recorder.total_bytes == 150_000

    def test_no_shr_activity_without_loss(self):
        sim, path = run_leotp()
        assert path.consumer.vph_received == 0
        assert all(m.stats.retx_interests_sent == 0 for m in path.midnodes)

    def test_owd_near_propagation(self):
        sim, path = run_leotp()
        # 3 hops x 5 ms + modest pacing queues.
        assert path.recorder.owd_mean() < 0.06

    def test_cache_populated(self):
        sim, path = run_leotp()
        assert path.midnodes[0].cache.stored_bytes > 0


class TestLossyTransfer:
    def test_reliable_at_high_loss(self):
        sim, path = run_leotp(plr=0.03, until=60.0)
        assert path.consumer.finished
        assert path.consumer.bytes_received == 150_000

    def test_shr_recovers_in_network(self):
        sim, path = run_leotp(plr=0.02, until=60.0)
        assert sum(m.stats.retx_interests_sent for m in path.midnodes) > 0

    def test_vph_suppresses_duplicate_requests(self):
        """Each loss should be repaired roughly once, not once per
        downstream node (the VPH mechanism's purpose)."""
        sim, path = run_leotp(n_hops=5, plr=0.01, total=400_000, until=60.0)
        losses = sum(
            duplex.ab.stats.packets_dropped_loss
            + duplex.ba.stats.packets_dropped_loss
            for duplex in path.links
        )
        retx = (
            sum(m.stats.retx_interests_sent for m in path.midnodes)
            + path.consumer.retransmission_interests
        )
        assert losses > 0
        # Without VPH, each loss on hop i would be re-requested by every
        # downstream node (~n_hops/2 times on average).  With VPH the
        # total stays within a small factor of the loss count.
        assert retx < 3.0 * losses

    def test_retransmitted_owds_recorded(self):
        sim, path = run_leotp(plr=0.02, until=60.0)
        retx = path.recorder.owds(retransmitted_only=True)
        assert len(retx) > 0

    def test_cache_hits_serve_recovery(self):
        sim, path = run_leotp(plr=0.02, until=60.0)
        assert sum(m.cache.stats.hits for m in path.midnodes) > 0


class TestMobility:
    def test_survives_link_flush(self):
        """Packets stranded on a flushed hop (satellite handover) must be
        recovered end-to-end — the paper's reliability challenge (ii)."""
        sim = Simulator()
        rng = RngRegistry(4)
        path = build_leotp_path(
            sim, rng, uniform_chain_specs(4, rate_bps=10e6, delay_s=0.005),
            total_bytes=400_000,
        )
        def handover():
            for duplex in path.links[1:3]:
                duplex.ab.flush(drop_inflight=True)
                duplex.ba.flush(drop_inflight=True)
        for t in (0.2, 0.5, 0.8):
            sim.schedule(t, handover)
        sim.run(until=60.0)
        assert path.consumer.finished
        assert path.consumer.bytes_received == 400_000

    def test_midnode_keeps_no_hard_state(self):
        """A Midnode swapped mid-flow (state lost) must not break the
        transfer: new per-flow state is rebuilt from passing packets."""
        sim = Simulator()
        rng = RngRegistry(4)
        path = build_leotp_path(
            sim, rng, uniform_chain_specs(3, rate_bps=10e6, delay_s=0.005),
            total_bytes=300_000,
        )
        def amnesia():
            for mid in path.midnodes:
                mid._flows.clear()
        sim.schedule(0.4, amnesia)
        sim.run(until=60.0)
        assert path.consumer.finished


class TestPartialCoverage:
    def test_quarter_coverage_still_reliable(self):
        sim, path = run_leotp(
            n_hops=5, plr=0.01, coverage=0.25, until=60.0
        )
        assert path.consumer.finished
        assert len(path.midnodes) == 1

    def test_zero_coverage_is_endpoint_only(self):
        sim, path = run_leotp(n_hops=3, plr=0.01, coverage=0.0, until=90.0)
        assert path.midnodes == []
        assert path.consumer.finished


class TestAblationFlags:
    def test_no_cache_disables_shr(self):
        sim, path = run_leotp(
            plr=0.02, until=60.0, config=LeotpConfig(enable_cache=False)
        )
        assert path.consumer.finished
        assert all(m.stats.retx_interests_sent == 0 for m in path.midnodes)
        assert all(m.cache.stored_bytes == 0 for m in path.midnodes)

    def test_endpoint_cc_still_reliable(self):
        sim, path = run_leotp(
            plr=0.02, until=90.0, config=LeotpConfig(hop_by_hop_cc=False)
        )
        assert path.consumer.finished

    def test_full_config_beats_endpoint_cc_in_throughput(self):
        _, full = run_leotp(n_hops=5, plr=0.01, total=None, until=15.0)
        _, e2e = run_leotp(
            n_hops=5, plr=0.01, total=None, until=15.0,
            config=LeotpConfig(hop_by_hop_cc=False),
        )
        thr_full = full.recorder.throughput_bps(5.0, 15.0)
        thr_e2e = e2e.recorder.throughput_bps(5.0, 15.0)
        assert thr_full > thr_e2e


class TestThroughput:
    def test_near_capacity_on_clean_chain(self):
        sim, path = run_leotp(n_hops=3, total=None, until=15.0)
        thr = path.recorder.throughput_bps(5.0, 15.0)
        assert thr > 0.7 * 10e6

    def test_insensitive_to_loss(self):
        """The headline LEOTP property (Fig. 12): throughput is nearly flat
        as the per-hop loss rate rises to 1 %."""
        _, clean = run_leotp(n_hops=5, total=None, until=15.0, seed=7)
        _, lossy = run_leotp(n_hops=5, plr=0.01, total=None, until=15.0, seed=7)
        thr_clean = clean.recorder.throughput_bps(5.0, 15.0)
        thr_lossy = lossy.recorder.throughput_bps(5.0, 15.0)
        assert thr_lossy > 0.85 * thr_clean


class TestVphAblation:
    def test_disabling_vph_multiplies_requests(self):
        """Without VPH, every downstream node re-requests each hole; the
        per-loss request count must rise well above the VPH configuration."""
        def requests_per_loss(vph: bool) -> float:
            sim, path = run_leotp(
                n_hops=5, plr=0.015, total=None, until=15.0, seed=2,
                config=LeotpConfig(enable_vph=vph),
            )
            losses = sum(
                d.ab.stats.packets_dropped_loss + d.ba.stats.packets_dropped_loss
                for d in path.links
            )
            retx = (
                sum(m.stats.retx_interests_sent for m in path.midnodes)
                + path.consumer.retransmission_interests
            )
            return retx / max(losses, 1)

        assert requests_per_loss(False) > 1.5 * requests_per_loss(True)

    def test_no_vph_packets_when_disabled(self):
        sim, path = run_leotp(
            plr=0.02, until=20.0, config=LeotpConfig(enable_vph=False)
        )
        assert path.consumer.vph_received == 0
