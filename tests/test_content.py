"""Tests for the content-centric workload subsystem (repro.content).

The acceptance-level claims pinned here:

* a content workload is a pure function of ``(spec, seed)`` — catalog,
  arrivals, and per-flow object assignment are all byte-identical per
  seed;
* concurrent consumers of the same named object produce real cross-flow
  cache hits (the classic workload's ratio is structurally ~0);
* placement weights apportion a byte-exact total and the eviction
  policies pick the documented victims;
* the ``content_study`` experiment is bit-identical serial vs
  ``--jobs 2``, and its sharded cell is bit-identical for any
  ``--shard-jobs`` value and across a kill-then-resume.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np
import pytest

from repro.content import (
    CachePolicy,
    ContentCatalog,
    ContentRegistry,
    ContentSpec,
    member_capacities,
    object_name,
    placement_weights,
    zipf_weights,
)
from repro.core.cache import BlockCache
from repro.experiments.content_study import content_plan
from repro.experiments.runner import RunSpec, run_experiments
from repro.netsim.topology import uniform_chain_specs
from repro.shard import run_sharded
from repro.simcore import RngRegistry, Simulator
from repro.workload import FlowPool, WorkloadSpec, generate_demands


def _content_spec(**overrides):
    base = dict(
        n_objects=32, zipf_s=1.0, mean_object_bytes=10_000,
        size_sigma=0.5, max_object_bytes=40_000,
    )
    base.update(overrides)
    return ContentSpec(**base)


def _pool_spec(content=True, n_flows=120, **overrides):
    base = dict(
        arrival="poisson", rate_per_s=200.0, n_flows=n_flows,
        size_dist="lognormal", mean_size_bytes=10_000, sigma=0.5,
        max_size_bytes=40_000,
        content=_content_spec() if content else None,
    )
    base.update(overrides)
    return WorkloadSpec(**base)


class TestCatalog:
    def test_deterministic_per_seed(self):
        spec = _content_spec()
        a = ContentCatalog.build(spec, np.random.default_rng(5))
        b = ContentCatalog.build(spec, np.random.default_rng(5))
        c = ContentCatalog.build(spec, np.random.default_rng(6))
        assert (a.sizes == b.sizes).all()
        assert (a.weights == b.weights).all()
        assert (a.sizes != c.sizes).any()

    def test_zipf_weights_monotone_and_normalised(self):
        w = zipf_weights(50, 1.0)
        assert len(w) == 50
        assert abs(w.sum() - 1.0) < 1e-12
        assert all(w[i] >= w[i + 1] for i in range(49))

    def test_sizes_clamped(self):
        spec = _content_spec(min_object_bytes=4_000, max_object_bytes=12_000)
        cat = ContentCatalog.build(spec, np.random.default_rng(0))
        assert cat.sizes.min() >= 4_000
        assert cat.sizes.max() <= 12_000

    def test_sample_prefers_popular_objects(self):
        cat = ContentCatalog.build(
            _content_spec(zipf_s=1.2), np.random.default_rng(1)
        )
        ids = cat.sample(np.random.default_rng(2), 4000)
        assert ids.min() >= 0 and ids.max() < cat.n_objects
        counts = np.bincount(ids, minlength=cat.n_objects)
        # Rank 0 must dominate the tail under a skewed catalog.
        assert counts[0] > counts[cat.n_objects // 2]

    def test_block_span(self):
        cat = ContentCatalog.build(_content_spec(), np.random.default_rng(0))
        size = cat.object_size(0)
        assert cat.block_span(0, 4096) == -(-size // 4096)


class TestDemands:
    def test_content_demands_deterministic(self):
        spec = _pool_spec()
        a = generate_demands(spec, RngRegistry(3).stream("workload:arrivals"))
        b = generate_demands(spec, RngRegistry(3).stream("workload:arrivals"))
        assert a == b
        assert all(d.object_id is not None for d in a)

    def test_sizes_come_from_catalog(self):
        spec = _pool_spec()
        demands = generate_demands(
            spec, RngRegistry(0).stream("workload:arrivals")
        )
        cat = ContentCatalog.build(
            spec.content, RngRegistry(0).stream("workload:arrivals")
        )
        for d in demands:
            assert d.size_bytes == cat.object_size(d.object_id)

    def test_classic_demands_have_no_object(self):
        demands = generate_demands(
            _pool_spec(content=False),
            RngRegistry(0).stream("workload:arrivals"),
        )
        assert all(d.object_id is None for d in demands)

    def test_content_requires_poisson(self):
        with pytest.raises(ValueError, match="poisson"):
            WorkloadSpec(
                arrival="trace", trace=((0.0, 1000),),
                content=_content_spec(),
            )


class TestRegistry:
    def test_bind_unbind(self):
        reg = ContentRegistry()
        reg.bind("f1", object_name(3))
        assert reg.object_of("f1") == "obj00003"
        assert reg.object_of("f2") is None
        reg.unbind("f1")
        assert reg.object_of("f1") is None
        reg.unbind("f1")  # idempotent
        assert reg.binds == 1 and reg.unbinds == 1

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ContentRegistry().bind("f1", "")


class TestPlacement:
    def test_uniform_weights(self):
        assert placement_weights("uniform", 5) == (1.0,) * 5

    def test_gateway_emphasises_ends(self):
        w = placement_weights("gateway", 5)
        assert w[0] == w[-1] > w[1] == w[2] == w[3]

    def test_hot_orbit_emphasises_middle(self):
        w = placement_weights("hot_orbit", 5)
        assert w[2] > w[0] == w[-1]

    @pytest.mark.parametrize("total", [7, 1000, 1 << 20, (1 << 20) + 3])
    @pytest.mark.parametrize(
        "placement", ["uniform", "gateway", "hot_orbit"]
    )
    def test_capacities_conserve_total_byte_exact(self, total, placement):
        caps = member_capacities(total, placement_weights(placement, 5))
        assert sum(caps) == total
        assert all(c >= 1 for c in caps)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            CachePolicy(placement="nowhere", eviction="lru")
        with pytest.raises(ValueError):
            CachePolicy(placement="uniform", eviction="random")


class TestCacheAttribution:
    def test_cross_hits_counted_per_writer(self):
        cache = BlockCache(1 << 20, 4096)
        from repro.common.ranges import ByteRange

        cache.store("obj", ByteRange(0, 8192), 0.0, writer="f1")
        cache.lookup("obj", ByteRange(0, 8192), requester="f1")
        assert cache.stats.cross_hit_bytes == 0
        cache.lookup("obj", ByteRange(0, 8192), requester="f2")
        assert cache.stats.cross_hit_bytes == 8192
        assert cache.stats.hit_bytes == 16384
        assert cache.stats.lookup_bytes == 16384

    def test_lfu_evicts_least_frequent(self):
        from repro.common.ranges import ByteRange

        cache = BlockCache(8192, 4096, eviction="lfu")
        cache.store("a", ByteRange(0, 4096), 0.0)
        cache.store("b", ByteRange(0, 4096), 0.0)
        cache.lookup("a", ByteRange(0, 4096))  # a now more frequent
        cache.store("c", ByteRange(0, 4096), 0.0)  # evicts b
        assert cache.contains("a", ByteRange(0, 4096))
        assert not cache.contains("b", ByteRange(0, 4096))

    def test_lru_evicts_least_recent(self):
        from repro.common.ranges import ByteRange

        cache = BlockCache(8192, 4096, eviction="lru")
        cache.store("a", ByteRange(0, 4096), 0.0)
        cache.store("b", ByteRange(0, 4096), 0.0)
        cache.lookup("a", ByteRange(0, 4096))  # refresh a
        cache.store("c", ByteRange(0, 4096), 0.0)  # evicts b
        assert cache.contains("a", ByteRange(0, 4096))
        assert not cache.contains("b", ByteRange(0, 4096))


def _run_pool(content: bool, policy=None, seed: int = 0):
    sim = Simulator()
    rng = RngRegistry(seed)
    pool = FlowPool(
        sim, rng,
        spec=_pool_spec(content=content),
        hops=uniform_chain_specs(3, rate_bps=40e6, delay_s=0.004),
        protocol="leotp",
        memory_ceiling_bytes=4 << 20,
        cache_policy=policy,
    )
    sim.run(until=120 / 200.0 + 5.0)
    pool.finalize()
    return pool.summary()


class TestPoolSharing:
    def test_content_pool_sees_cross_flow_hits(self):
        s = _run_pool(content=True)
        assert s["completed"] > 0
        assert s["cross_hit_ratio"] > 0.05
        assert s["origin_load_reduction"] > 0.1
        assert s["content_objects"] > 1

    def test_classic_pool_has_no_content_keys(self):
        s = _run_pool(content=False)
        assert "cross_hit_ratio" not in s
        assert "origin_bytes" not in s

    def test_policy_cells_complete(self):
        s = _run_pool(
            content=True,
            policy=CachePolicy(placement="gateway", eviction="lfu"),
        )
        assert s["completed"] > 0
        assert s["budget_breaches"] == 0

    def test_same_seed_same_summary(self):
        a = _run_pool(
            content=True,
            policy=CachePolicy(placement="hot_orbit", eviction="lru"),
        )
        b = _run_pool(
            content=True,
            policy=CachePolicy(placement="hot_orbit", eviction="lru"),
        )
        assert a == b


_TINY = RunSpec(scale=0.03, seed=0)


class TestStudyDeterminism:
    def test_serial_vs_jobs2_bit_identical(self):
        serial = run_experiments(["content_study"], _TINY, jobs=1)
        parallel = run_experiments(["content_study"], _TINY, jobs=2)
        assert serial[0].result["rows"] == parallel[0].result["rows"]

    def test_shard_jobs_bit_identical(self):
        plan = content_plan(scale=0.1, seed=2)
        rows1 = run_sharded(plan, jobs=1)
        rows2 = run_sharded(plan, jobs=2)
        rows4 = run_sharded(plan, jobs=4)
        assert rows1["rows"] == rows2["rows"] == rows4["rows"]
        assert rows1["ledger"] == rows2["ledger"] == rows4["ledger"]
        # Content keys made it through the BSP exchange.
        assert all(
            "cross_hit_ratio" in row
            for row in rows1["rows"] if row["shard"] != "total"
        )

    def test_kill_then_resume_bit_identical(self):
        plan = content_plan(scale=0.1, seed=2)
        full = run_sharded(plan, jobs=1)
        with tempfile.TemporaryDirectory() as d:
            ckpt = os.path.join(d, "ckpt")
            part = run_sharded(
                plan, jobs=2, checkpoint_dir=ckpt,
                checkpoint_every=2, stop_after_epoch=3,
            )
            assert part["stopped_after_epoch"] == 3
            resumed = run_sharded(plan, jobs=2, resume_from=ckpt)
        assert resumed["rows"] == full["rows"]
        assert resumed["ledger"] == full["ledger"]
