"""Tests for byte-range algebra, including hypothesis property tests
against a naive set-of-integers model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.ranges import ByteRange, RangeSet


class TestByteRange:
    def test_length(self):
        assert ByteRange(10, 25).length == 15

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            ByteRange(5, 5)
        with pytest.raises(ValueError):
            ByteRange(7, 3)
        with pytest.raises(ValueError):
            ByteRange(-1, 3)

    def test_overlaps(self):
        a = ByteRange(0, 10)
        assert a.overlaps(ByteRange(5, 15))
        assert a.overlaps(ByteRange(9, 10))
        assert not a.overlaps(ByteRange(10, 20))  # half-open adjacency
        assert not a.overlaps(ByteRange(20, 30))

    def test_contains(self):
        assert ByteRange(0, 10).contains(ByteRange(2, 8))
        assert ByteRange(0, 10).contains(ByteRange(0, 10))
        assert not ByteRange(0, 10).contains(ByteRange(5, 11))

    def test_intersection(self):
        assert ByteRange(0, 10).intersection(ByteRange(5, 15)) == ByteRange(5, 10)
        assert ByteRange(0, 10).intersection(ByteRange(10, 20)) is None

    def test_split(self):
        parts = list(ByteRange(0, 10).split(4))
        assert parts == [ByteRange(0, 4), ByteRange(4, 8), ByteRange(8, 10)]

    def test_split_exact_multiple(self):
        assert list(ByteRange(0, 8).split(4)) == [ByteRange(0, 4), ByteRange(4, 8)]

    def test_split_invalid_chunk(self):
        with pytest.raises(ValueError):
            list(ByteRange(0, 10).split(0))


class TestRangeSet:
    def test_empty(self):
        rs = RangeSet()
        assert len(rs) == 0
        assert not rs
        assert rs.intervals() == []

    def test_add_disjoint(self):
        rs = RangeSet()
        rs.add(ByteRange(0, 5))
        rs.add(ByteRange(10, 15))
        assert rs.intervals() == [ByteRange(0, 5), ByteRange(10, 15)]
        assert len(rs) == 10

    def test_add_overlapping_merges(self):
        rs = RangeSet()
        rs.add(ByteRange(0, 10))
        rs.add(ByteRange(5, 15))
        assert rs.intervals() == [ByteRange(0, 15)]

    def test_add_adjacent_merges(self):
        rs = RangeSet()
        rs.add(ByteRange(0, 5))
        rs.add(ByteRange(5, 10))
        assert rs.intervals() == [ByteRange(0, 10)]

    def test_add_bridging_merges_three(self):
        rs = RangeSet([ByteRange(0, 3), ByteRange(6, 9)])
        rs.add(ByteRange(3, 6))
        assert rs.intervals() == [ByteRange(0, 9)]

    def test_remove_middle_splits(self):
        rs = RangeSet([ByteRange(0, 10)])
        rs.remove(ByteRange(3, 7))
        assert rs.intervals() == [ByteRange(0, 3), ByteRange(7, 10)]

    def test_remove_edges(self):
        rs = RangeSet([ByteRange(0, 10)])
        rs.remove(ByteRange(0, 4))
        rs.remove(ByteRange(8, 10))
        assert rs.intervals() == [ByteRange(4, 8)]

    def test_remove_nonexistent_is_noop(self):
        rs = RangeSet([ByteRange(0, 5)])
        rs.remove(ByteRange(10, 20))
        assert rs.intervals() == [ByteRange(0, 5)]

    def test_contains(self):
        rs = RangeSet([ByteRange(0, 10), ByteRange(20, 30)])
        assert rs.contains(ByteRange(2, 8))
        assert rs.contains(ByteRange(0, 10))
        assert not rs.contains(ByteRange(5, 25))
        assert not rs.contains(ByteRange(10, 20))

    def test_overlaps(self):
        rs = RangeSet([ByteRange(10, 20)])
        assert rs.overlaps(ByteRange(15, 25))
        assert rs.overlaps(ByteRange(0, 11))
        assert not rs.overlaps(ByteRange(0, 10))
        assert not rs.overlaps(ByteRange(20, 30))

    def test_missing_within(self):
        rs = RangeSet([ByteRange(0, 5), ByteRange(10, 15)])
        holes = rs.missing_within(ByteRange(0, 20))
        assert holes == [ByteRange(5, 10), ByteRange(15, 20)]

    def test_missing_within_fully_present(self):
        rs = RangeSet([ByteRange(0, 20)])
        assert rs.missing_within(ByteRange(5, 15)) == []

    def test_missing_within_fully_absent(self):
        rs = RangeSet()
        assert rs.missing_within(ByteRange(5, 15)) == [ByteRange(5, 15)]

    def test_first_missing_from(self):
        rs = RangeSet([ByteRange(0, 10), ByteRange(15, 20)])
        assert rs.first_missing_from(0) == 10
        assert rs.first_missing_from(10) == 10
        assert rs.first_missing_from(16) == 20
        assert rs.first_missing_from(25) == 25

    def test_equality(self):
        assert RangeSet([ByteRange(0, 5)]) == RangeSet([ByteRange(0, 3), ByteRange(3, 5)])


# ---------------------------------------------------------------------------
# Property-based tests against a naive model
# ---------------------------------------------------------------------------

ranges = st.tuples(
    st.integers(min_value=0, max_value=200),
    st.integers(min_value=1, max_value=40),
).map(lambda t: ByteRange(t[0], t[0] + t[1]))

operations = st.lists(
    st.tuples(st.sampled_from(["add", "remove"]), ranges), max_size=40
)


def apply_naive(ops):
    model = set()
    for op, rng in ops:
        points = set(range(rng.start, rng.end))
        if op == "add":
            model |= points
        else:
            model -= points
    return model


def rangeset_points(rs: RangeSet) -> set:
    return {b for iv in rs for b in range(iv.start, iv.end)}


@settings(max_examples=200, deadline=None)
@given(operations)
def test_rangeset_matches_naive_model(ops):
    rs = RangeSet()
    for op, rng in ops:
        if op == "add":
            rs.add(rng)
        else:
            rs.remove(rng)
    assert rangeset_points(rs) == apply_naive(ops)


@settings(max_examples=200, deadline=None)
@given(operations)
def test_rangeset_intervals_are_disjoint_and_sorted(ops):
    rs = RangeSet()
    for op, rng in ops:
        (rs.add if op == "add" else rs.remove)(rng)
    ivs = rs.intervals()
    for prev, cur in zip(ivs[:-1], ivs[1:]):
        assert prev.end < cur.start  # disjoint AND non-adjacent (merged)


@settings(max_examples=150, deadline=None)
@given(operations, ranges)
def test_missing_within_complements_contains(ops, query):
    rs = RangeSet()
    for op, rng in ops:
        (rs.add if op == "add" else rs.remove)(rng)
    holes = rs.missing_within(query)
    hole_points = {b for h in holes for b in range(h.start, h.end)}
    present = rangeset_points(rs)
    expected = {b for b in range(query.start, query.end) if b not in present}
    assert hole_points == expected


@settings(max_examples=150, deadline=None)
@given(operations, st.integers(min_value=0, max_value=250))
def test_first_missing_from_matches_model(ops, offset):
    rs = RangeSet()
    for op, rng in ops:
        (rs.add if op == "add" else rs.remove)(rng)
    present = rangeset_points(rs)
    expect = offset
    while expect in present:
        expect += 1
    assert rs.first_missing_from(offset) == expect


class TestRangeSetEdgeCases:
    """Deterministic corner cases: removal splits, exact-boundary holes,
    empty-set queries, and the O(1) cached length invariant."""

    def test_remove_splits_interval(self):
        rs = RangeSet([ByteRange(0, 100)])
        rs.remove(ByteRange(40, 60))
        assert rs.intervals() == [ByteRange(0, 40), ByteRange(60, 100)]
        assert len(rs) == 80

    def test_remove_exact_interval(self):
        rs = RangeSet([ByteRange(10, 20), ByteRange(30, 40)])
        rs.remove(ByteRange(10, 20))
        assert rs.intervals() == [ByteRange(30, 40)]
        assert len(rs) == 10

    def test_remove_at_exact_boundaries_is_noop(self):
        rs = RangeSet([ByteRange(10, 20)])
        rs.remove(ByteRange(0, 10))   # ends exactly at interval start
        rs.remove(ByteRange(20, 30))  # starts exactly at interval end
        assert rs.intervals() == [ByteRange(10, 20)]
        assert len(rs) == 10

    def test_remove_spanning_multiple_intervals(self):
        rs = RangeSet([ByteRange(0, 10), ByteRange(20, 30), ByteRange(40, 50)])
        rs.remove(ByteRange(5, 45))
        assert rs.intervals() == [ByteRange(0, 5), ByteRange(45, 50)]
        assert len(rs) == 10

    def test_remove_from_empty_set(self):
        rs = RangeSet()
        rs.remove(ByteRange(0, 100))
        assert rs.intervals() == []
        assert len(rs) == 0

    def test_missing_within_on_empty_set(self):
        rs = RangeSet()
        assert rs.missing_within(ByteRange(5, 15)) == [ByteRange(5, 15)]

    def test_missing_within_holes_at_exact_boundaries(self):
        rs = RangeSet([ByteRange(10, 20), ByteRange(30, 40)])
        # Query starts exactly at an interval start and ends exactly at an
        # interval end: the only hole is the inter-interval gap.
        assert rs.missing_within(ByteRange(10, 40)) == [ByteRange(20, 30)]

    def test_missing_within_query_fully_covered(self):
        rs = RangeSet([ByteRange(0, 100)])
        assert rs.missing_within(ByteRange(25, 75)) == []

    def test_missing_within_query_touching_interval_edges(self):
        rs = RangeSet([ByteRange(10, 20)])
        assert rs.missing_within(ByteRange(0, 10)) == [ByteRange(0, 10)]
        assert rs.missing_within(ByteRange(20, 30)) == [ByteRange(20, 30)]

    def test_contains_and_overlaps_on_empty_set(self):
        rs = RangeSet()
        assert not rs.contains(ByteRange(0, 1))
        assert not rs.overlaps(ByteRange(0, 1))
        assert rs.first_missing_from(7) == 7

    def test_cached_len_tracks_adds_and_removes(self):
        rs = RangeSet()
        rs.add(ByteRange(0, 10))
        rs.add(ByteRange(5, 15))      # overlapping merge
        rs.add(ByteRange(15, 20))     # adjacent merge
        rs.add(ByteRange(100, 110))   # disjoint
        assert len(rs) == 30
        rs.remove(ByteRange(8, 12))   # split
        assert len(rs) == 26
        rs.remove(ByteRange(0, 200))  # clear
        assert len(rs) == 0
        assert sum(r.length for r in rs) == 0

    def test_cached_len_matches_recount_under_churn(self):
        rs = RangeSet()
        for i in range(0, 400, 3):
            rs.add(ByteRange(i, i + 5))
        for i in range(0, 400, 7):
            rs.remove(ByteRange(i, i + 4))
        assert len(rs) == sum(r.length for r in rs)


class TestByteRangeUnchecked:
    def test_unchecked_equals_checked(self):
        assert ByteRange.unchecked(3, 9) == ByteRange(3, 9)
        assert hash(ByteRange.unchecked(3, 9)) == hash(ByteRange(3, 9))

    def test_checked_constructor_still_validates(self):
        with pytest.raises(ValueError):
            ByteRange(5, 5)
        with pytest.raises(ValueError):
            ByteRange(-1, 4)

    def test_ordering(self):
        assert ByteRange(0, 5) < ByteRange(0, 6) < ByteRange(1, 2)
        assert max(ByteRange(4, 8), ByteRange(2, 20)) == ByteRange(4, 8)
