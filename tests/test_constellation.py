"""Tests for the LEO constellation model: geometry, orbits, routing."""

import math

import numpy as np
import pytest

from repro.constellation import (
    ConstellationRouter,
    EARTH_RADIUS_M,
    NoRouteError,
    PathDynamicsDriver,
    RoutingConfig,
    SPEED_OF_LIGHT_M_S,
    SatelliteId,
    WalkerConstellation,
    compute_path_schedule,
    elevation_angle_deg,
    geodetic_to_ecef,
    great_circle_distance_m,
    max_gsl_range_m,
    orbital_period_s,
    propagation_delay_s,
    representative_hop_count,
    starlink_core_shell,
    starlink_hop_specs,
    station_by_name,
    top_cities,
)
from repro.constellation.orbit import CircularOrbit
from repro.netsim.link import DuplexLink
from repro.netsim.node import SinkNode
from repro.simcore import Simulator


class TestGeometry:
    def test_ecef_equator(self):
        pos = geodetic_to_ecef(0.0, 0.0, 0.0)
        assert pos[0] == pytest.approx(EARTH_RADIUS_M)
        assert abs(pos[1]) < 1e-6 and abs(pos[2]) < 1e-6

    def test_ecef_north_pole(self):
        pos = geodetic_to_ecef(90.0, 0.0, 0.0)
        assert pos[2] == pytest.approx(EARTH_RADIUS_M)

    def test_ecef_altitude(self):
        pos = geodetic_to_ecef(0.0, 90.0, 1000.0)
        assert np.linalg.norm(pos) == pytest.approx(EARTH_RADIUS_M + 1000.0)

    def test_propagation_delay(self):
        a = np.array([0.0, 0.0, 0.0])
        b = np.array([SPEED_OF_LIGHT_M_S, 0.0, 0.0])
        assert propagation_delay_s(a, b) == pytest.approx(1.0)

    def test_elevation_straight_up(self):
        ground = geodetic_to_ecef(0.0, 0.0)
        sat = geodetic_to_ecef(0.0, 0.0, 1_150_000.0)
        assert elevation_angle_deg(ground, sat) == pytest.approx(90.0)

    def test_elevation_below_horizon(self):
        ground = geodetic_to_ecef(0.0, 0.0)
        sat = geodetic_to_ecef(0.0, 180.0, 1_150_000.0)  # other side of Earth
        assert elevation_angle_deg(ground, sat) < 0

    def test_great_circle_quarter(self):
        d = great_circle_distance_m(0.0, 0.0, 0.0, 90.0)
        assert d == pytest.approx(math.pi / 2 * EARTH_RADIUS_M, rel=1e-6)

    def test_max_gsl_range_zenith_bound(self):
        # At a 90-degree mask only the zenith pass is visible.
        assert max_gsl_range_m(1_150_000.0, 90.0) == pytest.approx(1_150_000.0)

    def test_max_gsl_range_grows_with_lower_mask(self):
        assert max_gsl_range_m(1_150_000.0, 25.0) > max_gsl_range_m(1_150_000.0, 40.0)


class TestOrbit:
    def test_leo_period_about_109_minutes(self):
        period = orbital_period_s(1_150_000.0)
        assert 100 * 60 < period < 115 * 60

    def test_circular_orbit_radius_constant(self):
        orbit = CircularOrbit(1_150_000.0, 53.0, raan_rad=0.3, phase_rad=1.0)
        for t in [0.0, 100.0, 2000.0]:
            r = np.linalg.norm(orbit.position_ecef(t))
            assert r == pytest.approx(EARTH_RADIUS_M + 1_150_000.0, rel=1e-9)

    def test_position_changes_over_time(self):
        orbit = CircularOrbit(1_150_000.0, 53.0, 0.0, 0.0)
        assert not np.allclose(orbit.position_ecef(0.0), orbit.position_ecef(60.0))

    def test_inclination_bounds_latitude(self):
        orbit = CircularOrbit(1_150_000.0, 53.0, 0.0, 0.0)
        period = orbital_period_s(1_150_000.0)
        max_z = max(
            abs(orbit.position_ecef(t)[2]) for t in np.linspace(0, period, 200)
        )
        r = EARTH_RADIUS_M + 1_150_000.0
        max_lat = math.degrees(math.asin(max_z / r))
        assert max_lat == pytest.approx(53.0, abs=1.0)

    def test_period_validation(self):
        with pytest.raises(ValueError):
            orbital_period_s(0.0)


class TestWalker:
    def test_starlink_core_shell_dimensions(self):
        shell = starlink_core_shell()
        assert shell.num_satellites == 1600
        assert shell.num_planes == 32
        assert shell.sats_per_plane == 50
        assert shell.altitude_m == 1_150_000.0
        assert shell.inclination_deg == 53.0

    def test_positions_shape(self):
        shell = WalkerConstellation(num_planes=4, sats_per_plane=5)
        assert shell.positions_ecef(0.0).shape == (20, 3)

    def test_id_index_roundtrip(self):
        shell = WalkerConstellation(num_planes=4, sats_per_plane=5)
        for idx in range(shell.num_satellites):
            assert shell.index_of(shell.id_of(idx)) == idx

    def test_index_bounds(self):
        shell = WalkerConstellation(num_planes=2, sats_per_plane=2)
        with pytest.raises(ValueError):
            shell.id_of(4)
        with pytest.raises(ValueError):
            shell.index_of(SatelliteId(2, 0))

    def test_four_isl_neighbors(self):
        shell = WalkerConstellation(num_planes=4, sats_per_plane=5)
        neighbors = shell.isl_neighbors(7)
        assert len(neighbors) == 4
        assert len(set(neighbors)) == 4
        assert 7 not in neighbors

    def test_isl_neighbors_wrap_around(self):
        shell = WalkerConstellation(num_planes=4, sats_per_plane=5)
        neighbors = shell.isl_neighbors(0)  # plane 0, slot 0
        assert shell.index_of(SatelliteId(0, 1)) in neighbors
        assert shell.index_of(SatelliteId(0, 4)) in neighbors  # slot wrap
        assert shell.index_of(SatelliteId(3, 0)) in neighbors  # plane wrap

    def test_satellites_evenly_spread(self):
        shell = WalkerConstellation(num_planes=8, sats_per_plane=8)
        pos = shell.positions_ecef(0.0)
        # No two satellites should coincide.
        dists = np.linalg.norm(pos[:, None] - pos[None, :], axis=2)
        np.fill_diagonal(dists, np.inf)
        assert dists.min() > 100_000  # at least 100 km apart


class TestGroundStations:
    def test_returns_100_cities(self):
        cities = top_cities(100)
        assert len(cities) == 100
        names = {c.name for c in cities}
        for required in ["Beijing", "Shanghai", "Hong Kong", "Paris", "New York"]:
            assert required in names

    def test_sorted_by_population(self):
        cities = top_cities(10)
        pops = [c.population_m for c in cities]
        assert pops == sorted(pops, reverse=True)

    def test_lookup_by_name(self):
        beijing = station_by_name("beijing")
        assert beijing.lat_deg == pytest.approx(39.90, abs=0.2)

    def test_lookup_missing(self):
        with pytest.raises(KeyError):
            station_by_name("Atlantis")

    def test_n_validation(self):
        with pytest.raises(ValueError):
            top_cities(0)

    def test_coordinates_valid(self):
        for c in top_cities(100):
            assert -90 <= c.lat_deg <= 90
            assert -180 <= c.lon_deg <= 180


@pytest.fixture(scope="module")
def router():
    return ConstellationRouter(starlink_core_shell(), top_cities(100))


@pytest.fixture(scope="module")
def bent_pipe_router():
    return ConstellationRouter(
        starlink_core_shell(), top_cities(100), RoutingConfig(isls_enabled=False)
    )


class TestRouting:
    def test_route_endpoints(self, router):
        snap = router.route_at(0.0, "Beijing", "New York")
        assert snap.nodes[0] == "gs:Beijing"
        assert snap.nodes[-1] == "gs:New York"

    def test_route_alternates_through_satellites(self, router):
        snap = router.route_at(0.0, "Beijing", "Paris")
        for node in snap.nodes[1:-1]:
            assert node.startswith("sat-")

    def test_first_last_hops_are_gsl(self, router):
        snap = router.route_at(0.0, "Beijing", "New York")
        assert snap.hop_is_gsl[0] and snap.hop_is_gsl[-1]
        assert not any(snap.hop_is_gsl[1:-1])

    def test_longer_distance_more_hops(self, router):
        hk = router.route_at(0.0, "Beijing", "Hong Kong")
        ny = router.route_at(0.0, "Beijing", "New York")
        assert ny.hop_count > hk.hop_count

    def test_delay_exceeds_great_circle_bound(self, router):
        snap = router.route_at(0.0, "Beijing", "New York")
        bj, ny = station_by_name("Beijing"), station_by_name("New York")
        floor = great_circle_distance_m(
            bj.lat_deg, bj.lon_deg, ny.lat_deg, ny.lon_deg
        ) / SPEED_OF_LIGHT_M_S
        assert snap.total_delay_s >= floor * 0.9

    def test_bent_pipe_uses_only_gsls(self, bent_pipe_router):
        snap = bent_pipe_router.route_at(0.0, "Beijing", "Shanghai")
        assert all(snap.hop_is_gsl)

    def test_no_route_raises(self):
        # A one-satellite "constellation" cannot connect antipodal cities.
        tiny = WalkerConstellation(num_planes=1, sats_per_plane=1)
        router = ConstellationRouter(tiny, top_cities(100))
        with pytest.raises(NoRouteError):
            router.route_at(0.0, "Beijing", "New York")


class TestPathSchedule:
    def test_schedule_sampling(self, router):
        sched = compute_path_schedule(router, "Beijing", "Hong Kong", 10.0, 2.0)
        assert len(sched.snapshots) == 5
        assert sched.mean_hop_count >= 2

    def test_at_picks_last_snapshot_in_force(self, router):
        sched = compute_path_schedule(router, "Beijing", "Hong Kong", 10.0, 2.0)
        assert sched.at(3.0).time == 2.0
        assert sched.at(0.0).time == 0.0

    def test_route_changes_over_orbit_motion(self, router):
        sched = compute_path_schedule(
            router, "Beijing", "Hong Kong", 300.0, 30.0
        )
        assert len(sched.change_times()) >= 1

    def test_validation(self, router):
        with pytest.raises(ValueError):
            compute_path_schedule(router, "Beijing", "Paris", 0.0)
        with pytest.raises(ValueError):
            compute_path_schedule(
                router, "Beijing", "Paris", 10.0, on_gap="ignore"
            )

    def test_single_slice_schedule(self, router):
        sched = compute_path_schedule(router, "Beijing", "Paris", 2.0, 5.0)
        assert len(sched.snapshots) == 1
        assert sched.change_times() == []
        assert sched.at(0.0) is sched.at(100.0)  # held indefinitely
        assert sched.mean_hop_count == sched.snapshots[0].hop_count

    def test_at_slice_boundary_off_by_one(self, router):
        sched = compute_path_schedule(router, "Beijing", "Hong Kong", 10.0, 2.0)
        # Exactly on a boundary the NEW slice is in force; just before
        # it, the old one still is; before t0, the first is clamped.
        assert sched.at(2.0).time == 2.0
        assert sched.at(2.0 - 1e-9).time == 0.0
        assert sched.at(-5.0).time == 0.0

    def test_route_flap_between_adjacent_slices(self, router):
        # Hunt a window where the route changes and changes back (flap);
        # fall back to asserting change bookkeeping stays consistent.
        sched = compute_path_schedule(router, "Beijing", "Paris", 600.0, 15.0)
        changes = sched.change_times()
        assert changes, "600 s of orbit must move the route at least once"
        # At every change time the in-force route genuinely differs from
        # the slice before it (flap detection keys off node sequences).
        for t in changes:
            assert sched.at(t - 1e-6).nodes != sched.at(t).nodes

    def test_unreachable_pair_raises_even_with_hold(self):
        tiny = WalkerConstellation(num_planes=1, sats_per_plane=1)
        router = ConstellationRouter(tiny, top_cities(100))
        with pytest.raises(NoRouteError):
            compute_path_schedule(router, "Beijing", "New York", 10.0, 2.0)
        # "hold" tolerates transient gaps but not a pair that is never
        # reachable in any slice.
        with pytest.raises(NoRouteError, match="any slice"):
            compute_path_schedule(
                router, "Beijing", "New York", 10.0, 2.0, on_gap="hold"
            )

    def test_hold_records_gaps_and_holds_route(self):
        # One satellite still serves nearby city pairs intermittently:
        # route slices exist when it is visible to both, gaps otherwise.
        tiny = WalkerConstellation(num_planes=1, sats_per_plane=1)
        router = ConstellationRouter(tiny, top_cities(100))
        period = orbital_period_s(tiny.altitude_m)
        with pytest.raises(NoRouteError):
            compute_path_schedule(
                router, "Beijing", "Shanghai", period, 30.0
            )
        sched = compute_path_schedule(
            router, "Beijing", "Shanghai", period, 30.0, on_gap="hold"
        )
        assert sched.snapshots and sched.gaps
        for start, end in sched.gaps:
            assert end > start >= 0.0
            # The held route during the gap is the last one before it.
            pre_gap = [s for s in sched.snapshots if s.time < start]
            if pre_gap:
                assert sched.at((start + end) / 2) == pre_gap[-1]
        covered = sum(end - start for start, end in sched.gaps)
        assert covered + 30.0 * len(sched.snapshots) == pytest.approx(
            30.0 * round(period / 30.0 + 0.5), rel=0.1
        )


class TestEmulationBridge:
    def test_starlink_hop_specs_bottleneck_first(self):
        specs = starlink_hop_specs(5)
        assert specs[0].profile is not None  # V-curve GSL uplink
        assert specs[0].plr == 0.01
        assert specs[1].plr == 0.001  # ISL
        assert specs[-1].plr == 0.01  # GSL downlink

    def test_bent_pipe_specs_all_gsl_loss(self):
        specs = starlink_hop_specs(4, isls_enabled=False)
        assert all(s.plr == 0.01 for s in specs)

    def test_minimum_hops(self):
        with pytest.raises(ValueError):
            starlink_hop_specs(1)

    def test_representative_hop_count(self, router):
        sched = compute_path_schedule(router, "Beijing", "Hong Kong", 10.0, 2.0)
        counts = [s.hop_count for s in sched.snapshots]
        assert representative_hop_count(sched) in counts

    def test_driver_applies_delays(self, router):
        sched = compute_path_schedule(router, "Beijing", "Paris", 30.0, 5.0)
        sim = Simulator()
        links = [
            DuplexLink(sim, SinkNode(sim, f"a{i}"), SinkNode(sim, f"b{i}"))
            for i in range(4)
        ]
        driver = PathDynamicsDriver(sim, sched, links, update_interval_s=5.0)
        expected = sched.at(0.0).total_delay_s / 4
        assert links[0].ab.delay_s == pytest.approx(expected)
        sim.run(until=21.0)
        expected_late = sched.at(20.0).total_delay_s / 4
        assert links[0].ab.delay_s == pytest.approx(expected_late)

    def test_driver_counts_handovers(self, router):
        sched = compute_path_schedule(router, "Beijing", "Paris", 300.0, 30.0)
        if not sched.change_times():
            pytest.skip("no route change in this window")
        sim = Simulator()
        links = [
            DuplexLink(sim, SinkNode(sim, f"a{i}"), SinkNode(sim, f"b{i}"))
            for i in range(4)
        ]
        driver = PathDynamicsDriver(sim, sched, links, update_interval_s=30.0)
        sim.run(until=300.0)
        assert driver.handover_count >= 1
