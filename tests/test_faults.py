"""Unit tests for the fault-injection subsystem (repro.faults)."""

import pytest

from repro.common.ranges import ByteRange
from repro.core import LeotpConfig, build_leotp_path
from repro.core.paced import ResendSuppressor
from repro.core.shr import SeqHoleDetector
from repro.faults import (
    BandwidthCollapse,
    CorrelatedLoss,
    DelaySpike,
    FaultInjector,
    FaultSchedule,
    GilbertElliottLoss,
    InvariantLimits,
    InvariantMonitor,
    LinkDown,
    LinkFlap,
    LossBurst,
    NodeCrash,
    recovery_report,
)
from repro.netsim.link import DuplexLink, Link
from repro.netsim.node import SinkNode
from repro.netsim.packet import Packet
from repro.netsim.topology import uniform_chain_specs
from repro.netsim.trace import FlowRecorder
from repro.simcore import RngRegistry, Simulator


def make_link(sim, sink, **kwargs):
    defaults = dict(rate_bps=8e6, delay_s=0.001)
    defaults.update(kwargs)
    return Link(sim, sink, **defaults)


class TestFaultSchedule:
    def test_events_iterate_in_time_order(self):
        s = FaultSchedule()
        s.add(LinkDown(at_s=5.0, link="b"))
        s.add(LinkDown(at_s=1.0, link="a"))
        assert [e.at_s for e in s] == [1.0, 5.0]

    def test_validation_rejects_nonsense(self):
        with pytest.raises(ValueError):
            LinkDown(at_s=-1.0, link="x")
        with pytest.raises(ValueError):
            LinkDown(at_s=0.0, link="")
        with pytest.raises(ValueError):
            LinkDown(at_s=0.0, link="x", duration_s=0.0)
        with pytest.raises(ValueError):
            DelaySpike(at_s=0.0, link="x", factor=1.0)  # adds no delay
        with pytest.raises(ValueError):
            BandwidthCollapse(at_s=0.0, link="x", factor=0.0)
        with pytest.raises(ValueError):
            LossBurst(at_s=0.0, link="x", plr=1.0)
        with pytest.raises(ValueError):
            NodeCrash(at_s=0.0, node="n", restart_after_s=0.0)
        with pytest.raises(TypeError):
            FaultSchedule().add("not an event")

    def test_flap_expands_to_periodic_downs(self):
        flap = LinkFlap(at_s=2.0, link="x", down_s=0.2, up_s=0.3, cycles=3)
        downs = flap.expand()
        assert [d.at_s for d in downs] == [2.0, 2.5, 3.0]
        assert all(d.duration_s == 0.2 for d in downs)

    def test_last_fault_end(self):
        s = FaultSchedule()
        s.add(LinkDown(at_s=1.0, link="x", duration_s=2.0))
        s.add(LinkFlap(at_s=2.0, link="x", down_s=0.5, up_s=0.5, cycles=4))
        s.add(NodeCrash(at_s=3.0, node="n", restart_after_s=1.5))
        assert s.last_fault_end_s == pytest.approx(6.0)  # flap ends last


class TestScheduleValidate:
    def test_overlapping_same_link_rejected(self):
        s = FaultSchedule([
            LinkDown(at_s=1.0, link="x", duration_s=2.0),
            LinkDown(at_s=2.0, link="x", duration_s=1.0),
        ])
        with pytest.raises(ValueError, match="overlapping LinkDown"):
            s.validate()

    def test_abutting_same_link_rejected(self):
        # Abutting windows mis-restore too: at equal timestamps the
        # second down's apply is armed before the first's back-up.
        s = FaultSchedule([
            LinkDown(at_s=1.0, link="x", duration_s=1.0),
            LinkDown(at_s=2.0, link="x", duration_s=1.0),
        ])
        with pytest.raises(ValueError):
            s.validate()

    def test_disjoint_and_cross_target_pass(self):
        s = FaultSchedule([
            LinkDown(at_s=1.0, link="x", duration_s=0.5),
            LinkDown(at_s=2.0, link="x", duration_s=0.5),
            LinkDown(at_s=1.0, link="y", duration_s=5.0),  # other link
            LossBurst(at_s=1.0, link="x", duration_s=5.0),  # other kind
        ])
        assert s.validate() is s

    def test_flap_expansion_collides_with_plain_down(self):
        s = FaultSchedule([
            LinkFlap(at_s=1.0, link="x", down_s=0.2, up_s=0.3, cycles=3),
            LinkDown(at_s=1.6, link="x", duration_s=0.1),  # inside cycle 2
        ])
        with pytest.raises(ValueError):
            s.validate()

    def test_delay_spikes_exempt(self):
        # DelaySpike restores a delta, which composes; overlap is legal.
        s = FaultSchedule([
            DelaySpike(at_s=1.0, link="x", duration_s=2.0, extra_s=0.1),
            DelaySpike(at_s=2.0, link="x", duration_s=2.0, extra_s=0.1),
        ])
        assert s.validate() is s

    def test_unbounded_crash_overlaps_everything_later(self):
        s = FaultSchedule([
            NodeCrash(at_s=1.0, node="n", restart_after_s=None),
            NodeCrash(at_s=50.0, node="n", restart_after_s=1.0),
        ])
        with pytest.raises(ValueError, match="NodeCrash"):
            s.validate()

    def test_arm_validates(self):
        sim = Simulator()
        sink = SinkNode(sim)
        link = make_link(sim, sink)
        injector = FaultInjector(sim, RngRegistry(0))
        injector.register_link("l", link)
        bad = FaultSchedule([
            LinkDown(at_s=1.0, link="l", duration_s=1.0),
            LinkDown(at_s=1.5, link="l", duration_s=1.0),
        ])
        with pytest.raises(ValueError):
            injector.arm(bad)


class TestGilbertElliott:
    def test_deterministic_per_stream(self):
        def drops(seed):
            model = GilbertElliottLoss(
                RngRegistry(seed).stream("ge"),
                p_good_bad=0.1, p_bad_good=0.3, loss_bad=0.7,
            )
            return [model(Packet(100)) for _ in range(500)]

        assert drops(7) == drops(7)
        assert drops(7) != drops(8)

    def test_loss_is_bursty(self):
        model = GilbertElliottLoss(
            RngRegistry(1).stream("ge"),
            p_good_bad=0.02, p_bad_good=0.2, loss_good=0.0, loss_bad=1.0,
        )
        outcomes = [model(Packet(100)) for _ in range(20000)]
        assert model.bursts_entered > 0
        # Mean burst length 1/p_bad_good = 5 >> what Bernoulli at the same
        # average rate would produce; check losses clump into runs.
        runs = []
        current = 0
        for lost in outcomes:
            if lost:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert runs and sum(runs) / len(runs) > 2.0
        assert 0.0 < model.loss_rate < 0.5

    def test_attached_to_link_drops_packets(self):
        sim = Simulator()
        sink = SinkNode(sim)
        link = make_link(sim, sink, queue_bytes=None)
        link.loss_model = GilbertElliottLoss(
            RngRegistry(2).stream("ge"), p_good_bad=0.5, p_bad_good=0.1,
            loss_bad=1.0,
        )
        for _ in range(500):
            link.send(Packet(100))
        sim.run()
        assert link.stats.packets_dropped_loss > 0
        assert len(sink.received) == 500 - link.stats.packets_dropped_loss


class TestFaultInjector:
    def _one_link(self):
        sim = Simulator()
        sink = SinkNode(sim)
        link = make_link(sim, sink, queue_bytes=None)
        injector = FaultInjector(sim, RngRegistry(0))
        injector.register_link("l", link)
        return sim, sink, link, injector

    def test_link_down_and_restore(self):
        sim, sink, link, injector = self._one_link()
        schedule = FaultSchedule([LinkDown(at_s=0.01, link="l", duration_s=0.02)])
        injector.arm(schedule)
        # One packet before, one during, one after the outage.
        for t in (0.0, 0.02, 0.05):
            sim.schedule_at(t, lambda: link.send(Packet(100)))
        sim.run()
        assert len(sink.received) == 2
        assert not link.up if sim.now < 0.03 else link.up
        assert [m for _, m in injector.log] == [
            "l DOWN for 0.02s (0 flushed)", "l UP",
        ]

    def test_down_flushes_queue(self):
        sim, sink, link, injector = self._one_link()
        for _ in range(5):
            link.send(Packet(10000))  # 10 ms serialisation each
        injector.register_link("l", link)
        injector.arm(FaultSchedule([LinkDown(at_s=0.005, link="l", duration_s=1.0)]))
        sim.run()
        # The packet mid-serialisation completes; the queued four are flushed.
        assert len(sink.received) == 1
        assert link.stats.packets_dropped_flush == 4

    def test_delay_spike_applies_and_restores_delta(self):
        sim, sink, link, injector = self._one_link()
        injector.arm(FaultSchedule(
            [DelaySpike(at_s=0.01, link="l", duration_s=0.02, extra_s=0.1)]
        ))
        sim.run(until=0.015)
        assert link.delay_s == pytest.approx(0.101)
        # Concurrent retune survives the restore (delta-based).
        link.delay_s += 0.005
        sim.run(until=0.05)
        assert link.delay_s == pytest.approx(0.006)

    def test_bandwidth_collapse_scales_and_restores(self):
        sim, sink, link, injector = self._one_link()
        base = link.profile
        injector.arm(FaultSchedule(
            [BandwidthCollapse(at_s=0.01, link="l", duration_s=0.02, factor=0.1)]
        ))
        sim.run(until=0.015)
        assert link.profile.rate_at(sim.now) == pytest.approx(8e5)
        sim.run(until=0.05)
        assert link.profile is base

    def test_loss_burst_sets_and_restores_plr(self):
        sim, sink, link, injector = self._one_link()
        injector.arm(FaultSchedule(
            [LossBurst(at_s=0.01, link="l", duration_s=0.02, plr=0.5)]
        ))
        sim.run(until=0.015)
        assert link.plr == 0.5
        sim.run(until=0.05)
        assert link.plr == 0.0

    def test_correlated_loss_attaches_and_detaches(self):
        sim, sink, link, injector = self._one_link()
        injector.arm(FaultSchedule(
            [CorrelatedLoss(at_s=0.01, link="l", duration_s=0.02)]
        ))
        sim.run(until=0.015)
        assert isinstance(link.loss_model, GilbertElliottLoss)
        sim.run(until=0.05)
        assert link.loss_model is None

    def test_duplex_registration_targets_both_directions(self):
        sim = Simulator()
        a, b = SinkNode(sim, "a"), SinkNode(sim, "b")
        duplex = DuplexLink(sim, a, b, rate_bps=8e6, delay_s=0.001)
        injector = FaultInjector(sim)
        injector.register_link("d", duplex)
        injector.arm(FaultSchedule([LinkDown(at_s=0.0, link="d", duration_s=0.01)]))
        sim.run(until=0.005)
        assert not duplex.ab.up and not duplex.ba.up
        # After the duplex outage ends, a directional one hits only :ab.
        injector.arm(FaultSchedule([LinkDown(at_s=0.02, link="d:ab", duration_s=10.0)]))
        sim.run(until=0.15)
        assert not duplex.ab.up and duplex.ba.up

    def test_unknown_targets_fail_at_arm_time(self):
        sim, sink, link, injector = self._one_link()
        with pytest.raises(KeyError):
            injector.arm(FaultSchedule([LinkDown(at_s=0.0, link="nope")]))
        with pytest.raises(KeyError):
            injector.arm(FaultSchedule([NodeCrash(at_s=0.0, node="nope")]))

    def test_node_crash_drops_traffic_until_restart(self):
        sim = Simulator()
        sink = SinkNode(sim)
        link = make_link(sim, sink, queue_bytes=None)
        injector = FaultInjector(sim)
        injector.register_node("s", sink)
        injector.arm(FaultSchedule(
            [NodeCrash(at_s=0.01, node="s", restart_after_s=0.02)]
        ))
        for t in (0.0, 0.02, 0.05):
            sim.schedule_at(t, lambda: link.send(Packet(100)))
        sim.run()
        assert len(sink.received) == 2
        assert sink.packets_dropped_crashed == 1


class TestMidnodeCrash:
    def _path(self, total_bytes=2_000_000):
        sim = Simulator()
        rng = RngRegistry(0)
        hops = uniform_chain_specs(4, rate_bps=20e6, delay_s=0.005, plr=0.0)
        path = build_leotp_path(
            sim, rng, hops, config=LeotpConfig(), total_bytes=total_bytes
        )
        return sim, path

    def test_crash_wipes_cache_and_flow_state(self):
        sim, path = self._path()
        mid = path.midnodes[1]
        sim.run(until=1.0)
        assert mid._flows and mid.cache.stored_bytes > 0
        mid.crash()
        assert mid.crashed
        assert not mid._flows
        assert mid.cache.stored_bytes == 0
        assert mid.stats.crashes == 1

    def test_transfer_survives_crash_restart(self):
        sim, path = self._path()
        mid = path.midnodes[1]
        sim.schedule_at(0.4, mid.crash)
        sim.schedule_at(0.6, mid.restart)
        sim.run(until=20.0)
        assert path.consumer.finished
        assert path.consumer.bytes_received == 2_000_000


class TestResendSuppressor:
    def test_suppresses_within_floor_window(self):
        sim = Simulator()
        sup = ResendSuppressor(sim, floor_s=0.15)
        rng = ByteRange(0, 1400)
        assert not sup.suppressed(rng)  # never sent
        sup.record(rng)
        assert sup.suppressed(rng)
        sim.run(until=0.2)
        assert not sup.suppressed(rng)  # window expired

    def test_drain_time_extends_window(self):
        sim = Simulator()
        sup = ResendSuppressor(sim, floor_s=0.15)
        rng = ByteRange(0, 1400)
        sup.record(rng)
        sim.run(until=0.2)
        assert sup.suppressed(rng, extra_window_s=1.0)

    def test_zero_floor_disables(self):
        sim = Simulator()
        sup = ResendSuppressor(sim, floor_s=0.0)
        rng = ByteRange(0, 1400)
        sup.record(rng)
        assert not sup.suppressed(rng)


class TestShrResync:
    def test_fresh_detector_adopts_first_offset(self):
        """A detector (re)created mid-flow must not treat the entire
        already-delivered prefix as one giant hole (crash/restart)."""
        shr = SeqHoleDetector()
        actions = shr.on_packet(ByteRange(10_000_000, 10_001_400))
        assert actions.announce == [] and actions.request == []
        assert shr.last_byte == 10_001_400

    def test_gaps_after_priming_are_still_detected(self):
        shr = SeqHoleDetector(disorder_threshold=1)
        shr.on_packet(ByteRange(1000, 2000))
        actions = shr.on_packet(ByteRange(3000, 4000))
        assert actions.announce == [ByteRange(2000, 3000)]


class TestInvariantMonitor:
    def test_clean_run_is_green(self):
        sim = Simulator()
        rng = RngRegistry(0)
        hops = uniform_chain_specs(4, rate_bps=20e6, delay_s=0.005, plr=0.01)
        path = build_leotp_path(
            sim, rng, hops, config=LeotpConfig(), total_bytes=1_000_000
        )
        monitor = InvariantMonitor(sim, path)
        sim.run(until=10.0)
        reports = monitor.finalise()
        assert [r.name for r in reports] == [
            "byte-exact-delivery", "no-duplicate-delivery",
            "bounded-requester-window", "bounded-responder-buffers",
            "rto-sanity", "cwnd-sanity",
        ]
        assert all(r.ok for r in reports), [str(r) for r in reports]
        assert monitor.app_bytes_delivered == 1_000_000

    def test_violations_are_caught(self):
        sim = Simulator()
        rng = RngRegistry(0)
        hops = uniform_chain_specs(4, rate_bps=20e6, delay_s=0.005, plr=0.0)
        path = build_leotp_path(
            sim, rng, hops, config=LeotpConfig(), total_bytes=1_000_000
        )
        # Absurdly tight limits: a healthy run must trip them.
        monitor = InvariantMonitor(
            sim, path,
            limits=InvariantLimits(
                requester_window_limit_bytes=1,
                responder_backlog_limit_bytes=1,
            ),
        )
        sim.run(until=5.0)
        reports = {r.name: r for r in monitor.finalise()}
        assert not reports["bounded-requester-window"].ok
        assert not reports["bounded-responder-buffers"].ok
        assert not monitor.ok
        with pytest.raises(AssertionError):
            monitor.assert_ok()


class TestRecoveryReport:
    def _recorder(self, sim, deliveries):
        recorder = FlowRecorder(sim)
        for t, nbytes in deliveries:
            sim.schedule_at(t, recorder.on_delivery, nbytes, 0.01)
        sim.run()
        return recorder

    def test_goodput_ratio_and_ttfb(self):
        sim = Simulator()
        # 1000 B every 0.1 s, a 2 s gap for the fault, then recovery at
        # the same rate starting 0.5 s after the fault clears.
        pre = [(0.1 * i, 1000) for i in range(50)]          # up to t=4.9
        post = [(7.5 + 0.1 * i, 1000) for i in range(50)]   # from t=7.5
        recorder = self._recorder(sim, pre + post)
        report = recovery_report(
            recorder, 5.0, 7.0, window_s=5.0, recovery_window_s=1.0
        )
        assert report.pre_goodput_bps == pytest.approx(80_000, rel=0.05)
        assert report.ttfb_after_fault_s == pytest.approx(0.5)
        assert report.goodput_ratio == pytest.approx(0.9, abs=0.2)
        assert report.recovered
        assert report.time_to_recovery_s > 0.5

    def test_no_recovery_reported_when_flow_dies(self):
        sim = Simulator()
        recorder = self._recorder(sim, [(0.1 * i, 1000) for i in range(50)])
        report = recovery_report(recorder, 5.0, 7.0)
        assert report.post_goodput_bps == 0.0
        assert report.ttfb_after_fault_s is None
        assert not report.recovered

    def test_amplification(self):
        sim = Simulator()
        recorder = self._recorder(sim, [(0.0, 1000), (1.0, 1000)])
        report = recovery_report(recorder, 0.5, 0.6, wire_bytes_sent=3000)
        assert report.retx_amplification == pytest.approx(1.5)

    def test_validation(self):
        sim = Simulator()
        recorder = FlowRecorder(sim)
        with pytest.raises(ValueError):
            recovery_report(recorder, 2.0, 1.0)
        with pytest.raises(ValueError):
            recovery_report(recorder, 1.0, 2.0, window_s=0.0)
