"""Scale machinery of the sharded engine (DESIGN.md §14).

Three mechanisms carry :mod:`repro.shard` from 10⁴ to 10⁵ flows, and
each has a determinism obligation these tests pin:

* **streamed results** — spilling closed flows to per-shard JSONL must
  not change a single byte of the rows, the ledger, or the merged flow
  file, for any buffer size or ``jobs`` value;
* **checkpoint/resume** — a run killed between checkpoints and resumed
  (with a *different* ``jobs`` value) must reproduce the uninterrupted
  run bit for bit, spill files included; corrupt or mismatched
  checkpoints must be refused loudly;
* **slim exchange** — the delta-encoded report wire format must be
  lossless, verified here by explicit round-trips.

Plus the error path: a failing shard must surface as
:class:`~repro.shard.ShardError` naming the shard, and the engine must
come back clean for the next run.
"""

from __future__ import annotations

import json
import os
import pickle
from dataclasses import replace

import pytest

from repro.shard import (
    CheckpointError,
    ShardError,
    ShardPlan,
    ShardReport,
    SpillWriter,
    iter_jsonl,
    load_manifest,
    merge_spills,
    run_sharded,
    spill_name,
)
from repro.shard.sink import truncate_file
from repro.shard.worker import (
    _GroupContext,
    _ShardState,
    _encode_report,
    decode_report,
)

#: Small plan with every moving part alive: four shards (one faulted),
#: five exchange epochs, enough arrivals that spills have real rows.
PLAN = ShardPlan(n_shards=4, arrivals_per_shard=12, drain_s=2.0)


def _payload(result: dict) -> str:
    return json.dumps(
        {"rows": result["rows"], "ledger": result["ledger"]}, sort_keys=True
    )


def _merged_bytes(result: dict) -> bytes:
    with open(result["sink"]["merged_path"], "rb") as fh:
        return fh.read()


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """One uninterrupted streamed run: the reference for every resume."""
    sink = tmp_path_factory.mktemp("baseline-sink")
    out = run_sharded(PLAN, jobs=1, sink_dir=str(sink))
    return out


# ----------------------------------------------------------------------
# SpillWriter: the bounded-buffer JSONL primitive
# ----------------------------------------------------------------------


def test_spill_writer_lazy_open_and_durable_offsets(tmp_path):
    path = tmp_path / "rows.jsonl"
    writer = SpillWriter(path, buffer_bytes=1 << 20)
    writer.write({"a": 1})
    writer.write({"a": 2})
    assert not path.exists()  # nothing durable yet: buffer below bound
    assert writer.tell() == 0
    offset = writer.flush()
    assert offset == path.stat().st_size > 0
    assert writer.tell() == offset
    assert writer.close() == offset
    assert [r["a"] for r in iter_jsonl(path)] == [1, 2]


def test_spill_writer_bytes_independent_of_buffer_size(tmp_path):
    records = [{"idx": i, "flow": f"f{i:03d}", "x": i * 0.5} for i in range(50)]
    paths = []
    for buffer_bytes in (0, 64, 1 << 20):
        path = tmp_path / f"buf{buffer_bytes}.jsonl"
        writer = SpillWriter(path, buffer_bytes=buffer_bytes)
        for record in records:
            writer.write(record)
        writer.close()
        paths.append(path.read_bytes())
    assert paths[0] == paths[1] == paths[2]


def test_spill_writer_pickle_requires_flush_then_appends(tmp_path):
    path = tmp_path / "rows.jsonl"
    writer = SpillWriter(path, buffer_bytes=1 << 20)
    writer.write({"n": 0})
    with pytest.raises(RuntimeError, match="unflushed"):
        pickle.dumps(writer)
    writer.flush()
    restored = pickle.loads(pickle.dumps(writer))
    writer.close()
    restored.write({"n": 1})
    restored.close()
    assert [r["n"] for r in iter_jsonl(path)] == [0, 1]
    assert restored.records_written == 2


def test_truncate_file_edge_cases(tmp_path):
    path = tmp_path / "spill.jsonl"
    # Missing file at offset 0 is fine; at a positive offset it is not.
    assert truncate_file(path, 0) == 0
    with pytest.raises(FileNotFoundError):
        truncate_file(path, 10)
    path.write_bytes(b"0123456789")
    assert truncate_file(path, 4) == 6
    assert path.read_bytes() == b"0123"
    with pytest.raises(ValueError):
        truncate_file(path, 400)  # shorter than the recorded offset


def test_merge_spills_orders_and_skips_missing(tmp_path):
    (tmp_path / "a.jsonl").write_bytes(b'{"s":0}\n')
    (tmp_path / "c.jsonl").write_bytes(b'{"s":2}\n')
    out = tmp_path / "merged.jsonl"
    total = merge_spills(
        [tmp_path / "a.jsonl", tmp_path / "b.jsonl", tmp_path / "c.jsonl"],
        out,
    )
    assert total == out.stat().st_size
    assert [r["s"] for r in iter_jsonl(out)] == [0, 2]


# ----------------------------------------------------------------------
# Slim exchange: delta-encoded reports are lossless
# ----------------------------------------------------------------------


def test_delta_report_roundtrip_is_lossless():
    ctx = _GroupContext(PLAN, [0], None)
    last: dict[int, ShardReport] = {}
    rep0 = ShardReport(
        shard=0, epoch=0, sim_time_s=PLAN.epoch_end_s(0),
        events_executed=10, arrivals=3, completed=1, aborted=0,
        live_flows=2, backlog_bytes=100, cache_stored_bytes=5,
        cache_capacity_bytes=100, budget_total_bytes=200,
        budget_breaches=0, boundary_stored_before=5,
        boundary_evicted_bytes=0,
    )
    entry0 = _encode_report(ctx, rep0, 0)
    assert entry0[1] is None and entry0[2] is not None  # full on first send
    assert decode_report(PLAN, last, entry0, 0) == rep0

    rep1 = replace(
        rep0, epoch=1, sim_time_s=PLAN.epoch_end_s(1),
        events_executed=25, completed=3, live_flows=0,
    )
    entry1 = _encode_report(ctx, rep1, 1)
    assert entry1[2] is None
    assert entry1[1] == {"events_executed": 25, "completed": 3,
                         "live_flows": 0}
    assert decode_report(PLAN, last, entry1, 1) == rep1

    # A fully idle epoch transmits an empty dict and still reconstructs.
    rep2 = replace(rep1, epoch=2, sim_time_s=PLAN.epoch_end_s(2))
    entry2 = _encode_report(ctx, rep2, 2)
    assert entry2[1] == {}
    assert decode_report(PLAN, last, entry2, 2) == rep2


def test_delta_report_without_baseline_fails_loudly():
    with pytest.raises(RuntimeError, match="without a baseline"):
        decode_report(PLAN, {}, (0, {}, None), 1)


# ----------------------------------------------------------------------
# Streamed results: spilling never changes the deterministic payload
# ----------------------------------------------------------------------


def test_streamed_rows_match_unspilled_and_jobs_invariant(baseline, tmp_path):
    unspilled = run_sharded(PLAN, jobs=1)
    assert _payload(baseline) == _payload(unspilled)

    two = run_sharded(PLAN, jobs=2, sink_dir=str(tmp_path / "sink2"))
    assert _payload(baseline) == _payload(two)
    assert _merged_bytes(baseline) == _merged_bytes(two)

    # Every arrival ends closed, so it appears exactly once in the merge.
    records = list(iter_jsonl(baseline["sink"]["merged_path"]))
    assert len(records) == PLAN.n_shards * PLAN.arrivals_per_shard
    assert baseline["sink"]["merged_bytes"] == len(_merged_bytes(baseline))


# ----------------------------------------------------------------------
# Checkpoint/resume: kill-then-resume reproduces the run bit for bit
# ----------------------------------------------------------------------


def test_kill_between_checkpoints_then_resume_bit_identical(
    baseline, tmp_path
):
    sink, ckpt = str(tmp_path / "sink"), str(tmp_path / "ckpt")
    partial = run_sharded(
        PLAN, jobs=1, sink_dir=sink, checkpoint_dir=ckpt,
        checkpoint_every=2, stop_after_epoch=2,
    )
    assert partial["stopped_after_epoch"] == 2
    assert partial["completed_epochs"] == 3
    # The stop landed *past* the last committed checkpoint: resume must
    # rewind the spills to the epoch-2 boundary the manifest recorded.
    manifest = load_manifest(ckpt)
    assert manifest["completed_epochs"] == 2
    spill_path = os.path.join(sink, spill_name(0))
    if os.path.exists(spill_path):
        assert os.path.getsize(spill_path) >= manifest["shards"]["0"][
            "spill_offset"
        ]

    resumed = run_sharded(PLAN, jobs=2, resume_from=ckpt)
    assert resumed["resumed_from_epoch"] == 2
    assert _payload(resumed) == _payload(baseline)
    assert _merged_bytes(resumed) == _merged_bytes(baseline)


def test_resume_from_first_boundary(baseline, tmp_path):
    sink, ckpt = str(tmp_path / "sink"), str(tmp_path / "ckpt")
    partial = run_sharded(
        PLAN, jobs=1, sink_dir=sink, checkpoint_dir=ckpt,
        checkpoint_every=1, stop_after_epoch=0,
    )
    assert partial["completed_epochs"] == 1
    assert load_manifest(ckpt)["completed_epochs"] == 1
    resumed = run_sharded(PLAN, jobs=1, resume_from=ckpt)
    assert resumed["resumed_from_epoch"] == 1
    assert _payload(resumed) == _payload(baseline)
    assert _merged_bytes(resumed) == _merged_bytes(baseline)


def test_resume_after_final_epoch_is_a_noop(baseline, tmp_path):
    sink, ckpt = str(tmp_path / "sink"), str(tmp_path / "ckpt")
    full = run_sharded(PLAN, jobs=1, sink_dir=sink, checkpoint_dir=ckpt)
    assert load_manifest(ckpt)["completed_epochs"] == PLAN.n_epochs
    resumed = run_sharded(PLAN, jobs=1, resume_from=ckpt)
    assert resumed["resumed_from_epoch"] == PLAN.n_epochs
    assert _payload(resumed) == _payload(full) == _payload(baseline)
    assert _merged_bytes(resumed) == _merged_bytes(baseline)


def test_resume_refuses_a_different_plan(tmp_path):
    ckpt = str(tmp_path / "ckpt")
    run_sharded(
        PLAN, jobs=1, checkpoint_dir=ckpt,
        checkpoint_every=1, stop_after_epoch=0,
    )
    other = ShardPlan(n_shards=4, arrivals_per_shard=12, drain_s=2.0, seed=9)
    with pytest.raises(CheckpointError, match="fingerprint"):
        run_sharded(other, jobs=1, resume_from=ckpt)


def test_resume_refuses_corrupt_shard_pickle(tmp_path):
    ckpt = str(tmp_path / "ckpt")
    run_sharded(
        PLAN, jobs=1, checkpoint_dir=ckpt,
        checkpoint_every=1, stop_after_epoch=0,
    )
    name = load_manifest(ckpt)["shards"]["1"]["file"]
    path = os.path.join(ckpt, name)
    blob = bytearray(open(path, "rb").read())
    blob[len(blob) // 2] ^= 0xFF
    with open(path, "wb") as fh:
        fh.write(bytes(blob))
    with pytest.raises(CheckpointError, match="corrupt"):
        run_sharded(PLAN, jobs=1, resume_from=ckpt)


def test_resume_refuses_corrupt_manifest(tmp_path):
    ckpt = str(tmp_path / "ckpt")
    run_sharded(
        PLAN, jobs=1, checkpoint_dir=ckpt,
        checkpoint_every=1, stop_after_epoch=0,
    )
    with open(os.path.join(ckpt, "manifest.json"), "w") as fh:
        fh.write("{not json")
    with pytest.raises(CheckpointError, match="JSON"):
        run_sharded(PLAN, jobs=1, resume_from=ckpt)
    with pytest.raises(CheckpointError, match="manifest"):
        run_sharded(PLAN, jobs=1, resume_from=str(tmp_path / "nowhere"))


# ----------------------------------------------------------------------
# Error path: a failing shard is named, and the engine comes back clean
# ----------------------------------------------------------------------


@pytest.mark.parametrize("jobs", [1, 2])
def test_shard_error_names_failing_shard(monkeypatch, jobs):
    original = _ShardState.run_epoch

    def boom(self, epoch, observe):
        if self.index == 2:
            raise ValueError("injected failure")
        return original(self, epoch, observe)

    # Patched before the executors fork, so worker processes inherit it.
    monkeypatch.setattr(_ShardState, "run_epoch", boom)
    with pytest.raises(ShardError) as excinfo:
        run_sharded(PLAN, jobs=jobs)
    assert excinfo.value.shard == 2
    assert excinfo.value.epoch == 0
    assert "ValueError: injected failure" in str(excinfo.value)

    monkeypatch.undo()
    ok = run_sharded(PLAN, jobs=jobs)
    total = ok["rows"][-1]
    assert total["completed"] + total["aborted"] == total["arrivals"]
