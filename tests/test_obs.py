"""Observability layer: off-path cost, determinism, schema, fig10 smoke.

Four guarantees are pinned here:

* **off-path no-op** — with tracing disabled (the default), instrumented
  code emits nothing and allocates nothing per packet: the module-level
  ``TRACER``/``METRICS`` singletons keep their identity and stay empty
  through a full experiment run.
* **read-only observation** — enabling the tracer and samplers never
  changes simulation results: result rows are bit-identical with
  observation on or off.
* **sampler determinism** — per-experiment record/sample streams are
  bit-identical between ``jobs=1`` and ``jobs=2``, because ``run_one``
  resets the global observability state per experiment (not per process).
* **schema** — every emitted record/sample passes ``validate_record``
  and survives a JSONL dump/load round trip unchanged.

Plus a fig10 smoke run asserting the traced recovery timeline is
populated and the recovery cost lands in a band around the reported
82–116 ms (EXPERIMENTS.md, Fig. 10 row).
"""

from __future__ import annotations

import pytest

import repro.obs
import repro.obs.tracer
from repro.analysis.report import (
    cache_efficiency,
    event_counts,
    rate_ladder,
    recovery_latency_ms,
    recovery_timeline,
    run_summary,
)
from repro.obs import (
    METRICS,
    TRACER,
    EventTracer,
    dump_jsonl,
    load_jsonl,
    validate_record,
)
from repro.experiments.runner import RunSpec, run_experiments, run_one

_TINY = 0.02
_SEED = 0
_SPEC = RunSpec(scale=_TINY, seed=_SEED)
_OBS_SPEC = RunSpec(scale=_TINY, seed=_SEED, observe=True)


@pytest.fixture(autouse=True)
def _obs_clean():
    """Leave the global observability state as the suite expects: off."""
    yield
    TRACER.reset()
    METRICS.reset()
    TRACER.disable()
    METRICS.disable()


class TestOffPath:
    def test_singleton_identity(self):
        # The hot-path guard `if TRACER.enabled:` binds this one object at
        # import time in every instrumented module; its identity must
        # never change.
        assert repro.obs.TRACER is repro.obs.tracer.TRACER
        assert repro.obs.METRICS is repro.obs.metrics.METRICS

    def test_untraced_run_records_nothing(self):
        tracer_before = repro.obs.TRACER
        metrics_before = repro.obs.METRICS
        run_one("fig02", _SPEC)
        assert repro.obs.TRACER is tracer_before
        assert repro.obs.METRICS is metrics_before
        assert not TRACER.enabled and not TRACER.records
        assert not METRICS.enabled and not METRICS.samples

    def test_observation_is_read_only(self):
        # Result rows must be bit-identical with observation on or off.
        plain = run_one("fig02", _SPEC)
        observed = run_one("fig02", _OBS_SPEC)
        assert plain.result == observed.result
        assert observed.trace_records and observed.metric_samples
        assert plain.trace_records is None and plain.metric_samples is None


class TestDeterminism:
    def test_streams_identical_across_jobs(self):
        names = ["fig10", "fig02"]
        serial = run_experiments(names, _OBS_SPEC, jobs=1)
        pooled = run_experiments(names, _OBS_SPEC, jobs=2)
        for a, b in zip(serial, pooled):
            assert a.name == b.name
            assert a.result == b.result
            assert a.trace_records == b.trace_records
            assert a.metric_samples == b.metric_samples


class TestSchema:
    def test_emitted_records_validate(self):
        outcome = run_one("fig02", _OBS_SPEC)
        for rec in outcome.trace_records:
            validate_record(rec)
        for row in outcome.metric_samples:
            validate_record(row)
            assert row["event"] == "sample"
            assert {"run", "series", "value"} <= row.keys()

    def test_jsonl_round_trip(self, tmp_path):
        outcome = run_one("fig02", _OBS_SPEC)
        rows = outcome.trace_records + outcome.metric_samples
        dest = tmp_path / "obs.jsonl"
        dump_jsonl(rows, dest)
        assert load_jsonl(dest) == rows

    def test_validate_rejects_bad_records(self):
        with pytest.raises(ValueError):
            validate_record({"t": 0.0, "event": "x"})  # missing node
        with pytest.raises(ValueError):
            validate_record({"t": "late", "event": "x", "node": "n"})
        with pytest.raises(ValueError):
            validate_record([("t", 0.0)])  # not a dict

    def test_tracer_bounded(self):
        tracer = EventTracer(max_records=2)
        tracer.enable()
        for i in range(5):
            tracer.emit(float(i), "e", "n")
        assert len(tracer.records) == 2
        assert tracer.dropped_records == 3


class TestStreaming:
    """JSONL streaming export: past max_records, flush to disk, drop nothing."""

    def test_stream_keeps_all_records(self, tmp_path):
        dest = tmp_path / "stream.jsonl"
        tracer = EventTracer(max_records=10)
        tracer.enable()
        tracer.set_stream(dest)
        assert tracer.streaming
        for i in range(35):
            tracer.emit(float(i), "e", "n", seq=i)
        total = tracer.close_stream()
        assert total == 35
        assert tracer.dropped_records == 0
        assert tracer.flushed_records == 35
        rows = load_jsonl(dest)
        assert [row["seq"] for row in rows] == list(range(35))
        for row in rows:
            validate_record(row)

    def test_without_stream_old_drop_behaviour(self):
        tracer = EventTracer(max_records=10)
        tracer.enable()
        for i in range(35):
            tracer.emit(float(i), "e", "n")
        assert not tracer.streaming
        assert len(tracer.records) == 10
        assert tracer.dropped_records == 25
        assert tracer.flushed_records == 0

    def test_close_stream_is_idempotent(self, tmp_path):
        dest = tmp_path / "stream.jsonl"
        tracer = EventTracer(max_records=4)
        tracer.enable()
        tracer.set_stream(dest)
        for i in range(6):
            tracer.emit(float(i), "e", "n")
        assert tracer.close_stream() == 6
        assert tracer.close_stream() == 0  # already closed: no-op
        assert len(load_jsonl(dest)) == 6

    def test_reset_leaves_stream_attached(self, tmp_path):
        dest = tmp_path / "stream.jsonl"
        tracer = EventTracer(max_records=4)
        tracer.enable()
        tracer.set_stream(dest)
        for i in range(5):
            tracer.emit(float(i), "e", "n")
        tracer.reset()
        tracer.enable()
        assert tracer.streaming
        assert tracer.flushed_records == 0
        tracer.emit(9.0, "e", "n")
        tracer.close_stream()
        # Pre-reset flushes survive on disk; post-reset emit follows them.
        rows = load_jsonl(dest)
        assert rows and rows[-1]["t"] == 9.0


class TestReport:
    def test_summary_renders_all_sections(self):
        outcome = run_one("fig10", _OBS_SPEC)
        records, samples = outcome.trace_records, outcome.metric_samples
        counts = event_counts(records)
        # fig10 flows are duration-bounded (no flow_complete); losses and
        # repairs must both have been traced.
        assert counts["data_recv"] > 0 and counts["link_drop"] > 0
        assert recovery_timeline(records, limit=10)
        assert cache_efficiency(records)  # Midnodes saw lookups
        ladder = rate_ladder(samples)
        assert any(row["series"].endswith("rate_bp_bytes_s") for row in ladder)
        text = run_summary(records, samples, title="fig10")
        for needle in ("observability summary: fig10", "events (",
                       "cache efficiency", "per-hop state",
                       "recovery timeline"):
            assert needle in text

    def test_chaos_harness_carries_obs_streams(self):
        from repro.faults import FaultSchedule, LinkDown, run_leotp_chaos

        schedule = FaultSchedule([
            LinkDown(at_s=1.0, link="hop2", duration_s=0.5),
        ])
        untraced = run_leotp_chaos(schedule, seed=1, duration_s=4.0,
                                   total_bytes=2_000_000)
        assert untraced.trace_records is None
        assert untraced.obs_summary() is None

        TRACER.enable()
        METRICS.enable()
        traced = run_leotp_chaos(schedule, seed=1, duration_s=4.0,
                                 total_bytes=2_000_000)
        assert traced.trace_records and traced.metric_samples
        kinds = {rec["event"] for rec in traced.trace_records}
        assert "fault" in kinds and "data_recv" in kinds
        summary = traced.obs_summary()
        assert "chaos:leotp" in summary and "fault" in summary
        # Observation must not change the chaos outcome.
        assert untraced.recovery.to_dict() == traced.recovery.to_dict()

    def test_fig10_smoke_recovery_band(self):
        """Traced loss recovery lands near the reported 82-116 ms.

        EXPERIMENTS.md reports recovery cost 82-116 ms at scale 0.5; at
        tiny scale the transfer is short so per-run variance is higher —
        assert a generous band around the report plus the structural
        facts (retransmitted deliveries exist and cost > 0).
        """
        outcome = run_one("fig10", _OBS_SPEC)
        latency = recovery_latency_ms(outcome.trace_records)
        assert latency is not None
        assert latency["retx_deliveries"] > 0
        # Trace mixes LEOTP and BBR sub-runs across all loss rates, so
        # the blended mean sits above the LEOTP-only 82-116 ms report.
        assert 50.0 < latency["recovery_cost_ms"] < 2000.0
        # The experiment's own LEOTP rows are the Fig. 10 quantity.
        rows = [r for r in outcome.result["rows"]
                if r["protocol"] == "leotp" and r["recovery_cost_ms"]]
        assert rows
        for row in rows:
            assert 40.0 < row["recovery_cost_ms"] < 600.0
