"""Tests for measurement collection (FlowRecorder, CDFs, probes)."""

import numpy as np
import pytest

from repro.netsim.trace import FlowRecorder, TimeSeriesProbe, cdf
from repro.simcore import Simulator


class TestFlowRecorder:
    def record_at(self, sim, rec, t, nbytes, owd, retx=False):
        sim.schedule(t - sim.now, rec.on_delivery, nbytes, owd, retx)

    def test_throughput_over_span(self):
        sim = Simulator()
        rec = FlowRecorder(sim)
        for t in [1.0, 2.0, 3.0]:
            self.record_at(sim, rec, t, 1000, 0.01)
        sim.run()
        # 3000 bytes over [1, 3] seconds.
        assert rec.throughput_bps() == pytest.approx(3000 * 8 / 2.0)

    def test_throughput_with_explicit_window(self):
        sim = Simulator()
        rec = FlowRecorder(sim)
        for t in [1.0, 2.0, 3.0, 4.0]:
            self.record_at(sim, rec, t, 1000, 0.01)
        sim.run()
        assert rec.throughput_bps(2.0, 4.0) == pytest.approx(3000 * 8 / 2.0)

    def test_empty_recorder(self):
        rec = FlowRecorder(Simulator())
        assert rec.throughput_bps() == 0.0
        assert np.isnan(rec.owd_mean())

    def test_owd_statistics(self):
        sim = Simulator()
        rec = FlowRecorder(sim)
        for i, owd in enumerate([0.01, 0.02, 0.03]):
            self.record_at(sim, rec, 1.0 + i, 100, owd)
        sim.run()
        assert rec.owd_mean() == pytest.approx(0.02)
        assert rec.owd_percentile(50) == pytest.approx(0.02)

    def test_retransmitted_filter(self):
        sim = Simulator()
        rec = FlowRecorder(sim)
        self.record_at(sim, rec, 1.0, 100, 0.01, retx=False)
        self.record_at(sim, rec, 2.0, 100, 0.09, retx=True)
        sim.run()
        assert list(rec.owds(retransmitted_only=True)) == [0.09]
        assert len(rec.owds()) == 2

    def test_total_bytes(self):
        sim = Simulator()
        rec = FlowRecorder(sim)
        self.record_at(sim, rec, 1.0, 700, 0.01)
        self.record_at(sim, rec, 2.0, 300, 0.01)
        sim.run()
        assert rec.total_bytes == 1000

    def test_timeseries_bins(self):
        sim = Simulator()
        rec = FlowRecorder(sim)
        for t in [0.1, 0.2, 1.5]:
            self.record_at(sim, rec, t, 1000, 0.01)
        sim.run()
        centers, thr = rec.throughput_timeseries(bin_s=1.0)
        assert len(centers) == 2
        assert thr[0] == pytest.approx(2000 * 8, rel=0.01)
        assert thr[1] == pytest.approx(1000 * 8, rel=0.01)


class TestCdf:
    def test_empty(self):
        xs, ps = cdf(np.array([]))
        assert len(xs) == 0

    def test_sorted_and_normalised(self):
        xs, ps = cdf(np.array([3.0, 1.0, 2.0]))
        assert list(xs) == [1.0, 2.0, 3.0]
        assert ps[-1] == 1.0
        assert ps[0] == pytest.approx(1 / 3)


class TestTimeSeriesProbe:
    def test_samples_at_interval(self):
        sim = Simulator()
        values = iter(range(100))
        probe = TimeSeriesProbe(sim, 1.0, lambda: next(values))
        sim.run(until=3.5)
        assert probe.times == [1.0, 2.0, 3.0]
        assert probe.values == [0.0, 1.0, 2.0]

    def test_mean_with_start(self):
        sim = Simulator()
        values = iter([10, 20, 30])
        probe = TimeSeriesProbe(sim, 1.0, lambda: next(values))
        sim.run(until=3.5)
        assert probe.mean(t_start=2.0) == pytest.approx(25.0)

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            TimeSeriesProbe(Simulator(), 0.0, lambda: 1)
