"""Sharded engine: jobs-independence, exchange conservation, packet pool.

The headline guarantee of :mod:`repro.shard` is that ``--jobs`` is an
execution knob, not a modelling knob: serial and parallel runs must be
*bit-identical*, and the cross-shard exchange must conserve the global
cache budget byte-for-byte at every epoch boundary.  These tests pin
both, plus the packet freelist's no-stale-state contract that the
sharded engine leans on (pool reuse across thousands of flows).
"""

from __future__ import annotations

import json

import pytest

from repro.common.ranges import ByteRange
from repro.core import wire
from repro.core.wire import DataPacket, Interest, clear_packet_pools, packet_pool_stats
from repro.shard import (
    MIN_CACHE_ALLOC_BYTES,
    ShardPlan,
    apportion,
    run_sharded,
)
from repro.shard.worker import _ShardState

#: Small-but-alive plan: four shards (one faulted), six exchange epochs.
SMALL_PLAN = ShardPlan(n_shards=4, arrivals_per_shard=30, drain_s=2.5)


def _payload(result: dict) -> str:
    """The deterministic part of a run, in canonical form."""
    return json.dumps(
        {"rows": result["rows"], "ledger": result["ledger"]}, sort_keys=True
    )


# ----------------------------------------------------------------------
# apportion: the integer heart of the exchange
# ----------------------------------------------------------------------


def test_apportion_conserves_exactly():
    total = 96 << 20
    weights = [0, 17, 313, 5, 5, 1_000_000, 3]
    shares = apportion(total, weights)
    assert sum(shares) == total
    assert all(s >= 0 for s in shares)


def test_apportion_equal_split_on_zero_weights():
    assert apportion(10, [0, 0, 0]) == [4, 3, 3]  # remainder to low indices


def test_apportion_ties_break_by_index():
    # Equal weights, indivisible remainder: earlier shards get the units.
    assert apportion(7, [1, 1, 1]) == [3, 2, 2]


def test_apportion_edge_cases():
    assert apportion(0, [1, 2]) == [0, 0]
    assert apportion(-5, [1, 2]) == [0, 0]
    assert apportion(100, []) == []
    with pytest.raises(ValueError):
        apportion(10, [1, -1])


# ----------------------------------------------------------------------
# jobs-independence: the tentpole guarantee
# ----------------------------------------------------------------------


def test_sharded_run_bit_identical_across_jobs():
    serial = run_sharded(SMALL_PLAN, jobs=1)
    two = run_sharded(SMALL_PLAN, jobs=2)
    four = run_sharded(SMALL_PLAN, jobs=4)
    assert _payload(serial) == _payload(two) == _payload(four)
    # Sanity: the runs actually did work and finished every flow.
    total = serial["rows"][-1]
    assert total["shard"] == "total"
    assert total["arrivals"] == 4 * 30
    assert total["completed"] + total["aborted"] == total["arrivals"]
    assert serial["events_executed"] > 10_000


def test_sharded_run_repeatable_and_seed_sensitive():
    again = run_sharded(SMALL_PLAN, jobs=1)
    other_seed = run_sharded(
        ShardPlan(n_shards=4, arrivals_per_shard=30, drain_s=2.5, seed=1),
        jobs=1,
    )
    assert _payload(run_sharded(SMALL_PLAN, jobs=1)) == _payload(again)
    assert _payload(again) != _payload(other_seed)


def test_jobs_clamped_to_shard_count():
    result = run_sharded(SMALL_PLAN, jobs=64)
    assert result["jobs"] == SMALL_PLAN.n_shards
    assert _payload(result) == _payload(run_sharded(SMALL_PLAN, jobs=1))


# ----------------------------------------------------------------------
# exchange ledger: conservation at every epoch boundary
# ----------------------------------------------------------------------


def test_ledger_conserves_cache_budget_every_epoch():
    result = run_sharded(SMALL_PLAN, jobs=1)
    ledger = result["ledger"]
    assert len(ledger) == SMALL_PLAN.n_epochs
    for row in ledger:
        assert sum(row["allocations"]) == SMALL_PLAN.global_cache_bytes
        assert all(a >= MIN_CACHE_ALLOC_BYTES for a in row["allocations"])
        assert row["budget_breaches"] == 0


def test_ledger_boundary_identity_links_epochs():
    """stored-before at epoch e's boundary == stored at epoch e-1's end."""
    result = run_sharded(SMALL_PLAN, jobs=1)
    ledger = result["ledger"]
    for prev, cur in zip(ledger, ledger[1:]):
        assert cur["boundary_stored_before"] == prev["stored_bytes"]
        for before, evicted in zip(
            cur["boundary_stored_before"], cur["boundary_evicted_bytes"]
        ):
            assert 0 <= evicted <= before


def test_boundary_shrink_evicts_and_conserves():
    """Forcing a shard far below its occupancy must evict, not breach."""
    state = _ShardState(SMALL_PLAN, index=0)
    state.apply_allocation(SMALL_PLAN.shard_cache_bytes)
    # Cached blocks are per-flow and dropped at retirement, so probe while
    # flows are still live: step until the pool holds forwarded data.
    cache_pool = state.pool.cache_pool
    t = 0.0
    while cache_pool.stored_bytes == 0 and t < 2.0:
        t += 0.05
        state.sim.run(until=t)
    assert cache_pool.stored_bytes > 0  # forwarded data was cached
    before = cache_pool.stored_bytes
    tiny = max(MIN_CACHE_ALLOC_BYTES, before // 4)
    # apply_allocation asserts before == after + evicted internally.
    state.apply_allocation(tiny)
    assert cache_pool.stored_bytes <= tiny
    assert state._boundary_evicted == before - cache_pool.stored_bytes
    assert state._boundary_evicted > 0
    assert state.pool.budget.breaches == 0


# ----------------------------------------------------------------------
# packet freelist: recycled packets carry no stale state
# ----------------------------------------------------------------------


pooled = pytest.mark.skipif(
    not wire._POOL_ENABLED, reason="packet pool disabled via LEOTP_PACKET_POOL=0"
)


@pytest.fixture(autouse=True)
def _clean_pools():
    clear_packet_pools()
    yield
    clear_packet_pools()


@pooled
def test_interest_reuse_has_no_stale_fields():
    first = Interest(
        "flowA", ByteRange(0, 1000), 1.5, 9999.0, is_retransmission=True
    )
    first.hops = 7
    first.src, first.dst = "a", "b"
    old_uid = first.uid
    first.release()
    assert packet_pool_stats()["interest_free"] == 1

    second = Interest("flowB", ByteRange(64, 128), 2.5, 100.0)
    assert second is first  # recycled, not reallocated
    assert packet_pool_stats()["interest_free"] == 0
    assert second.flow_id == "flowB"
    assert second.range == ByteRange(64, 128)
    assert second.timestamp == 2.5
    assert second.created_at == 2.5
    assert second.send_rate_bytes_s == 100.0
    assert second.is_retransmission is False
    assert second.hops == 0
    assert second.src is None and second.dst is None
    assert second.uid != old_uid
    assert second._in_pool is False


@pooled
def test_data_packet_reuse_has_no_stale_fields():
    first = DataPacket(
        "flowA", ByteRange(0, 4096), 1.0,
        is_header=True, origin_ts=0.25, echo_interest_owd=0.1,
        retransmitted=True,
    )
    header_size = first.size_bytes
    first.release()

    second = DataPacket("flowB", ByteRange(0, 500), 3.0)
    assert second is first
    assert second.is_header is False
    assert second.origin_ts == 0.0
    assert second.echo_interest_owd == 0.0
    assert second.retransmitted is False
    assert second.payload_bytes == 500
    assert second.size_bytes == 500 + header_size  # payload + wire header


@pooled
def test_double_release_is_a_noop():
    pkt = Interest("f", ByteRange(0, 10), 0.0, 1.0)
    pkt.release()
    pkt.release()
    assert packet_pool_stats()["interest_free"] == 1
    a = Interest("g", ByteRange(0, 10), 0.0, 1.0)
    b = Interest("h", ByteRange(0, 10), 0.0, 1.0)
    assert a is not b  # the pool held one object, not one per release


@pooled
def test_subclasses_are_never_pooled():
    class TracingInterest(Interest):
        __slots__ = ()

    pkt = TracingInterest("f", ByteRange(0, 10), 0.0, 1.0)
    pkt.release()
    assert packet_pool_stats()["interest_free"] == 0
    # And a pooled base Interest is never handed out as the subclass.
    Interest("f", ByteRange(0, 10), 0.0, 1.0).release()
    assert type(TracingInterest("g", ByteRange(0, 10), 0.0, 1.0)) is TracingInterest
