"""Tests for the experiment harness (utilities plus cheap smoke runs)."""

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.common import (
    ExperimentResult,
    metrics_from_recorder,
    run_leotp_chain,
    run_tcp_chain,
    scaled_duration,
)
from repro.netsim.topology import uniform_chain_specs
from repro.netsim.trace import FlowRecorder
from repro.simcore import Simulator


class TestExperimentResult:
    def make(self):
        res = ExperimentResult("T", "demo")
        res.add(proto="a", thr=1.0)
        res.add(proto="b", thr=2.0)
        return res

    def test_add_and_column(self):
        res = self.make()
        assert res.column("thr") == [1.0, 2.0]

    def test_filtered(self):
        res = self.make()
        assert res.filtered(proto="b")[0]["thr"] == 2.0

    def test_table_renders_all_rows(self):
        res = self.make()
        text = res.table()
        assert "proto" in text and "2.000" in text

    def test_table_handles_missing_keys(self):
        res = ExperimentResult("T", "demo")
        res.add(a=1)
        res.add(b=2)
        text = res.table()
        assert "-" in text

    def test_empty_table(self):
        assert "(no rows)" in ExperimentResult("T", "d").table()


class TestScaledDuration:
    def test_scaling(self):
        assert scaled_duration(20.0, 0.5) == 10.0

    def test_minimum(self):
        assert scaled_duration(20.0, 0.01) == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            scaled_duration(10.0, 0.0)


class TestMetrics:
    def test_metrics_from_recorder(self):
        sim = Simulator()
        rec = FlowRecorder(sim)
        for i in range(10):
            sim.schedule(1.0 + i, rec.on_delivery, 1000, 0.01 * (i + 1), i % 2 == 0)
        sim.run()
        m = metrics_from_recorder(rec, 0.0, 11.0, sender_bytes=123, retransmissions=4)
        assert m.throughput_mbps == pytest.approx(10_000 * 8 / 11.0 / 1e6)
        assert m.owd_mean_ms == pytest.approx(55.0)
        assert m.retx_owd_mean_ms is not None
        assert m.sender_bytes == 123


class TestRunners:
    def test_run_tcp_chain(self):
        metrics, path = run_tcp_chain(
            "reno", uniform_chain_specs(2, rate_bps=10e6), 4.0, seed=1
        )
        assert metrics.throughput_mbps > 1.0
        assert path.sender.wire_bytes_sent > 0

    def test_run_tcp_chain_split(self):
        metrics, path = run_tcp_chain(
            "reno", uniform_chain_specs(2, rate_bps=10e6), 4.0, seed=1, split=True
        )
        assert metrics.throughput_mbps > 1.0

    def test_run_leotp_chain(self):
        metrics, path = run_leotp_chain(
            uniform_chain_specs(2, rate_bps=10e6), 4.0, seed=1
        )
        assert metrics.throughput_mbps > 1.0
        assert path.consumer.bytes_received > 0


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = {
            "fig01", "fig02", "fig03", "fig04", "fig05", "fig10", "fig11",
            "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
            "fig19", "table2", "ablation_vph", "ablation_params",
            "related_snoop", "constellation_study", "ccbench", "chaos",
            "churn", "content_study", "gateway", "multicast", "workload",
            "workload_sharded", "workload_sharded_xl",
        }
        assert set(ALL_EXPERIMENTS) == expected

    def test_chaos_smoke(self):
        # Shape only: the acceptance-level assertions (invariants green,
        # >= 80 % goodput recovery) live in test_chaos_recovery.py at
        # full duration; a 3 s run cannot finish a transfer.
        res = ALL_EXPERIMENTS["chaos"](scale=0.2)
        assert len(res.rows) == 8
        assert {row["protocol"] for row in res.rows} == {"leotp", "tcp-bbr"}
        assert {row["scenario"] for row in res.rows} == {
            "blackout", "flap", "crash", "loss_burst",
        }

    def test_fig01_smoke(self):
        res = ALL_EXPERIMENTS["fig01"](scale=0.05)
        assert len(res.rows) == 9

    def test_gateway_smoke(self):
        res = ALL_EXPERIMENTS["gateway"](scale=0.1)
        assert [row["protocol"] for row in res.rows] == [
            "gateway-cubic", "e2e-cubic", "leotp",
        ]
        gw = res.filtered(protocol="gateway-cubic")[0]
        e2e = res.filtered(protocol="e2e-cubic")[0]
        # The deployment claim: bridging beats end-to-end TCP over the
        # lossy LEO segment.
        assert gw["delivered_mbytes"] > e2e["delivered_mbytes"]

    def test_multicast_smoke(self):
        res = ALL_EXPERIMENTS["multicast"](scale=0.1)
        simultaneous = [row for row in res.rows if row["stagger_s"] == 0.0]
        assert [row["n_consumers"] for row in simultaneous] == [2, 4, 8]
        for row in simultaneous:
            assert row["all_finished"]
            # One upstream copy serves everyone: strictly below unicast.
            assert row["upstream_copies"] < row["n_consumers"]
        staggered = [row for row in res.rows if row["stagger_s"] > 0.0][0]
        assert staggered["cache_hits"] > 0

    def test_churn_smoke(self):
        # Shape + invariants only; the acceptance-level run (>= 10
        # handovers, bit-identity under --jobs 2) is the nightly CI job.
        res = ALL_EXPERIMENTS["churn"](scale=0.2)
        assert res.rows, res.notes
        protos = {row["protocol"] for row in res.rows}
        assert protos == {"leotp", "split-bbr", "bbr", "leotp-pool"}
        for row in res.rows:
            assert row["handovers"] >= 1
            if row["protocol"] != "leotp-pool":
                assert row["invariants_ok"]
                assert row["handovers_measured"] >= 1

    def test_fig03_smoke(self):
        res = ALL_EXPERIMENTS["fig03"](scale=0.05)
        e2e = res.filtered(scheme="end-to-end")[0]
        hbh = res.filtered(scheme="hop-by-hop")[0]
        assert hbh["p99_ms"] < e2e["p99_ms"]


class TestExport:
    def make(self):
        res = ExperimentResult("Fig. X", "demo")
        res.add(proto="a", thr=1.5)
        res.add(proto="b", thr=2.0, extra="y")
        return res

    def test_to_csv(self):
        csv_text = self.make().to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "proto,thr,extra"
        assert lines[1].startswith("a,1.5")

    def test_to_dict_roundtrips_via_json(self):
        import json

        blob = json.dumps(self.make().to_dict())
        back = json.loads(blob)
        assert back["name"] == "Fig. X"
        assert len(back["rows"]) == 2

    def test_save_writes_csv(self, tmp_path):
        path = self.make().save(tmp_path)
        assert path.endswith("fig_x.csv")
        with open(path) as fh:
            assert "proto" in fh.read()


class TestCcbench:
    """Reduced-cost checks of the CC bake-off; the full 2x2x2x6 matrix
    runs in the nightly CI slice."""

    @pytest.fixture(scope="class")
    def restricted(self):
        from repro.experiments.ccbench import run_ccbench
        from repro.tcp.cc import CCSpec

        return run_ccbench(
            scale=0.5, seed=0, cc=CCSpec("orbcc", {"probe_gain": 2.5})
        )

    def test_axes_and_shape(self, restricted):
        rows = restricted.rows
        assert len(rows) == 8  # 2 cadences x 2 loads x 2 losses, one CC
        assert {r["cadence"] for r in rows} == {"low", "high"}
        assert {r["load"] for r in rows} == {"light", "heavy"}
        assert {r["loss"] for r in rows} == {"clean", "burst"}
        assert {r["cc"] for r in rows} == {"orbcc(probe_gain=2.5)"}

    def test_row_columns(self, restricted):
        row = restricted.rows[0]
        for key in (
            "fct_p50_s", "fct_p90_s", "fct_p99_s", "jain_mean",
            "goodput_mbps", "mon_goodput_mbps", "handovers",
            "recovery_mean_ms", "unrecovered", "faults_applied",
        ):
            assert key in row

    def test_churn_applied(self, restricted):
        assert all(r["faults_applied"] > 0 for r in restricted.rows)
        high = [r for r in restricted.rows if r["cadence"] == "high"]
        low = [r for r in restricted.rows if r["cadence"] == "low"]
        assert high[0]["handovers"] > low[0]["handovers"]

    def test_summary_renders(self, restricted):
        from repro.analysis.report import ccbench_summary

        text = ccbench_summary(restricted.rows)
        assert "recovery mean" in text
        assert "per-cell recovery wins" in text

    def test_bit_identical_serial_vs_jobs2(self):
        from repro.experiments.runner import RunSpec, run_experiments

        spec = RunSpec(scale=0.5, seed=0, cc="reno")
        serial = run_experiments(["ccbench"], spec, jobs=1)
        parallel = run_experiments(["ccbench"], spec, jobs=2)
        assert serial[0].result["rows"] == parallel[0].result["rows"]


class TestCcSpecEntryPoints:
    """Every former ``cc_name: str`` entry point takes a CCSpec too."""

    def test_runspec_coerces_and_pickles(self):
        import pickle

        from repro.experiments.runner import RunSpec
        from repro.tcp.cc import CCSpec

        spec = RunSpec(cc="orbcc")
        assert spec.cc == CCSpec("orbcc")
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.cc == spec.cc

    def test_path_spec(self):
        from repro.experiments.common import PathSpec, build_path
        from repro.simcore import RngRegistry, Simulator
        from repro.tcp.cc import CCSpec

        spec = PathSpec(
            protocol="tcp",
            hops=tuple(uniform_chain_specs(2, rate_bps=10e6)),
            cc_name=CCSpec("orbcc", {"hold_s": 0.2}),
        )
        path = build_path(Simulator(), RngRegistry(0), spec)
        assert path.sender.cc.hold_s == 0.2

    def test_build_e2e_and_split(self):
        from repro.simcore import RngRegistry, Simulator
        from repro.tcp import build_e2e_tcp_path, build_split_tcp_path
        from repro.tcp.cc import CCSpec

        hops = uniform_chain_specs(2, rate_bps=10e6)
        spec = CCSpec("cubic")
        e2e = build_e2e_tcp_path(Simulator(), RngRegistry(0), hops, spec)
        assert e2e.sender.cc.name == "cubic"
        split = build_split_tcp_path(Simulator(), RngRegistry(0), hops, spec)
        assert split.sender.cc.name == "cubic"

    def test_flow_pool(self):
        from repro.simcore import RngRegistry, Simulator
        from repro.tcp.cc import CCSpec
        from repro.workload import FlowPool, WorkloadSpec

        sim = Simulator()
        pool = FlowPool(
            sim, RngRegistry(0),
            spec=WorkloadSpec(
                arrival="poisson", rate_per_s=10.0, n_flows=4,
                mean_size_bytes=500_000,
            ),
            hops=uniform_chain_specs(2, rate_bps=10e6),
            protocol=CCSpec("orbcc", {"probe_gain": 2.2}),
            name="ccspec-pool",
        )
        # Stop mid-transfer: completed flows are retired from the live
        # sender map, so probe while at least one is still in flight.
        sim.run(until=0.5)
        assert pool._tcp_senders, "no flows in flight at the probe time"
        sender = next(iter(pool._tcp_senders.values()))
        assert sender.cc.probe_gain == 2.2

    def test_gateway_bridge(self):
        from repro.gateway import build_gateway_path
        from repro.simcore import RngRegistry, Simulator
        from repro.tcp.cc import CCSpec

        path = build_gateway_path(
            Simulator(), RngRegistry(0), 100_000,
            uniform_chain_specs(2, rate_bps=10e6),
            tcp_cc=CCSpec("westwood"),
        )
        assert path.server.cc.name == "westwood"
