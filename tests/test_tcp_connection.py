"""Integration tests for the TCP engine over the network substrate."""

import pytest

from repro.netsim.topology import HopSpec, uniform_chain_specs
from repro.simcore import RngRegistry, Simulator
from repro.tcp import (
    FiniteStream,
    InfiniteStream,
    ProxyStream,
    build_e2e_tcp_path,
    build_split_tcp_path,
)


def run_transfer(n_hops=2, plr=0.0, cc="reno", total=200_000, until=30.0, seed=1,
                 rate=10e6, delay=0.005):
    sim = Simulator()
    rng = RngRegistry(seed)
    path = build_e2e_tcp_path(
        sim, rng,
        uniform_chain_specs(n_hops, rate_bps=rate, delay_s=delay, plr=plr),
        cc, stream=FiniteStream(total),
    )
    sim.run(until=until)
    return sim, path


class TestStreams:
    def test_infinite_stream(self):
        assert InfiniteStream().available_from(10**9) > 0

    def test_finite_stream(self):
        s = FiniteStream(1000)
        assert s.available_from(0) == 1000
        assert s.available_from(900) == 100
        assert s.available_from(2000) == 0

    def test_finite_stream_validation(self):
        with pytest.raises(ValueError):
            FiniteStream(0)

    def test_proxy_stream_order_and_timestamps(self):
        s = ProxyStream()
        s.push(100, 1.0)
        s.push(200, 2.0)
        assert s.available_from(0) == 300
        assert s.timestamp_at(0) == 1.0
        assert s.timestamp_at(150) == 2.0
        assert s.buffered_bytes(250) == 50

    def test_proxy_stream_validation(self):
        with pytest.raises(ValueError):
            ProxyStream().push(0, 1.0)


class TestCleanTransfer:
    def test_completes_and_delivers_all_bytes(self):
        sim, path = run_transfer()
        assert path.sender.finished
        assert path.receiver.bytes_delivered == 200_000

    def test_no_retransmissions_without_loss_or_overflow(self):
        sim, path = run_transfer(total=50_000)
        assert path.sender.retransmissions == 0

    def test_owd_close_to_propagation(self):
        sim, path = run_transfer(total=50_000)
        # 2 hops x 5 ms propagation plus serialisation.
        assert path.recorder.owd_mean() < 0.030

    def test_throughput_reasonable(self):
        sim, path = run_transfer(total=2_000_000, until=10.0)
        elapsed = path.sender.completed_at
        assert elapsed is not None
        assert 2_000_000 * 8 / elapsed > 5e6  # > half the 10 Mbps link


class TestLossyTransfer:
    def test_reliable_despite_loss(self):
        sim, path = run_transfer(n_hops=3, plr=0.02, until=60.0)
        assert path.sender.finished
        assert path.receiver.bytes_delivered == 200_000

    def test_retransmissions_occur(self):
        sim, path = run_transfer(n_hops=3, plr=0.02, until=60.0)
        assert path.sender.retransmissions > 0

    def test_retransmitted_owd_recorded(self):
        sim, path = run_transfer(n_hops=3, plr=0.02, until=60.0)
        retx_owds = path.recorder.owds(retransmitted_only=True)
        assert len(retx_owds) > 0
        # Recovered packets carry at least one extra RTT of delay.
        assert retx_owds.mean() > path.recorder.owds().mean()

    def test_survives_mid_transfer_blackout(self):
        """Flushing in-flight data mid-transfer must not break reliability."""
        sim = Simulator()
        rng = RngRegistry(5)
        path = build_e2e_tcp_path(
            sim, rng, uniform_chain_specs(2, rate_bps=10e6, delay_s=0.005),
            "reno", stream=FiniteStream(500_000),
        )
        def blackout():
            for duplex in path.links:
                duplex.ab.flush(drop_inflight=True)
        sim.schedule(0.15, blackout)
        sim.run(until=40.0)
        assert path.sender.finished
        assert path.receiver.bytes_delivered == 500_000

    def test_tail_loss_recovered_by_rto(self):
        """A transfer whose entire (final) window is lost has no SACK
        feedback left, so only the retransmission timer can recover it."""
        sim = Simulator()
        rng = RngRegistry(6)
        path = build_e2e_tcp_path(
            sim, rng, uniform_chain_specs(1, rate_bps=10e6, delay_s=0.005),
            "reno", stream=FiniteStream(5 * 1400),
        )
        # The whole 5-segment transfer fits in the initial window; flush it
        # all while in flight.
        sim.schedule(0.004, lambda: path.links[0].ab.flush(drop_inflight=True))
        sim.run(until=20.0)
        assert path.sender.timeouts >= 1
        assert path.sender.finished

    def test_receiver_deduplicates(self):
        sim, path = run_transfer(n_hops=3, plr=0.05, until=120.0, total=100_000)
        assert path.receiver.bytes_delivered == 100_000


class TestAckPath:
    def test_ack_loss_tolerated(self):
        """Lossy reverse path only: cumulative ACKs cover the gaps."""
        sim = Simulator()
        rng = RngRegistry(9)
        # Forward clean; reverse lossy (same plr applies both ways here, so
        # use a moderate value).
        path = build_e2e_tcp_path(
            sim, rng, uniform_chain_specs(2, rate_bps=10e6, delay_s=0.005, plr=0.01),
            "reno", stream=FiniteStream(150_000),
        )
        sim.run(until=60.0)
        assert path.sender.finished


class TestSplitTcp:
    def test_end_to_end_delivery_through_proxies(self):
        sim = Simulator()
        rng = RngRegistry(2)
        split = build_split_tcp_path(
            sim, rng, uniform_chain_specs(3, rate_bps=10e6, delay_s=0.005),
            "reno", stream=FiniteStream(200_000),
        )
        sim.run(until=30.0)
        assert split.receiver.bytes_delivered == 200_000

    def test_owd_spans_whole_path(self):
        """Bytes carry origin timestamps across proxies, so measured OWD
        covers all hops, not just the last connection."""
        sim = Simulator()
        rng = RngRegistry(2)
        from repro.netsim.trace import FlowRecorder

        rec = FlowRecorder(sim)
        split = build_split_tcp_path(
            sim, rng, uniform_chain_specs(3, rate_bps=10e6, delay_s=0.010),
            "reno", stream=FiniteStream(100_000), recorder=rec,
        )
        sim.run(until=30.0)
        # 3 hops x 10 ms = 30 ms propagation minimum.
        assert rec.owd_mean() >= 0.030

    def test_split_beats_e2e_on_lossy_path(self):
        """The Fig. 4 effect: splitting improves loss-based throughput."""
        total, until = 400_000, 120.0
        sim1 = Simulator()
        e2e = build_e2e_tcp_path(
            sim1, RngRegistry(3),
            uniform_chain_specs(4, rate_bps=10e6, delay_s=0.005, plr=0.01),
            "reno", stream=FiniteStream(total),
        )
        sim1.run(until=until)
        sim2 = Simulator()
        split = build_split_tcp_path(
            sim2, RngRegistry(3),
            uniform_chain_specs(4, rate_bps=10e6, delay_s=0.005, plr=0.01),
            "reno", stream=FiniteStream(total),
        )
        sim2.run(until=until)
        assert split.receiver.bytes_delivered >= e2e.receiver.bytes_delivered

    def test_proxy_backlog_measurable(self):
        sim = Simulator()
        rng = RngRegistry(4)
        # Fast first hop, slow second: backlog must accumulate at proxy.
        hops = [
            HopSpec(rate_bps=50e6, delay_s=0.002),
            HopSpec(rate_bps=2e6, delay_s=0.002),
        ]
        split = build_split_tcp_path(sim, rng, hops, "reno")
        sim.run(until=3.0)
        assert split.total_proxy_backlog_bytes > 0


class TestSenderChurn:
    def make_path(self, cc="orbcc", until=2.0):
        sim = Simulator()
        rng = RngRegistry(7)
        path = build_e2e_tcp_path(
            sim, rng, uniform_chain_specs(2, rate_bps=10e6, delay_s=0.005),
            cc, stream=FiniteStream(5_000_000),
        )
        sim.run(until=until)
        return sim, path

    def test_stop_quiesces_sender(self):
        sim, path = self.make_path(cc="reno")
        sent_at_stop = path.sender.wire_bytes_sent
        path.sender.stop()
        assert not path.sender._rto_timer.armed
        sim.run(until=sim.now + 3.0)
        assert path.sender.wire_bytes_sent == sent_at_stop

    def test_churn_rearm_pulls_rto_in(self):
        # orbcc declares churn_rearm_rto + a fast-repair deadline: the
        # signal may only move a pending timer EARLIER, never later.
        sim, path = self.make_path(cc="orbcc")
        sender = path.sender
        assert sender._rto_timer.armed
        before = sender._rto_timer.expiry
        sender.notify_churn("PathSwitch")
        after = sender._rto_timer.expiry
        assert after <= before
        assert after <= sim.now + sender.cc.churn_retx_delay_s + sender.rto.rto_s

    def test_reno_ignores_churn_timer(self):
        sim, path = self.make_path(cc="reno")
        sender = path.sender
        before = sender._rto_timer.expiry
        sender.notify_churn("PathSwitch")
        assert sender._rto_timer.expiry == before

    def test_notify_churn_after_finish_is_noop(self):
        sim, path = self.make_path(cc="reno", until=40.0)
        assert path.sender.finished
        path.sender.notify_churn("PathSwitch")  # must not raise or rearm
        assert not path.sender._rto_timer.armed

    def test_churn_signal_reaches_cc(self):
        sim, path = self.make_path(cc="orbcc")
        assert path.sender.cc.churn_resets == 0
        path.sender.notify_churn("GsReattach")
        assert path.sender.cc.churn_resets == 1
