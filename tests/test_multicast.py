"""Tests for the multicast extension (Interest aggregation + fan-out)."""

import pytest

from repro.core import Consumer, LeotpConfig, MulticastMidnode, Producer
from repro.netsim.link import DuplexLink
from repro.netsim.trace import FlowRecorder
from repro.simcore import Simulator


def build_multicast_tree(sim, n_consumers=2, total=50 * 1400, stagger=0.0):
    """n consumers <- midnode <- producer, all requesting the same flow.

    Returns the links too (upstream first, then one access link per
    consumer) so fault schedules can target them by position.
    """
    config = LeotpConfig()
    producer = Producer(sim, "prod", config, content_bytes=total)
    midnode = MulticastMidnode(sim, "mid", config)
    up = DuplexLink(sim, producer, midnode, rate_bps=20e6, delay_s=0.010)
    midnode.set_upstream(up.ba)
    consumers, recorders, links = [], [], [up]
    for i in range(n_consumers):
        recorder = FlowRecorder(sim, name=f"c{i}")
        consumer = Consumer(
            sim, f"c{i}", "shared-flow", config,
            total_bytes=total, recorder=recorder,
            start_time=i * stagger,
        )
        access = DuplexLink(sim, midnode, consumer, rate_bps=20e6, delay_s=0.002)
        consumer.out_link = access.ba
        consumers.append(consumer)
        recorders.append(recorder)
        links.append(access)
    return producer, midnode, consumers, recorders, links


class TestMulticast:
    def test_both_consumers_complete(self):
        sim = Simulator()
        producer, midnode, consumers, _, _ = build_multicast_tree(sim)
        sim.run(until=30.0)
        assert all(c.finished for c in consumers)

    def test_simultaneous_requests_are_aggregated(self):
        sim = Simulator()
        producer, midnode, consumers, _, _ = build_multicast_tree(sim)
        sim.run(until=30.0)
        assert midnode.interests_aggregated > 0
        assert midnode.fanout_packets > 0

    def test_upstream_traffic_shared(self):
        """Two simultaneous consumers should cost the producer much less
        than two full transfers (the paper's multicast benefit)."""
        total = 100 * 1400
        sim = Simulator()
        producer, midnode, consumers, _, _ = build_multicast_tree(
            sim, n_consumers=2, total=total
        )
        sim.run(until=60.0)
        assert all(c.finished for c in consumers)
        # Strictly fewer bytes than serving both copies from the source.
        assert producer.wire_bytes_sent < 1.7 * total

    def test_staggered_consumer_served_from_cache(self):
        """A consumer arriving later is served from the Midnode's cache,
        costing the producer almost nothing extra."""
        total = 50 * 1400
        sim = Simulator()
        producer, midnode, consumers, _, _ = build_multicast_tree(
            sim, n_consumers=2, total=total, stagger=5.0,
        )
        sim.run(until=60.0)
        assert all(c.finished for c in consumers)
        assert midnode.cache.stats.hits > 0
        assert producer.wire_bytes_sent < 1.5 * total

    def test_retransmission_interests_bypass_pit(self):
        sim = Simulator()
        producer, midnode, consumers, _, _ = build_multicast_tree(sim)
        sim.run(until=30.0)
        # Reliability invariant: every byte reached every consumer exactly
        # once even with aggregation in the path.
        for consumer in consumers:
            assert consumer.bytes_received == 50 * 1400

    def test_pit_expiry(self):
        sim = Simulator()
        config = LeotpConfig()
        midnode = MulticastMidnode(sim, "mid", config)
        from repro.common.ranges import ByteRange
        from repro.core.multicast import _PitEntry

        midnode._pit[("f", 0)] = _PitEntry(ByteRange(0, 1400), [], created_at=0.0)
        sim.schedule(MulticastMidnode.PIT_TIMEOUT_S + 1.0, lambda: None)
        sim.run()
        assert midnode.expire_pit() == 1
        assert midnode._pit == {}


class _MulticastChaosPath:
    """Adapter exposing the multicast tree through the chaos path protocol.

    ``run_leotp_chaos`` arms invariants on ``consumer`` (the first one)
    and registers ``links``/``intermediates``/``consumers`` with the
    fault injector; the extra consumers ride along for post-run asserts.
    """

    def __init__(self, producer, midnode, consumers, recorders, links):
        self.producer = producer
        self.consumer = consumers[0]
        self.consumers = consumers
        self.intermediates = [midnode]
        self.midnodes = [midnode]
        self.recorder = recorders[0]
        self.links = links


class TestMulticastChaos:
    """Fault injection on the multicast tree (blackout + midnode crash)."""

    def _builder(self, total=50 * 1400):
        def build(sim, rng):
            return _MulticastChaosPath(*build_multicast_tree(sim, total=total))

        return build

    def test_upstream_blackout_recovers(self):
        from repro.faults import FaultSchedule, LinkDown, run_leotp_chaos

        schedule = FaultSchedule([
            LinkDown(at_s=0.3, link="hop0", duration_s=0.4),
        ])
        result = run_leotp_chaos(
            schedule, duration_s=30.0, seed=3, builder=self._builder()
        )
        result.assert_ok()
        assert result.completed
        # Every consumer (not just the monitored one) got the whole flow.
        assert all(c.finished for c in result.path.consumers)
        assert any("hop0 DOWN" in action for _, action in result.fault_log)

    def test_midnode_crash_recovers(self):
        from repro.faults import FaultSchedule, NodeCrash, run_leotp_chaos

        schedule = FaultSchedule([
            NodeCrash(at_s=0.3, node="mid", restart_after_s=0.4),
        ])
        result = run_leotp_chaos(
            schedule, duration_s=30.0, seed=3, builder=self._builder()
        )
        result.assert_ok()
        assert all(c.finished for c in result.path.consumers)
        actions = [action for _, action in result.fault_log]
        assert any("mid CRASHED" in a for a in actions)
        assert any("mid restarted" in a for a in actions)
