"""Tests for the multicast extension (Interest aggregation + fan-out)."""

import pytest

from repro.core import Consumer, LeotpConfig, MulticastMidnode, Producer
from repro.netsim.link import DuplexLink
from repro.netsim.trace import FlowRecorder
from repro.simcore import Simulator


def build_multicast_tree(sim, n_consumers=2, total=50 * 1400, stagger=0.0):
    """n consumers <- midnode <- producer, all requesting the same flow."""
    config = LeotpConfig()
    producer = Producer(sim, "prod", config, content_bytes=total)
    midnode = MulticastMidnode(sim, "mid", config)
    up = DuplexLink(sim, producer, midnode, rate_bps=20e6, delay_s=0.010)
    midnode.set_upstream(up.ba)
    consumers, recorders = [], []
    for i in range(n_consumers):
        recorder = FlowRecorder(sim, name=f"c{i}")
        consumer = Consumer(
            sim, f"c{i}", "shared-flow", config,
            total_bytes=total, recorder=recorder,
            start_time=i * stagger,
        )
        access = DuplexLink(sim, midnode, consumer, rate_bps=20e6, delay_s=0.002)
        consumer.out_link = access.ba
        consumers.append(consumer)
        recorders.append(recorder)
    return producer, midnode, consumers, recorders


class TestMulticast:
    def test_both_consumers_complete(self):
        sim = Simulator()
        producer, midnode, consumers, _ = build_multicast_tree(sim)
        sim.run(until=30.0)
        assert all(c.finished for c in consumers)

    def test_simultaneous_requests_are_aggregated(self):
        sim = Simulator()
        producer, midnode, consumers, _ = build_multicast_tree(sim)
        sim.run(until=30.0)
        assert midnode.interests_aggregated > 0
        assert midnode.fanout_packets > 0

    def test_upstream_traffic_shared(self):
        """Two simultaneous consumers should cost the producer much less
        than two full transfers (the paper's multicast benefit)."""
        total = 100 * 1400
        sim = Simulator()
        producer, midnode, consumers, _ = build_multicast_tree(
            sim, n_consumers=2, total=total
        )
        sim.run(until=60.0)
        assert all(c.finished for c in consumers)
        # Strictly fewer bytes than serving both copies from the source.
        assert producer.wire_bytes_sent < 1.7 * total

    def test_staggered_consumer_served_from_cache(self):
        """A consumer arriving later is served from the Midnode's cache,
        costing the producer almost nothing extra."""
        total = 50 * 1400
        sim = Simulator()
        producer, midnode, consumers, _ = build_multicast_tree(
            sim, n_consumers=2, total=total, stagger=5.0,
        )
        sim.run(until=60.0)
        assert all(c.finished for c in consumers)
        assert midnode.cache.stats.hits > 0
        assert producer.wire_bytes_sent < 1.5 * total

    def test_retransmission_interests_bypass_pit(self):
        sim = Simulator()
        producer, midnode, consumers, _ = build_multicast_tree(sim)
        sim.run(until=30.0)
        # Reliability invariant: every byte reached every consumer exactly
        # once even with aggregation in the path.
        for consumer in consumers:
            assert consumer.bytes_received == 50 * 1400

    def test_pit_expiry(self):
        sim = Simulator()
        config = LeotpConfig()
        midnode = MulticastMidnode(sim, "mid", config)
        from repro.common.ranges import ByteRange
        from repro.core.multicast import _PitEntry

        midnode._pit[("f", 0)] = _PitEntry(ByteRange(0, 1400), [], created_at=0.0)
        sim.schedule(MulticastMidnode.PIT_TIMEOUT_S + 1.0, lambda: None)
        sim.run()
        assert midnode.expire_pit() == 1
        assert midnode._pit == {}
