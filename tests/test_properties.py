"""Cross-cutting property-based tests on core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.ranges import ByteRange, RangeSet
from repro.core import BlockCache, TokenBucket
from repro.simcore import Simulator

ranges = st.tuples(
    st.integers(min_value=0, max_value=20_000),
    st.integers(min_value=1, max_value=3_000),
).map(lambda t: ByteRange(t[0], t[0] + t[1]))


@settings(max_examples=100, deadline=None)
@given(
    stores=st.lists(st.tuples(ranges, st.floats(0, 100)), max_size=20),
    query=ranges,
)
def test_cache_lookup_returns_only_stored_bytes(stores, query):
    """Every byte a lookup returns must have been stored, results must be
    disjoint, and all of them must lie inside the queried range."""
    cache = BlockCache(capacity_bytes=1 << 22, block_bytes=4096)
    stored = RangeSet()
    for rng, ts in stores:
        cache.store("f", rng, ts)
        stored.add(rng)
    hits = cache.lookup("f", query)
    seen = RangeSet()
    for rng, _ in hits:
        assert query.contains(rng)
        assert stored.contains(rng)
        assert not seen.overlaps(rng), "lookup results overlap"
        seen.add(rng)


@settings(max_examples=100, deadline=None)
@given(
    stores=st.lists(st.tuples(ranges, st.floats(0, 100)), max_size=20),
    query=ranges,
)
def test_cache_lookup_is_complete(stores, query):
    """A lookup returns *all* cached bytes of the query (no false misses),
    provided nothing was evicted (capacity is ample here)."""
    cache = BlockCache(capacity_bytes=1 << 22, block_bytes=4096)
    stored = RangeSet()
    for rng, ts in stores:
        cache.store("f", rng, ts)
        stored.add(rng)
    hits = cache.lookup("f", query)
    total_hit = sum(r.length for r, _ in hits)
    expected = query.length - sum(
        h.length for h in stored.missing_within(query)
    )
    assert total_hit == expected


@settings(max_examples=60, deadline=None)
@given(
    consumes=st.lists(st.integers(min_value=1, max_value=4_000), max_size=30),
    rate=st.floats(min_value=100.0, max_value=1e6),
)
def test_token_bucket_never_exceeds_budget(consumes, rate):
    """Tokens granted can never exceed burst + rate * elapsed."""
    sim = Simulator()
    burst = 5_000.0
    bucket = TokenBucket(sim, rate, burst_bytes=burst)
    granted = 0
    t = 0.0
    for i, nbytes in enumerate(consumes):
        t += 0.01
        sim.schedule_at(t, lambda: None)
        sim.run(until=t)
        if bucket.try_consume(nbytes):
            granted += nbytes
        assert granted <= burst + rate * t + 1e-6


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=1e-4, max_value=5.0), min_size=1, max_size=50))
def test_rto_estimator_stays_in_bounds(samples):
    from repro.common.rto import RtoEstimator

    est = RtoEstimator(min_rto_s=0.1, max_rto_s=10.0)
    for s in samples:
        est.on_sample(s)
        assert 0.1 <= est.rto_s <= 10.0
        assert est.srtt_s is not None and est.srtt_s > 0
