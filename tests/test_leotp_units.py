"""Unit tests for LEOTP components: wire formats, SHR, cache, pacing, CC."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.ranges import ByteRange
from repro.core import (
    BlockCache,
    DataPacket,
    HopRateController,
    Interest,
    LeotpConfig,
    PacedSender,
    SeqHoleDetector,
    TokenBucket,
    midnode_positions,
)
from repro.core.config import LEOTP_HEADER_BYTES, UDP_IP_OVERHEAD_BYTES
from repro.core.congestion import CONGESTION_AVOIDANCE, SLOW_START
from repro.netsim.link import Link
from repro.netsim.node import SinkNode
from repro.simcore import Simulator


class TestWireFormats:
    def test_interest_size_is_header_only(self):
        interest = Interest("f", ByteRange(0, 1400), 0.0, 1e6)
        assert interest.size_bytes == LEOTP_HEADER_BYTES + UDP_IP_OVERHEAD_BYTES

    def test_data_size_includes_payload(self):
        data = DataPacket("f", ByteRange(0, 1400), 0.0)
        assert data.size_bytes == 1400 + LEOTP_HEADER_BYTES + UDP_IP_OVERHEAD_BYTES
        assert data.payload_bytes == 1400

    def test_vph_has_no_payload(self):
        vph = DataPacket("f", ByteRange(0, 1400), 0.0, is_header=True)
        assert vph.size_bytes == LEOTP_HEADER_BYTES + UDP_IP_OVERHEAD_BYTES
        assert vph.payload_bytes == 0

    def test_forwarded_interest_restamps(self):
        interest = Interest("f", ByteRange(0, 100), 1.0, 1e6, is_retransmission=True)
        fwd = interest.forwarded(2.0, 2e6)
        assert fwd.timestamp == 2.0
        assert fwd.send_rate_bytes_s == 2e6
        assert fwd.is_retransmission
        assert fwd is not interest

    def test_forwarded_data_preserves_origin(self):
        data = DataPacket("f", ByteRange(0, 100), 1.0, origin_ts=0.5, retransmitted=True)
        fwd = data.forwarded(2.0, 0.01)
        assert fwd.origin_ts == 0.5
        assert fwd.retransmitted
        assert fwd.echo_interest_owd == 0.01

    def test_config_packet_sizes(self):
        cfg = LeotpConfig(mss=1000)
        assert cfg.data_packet_bytes == 1000 + 15 + 28
        assert cfg.interest_packet_bytes == 43


class TestSeqHoleDetector:
    def test_in_sequence_passes_through(self):
        shr = SeqHoleDetector()
        actions = shr.on_packet(ByteRange(0, 100))
        assert actions.announce == [] and actions.request == []
        assert shr.last_byte == 100

    def test_gap_announces_hole(self):
        shr = SeqHoleDetector()
        shr.on_packet(ByteRange(0, 100))
        actions = shr.on_packet(ByteRange(200, 300))
        assert actions.announce == [ByteRange(100, 200)]

    def test_hole_requested_after_threshold(self):
        shr = SeqHoleDetector(disorder_threshold=3)
        shr.on_packet(ByteRange(0, 100))
        shr.on_packet(ByteRange(200, 300))  # hole [100,200) detected
        requests = []
        for start in (300, 400, 500, 600):
            actions = shr.on_packet(ByteRange(start, start + 100))
            requests.extend(actions.request)
        assert requests == [ByteRange(100, 200)]

    def test_hole_not_requested_for_mild_disorder(self):
        shr = SeqHoleDetector(disorder_threshold=3)
        shr.on_packet(ByteRange(0, 100))
        shr.on_packet(ByteRange(200, 300))
        shr.on_packet(ByteRange(300, 400))
        actions = shr.on_packet(ByteRange(100, 200))  # late arrival fills it
        assert actions.request == []
        assert shr.open_holes == []

    def test_late_packet_partially_fills_hole(self):
        shr = SeqHoleDetector()
        shr.on_packet(ByteRange(0, 100))
        shr.on_packet(ByteRange(400, 500))  # hole [100,400)
        shr.on_packet(ByteRange(200, 300))  # middle chunk arrives late
        assert shr.open_holes == [ByteRange(100, 200), ByteRange(300, 400)]

    def test_vph_range_counts_as_seen(self):
        """Receiving a VPH for a hole suppresses this node's own request —
        the upstream node already took responsibility (paper Fig. 8b)."""
        shr = SeqHoleDetector(disorder_threshold=3)
        shr.on_packet(ByteRange(0, 100))
        # VPH for [100, 200) arrives *before* the out-of-order data.
        shr.on_packet(ByteRange(100, 200))
        requests = []
        for start in (200, 300, 400, 500, 600):
            requests.extend(shr.on_packet(ByteRange(start, start + 100)).request)
        assert requests == []

    def test_request_removes_hole_tracking(self):
        shr = SeqHoleDetector(disorder_threshold=1)
        shr.on_packet(ByteRange(0, 100))
        shr.on_packet(ByteRange(200, 300))
        shr.on_packet(ByteRange(300, 400))
        actions = shr.on_packet(ByteRange(400, 500))
        assert actions.request == [ByteRange(100, 200)]
        assert shr.open_holes == []  # SHR does not track outcomes

    def test_max_holes_bound(self):
        shr = SeqHoleDetector(max_holes=2)
        pos = 0
        for i in range(5):
            pos += 200
            shr.on_packet(ByteRange(pos, pos + 100))
        assert len(shr.open_holes) <= 2

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            SeqHoleDetector(disorder_threshold=0)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.integers(min_value=0, max_value=30),
        min_size=1, max_size=30, unique=True,
    )
)
def test_shr_never_requests_received_bytes(order):
    """Property: SHR never requests a byte range it has already seen."""
    shr = SeqHoleDetector(disorder_threshold=2)
    seen = set()
    requested = []
    for idx in order:
        rng = ByteRange(idx * 100, (idx + 1) * 100)
        actions = shr.on_packet(rng)
        seen.add(idx)
        requested.extend(actions.request)
        for req in actions.request:
            covered = set(range(req.start // 100, req.end // 100))
            assert not (covered & seen), f"requested already-seen data {req}"


class TestBlockCache:
    def test_store_and_full_hit(self):
        cache = BlockCache(1 << 20, 4096)
        cache.store("f", ByteRange(0, 1400), 1.0)
        hits = cache.lookup("f", ByteRange(0, 1400))
        assert [(h[0], h[1]) for h in hits] == [(ByteRange(0, 1400), 1.0)]

    def test_miss(self):
        cache = BlockCache(1 << 20, 4096)
        assert cache.lookup("f", ByteRange(0, 100)) == []

    def test_partial_hit(self):
        cache = BlockCache(1 << 20, 4096)
        cache.store("f", ByteRange(0, 1000), 1.0)
        hits = cache.lookup("f", ByteRange(500, 1500))
        assert len(hits) == 1
        assert hits[0][0] == ByteRange(500, 1000)

    def test_cross_block_range(self):
        cache = BlockCache(1 << 20, 4096)
        cache.store("f", ByteRange(4000, 4200), 2.0)  # spans blocks 0 and 1
        hits = cache.lookup("f", ByteRange(4000, 4200))
        total = sum(h[0].length for h in hits)
        assert total == 200

    def test_flows_are_isolated(self):
        cache = BlockCache(1 << 20, 4096)
        cache.store("a", ByteRange(0, 100), 1.0)
        assert cache.lookup("b", ByteRange(0, 100)) == []

    def test_contains(self):
        cache = BlockCache(1 << 20, 4096)
        cache.store("f", ByteRange(0, 1000), 1.0)
        assert cache.contains("f", ByteRange(100, 900))
        assert not cache.contains("f", ByteRange(900, 1100))

    def test_lru_eviction(self):
        cache = BlockCache(capacity_bytes=8192, block_bytes=4096)
        cache.store("f", ByteRange(0, 4096), 1.0)       # block 0
        cache.store("f", ByteRange(4096, 8192), 2.0)    # block 1
        cache.lookup("f", ByteRange(0, 100))            # touch block 0
        cache.store("f", ByteRange(8192, 12288), 3.0)   # evicts block 1 (LRU)
        assert cache.lookup("f", ByteRange(4096, 4196)) == []
        assert cache.lookup("f", ByteRange(0, 100)) != []

    def test_newest_store_wins_on_overlap(self):
        cache = BlockCache(1 << 20, 4096)
        cache.store("f", ByteRange(0, 100), 1.0)
        cache.store("f", ByteRange(0, 100), 9.0)
        hits = cache.lookup("f", ByteRange(0, 100))
        assert hits[0][1] == 9.0

    def test_compaction_preserves_coverage(self):
        cache = BlockCache(1 << 20, 4096)
        for i in range(100):  # > MAX_ORIGINS_PER_BLOCK inserts in one block
            cache.store("f", ByteRange(i * 40, i * 40 + 40), float(i))
        hits = cache.lookup("f", ByteRange(0, 4000))
        assert sum(h[0].length for h in hits) == 4000

    def test_stats(self):
        cache = BlockCache(1 << 20, 4096)
        cache.store("f", ByteRange(0, 100), 1.0)
        cache.lookup("f", ByteRange(0, 100))
        cache.lookup("f", ByteRange(500, 600))
        assert cache.stats.hits == 1
        assert cache.stats.lookups == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockCache(0, 4096)


class TestTokenBucket:
    def test_burst_allows_immediate_send(self):
        sim = Simulator()
        bucket = TokenBucket(sim, 1000.0, burst_bytes=3000.0)
        assert bucket.try_consume(2000)

    def test_exhausted_bucket_blocks(self):
        sim = Simulator()
        bucket = TokenBucket(sim, 1000.0, burst_bytes=1000.0)
        assert bucket.try_consume(1000)
        assert not bucket.try_consume(1)

    def test_replenishes_at_rate(self):
        sim = Simulator()
        bucket = TokenBucket(sim, 1000.0, burst_bytes=1000.0)
        bucket.try_consume(1000)
        sim.schedule(0.5, lambda: None)
        sim.run()
        assert bucket.try_consume(500)
        assert not bucket.try_consume(200)

    def test_delay_until_available(self):
        sim = Simulator()
        bucket = TokenBucket(sim, 1000.0, burst_bytes=1000.0)
        bucket.try_consume(1000)
        assert bucket.delay_until_available(500) == pytest.approx(0.5)

    def test_set_rate(self):
        sim = Simulator()
        bucket = TokenBucket(sim, 1000.0)
        bucket.set_rate(2000.0)
        assert bucket.rate_bytes_s == 2000.0
        with pytest.raises(ValueError):
            bucket.set_rate(0.0)


class TestPacedSender:
    def make(self, sim, paced=True, rate=14_000.0):
        sink = SinkNode(sim)
        link = Link(sim, sink, rate_bps=100e6, delay_s=0.0)
        sender = PacedSender(
            sim, stamp=lambda p: p, paced=paced,
            initial_rate_bytes_s=rate, burst_bytes=1500.0,
        )
        return sender, link, sink

    def packet(self):
        return DataPacket("f", ByteRange(0, 1400), 0.0)

    def test_paced_spacing(self):
        sim = Simulator()
        sender, link, sink = self.make(sim, rate=14_430.0)  # ~10 pkt/s
        for _ in range(3):
            sender.enqueue(self.packet(), link)
        sim.run(until=1.0)
        assert len(sink.received) >= 2
        gaps = [b - a for a, b in zip(sink.receive_times, sink.receive_times[1:])]
        for gap in gaps:
            assert gap == pytest.approx(1443 / 14_430.0, rel=0.05)

    def test_unpaced_drains_immediately(self):
        sim = Simulator()
        sender, link, sink = self.make(sim, paced=False)
        for _ in range(5):
            sender.enqueue(self.packet(), link)
        sim.run(until=0.01)
        assert len(sink.received) == 5

    def test_backlog_tracking(self):
        sim = Simulator()
        sender, link, sink = self.make(sim, rate=100.0)
        sender.enqueue(self.packet(), link)
        sender.enqueue(self.packet(), link)
        assert sender.backlog_packets >= 1
        assert sender.backlog_bytes > 0

    def test_buffer_overflow_drops(self):
        sim = Simulator()
        sink = SinkNode(sim)
        link = Link(sim, sink, rate_bps=100e6, delay_s=0.0)
        sender = PacedSender(
            sim, stamp=lambda p: p, initial_rate_bytes_s=1.0,
            burst_bytes=1500.0, max_buffer_bytes=2000,
        )
        ok = [sender.enqueue(self.packet(), link) for _ in range(4)]
        assert not all(ok)
        assert sender.packets_dropped >= 1


class TestHopRateController:
    def feed(self, cc, sim, rate_bytes_s, rtt, seconds, queue_delay=0.0):
        """Advance simulated time, feeding steady deliveries."""
        interval = 0.005
        t = sim.now
        end = t + seconds
        while t < end:
            t += interval
            sim.schedule_at(t, lambda: None)
            sim.run(until=t)
            cc.on_data(int(rate_bytes_s * interval), rtt + queue_delay)

    def test_slow_start_doubles_with_deliveries(self):
        sim = Simulator()
        cc = HopRateController(sim, LeotpConfig())
        w0 = cc.cwnd_bytes
        self.feed(cc, sim, 10e6 / 8, 0.02, 0.08)
        # Grows while deliveries keep up; may exit slow start via the
        # full-pipe check once deliveries stop tracking the window.
        assert cc.cwnd_bytes > w0

    def test_queue_triggers_backoff(self):
        sim = Simulator()
        cfg = LeotpConfig()
        cc = HopRateController(sim, cfg)
        self.feed(cc, sim, 20e6 / 8, 0.02, 0.3)
        cwnd_before = cc.cwnd_bytes
        # Now inject sustained queueing delay well above threshold M.
        self.feed(cc, sim, 20e6 / 8, 0.02, 0.3, queue_delay=0.01)
        assert cc.state == CONGESTION_AVOIDANCE
        assert cc.congestion_events >= 1
        assert cc.cwnd_bytes < cwnd_before

    def test_backpressure_none_for_endpoint(self):
        cc = HopRateController(Simulator(), LeotpConfig())
        assert cc.backpressure_rate() is None

    def test_backpressure_formula(self):
        cfg = LeotpConfig()
        backlog = [cfg.buffer_target_bytes + 14_000]
        cc = HopRateController(Simulator(), cfg, buffer_len_fn=lambda: backlog[0])
        cc.next_hop_rate_bytes_s = 1_000_000.0
        cc.hoprtt_s = 0.02
        bp = cc.backpressure_rate()
        expected = 1_000_000.0 + cfg.backpressure_gain * (-14_000) / 0.02
        assert bp == pytest.approx(expected)

    def test_backpressure_caps_rate(self):
        cfg = LeotpConfig()
        backlog = [cfg.buffer_target_bytes * 100]
        cc = HopRateController(Simulator(), cfg, buffer_len_fn=lambda: backlog[0])
        cc.next_hop_rate_bytes_s = 1_000_000.0
        cc.hoprtt_s = 0.02
        assert cc.sending_rate_bytes_s() == cfg.min_rate_bytes_s

    def test_rate_floor(self):
        cc = HopRateController(Simulator(), LeotpConfig())
        cc.cwnd_bytes = 1.0
        assert cc.sending_rate_bytes_s() == LeotpConfig().min_rate_bytes_s


class TestMidnodePositions:
    def test_full_coverage(self):
        assert midnode_positions(4, 1.0) == [True] * 4

    def test_zero_coverage(self):
        assert midnode_positions(4, 0.0) == [False] * 4

    def test_quarter_coverage_evenly_spread(self):
        flags = midnode_positions(8, 0.25)
        assert sum(flags) == 2
        assert flags[3] and flags[7]

    def test_empty(self):
        assert midnode_positions(0, 0.5) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            midnode_positions(4, 1.5)
