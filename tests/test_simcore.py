"""Tests for the discrete-event kernel: scheduling, timers, RNG streams."""

import pytest

from repro.simcore import (
    PeriodicProcess,
    RngRegistry,
    SimulationError,
    Simulator,
    Timer,
)


class TestSimulatorScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "b")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(3.0, fired.append, "c")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for tag in range(5):
            sim.schedule(1.0, fired.append, tag)
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_priority_breaks_ties(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "low", priority=5)
        sim.schedule(1.0, fired.append, "high", priority=1)
        sim.run()
        assert fired == ["high", "low"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]
        assert sim.now == 1.5

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(5.0, fired.append, "late")
        sim.run(until=2.0)
        assert fired == ["early"]
        assert sim.now == 2.0  # clock advanced to the boundary

    def test_run_until_is_resumable(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(3.0, fired.append, 3)
        sim.run(until=2.0)
        sim.run(until=4.0)
        assert fired == [1, 3]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_events_scheduled_during_execution_fire(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_max_events_limits_execution(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=4)
        assert fired == [0, 1, 2, 3]

    def test_step_executes_single_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        assert sim.step() is True
        assert fired == ["a"]
        assert sim.step() is True
        assert sim.step() is False

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        e1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        e1.cancel()
        assert sim.peek_time() == 2.0

    def test_events_executed_counter(self):
        sim = Simulator()
        for i in range(3):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_executed == 3


class TestTimer:
    def test_fires_after_delay(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.arm(2.0)
        sim.run()
        assert fired == [2.0]

    def test_rearm_replaces_expiry(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.arm(1.0)
        timer.arm(3.0)
        sim.run()
        assert fired == [3.0]

    def test_cancel_prevents_fire(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.arm(1.0)
        timer.cancel()
        sim.run()
        assert fired == []
        assert not timer.armed

    def test_armed_and_expiry(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        assert not timer.armed and timer.expiry is None
        timer.arm(4.0)
        assert timer.armed and timer.expiry == 4.0
        sim.run()
        assert not timer.armed


class TestPeriodicProcess:
    def test_ticks_at_interval(self):
        sim = Simulator()
        ticks = []
        PeriodicProcess(sim, 1.0, lambda: ticks.append(sim.now))
        sim.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_first_delay_override(self):
        sim = Simulator()
        ticks = []
        PeriodicProcess(sim, 2.0, lambda: ticks.append(sim.now), first_delay=0.5)
        sim.run(until=3.0)
        assert ticks == [0.5, 2.5]

    def test_stop_halts_ticks(self):
        sim = Simulator()
        ticks = []
        proc = PeriodicProcess(sim, 1.0, lambda: ticks.append(sim.now))
        sim.schedule(2.5, proc.stop)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]
        assert not proc.running

    def test_interval_change_applies_next_tick(self):
        sim = Simulator()
        ticks = []
        proc = PeriodicProcess(sim, 1.0, lambda: ticks.append(sim.now))

        def widen():
            proc.interval = 3.0

        sim.schedule(1.5, widen)
        sim.run(until=6.0)
        assert ticks == [1.0, 2.0, 5.0]

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            PeriodicProcess(Simulator(), 0.0, lambda: None)


class TestRngRegistry:
    def test_same_name_returns_same_stream(self):
        reg = RngRegistry(1)
        assert reg.stream("a") is reg.stream("a")

    def test_deterministic_across_registries(self):
        a = RngRegistry(42).stream("loss").random(5)
        b = RngRegistry(42).stream("loss").random(5)
        assert list(a) == list(b)

    def test_different_names_are_independent(self):
        reg = RngRegistry(42)
        a = reg.stream("a").random(5)
        b = reg.stream("b").random(5)
        assert list(a) != list(b)

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("x").random(5)
        b = RngRegistry(2).stream("x").random(5)
        assert list(a) != list(b)

    def test_draw_order_isolation(self):
        """Consuming one stream must not perturb another (key property)."""
        reg1 = RngRegistry(7)
        reg1.stream("noise").random(1000)
        a = reg1.stream("signal").random(3)
        reg2 = RngRegistry(7)
        b = reg2.stream("signal").random(3)
        assert list(a) == list(b)

    def test_fork_is_deterministic_and_distinct(self):
        base = RngRegistry(5)
        f1 = base.fork(1).stream("s").random(3)
        f1b = RngRegistry(5).fork(1).stream("s").random(3)
        f2 = base.fork(2).stream("s").random(3)
        assert list(f1) == list(f1b)
        assert list(f1) != list(f2)


class TestSchedulingFastPath:
    """schedule_call / schedule_periodic: the no-handle kernel fast path."""

    def test_schedule_call_fires_in_order_with_schedule(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule_call(1.0, fired.append, "b")  # same time: seq order
        sim.schedule_call(0.5, fired.append, "c")
        sim.run()
        assert fired == ["c", "a", "b"]

    def test_schedule_call_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_call(-0.1, lambda: None)

    def test_schedule_call_priority(self):
        sim = Simulator()
        fired = []
        sim.schedule_call(1.0, fired.append, "low", priority=5)
        sim.schedule_call(1.0, fired.append, "high", priority=1)
        sim.run()
        assert fired == ["high", "low"]

    def test_schedule_periodic_ticks_and_stops(self):
        sim = Simulator()
        ticks = []
        proc = sim.schedule_periodic(1.0, lambda: ticks.append(sim.now))
        sim.schedule(2.5, proc.stop)
        sim.run(until=6.0)
        assert ticks == [1.0, 2.0]
        assert not proc.running


class TestCancellationAccounting:
    """pending_events / cancelled_pending stay exact under lazy cancel."""

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(4)]
        assert sim.pending_events == 4
        events[0].cancel()
        events[2].cancel()
        assert sim.pending_events == 2
        assert sim.cancelled_pending == 2

    def test_double_cancel_counted_once(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.cancelled_pending == 1

    def test_cancel_after_fire_is_not_counted(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        event.cancel()
        assert sim.cancelled_pending == 0
        assert sim.pending_events == 0

    def test_peek_time_prunes_and_accounts(self):
        sim = Simulator()
        e1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        e1.cancel()
        assert sim.cancelled_pending == 1
        assert sim.peek_time() == 2.0
        assert sim.cancelled_pending == 0  # zombie popped during peek
        assert sim.pending_events == 1

    def test_run_reconciles_counter_when_popping_zombies(self):
        sim = Simulator()
        keep = []
        for i in range(10):
            event = sim.schedule(float(i + 1), keep.append, i)
            if i % 2 == 0:
                event.cancel()
        sim.run()
        assert keep == [1, 3, 5, 7, 9]
        assert sim.cancelled_pending == 0
        assert sim.pending_events == 0


class TestHeapCompaction:
    def test_mass_cancellation_triggers_compaction(self):
        sim = Simulator()
        events = [sim.schedule(1000.0, lambda: None) for _ in range(600)]
        for event in events:
            event.cancel()
        assert sim.heap_compactions >= 1
        # The heap sheds the zombie majority; only a residue below the
        # compaction floor (256 entries) may remain, and it is accounted.
        assert len(sim._heap) < 300
        assert sim.pending_events == 0

    def test_compaction_preserves_firing_order(self):
        sim = Simulator()
        fired = []
        survivors = []
        # Interleave survivors with a zombie majority, then force compaction.
        for i in range(400):
            if i % 4 == 0:
                survivors.append((i, sim.schedule(1.0 + i * 1e-3, fired.append, i)))
            else:
                sim.schedule(1.0 + i * 1e-3, fired.append, -i).cancel()
        assert sim.heap_compactions >= 1
        sim.run()
        assert fired == [i for i, _ in survivors]

    def test_compaction_with_schedule_call_entries(self):
        """Fire-and-forget entries survive compaction untouched."""
        sim = Simulator()
        fired = []
        for i in range(300):
            sim.schedule_call(2.0, fired.append, i)
        for _ in range(600):
            sim.schedule(1000.0, lambda: None).cancel()
        assert sim.heap_compactions >= 1
        sim.run(until=3.0)
        assert fired == list(range(300))

    def test_timer_rearm_churn_keeps_heap_bounded(self):
        """The RTO re-arm pattern cannot bloat the heap with zombies."""
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        for _ in range(5000):
            timer.arm(1000.0)
        assert len(sim._heap) < 2500  # without compaction this would be 5000
        assert sim.pending_events == 1


class TestStepGuard:
    def test_step_advances_clock_like_run(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        assert sim.step() is True
        assert seen == [1.5]
        assert sim.now == 1.5

    def test_step_respects_reentrancy_guard(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.step()
            except SimulationError as exc:
                errors.append(str(exc))

        sim.schedule(1.0, reenter)
        sim.run()
        assert errors and "reentrant" in errors[0]

    def test_run_inside_step_is_rejected(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(str(exc))

        sim.schedule(1.0, reenter)
        assert sim.step() is True
        assert errors and "reentrant" in errors[0]

    def test_step_skips_cancelled_and_accounts(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "x").cancel()
        sim.schedule(2.0, fired.append, "y")
        assert sim.step() is True
        assert fired == ["y"]
        assert sim.cancelled_pending == 0

    def test_events_executed_counts_steps_and_runs(self):
        sim = Simulator()
        for i in range(3):
            sim.schedule(float(i + 1), lambda: None)
        sim.step()
        sim.run()
        assert sim.events_executed == 3
