"""Tests for bandwidth profiles and the Starlink bandwidth generators."""

import numpy as np
import pytest

from repro.netsim.bandwidth import (
    ConstantBandwidth,
    HandoverVCurveBandwidth,
    SquareWaveBandwidth,
    TraceBandwidth,
    starlink_download_bandwidth_samples,
    starlink_gsl_trace,
)


class TestConstantBandwidth:
    def test_rate(self):
        assert ConstantBandwidth(5e6).rate_at(123.0) == 5e6

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantBandwidth(0)


class TestSquareWave:
    def test_alternates_high_low(self):
        prof = SquareWaveBandwidth(10e6, 1e6, period_s=2.0)
        assert prof.rate_at(0.5) == 11e6
        assert prof.rate_at(1.5) == 9e6
        assert prof.rate_at(2.5) == 11e6

    def test_mean_rate(self):
        assert SquareWaveBandwidth(10e6, 1e6).mean_rate() == 10e6

    def test_phase_shift(self):
        prof = SquareWaveBandwidth(10e6, 1e6, period_s=2.0, phase_s=1.0)
        assert prof.rate_at(0.5) == 9e6

    def test_amplitude_validation(self):
        with pytest.raises(ValueError):
            SquareWaveBandwidth(10e6, 10e6)
        with pytest.raises(ValueError):
            SquareWaveBandwidth(10e6, 1e6, period_s=0)


class TestHandoverVCurve:
    def test_peak_mid_interval_floor_at_handover(self):
        prof = HandoverVCurveBandwidth(10e6, handover_interval_s=10.0, bias_bps=0)
        mid = prof.rate_at(5.0)
        edge = prof.rate_at(0.05)
        assert mid == pytest.approx(10e6, rel=0.02)
        assert edge < 0.6 * mid

    def test_bias_is_deterministic(self):
        p1 = HandoverVCurveBandwidth(10e6, seed=1)
        p2 = HandoverVCurveBandwidth(10e6, seed=1)
        assert p1.rate_at(3.3) == p2.rate_at(3.3)

    def test_bias_changes_with_seed(self):
        p1 = HandoverVCurveBandwidth(10e6, seed=1)
        p2 = HandoverVCurveBandwidth(10e6, seed=2)
        assert p1.rate_at(3.3) != p2.rate_at(3.3)

    def test_rate_never_collapses_to_zero(self):
        prof = HandoverVCurveBandwidth(10e6, floor_fraction=0.1)
        for t in np.linspace(0, 60, 500):
            assert prof.rate_at(float(t)) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            HandoverVCurveBandwidth(10e6, floor_fraction=0.0)
        with pytest.raises(ValueError):
            HandoverVCurveBandwidth(10e6, handover_interval_s=0)


class TestTraceBandwidth:
    def test_piecewise_lookup(self):
        prof = TraceBandwidth([0.0, 1.0, 2.0], [5e6, 7e6, 3e6])
        assert prof.rate_at(0.5) == 5e6
        assert prof.rate_at(1.5) == 7e6
        assert prof.rate_at(2.5) == 3e6

    def test_cycles(self):
        prof = TraceBandwidth([0.0, 1.0], [5e6, 7e6])
        # Cycle length = 1.0 (last time) + 1.0 (mean gap) = 2.0
        assert prof.rate_at(2.1) == 5e6

    def test_mean_rate(self):
        assert TraceBandwidth([0.0, 1.0], [4e6, 8e6]).mean_rate() == 6e6

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceBandwidth([], [])
        with pytest.raises(ValueError):
            TraceBandwidth([0.0, 2.0, 1.0], [1e6, 1e6, 1e6])
        with pytest.raises(ValueError):
            TraceBandwidth([1.0], [1e6])
        with pytest.raises(ValueError):
            TraceBandwidth([0.0], [0.0])


class TestStarlinkGenerators:
    def test_download_samples_respect_published_range(self):
        samples = starlink_download_bandwidth_samples(
            2000, np.random.default_rng(0)
        )
        assert samples.min() >= 2e6
        assert samples.max() <= 386e6
        # Right-skewed body around ~100 Mbps.
        assert 50e6 < np.median(samples) < 200e6

    def test_download_samples_validation(self):
        with pytest.raises(ValueError):
            starlink_download_bandwidth_samples(0)

    def test_gsl_trace_mean_near_target(self):
        trace = starlink_gsl_trace(duration_s=120.0, mean_rate_bps=10e6, seed=4)
        assert trace.mean_rate() == pytest.approx(10e6, rel=0.15)

    def test_gsl_trace_validation(self):
        with pytest.raises(ValueError):
            starlink_gsl_trace(duration_s=0)
