"""Tests for the churn engine: events, diffing, adapter, metrics.

The engine's contract is determinism — the same :class:`PathSchedule`
must always yield the same event stream and the same
:class:`FaultSchedule` — plus a faithful mapping of geometry changes
onto the chaos machinery.  The end-to-end test runs a real LEOTP flow
under a synthetic handover sequence and requires green invariants.
"""

from __future__ import annotations

import pytest

from repro.churn import (
    DEFAULT_OUTAGE_S,
    GsReattach,
    LinkAdded,
    LinkRemoved,
    PathSwitch,
    RouteLost,
    RouteRestored,
    TopologyEventStream,
    compress_schedule,
    diff_snapshots,
    events_from_schedule,
    faults_from_stream,
    handover_stats,
    merge_streams,
    per_handover_reports,
)
from repro.constellation.routing import PathSchedule, PathSnapshot
from repro.faults import LinkDown
from repro.netsim.trace import FlowRecorder
from repro.simcore import Simulator


def snap(t, nodes, gsl_ends=True):
    """A PathSnapshot with uniform 1000 km hops; endpoints GSL."""
    n_hops = len(nodes) - 1
    is_gsl = tuple(
        gsl_ends and (i == 0 or i == n_hops - 1) for i in range(n_hops)
    )
    return PathSnapshot(
        time=t,
        nodes=tuple(nodes),
        hop_distances_m=(1_000_000.0,) * n_hops,
        hop_is_gsl=is_gsl,
    )


A = ["gs:BJ", "sat-0-1", "sat-0-2", "gs:PR"]
B = ["gs:BJ", "sat-0-9", "sat-0-2", "gs:PR"]  # producer-side reattach
C = ["gs:BJ", "sat-0-9", "sat-5-5", "gs:PR"]  # consumer-side reattach


class TestTopologyEvents:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            RouteLost(at_s=-0.1, pair="p", duration_s=1.0)

    def test_kind_property(self):
        assert LinkRemoved(at_s=0.0, pair="p").kind == "LinkRemoved"

    def test_stream_is_totally_ordered(self):
        e1 = RouteLost(at_s=2.0, pair="p", duration_s=1.0)
        e2 = LinkAdded(at_s=1.0, pair="p", a="x", b="y")
        e3 = LinkRemoved(at_s=1.0, pair="p", a="x", b="y")
        stream = TopologyEventStream([e1, e2, e3])
        # Same time sorts by kind name: LinkAdded < LinkRemoved.
        assert [e.kind for e in stream] == [
            "LinkAdded", "LinkRemoved", "RouteLost",
        ]

    def test_of_kind_and_counts(self):
        stream = TopologyEventStream([
            LinkAdded(at_s=0.0, pair="p"),
            LinkRemoved(at_s=0.0, pair="p"),
            LinkRemoved(at_s=1.0, pair="p"),
        ])
        assert len(stream.of_kind("LinkRemoved")) == 2
        assert stream.counts() == {"LinkAdded": 1, "LinkRemoved": 2}

    def test_handover_times_deduplicated(self):
        stream = TopologyEventStream([
            PathSwitch(at_s=1.0, pair="p"),
            RouteLost(at_s=1.0, pair="q", duration_s=0.5),
            PathSwitch(at_s=2.0, pair="p"),
            LinkAdded(at_s=3.0, pair="p"),  # not a handover kind
        ])
        assert stream.handover_times() == [1.0, 2.0]

    def test_merge_streams(self):
        s1 = TopologyEventStream([PathSwitch(at_s=2.0, pair="p")])
        s2 = TopologyEventStream([PathSwitch(at_s=1.0, pair="q")])
        merged = merge_streams(s1, s2)
        assert [e.at_s for e in merged] == [1.0, 2.0]
        assert merged.pairs == ["p", "q"]


class TestDiffSnapshots:
    def test_identical_routes_yield_no_events(self):
        assert diff_snapshots(snap(0.0, A), snap(2.0, A), "p") == []

    def test_delay_drift_alone_is_not_an_event(self):
        moved = PathSnapshot(
            time=2.0, nodes=tuple(A),
            hop_distances_m=(2_000_000.0,) * 3,
            hop_is_gsl=(True, False, True),
        )
        assert diff_snapshots(snap(0.0, A), moved, "p") == []

    def test_single_sat_swap(self):
        events = diff_snapshots(snap(0.0, A), snap(2.0, B), "p")
        kinds = [e.kind for e in events]
        assert kinds == [
            "LinkRemoved", "LinkRemoved", "LinkAdded", "LinkAdded",
            "PathSwitch", "GsReattach",
        ]
        removed = {(e.a, e.b) for e in events if e.kind == "LinkRemoved"}
        assert removed == {("gs:BJ", "sat-0-1"), ("sat-0-1", "sat-0-2")}
        switch = events[4]
        assert switch.changed_nodes == 1
        reattach = events[5]
        assert (reattach.station, reattach.side) == ("gs:BJ", "a")
        assert (reattach.old_sat, reattach.new_sat) == ("sat-0-1", "sat-0-9")

    def test_consumer_side_reattach(self):
        events = diff_snapshots(snap(0.0, B), snap(2.0, C), "p")
        reattaches = [e for e in events if e.kind == "GsReattach"]
        assert len(reattaches) == 1
        assert reattaches[0].side == "b"
        assert reattaches[0].station == "gs:PR"

    def test_hop_index_semantics(self):
        # Removed edges carry their index in the OLD route, added edges
        # in the NEW route — the adapter maps each onto the chain.
        events = diff_snapshots(snap(0.0, A), snap(2.0, B), "p")
        removed = {
            (e.a, e.b): e.hop_index for e in events if e.kind == "LinkRemoved"
        }
        added = {
            (e.a, e.b): e.hop_index for e in events if e.kind == "LinkAdded"
        }
        assert removed[("gs:BJ", "sat-0-1")] == 0
        assert removed[("sat-0-1", "sat-0-2")] == 1
        assert added[("gs:BJ", "sat-0-9")] == 0

    def test_events_timestamped_at_new_snapshot(self):
        events = diff_snapshots(snap(0.0, A), snap(2.0, B), "p")
        assert {e.at_s for e in events} == {2.0}
        override = diff_snapshots(snap(0.0, A), snap(2.0, B), "p", at_s=7.0)
        assert {e.at_s for e in override} == {7.0}


def make_schedule(gaps=()):
    return PathSchedule(
        "BJ", "PR",
        [snap(0.0, A), snap(2.0, A), snap(4.0, B), snap(6.0, C)],
        list(gaps),
    )


class TestEventsFromSchedule:
    def test_stream_covers_all_transitions(self):
        stream = events_from_schedule(make_schedule())
        assert stream.counts()["PathSwitch"] == 2
        assert stream.counts()["GsReattach"] == 2
        assert stream.handover_times() == [4.0, 6.0]
        assert stream.pairs == ["BJ-PR"]

    def test_gaps_become_route_lost_restored(self):
        stream = events_from_schedule(make_schedule(gaps=[(8.0, 9.5)]))
        lost = stream.of_kind("RouteLost")
        assert len(lost) == 1
        assert lost[0].duration_s == pytest.approx(1.5)
        assert stream.of_kind("RouteRestored")[0].at_s == 9.5
        assert 8.0 in stream.handover_times()

    def test_pair_override(self):
        stream = events_from_schedule(make_schedule(), pair="custom")
        assert stream.pairs == ["custom"]

    def test_deterministic(self):
        a = list(events_from_schedule(make_schedule()))
        b = list(events_from_schedule(make_schedule()))
        assert a == b  # frozen dataclasses compare by value


class TestCompressSchedule:
    def test_times_and_gaps_divided(self):
        compressed = compress_schedule(
            make_schedule(gaps=[(8.0, 9.5)]), 4.0
        )
        assert [s.time for s in compressed.snapshots] == [0.0, 0.5, 1.0, 1.5]
        assert compressed.gaps == [(2.0, 2.375)]

    def test_geometry_preserved(self):
        original = make_schedule()
        compressed = compress_schedule(original, 4.0)
        for a, b in zip(original.snapshots, compressed.snapshots):
            assert a.nodes == b.nodes
            assert a.hop_distances_m == b.hop_distances_m

    def test_event_sequence_preserved(self):
        original = events_from_schedule(make_schedule())
        compressed = events_from_schedule(
            compress_schedule(make_schedule(), 4.0)
        )
        assert [e.kind for e in original] == [e.kind for e in compressed]

    def test_validation(self):
        with pytest.raises(ValueError):
            compress_schedule(make_schedule(), 0.0)


class TestFaultAdapter:
    def test_removed_links_become_downs(self):
        stream = events_from_schedule(make_schedule())
        faults = faults_from_stream(stream, 3)
        downs = list(faults)
        assert downs and all(isinstance(d, LinkDown) for d in downs)
        assert all(d.duration_s >= DEFAULT_OUTAGE_S for d in downs)
        assert {d.link for d in downs} <= {"hop0", "hop1", "hop2"}

    def test_hop_index_clamped_to_chain(self):
        stream = TopologyEventStream([
            LinkRemoved(at_s=1.0, pair="p", a="x", b="y", hop_index=9),
        ])
        faults = faults_from_stream(stream, 3)
        assert [d.link for d in faults] == ["hop2"]

    def test_same_hop_events_coalesce_and_validate(self):
        # Two removals landing on one hop at the same instant (a full
        # handover swaps both edges of a satellite) must merge into a
        # single outage — and therefore pass schedule validation.
        stream = TopologyEventStream([
            LinkRemoved(at_s=1.0, pair="p", a="u", b="v", hop_index=0),
            LinkRemoved(at_s=1.0, pair="p", a="v", b="w", hop_index=0),
            LinkRemoved(at_s=1.04, pair="p", a="w", b="x", hop_index=0),
        ])
        faults = faults_from_stream(stream, 4, outage_s=0.08)
        downs = list(faults)
        assert len(downs) == 1
        assert downs[0].at_s == 1.0
        assert downs[0].duration_s == pytest.approx(0.12)
        faults.validate()

    def test_route_lost_blacks_out_uplink(self):
        stream = TopologyEventStream([
            RouteLost(at_s=2.0, pair="p", duration_s=1.5),
        ])
        downs = list(faults_from_stream(stream, 4))
        assert [(d.link, d.at_s, d.duration_s) for d in downs] == [
            ("hop0", 2.0, 1.5),
        ]
        assert list(faults_from_stream(stream, 4, route_loss=False)) == []

    def test_short_route_loss_floored_at_outage(self):
        stream = TopologyEventStream([
            RouteLost(at_s=2.0, pair="p", duration_s=0.001),
        ])
        downs = list(faults_from_stream(stream, 4, outage_s=0.08))
        assert downs[0].duration_s == pytest.approx(0.08)

    def test_link_prefix_namespaces_targets(self):
        stream = TopologyEventStream([
            LinkRemoved(at_s=1.0, pair="p", hop_index=1),
        ])
        downs = list(faults_from_stream(stream, 4, link_prefix="bjpr:"))
        assert [d.link for d in downs] == ["bjpr:hop1"]

    def test_validation(self):
        stream = TopologyEventStream([])
        with pytest.raises(ValueError):
            faults_from_stream(stream, 0)
        with pytest.raises(ValueError):
            faults_from_stream(stream, 3, outage_s=0.0)

    def test_deterministic(self):
        stream = events_from_schedule(make_schedule(gaps=[(8.0, 9.0)]))
        a = [(d.link, d.at_s, d.duration_s)
             for d in faults_from_stream(stream, 3)]
        b = [(d.link, d.at_s, d.duration_s)
             for d in faults_from_stream(stream, 3)]
        assert a == b


class TestPerHandoverMetrics:
    def _recorder(self, sim, deliveries):
        recorder = FlowRecorder(sim)
        for t, nbytes in deliveries:
            sim.schedule_at(t, recorder.on_delivery, nbytes, 0.01)
        sim.run()
        return recorder

    def test_one_report_per_handover(self):
        sim = Simulator()
        deliveries = [(0.05 * i, 1000) for i in range(100)]  # up to 4.95 s
        recorder = self._recorder(sim, deliveries)
        reports = per_handover_reports(
            recorder, [1.0, 2.0, 3.0], outage_s=0.08, horizon_s=5.0
        )
        assert len(reports) == 3
        assert all(r.recovered for r in reports)

    def test_windows_clamped_between_close_handovers(self):
        # Two handovers 150 ms apart: the default 1 s windows would
        # bleed across; the clamp must keep every report constructible.
        sim = Simulator()
        recorder = self._recorder(sim, [(0.05 * i, 1000) for i in range(60)])
        reports = per_handover_reports(
            recorder, [1.0, 1.15], outage_s=0.08, horizon_s=3.0
        )
        assert len(reports) == 2

    def test_unrecovered_handover_detected(self):
        sim = Simulator()
        # Deliveries stop at t=1: the handover at 1.0 never recovers.
        recorder = self._recorder(
            sim, [(0.05 * i, 1000) for i in range(20)]
        )
        reports = per_handover_reports(
            recorder, [1.0], outage_s=0.08, horizon_s=5.0
        )
        stats = handover_stats(reports)
        assert stats["handovers_measured"] == 1.0
        assert stats["unrecovered"] == 1.0

    def test_stats_aggregation(self):
        sim = Simulator()
        recorder = self._recorder(sim, [(0.05 * i, 1000) for i in range(100)])
        stats = handover_stats(per_handover_reports(
            recorder, [1.0, 3.0], outage_s=0.08, horizon_s=5.0
        ))
        assert stats["handovers_measured"] == 2.0
        assert stats["unrecovered"] == 0.0
        assert stats["recovery_max_ms"] >= stats["recovery_mean_ms"] > 0.0
        assert 0.0 <= stats["dip_depth_mean"] <= 1.0

    def test_empty_stats_are_zeros(self):
        stats = handover_stats([])
        assert stats["handovers_measured"] == 0.0
        assert stats["recovery_mean_ms"] == 0.0


class TestChurnEndToEnd:
    """A real LEOTP flow under a synthetic handover sequence."""

    def _run(self, seed=0):
        from repro.faults import run_leotp_chaos

        schedule = PathSchedule("BJ", "PR", [
            snap(0.0, A), snap(2.0, B), snap(4.0, C), snap(6.0, A),
        ])
        stream = events_from_schedule(schedule)
        faults = faults_from_stream(stream, 3)
        return stream, run_leotp_chaos(
            faults, n_hops=3, rate_bps=20e6, delay_s=0.005,
            duration_s=10.0, total_bytes=1_500_000, seed=seed,
        )

    def test_invariants_green_and_flow_completes(self):
        stream, res = self._run()
        assert res.invariants_ok, [str(r) for r in res.invariants if not r.ok]
        assert res.completed
        # Every handover in the stream produced at least one applied fault.
        assert sum(1 for _, a in res.fault_log if "DOWN" in a) >= len(
            stream.handover_times()
        )

    def test_per_handover_reports_from_real_run(self):
        stream, res = self._run()
        stats = handover_stats(per_handover_reports(
            res.path.recorder, stream.handover_times(),
            outage_s=DEFAULT_OUTAGE_S, horizon_s=10.0,
        ))
        assert stats["handovers_measured"] == 3.0
        assert stats["unrecovered"] == 0.0

    def test_deterministic_per_seed(self):
        _, a = self._run(seed=5)
        _, b = self._run(seed=5)
        assert a.path.recorder.total_bytes == b.path.recorder.total_bytes
        assert a.fault_log == b.fault_log


class TestChurnSummary:
    def test_renders_all_row_shapes(self):
        from repro.analysis.report import churn_summary

        rows = [
            {
                "pair": "BJ-PR", "hops": 8, "handovers": 5,
                "links_removed": 12, "gs_reattach": 3, "route_losses": 1,
                "protocol": "leotp", "goodput_mbps": 3.5,
                "invariants_ok": True, "invariant_violations": 0,
                "handovers_measured": 5.0, "unrecovered": 1.0,
                "recovery_mean_ms": 120.0, "recovery_max_ms": 400.0,
                "dip_depth_mean": 0.4,
            },
            {
                "pair": "BJ-PR", "hops": 8, "handovers": 5,
                "protocol": "bbr", "goodput_mbps": 2.1,
                "invariants_ok": False, "invariant_violations": 2,
                "handovers_measured": 5.0, "unrecovered": 0.0,
                "recovery_mean_ms": 300.0, "recovery_max_ms": 900.0,
                "dip_depth_mean": 0.6,
            },
            {
                "pair": "BJ-PR", "protocol": "leotp-pool",
                "arrivals": 10, "pool_completed": 9, "pool_aborted": 1,
                "aborted_no_route": 1, "budget_breaches": 0,
            },
        ]
        text = churn_summary(rows)
        assert "BJ-PR: 5 handovers over 8 hops" in text
        assert "1/5 handovers unrecovered" in text
        assert "2 INVARIANT VIOLATIONS" in text
        assert "9/10 flows completed" in text
        assert "1 no_route" in text
