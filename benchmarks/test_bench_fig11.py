"""Benchmark: regenerate Fig. 11 (sender traffic vs loss) at reduced scale."""

from repro.experiments import ALL_EXPERIMENTS

from conftest import BENCH_SCALE, BENCH_SEED, attach_rows


def test_bench_fig11(benchmark):
    result = benchmark.pedantic(
        ALL_EXPERIMENTS["fig11"],
        kwargs={"scale": BENCH_SCALE, "seed": BENCH_SEED},
        rounds=1, iterations=1,
    )
    attach_rows(benchmark, result)
    assert result.rows
