"""Benchmark: regenerate the many-flow workload experiment at reduced scale."""

from repro.experiments import ALL_EXPERIMENTS

from conftest import BENCH_SCALE, BENCH_SEED, attach_rows


def test_bench_workload(benchmark):
    result = benchmark.pedantic(
        ALL_EXPERIMENTS["workload"],
        kwargs={"scale": BENCH_SCALE, "seed": BENCH_SEED},
        rounds=1, iterations=1,
    )
    attach_rows(benchmark, result)
    assert result.rows
