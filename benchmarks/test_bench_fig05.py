"""Benchmark: regenerate Fig. 5 (queueing under bandwidth fluctuation) at reduced scale."""

from repro.experiments import ALL_EXPERIMENTS

from conftest import BENCH_SCALE, BENCH_SEED, attach_rows


def test_bench_fig05(benchmark):
    result = benchmark.pedantic(
        ALL_EXPERIMENTS["fig05"],
        kwargs={"scale": BENCH_SCALE, "seed": BENCH_SEED},
        rounds=1, iterations=1,
    )
    attach_rows(benchmark, result)
    assert result.rows
