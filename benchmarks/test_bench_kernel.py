"""Kernel and hot-path microbenchmarks.

Unlike the ``test_bench_fig*`` suite (which times whole experiments),
these isolate the layers the simulator spends its time in: the event
heap, cancellation churn, :class:`RangeSet` bookkeeping, and one small
end-to-end LEOTP transfer as an integration figure.

The perf trajectory lives in ``BENCH_kernel.json`` at the repo root;
regenerate and diff it with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_kernel.py \
        --benchmark-only --benchmark-json=new.json
    python benchmarks/compare.py BENCH_kernel.json new.json

``_schedule`` falls back to ``Simulator.schedule`` so the same workload
runs against kernels that predate the ``schedule_call`` fast path —
that is how the pre-PR baseline (``BENCH_kernel_baseline.json``) was
captured.
"""

from __future__ import annotations

import os

import pytest

from repro.common.ranges import ByteRange, RangeSet
from repro.simcore import Simulator

# Event counts sized so each round takes tenths of a second: large enough
# to swamp timer resolution, small enough to iterate on.  The committed
# BENCH_kernel.json numbers use full scale; LEOTP_BENCH_TINY=1 shrinks
# every workload ~10x for the CI smoke job (trend data point, not a
# publishable number).
_TINY = os.environ.get("LEOTP_BENCH_TINY") == "1"
_F = 10 if _TINY else 1
CHAIN_EVENTS = 100_000 // _F
FANOUT_EVENTS = 50_000 // _F
CANCEL_TIMERS = 2_000 // _F
CANCEL_ROUNDS = 30
RANGESET_PACKETS = 20_000 // _F
E2E_DURATION_S = 3.0 if not _TINY else 1.0


def _scheduler(sim: Simulator):
    """The cheapest fire-and-forget scheduling call the kernel offers."""
    return getattr(sim, "schedule_call", sim.schedule)


# ----------------------------------------------------------------------
# Event heap
# ----------------------------------------------------------------------


def test_kernel_chain(benchmark):
    """Self-rescheduling timer chain: 1 schedule per executed event.

    This is the shape of every pacing loop in the stack (Consumer emit
    ticks, PacedSender drains, link serialisation) and the headline
    events/sec figure.
    """

    def run_chain():
        sim = Simulator()
        schedule = _scheduler(sim)
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < CHAIN_EVENTS:
                schedule(0.001, tick)

        schedule(0.001, tick)
        sim.run()
        return sim

    sim = benchmark(run_chain)
    assert sim.events_executed == CHAIN_EVENTS
    benchmark.extra_info["events_per_sec"] = round(
        CHAIN_EVENTS / benchmark.stats.stats.mean
    )


def test_kernel_fanout(benchmark):
    """Pre-loaded heap: schedule everything up front, then drain.

    Stresses heappush/heappop on a deep heap rather than the
    schedule-execute cycle.
    """

    def run_fanout():
        sim = Simulator()
        schedule = _scheduler(sim)
        sink = [0]

        def cb(i):
            sink[0] += i

        for i in range(FANOUT_EVENTS):
            schedule((i % 1000) * 1e-4, cb, i)
        sim.run()
        return sim

    sim = benchmark(run_fanout)
    assert sim.events_executed == FANOUT_EVENTS
    benchmark.extra_info["events_per_sec"] = round(
        FANOUT_EVENTS / benchmark.stats.stats.mean
    )


def test_kernel_cancel_churn(benchmark):
    """Timer re-arm churn: the RTO pattern (schedule, cancel, repeat).

    Every round re-arms ``CANCEL_TIMERS`` far-future timers, leaving the
    previous generation cancelled in the heap; a kernel without lazy
    cancellation accounting lets the heap bloat with zombies.
    """

    def run_churn():
        sim = Simulator()
        events = [sim.schedule(1000.0, _noop) for _ in range(CANCEL_TIMERS)]
        for _ in range(CANCEL_ROUNDS):
            for i, event in enumerate(events):
                event.cancel()
                events[i] = sim.schedule(1000.0, _noop)
        for event in events:
            event.cancel()
        sim.schedule(0.5, _noop)
        sim.run(until=1.0)
        return sim

    sim = benchmark(run_churn)
    assert sim.events_executed == 1


def _noop():
    pass


# ----------------------------------------------------------------------
# RangeSet (reassembly / cache hot path)
# ----------------------------------------------------------------------


def test_rangeset_churn(benchmark):
    """Receiver-reassembly shape: MSS adds with holes, len() per packet.

    Every 7th segment is 'lost' and repaired a window later; every add is
    followed by the __len__/missing_within queries the Consumer and the
    backpressure check issue per packet.
    """
    mss = 1448

    def run_churn():
        rs = RangeSet()
        covered = 0
        holes = []
        for i in range(RANGESET_PACKETS):
            rng = ByteRange(i * mss, (i + 1) * mss)
            if i % 7 == 3:
                holes.append(rng)
            else:
                rs.add(rng)
            covered = len(rs)  # cached-length hot call
            if i % 64 == 0 and i > 0:
                rs.missing_within(ByteRange(max(0, (i - 64) * mss), i * mss))
            if len(holes) > 40:
                for hole in holes:
                    rs.add(hole)
                holes.clear()
        for hole in holes:
            rs.add(hole)
        return rs, covered

    rs, _ = benchmark(run_churn)
    assert len(rs) == RANGESET_PACKETS * mss


# ----------------------------------------------------------------------
# End-to-end integration point
# ----------------------------------------------------------------------


def test_e2e_leotp_transfer(benchmark):
    """A small fig12-style lossy multi-hop LEOTP run (whole stack)."""
    from repro.experiments.common import run_leotp_chain
    from repro.netsim.topology import uniform_chain_specs

    hops = uniform_chain_specs(4, rate_bps=20e6, delay_s=0.01, plr=0.005)

    def run_transfer():
        metrics, _ = run_leotp_chain(hops, duration_s=E2E_DURATION_S, seed=1)
        return metrics

    metrics = benchmark(run_transfer)
    assert metrics.throughput_mbps > 1.0
    benchmark.extra_info["throughput_mbps"] = round(metrics.throughput_mbps, 2)
