"""Benchmark configuration.

Each benchmark regenerates one of the paper's tables/figures at a reduced
scale (short simulated durations) so the full harness completes in
minutes.  The benchmark *value* is the wall-clock cost of regenerating
the experiment; the experiment's rows are attached to ``benchmark.extra_info``
so the numbers themselves are inspectable from the pytest-benchmark JSON.
"""

import pytest

# A scale that keeps every experiment meaningful but quick.
BENCH_SCALE = 0.12
BENCH_SEED = 0


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


def attach_rows(benchmark, result) -> None:
    """Store the experiment's headline rows in the benchmark metadata."""
    benchmark.extra_info["experiment"] = result.name
    benchmark.extra_info["rows"] = [
        {k: (round(v, 3) if isinstance(v, float) else v) for k, v in row.items()}
        for row in result.rows[:40]
    ]
    for note in result.notes:
        benchmark.extra_info.setdefault("notes", []).append(note)
