"""Benchmark: regenerate the Snoop related-work comparison at reduced scale."""

from repro.experiments import ALL_EXPERIMENTS

from conftest import BENCH_SCALE, BENCH_SEED, attach_rows


def test_bench_related_snoop(benchmark):
    result = benchmark.pedantic(
        ALL_EXPERIMENTS["related_snoop"],
        kwargs={"scale": BENCH_SCALE, "seed": BENCH_SEED},
        rounds=1, iterations=1,
    )
    attach_rows(benchmark, result)
    assert result.rows
