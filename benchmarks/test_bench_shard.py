"""Benchmark: the sharded engine, serial and parallel.

Times :func:`repro.shard.run_sharded` on a reduced 16-shard plan — the
same shape as the ``workload_sharded`` experiment, fewer flows per
shard.  ``extra_info`` carries the deterministic event count, the
aggregate events/s, and the run's peak RSS (MiB), so the committed JSON
doubles as the sharding perf *and memory* trajectory —
``benchmarks/compare.py`` gates on both.  The parallel figure depends
on host load and core count; the serial one is the stable regression
fence.

``test_bench_shard_xl_slice`` runs a reduced slice of the
``workload_sharded_xl`` shape with result streaming enabled: many more
flows than resident slots, so its ``peak_rss_mib`` is the figure that
fences the bounded-RSS claim of DESIGN.md §14.

Baseline: ``BENCH_shard_baseline.json`` (repo root), captured at this
benchmark's introduction; current numbers live in ``BENCH_shard.json``.
Gate with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_shard.py \
        --benchmark-only --benchmark-json=new.json
    python benchmarks/compare.py --pair BENCH_shard_baseline.json new.json
"""

from __future__ import annotations

import os

from repro.shard import ShardPlan, run_sharded

_TINY = os.environ.get("LEOTP_BENCH_TINY") == "1"
ARRIVALS_PER_SHARD = 24 if _TINY else 120


def _plan() -> ShardPlan:
    return ShardPlan(
        n_shards=16, arrivals_per_shard=ARRIVALS_PER_SHARD, drain_s=4.0
    )


def _attach(benchmark, out: dict) -> None:
    total = out["rows"][-1]
    benchmark.extra_info["completed"] = total["completed"]
    benchmark.extra_info["events"] = out["events_executed"]
    benchmark.extra_info["events_per_s"] = round(out["events_per_s"])
    benchmark.extra_info["jobs"] = out["jobs"]
    if out["rss"] is not None:
        benchmark.extra_info["peak_rss_mib"] = round(
            out["rss"]["total_peak_mib"], 1
        )
    benchmark.extra_info["exchange_payload_bytes"] = (
        out["exchange_payload_bytes"]
    )
    benchmark.extra_info["exchange_report_bytes"] = (
        out["exchange_report_bytes"]
    )


def test_bench_shard_serial(benchmark):
    out = benchmark.pedantic(
        run_sharded, args=(_plan(),), kwargs={"jobs": 1},
        rounds=1, iterations=1,
    )
    _attach(benchmark, out)
    assert out["completed"] == 16 * ARRIVALS_PER_SHARD


def test_bench_shard_jobs4(benchmark):
    out = benchmark.pedantic(
        run_sharded, args=(_plan(),), kwargs={"jobs": 4},
        rounds=1, iterations=1,
    )
    _attach(benchmark, out)
    assert out["completed"] == 16 * ARRIVALS_PER_SHARD


XL_SLICE_SHARDS = 8 if _TINY else 25
XL_SLICE_ARRIVALS = 24 if _TINY else 100


def _xl_slice_plan() -> ShardPlan:
    # Same per-shard shape as workload_sharded_xl, a quarter of the
    # shards and a tenth of the flows: enough that spilled flows
    # outnumber resident slots by an order of magnitude.
    return ShardPlan(
        n_shards=XL_SLICE_SHARDS,
        arrivals_per_shard=XL_SLICE_ARRIVALS,
        drain_s=4.0,
    )


def test_bench_shard_xl_slice(benchmark, tmp_path):
    out = benchmark.pedantic(
        run_sharded, args=(_xl_slice_plan(),),
        kwargs={"jobs": 1, "sink_dir": str(tmp_path / "sink")},
        rounds=1, iterations=1,
    )
    _attach(benchmark, out)
    benchmark.extra_info["spilled_bytes"] = out["sink"]["merged_bytes"]
    assert out["completed"] == XL_SLICE_SHARDS * XL_SLICE_ARRIVALS
