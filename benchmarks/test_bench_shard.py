"""Benchmark: the sharded engine, serial and parallel.

Times :func:`repro.shard.run_sharded` on a reduced 16-shard plan — the
same shape as the ``workload_sharded`` experiment, fewer flows per
shard.  Two figures ride in ``extra_info``: the deterministic event
count and the aggregate events/s, so the committed JSON doubles as the
sharding perf trajectory.  The parallel figure depends on host load and
core count; the serial one is the stable regression fence.

Baseline: ``BENCH_shard_baseline.json`` (repo root), captured at this
benchmark's introduction; current numbers live in ``BENCH_shard.json``.
Gate with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_shard.py \
        --benchmark-only --benchmark-json=new.json
    python benchmarks/compare.py --pair BENCH_shard_baseline.json new.json
"""

from __future__ import annotations

import os

from repro.shard import ShardPlan, run_sharded

_TINY = os.environ.get("LEOTP_BENCH_TINY") == "1"
ARRIVALS_PER_SHARD = 24 if _TINY else 120


def _plan() -> ShardPlan:
    return ShardPlan(
        n_shards=16, arrivals_per_shard=ARRIVALS_PER_SHARD, drain_s=4.0
    )


def _attach(benchmark, out: dict) -> None:
    total = out["rows"][-1]
    benchmark.extra_info["completed"] = total["completed"]
    benchmark.extra_info["events"] = out["events_executed"]
    benchmark.extra_info["events_per_s"] = round(out["events_per_s"])
    benchmark.extra_info["jobs"] = out["jobs"]


def test_bench_shard_serial(benchmark):
    out = benchmark.pedantic(
        run_sharded, args=(_plan(),), kwargs={"jobs": 1},
        rounds=1, iterations=1,
    )
    _attach(benchmark, out)
    assert out["completed"] == 16 * ARRIVALS_PER_SHARD


def test_bench_shard_jobs4(benchmark):
    out = benchmark.pedantic(
        run_sharded, args=(_plan(),), kwargs={"jobs": 4},
        rounds=1, iterations=1,
    )
    _attach(benchmark, out)
    assert out["completed"] == 16 * ARRIVALS_PER_SHARD
