"""Diff pytest-benchmark JSON files and gate on regressions.

Usage::

    python benchmarks/compare.py BASELINE.json NEW.json [--threshold 0.15]
    python benchmarks/compare.py \
        --pair BENCH_kernel_baseline.json bench_kernel.json \
        --pair BENCH_shard_baseline.json bench_shard.json

Benchmarks are matched by name within each baseline/new pair.  For each
match the mean runtimes are compared; the exit status is 1 if any
benchmark present in both files of any pair slowed down by more than
``--threshold`` (default 15 %).  Speedups and new/removed benchmarks
are reported but never fail the gate.

Memory is gated the same way: when both sides of a match carry
``extra_info.peak_rss_mib`` (the shard benchmarks record it), growth
beyond ``--mem-threshold`` (default 30 %, RSS being noisier than time)
is a regression.  A benchmark missing the figure on either side is
skipped — memory gating never fails on hosts without ``/proc``.

``--pair BASE NEW`` is repeatable, so one invocation gates the whole
perf surface (kernel + workload + shard) — that is how the CI
benchmarks job calls it.  The two-positional form remains for single
comparisons.

This is the regression fence for the perf trajectories recorded in
``BENCH_kernel.json`` / ``BENCH_shard.json`` (see
benchmarks/test_bench_kernel.py, benchmarks/test_bench_shard.py) and
the CI benchmark smoke job.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_benchmarks(path: str) -> dict[str, dict]:
    """Map benchmark name -> stats dict from a pytest-benchmark JSON."""
    with open(path) as fh:
        data = json.load(fh)
    out = {}
    for bench in data.get("benchmarks", []):
        out[bench["name"]] = bench
    return out


def _fmt_time(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def _peak_rss(bench: dict) -> float | None:
    value = bench.get("extra_info", {}).get("peak_rss_mib")
    return float(value) if value is not None else None


def compare(
    baseline: dict[str, dict],
    new: dict[str, dict],
    threshold: float,
    mem_threshold: float = 0.30,
) -> tuple[str, list[str]]:
    """Render a comparison table; return (table, regression messages)."""
    names = sorted(set(baseline) | set(new))
    width = max((len(n) for n in names), default=4)
    lines = [
        f"{'benchmark'.ljust(width)}  {'baseline':>10}  {'new':>10}  "
        f"{'speedup':>8}  verdict"
    ]
    regressions: list[str] = []
    for name in names:
        old_bench, new_bench = baseline.get(name), new.get(name)
        if old_bench is None:
            lines.append(f"{name.ljust(width)}  {'-':>10}  "
                         f"{_fmt_time(new_bench['stats']['mean']):>10}  "
                         f"{'-':>8}  NEW")
            continue
        if new_bench is None:
            lines.append(f"{name.ljust(width)}  "
                         f"{_fmt_time(old_bench['stats']['mean']):>10}  "
                         f"{'-':>10}  {'-':>8}  REMOVED")
            continue
        old_mean = old_bench["stats"]["mean"]
        new_mean = new_bench["stats"]["mean"]
        speedup = old_mean / new_mean if new_mean > 0 else float("inf")
        if new_mean > old_mean * (1.0 + threshold):
            verdict = f"REGRESSION (>{threshold:.0%} slower)"
            regressions.append(
                f"{name}: {_fmt_time(old_mean)} -> {_fmt_time(new_mean)} "
                f"({speedup:.2f}x)"
            )
        elif speedup >= 1.0 + threshold:
            verdict = "improved"
        else:
            verdict = "ok"
        lines.append(
            f"{name.ljust(width)}  {_fmt_time(old_mean):>10}  "
            f"{_fmt_time(new_mean):>10}  {speedup:>7.2f}x  {verdict}"
        )
        old_rss, new_rss = _peak_rss(old_bench), _peak_rss(new_bench)
        if old_rss is not None and new_rss is not None and old_rss > 0:
            growth = new_rss / old_rss - 1.0
            if growth > mem_threshold:
                mem_verdict = f"RSS REGRESSION (>{mem_threshold:.0%} more)"
                regressions.append(
                    f"{name}: peak RSS {old_rss:.1f} MiB -> "
                    f"{new_rss:.1f} MiB (+{growth:.0%})"
                )
            else:
                mem_verdict = "ok"
            lines.append(
                f"{''.ljust(width)}  {old_rss:>6.1f}MiB  {new_rss:>7.1f}MiB  "
                f"{'':>8}  rss {mem_verdict}"
            )
    return "\n".join(lines), regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "baseline", nargs="?", help="baseline pytest-benchmark JSON"
    )
    parser.add_argument(
        "new", nargs="?", help="candidate pytest-benchmark JSON"
    )
    parser.add_argument(
        "--pair", nargs=2, action="append", default=[],
        metavar=("BASELINE", "NEW"),
        help="a baseline/candidate pair to gate; repeatable — all pairs "
             "are compared and any regression fails the run",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.15,
        help="allowed slowdown fraction before failing (default 0.15)",
    )
    parser.add_argument(
        "--mem-threshold", type=float, default=0.30,
        help="allowed peak-RSS growth fraction before failing, for "
             "benchmarks recording extra_info.peak_rss_mib (default 0.30)",
    )
    args = parser.parse_args(argv)

    pairs = [tuple(p) for p in args.pair]
    if args.baseline is not None:
        if args.new is None:
            parser.error("positional usage needs both BASELINE and NEW")
        pairs.append((args.baseline, args.new))
    if not pairs:
        parser.error("nothing to compare: give BASELINE NEW or --pair")

    all_regressions: list[str] = []
    for baseline_path, new_path in pairs:
        if len(pairs) > 1:
            print(f"== {baseline_path} vs {new_path} ==")
        table, regressions = compare(
            load_benchmarks(baseline_path), load_benchmarks(new_path),
            args.threshold, args.mem_threshold,
        )
        print(table)
        if len(pairs) > 1:
            print()
        all_regressions.extend(regressions)
    if all_regressions:
        print(f"\n{len(all_regressions)} regression(s) beyond the "
              f"thresholds (time {args.threshold:.0%}, "
              f"rss {args.mem_threshold:.0%}):", file=sys.stderr)
        for msg in all_regressions:
            print(f"  {msg}", file=sys.stderr)
        return 1
    print("no regressions beyond the threshold"
          if len(pairs) > 1 else "\nno regressions beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
