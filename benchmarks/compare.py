"""Diff two pytest-benchmark JSON files and gate on regressions.

Usage::

    python benchmarks/compare.py BASELINE.json NEW.json [--threshold 0.15]

Benchmarks are matched by name.  For each pair the mean runtimes are
compared; the exit status is 1 if any benchmark present in both files
slowed down by more than ``--threshold`` (default 15 %).  Speedups and
new/removed benchmarks are reported but never fail the gate.

This is the regression fence for the perf trajectory recorded in
``BENCH_kernel.json`` (see benchmarks/test_bench_kernel.py) and the CI
benchmark smoke job.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_benchmarks(path: str) -> dict[str, dict]:
    """Map benchmark name -> stats dict from a pytest-benchmark JSON."""
    with open(path) as fh:
        data = json.load(fh)
    out = {}
    for bench in data.get("benchmarks", []):
        out[bench["name"]] = bench
    return out


def _fmt_time(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def compare(
    baseline: dict[str, dict],
    new: dict[str, dict],
    threshold: float,
) -> tuple[str, list[str]]:
    """Render a comparison table; return (table, regression messages)."""
    names = sorted(set(baseline) | set(new))
    width = max((len(n) for n in names), default=4)
    lines = [
        f"{'benchmark'.ljust(width)}  {'baseline':>10}  {'new':>10}  "
        f"{'speedup':>8}  verdict"
    ]
    regressions: list[str] = []
    for name in names:
        old_bench, new_bench = baseline.get(name), new.get(name)
        if old_bench is None:
            lines.append(f"{name.ljust(width)}  {'-':>10}  "
                         f"{_fmt_time(new_bench['stats']['mean']):>10}  "
                         f"{'-':>8}  NEW")
            continue
        if new_bench is None:
            lines.append(f"{name.ljust(width)}  "
                         f"{_fmt_time(old_bench['stats']['mean']):>10}  "
                         f"{'-':>10}  {'-':>8}  REMOVED")
            continue
        old_mean = old_bench["stats"]["mean"]
        new_mean = new_bench["stats"]["mean"]
        speedup = old_mean / new_mean if new_mean > 0 else float("inf")
        if new_mean > old_mean * (1.0 + threshold):
            verdict = f"REGRESSION (>{threshold:.0%} slower)"
            regressions.append(
                f"{name}: {_fmt_time(old_mean)} -> {_fmt_time(new_mean)} "
                f"({speedup:.2f}x)"
            )
        elif speedup >= 1.0 + threshold:
            verdict = "improved"
        else:
            verdict = "ok"
        lines.append(
            f"{name.ljust(width)}  {_fmt_time(old_mean):>10}  "
            f"{_fmt_time(new_mean):>10}  {speedup:>7.2f}x  {verdict}"
        )
    return "\n".join(lines), regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline pytest-benchmark JSON")
    parser.add_argument("new", help="candidate pytest-benchmark JSON")
    parser.add_argument(
        "--threshold", type=float, default=0.15,
        help="allowed slowdown fraction before failing (default 0.15)",
    )
    args = parser.parse_args(argv)

    table, regressions = compare(
        load_benchmarks(args.baseline), load_benchmarks(args.new),
        args.threshold,
    )
    print(table)
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for msg in regressions:
            print(f"  {msg}", file=sys.stderr)
        return 1
    print("\nno regressions beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
