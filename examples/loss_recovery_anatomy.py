"""Anatomy of LEOTP's in-network loss recovery (SHR + VPH + caches).

Runs a lossy 6-hop chain and — via the fault injector — lands a scripted
2 s handover blackout and a Midnode crash/restart on it mid-transfer.
Then dissects where every lost packet was repaired: which Midnode
detected the hole, how many Void Packet Headers suppressed duplicate
requests downstream, how many recoveries were served from caches versus
the Producer, and what the recovery cost per packet was.  An invariant
monitor watches the whole run; a recovery report quantifies how fast
goodput came back after the faults.  Run with::

    python examples/loss_recovery_anatomy.py
"""

from repro.core import build_leotp_path
from repro.faults import (
    FaultInjector,
    FaultSchedule,
    InvariantMonitor,
    LinkDown,
    NodeCrash,
    recovery_report,
)
from repro.netsim.topology import uniform_chain_specs
from repro.simcore import RngRegistry, Simulator

DURATION_S = 30.0


def main() -> None:
    sim = Simulator()
    rng = RngRegistry(root_seed=11)
    path = build_leotp_path(
        sim, rng,
        uniform_chain_specs(6, rate_bps=20e6, delay_s=0.008, plr=0.01),
    )

    # Scripted faults on top of the random loss: a handover blackout on a
    # mid-path link, then a Midnode power-cycle that wipes its cache and
    # every piece of per-flow soft state.
    schedule = FaultSchedule([
        LinkDown(at_s=8.0, link="hop3", duration_s=2.0),
        NodeCrash(at_s=18.0, node="leotp-mid2", restart_after_s=0.5),
    ])
    injector = FaultInjector(sim, rng)
    injector.register_path(path)
    injector.arm(schedule)
    monitor = InvariantMonitor(sim, path)

    sim.run(until=DURATION_S)

    print("Faults injected:")
    for t, action in injector.log:
        print(f"  t={t:6.2f}s  {action}")

    losses = sum(
        d.ab.stats.packets_dropped_loss + d.ba.stats.packets_dropped_loss
        for d in path.links
    )
    print(f"\nRandom losses injected by the network: {losses}\n")

    print(f"{'Midnode':<12} {'holes':>6} {'VPH out':>8} {'retx-req':>9} "
          f"{'cache hits':>11} {'cached MB':>10}")
    for mid in path.midnodes:
        flow_state = mid._flows.get("leotp")
        holes = flow_state.shr.holes_detected if flow_state else 0
        print(f"{mid.name:<12} {holes:>6} {mid.stats.vph_sent:>8} "
              f"{mid.stats.retx_interests_sent:>9} "
              f"{mid.cache.stats.hits + mid.cache.stats.partial_hits:>11} "
              f"{mid.cache.stored_bytes / 1e6:>10.1f}")

    consumer = path.consumer
    print(f"\nConsumer: VPH notifications received  {consumer.vph_received}")
    print(f"          timeout retransmissions (TR) {consumer.tr_expirations}")
    print(f"          SHR+TR re-requests           {consumer.retransmission_interests}")

    rec = path.recorder
    normal = rec.owds() * 1000
    retx = rec.owds(retransmitted_only=True) * 1000
    print(f"\nDelivered {rec.total_bytes / 1e6:.1f} MB at "
          f"{rec.throughput_bps(5, DURATION_S) / 1e6:.2f} Mbps")
    print(f"OWD: all packets mean {normal.mean():.1f} ms; "
          f"recovered packets mean {retx.mean():.1f} ms "
          f"({len(retx)} recovered)")

    print("\nRecovery from the blackout (t=8..10s):")
    print(f"  {recovery_report(rec, 8.0, 10.0, window_s=4.0)}")
    print("Recovery from the crash/restart (t=18..18.5s):")
    print(f"  {recovery_report(rec, 18.0, 18.5, window_s=4.0)}")

    print("\nInvariants over the whole faulted run:")
    for report in monitor.finalise():
        print(f"  {report}")

    print("\nKey observation: recovery happens one hop upstream of each loss")
    print("(cache hits), so recovered packets cost ~one hopRTT, not an e2e RTT.")


if __name__ == "__main__":
    main()
