"""Incremental deployment: TCP endpoints, LEOTP satellite segment.

The paper's Sec. VII deployment story: unmodified TCP hosts talk to
transparent gateways at the ground stations, and only the satellite
segment speaks LEOTP.  This example downloads a file from a TCP server
to a TCP client across a lossy 5-hop LEO segment, once bridged through
LEOTP gateways and once as plain end-to-end TCP, and compares.  Run::

    python examples/tcp_gateway_bridge.py
"""

from repro.gateway import build_gateway_path
from repro.netsim.topology import HopSpec, uniform_chain_specs
from repro.simcore import RngRegistry, Simulator
from repro.tcp import FiniteStream, build_e2e_tcp_path

FILE_BYTES = 5_000_000
LEO = dict(rate_bps=20e6, delay_s=0.010, plr=0.01)


def bridged() -> None:
    sim = Simulator()
    rng = RngRegistry(root_seed=5)
    path = build_gateway_path(
        sim, rng, total_bytes=FILE_BYTES,
        leo_hops=uniform_chain_specs(5, **LEO),
        tcp_cc="cubic",
    )
    sim.run(until=120.0)
    print("TCP + LEOTP gateways (LEOTP on the satellite segment):")
    print(f"  client received     {path.client.bytes_delivered / 1e6:.1f} MB")
    if path.egress.consumer.completed_at:
        goodput = FILE_BYTES * 8 / path.egress.consumer.completed_at / 1e6
        print(f"  LEO segment done at {path.egress.consumer.completed_at:.2f} s "
              f"(~{goodput:.2f} Mbps)")
    mids = path.satellites
    repaired = sum(getattr(m, "stats", None).retx_interests_sent
                   for m in mids if hasattr(m, "stats"))
    print(f"  losses repaired inside the LEO segment: {repaired}")


def plain_tcp() -> None:
    sim = Simulator()
    rng = RngRegistry(root_seed=5)
    # Same LEO segment plus the two terrestrial hops, all end-to-end TCP.
    hops = [HopSpec(rate_bps=100e6, delay_s=0.005)] \
        + uniform_chain_specs(5, **LEO) \
        + [HopSpec(rate_bps=100e6, delay_s=0.005)]
    path = build_e2e_tcp_path(sim, rng, hops, "cubic",
                              stream=FiniteStream(FILE_BYTES))
    sim.run(until=120.0)
    print("Plain end-to-end TCP Cubic over the same path:")
    if path.sender.finished:
        goodput = FILE_BYTES * 8 / path.sender.completed_at / 1e6
        print(f"  completed at {path.sender.completed_at:.2f} s (~{goodput:.2f} Mbps)")
    else:
        print(f"  INCOMPLETE after 120 s: "
              f"{path.receiver.bytes_delivered / 1e6:.1f} of "
              f"{FILE_BYTES / 1e6:.1f} MB delivered")
    print(f"  retransmissions: {path.sender.retransmissions}")


if __name__ == "__main__":
    print(f"Downloading {FILE_BYTES / 1e6:.0f} MB across a lossy "
          "5-hop LEO segment (1 % loss per hop)\n")
    bridged()
    print()
    plain_tcp()
