"""Transcontinental transfer over the emulated Starlink constellation.

Computes time-varying routes from Beijing to New York over the 1600-
satellite core shell (with inter-satellite links), drives a chain whose
delays follow the orbital motion, and compares LEOTP against TCP BBR on
the identical network — the paper's headline Fig. 17 scenario.  Run with::

    python examples/starlink_transfer.py
"""

from repro.constellation import (
    ConstellationRouter,
    PathDynamicsDriver,
    compute_path_schedule,
    representative_hop_count,
    starlink_core_shell,
    starlink_hop_specs,
    top_cities,
)
from repro.core import build_leotp_path
from repro.simcore import RngRegistry, Simulator
from repro.tcp import build_e2e_tcp_path

DURATION_S = 45.0
CITY_A, CITY_B = "Beijing", "New York"


def main() -> None:
    print(f"Computing {CITY_A} -> {CITY_B} routes over the Starlink core shell...")
    router = ConstellationRouter(starlink_core_shell(), top_cities(100))
    schedule = compute_path_schedule(router, CITY_A, CITY_B, DURATION_S, step_s=2.0)
    n_hops = representative_hop_count(schedule)
    print(f"  typical hop count:     {n_hops}")
    print(f"  mean propagation delay {schedule.mean_delay_s * 1000:.1f} ms")
    print(f"  route changes:         {len(schedule.change_times())} "
          f"in {DURATION_S:.0f} s\n")

    hops = starlink_hop_specs(n_hops, isls_enabled=True)

    for protocol in ("leotp", "bbr"):
        sim = Simulator()
        rng = RngRegistry(root_seed=3)
        if protocol == "leotp":
            path = build_leotp_path(sim, rng, hops)
        else:
            path = build_e2e_tcp_path(sim, rng, hops, "bbr")
        PathDynamicsDriver(sim, schedule, path.links, update_interval_s=2.0)
        sim.run(until=DURATION_S)
        rec = path.recorder
        queueing = rec.owd_mean() * 1000 - schedule.mean_delay_s * 1000
        print(f"{protocol.upper():6s} throughput {rec.throughput_bps(10, DURATION_S) / 1e6:6.2f} Mbps"
              f" | mean OWD {rec.owd_mean() * 1000:6.1f} ms"
              f" | queueing {queueing:6.1f} ms"
              f" | p99 OWD {rec.owd_percentile(99) * 1000:6.1f} ms")


if __name__ == "__main__":
    main()
