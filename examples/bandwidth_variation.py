"""LEOTP's backpressure under a fluctuating bottleneck (Fig. 14 scenario).

The bottleneck bandwidth follows a square wave; the experiment prints a
live trace of the bottleneck rate, the adjacent Midnode's sending buffer,
and the consumer-side goodput, showing the hop-by-hop controller tracking
the bandwidth within a couple of hopRTTs while TCP variants (try ``--bbr``)
queue for an end-to-end feedback cycle.  Run with::

    python examples/bandwidth_variation.py [--bbr]
"""

import sys

from repro.core import build_leotp_path
from repro.netsim.bandwidth import SquareWaveBandwidth
from repro.netsim.topology import HopSpec
from repro.simcore import RngRegistry, Simulator
from repro.tcp import build_e2e_tcp_path

DURATION_S = 16.0
N_HOPS = 6


def hops():
    specs = []
    for i in range(N_HOPS):
        if i == 1:
            specs.append(HopSpec(
                rate_bps=10e6, delay_s=0.008,
                profile=SquareWaveBandwidth(10e6, 2e6, period_s=4.0),
            ))
        else:
            specs.append(HopSpec(rate_bps=20e6, delay_s=0.008))
    return specs


def main() -> None:
    use_bbr = "--bbr" in sys.argv
    sim = Simulator()
    rng = RngRegistry(root_seed=2)
    if use_bbr:
        path = build_e2e_tcp_path(sim, rng, hops(), "bbr")
        label = "TCP BBR"
    else:
        path = build_leotp_path(sim, rng, hops())
        label = "LEOTP"
    bottleneck = path.links[1].ab

    print(f"{label} over a 10+-2 Mbps square-wave bottleneck "
          f"({N_HOPS} hops, 96 ms RTT)\n")
    print(f"{'t(s)':>5} {'bottleneck':>11} {'goodput':>9} {'link queue':>11} "
          f"{'mean OWD':>9}")
    t = 0.0
    last_owds = 0
    while t < DURATION_S:
        t += 1.0
        sim.run(until=t)
        rate = bottleneck.profile.rate_at(sim.now) / 1e6
        goodput = path.recorder.throughput_bps(t - 1.0, t) / 1e6
        owds = path.recorder.owds()
        window = owds[last_owds:]
        last_owds = len(owds)
        owd_ms = window.mean() * 1000 if window.size else float("nan")
        print(f"{t:>5.0f} {rate:>9.1f}Mb {goodput:>7.2f}Mb "
              f"{bottleneck.queued_bytes:>10}B {owd_ms:>7.1f}ms")
    print("\nPropagation OWD is 48 ms; everything above that is queueing.")


if __name__ == "__main__":
    main()
