"""Multicast delivery through a shared Midnode (paper Sec. VII extension).

Three consumers fetch the *same* content (same FlowID) through one
Midnode.  The Pending Interest Table aggregates simultaneous duplicate
Interests and the cache serves late joiners, so the producer's uplink
carries each byte roughly once instead of three times.  Run with::

    python examples/multicast_fanout.py
"""

from repro.core import Consumer, LeotpConfig, MulticastMidnode, Producer
from repro.netsim.link import DuplexLink
from repro.netsim.trace import FlowRecorder
from repro.simcore import Simulator

CONTENT_BYTES = 2_000_000
N_CONSUMERS = 3


def main() -> None:
    sim = Simulator()
    config = LeotpConfig()
    producer = Producer(sim, "origin", config, content_bytes=CONTENT_BYTES)
    midnode = MulticastMidnode(sim, "edge-sat", config)
    uplink = DuplexLink(sim, producer, midnode, rate_bps=20e6, delay_s=0.015)
    midnode.set_upstream(uplink.ba)

    consumers = []
    for i in range(N_CONSUMERS):
        recorder = FlowRecorder(sim, name=f"user{i}")
        consumer = Consumer(
            sim, f"user{i}", "live-stream", config,
            total_bytes=CONTENT_BYTES, recorder=recorder,
            start_time=i * 1.0,  # staggered joins, 1 s apart
        )
        access = DuplexLink(sim, midnode, consumer, rate_bps=20e6, delay_s=0.003)
        consumer.out_link = access.ba
        consumers.append((consumer, recorder))

    sim.run(until=60.0)

    print(f"{N_CONSUMERS} consumers fetched the same "
          f"{CONTENT_BYTES / 1e6:.1f} MB flow through one Midnode\n")
    for i, (consumer, recorder) in enumerate(consumers):
        status = f"done at t={consumer.completed_at:.1f}s" if consumer.finished \
            else "incomplete"
        # Recorder OWDs here measure *content age* (time since the producer
        # first sent the bytes); for cache-served late joiners that
        # includes the time the data sat in the cache.
        print(f"  {consumer.name}: joined t={i:.0f}s, {status}, "
              f"mean content age {recorder.owd_mean():.2f} s")

    total_demand = N_CONSUMERS * CONTENT_BYTES
    uplink_bytes = producer.wire_bytes_sent
    print(f"\nProducer uplink carried {uplink_bytes / 1e6:.1f} MB "
          f"for {total_demand / 1e6:.1f} MB of total demand "
          f"({uplink_bytes / total_demand:.0%})")
    print(f"Interests aggregated at the Midnode: {midnode.interests_aggregated}")
    print(f"Cache hits serving late joiners:     {midnode.cache.stats.hits}")


if __name__ == "__main__":
    main()
