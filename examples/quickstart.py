"""Quickstart: a reliable LEOTP file transfer over a lossy satellite chain.

Builds a 5-hop chain (20 Mbps per hop, 1 % loss per hop), transfers a
10 MB file with LEOTP, and compares against end-to-end TCP BBR on the
identical network.  Run with::

    python examples/quickstart.py
"""

from repro.core import build_leotp_path
from repro.netsim.topology import uniform_chain_specs
from repro.simcore import RngRegistry, Simulator
from repro.tcp import FiniteStream, build_e2e_tcp_path

FILE_BYTES = 10_000_000
HOPS = dict(rate_bps=20e6, delay_s=0.010, plr=0.01)


def transfer_with_leotp() -> None:
    sim = Simulator()
    rng = RngRegistry(root_seed=1)
    path = build_leotp_path(
        sim, rng, uniform_chain_specs(5, **HOPS), total_bytes=FILE_BYTES
    )
    sim.run(until=60.0)
    consumer = path.consumer
    assert consumer.finished, "transfer did not complete"
    elapsed = consumer.completed_at
    print("LEOTP:")
    print(f"  completed in        {elapsed:.2f} s "
          f"({FILE_BYTES * 8 / elapsed / 1e6:.2f} Mbps goodput)")
    print(f"  mean packet OWD     {path.recorder.owd_mean() * 1000:.1f} ms")
    print(f"  p99 packet OWD      {path.recorder.owd_percentile(99) * 1000:.1f} ms")
    in_network = sum(m.stats.retx_interests_sent for m in path.midnodes)
    print(f"  losses repaired in-network: {in_network} "
          f"(consumer re-requests: {consumer.retransmission_interests})")
    print(f"  server bytes sent   {path.producer.wire_bytes_sent / 1e6:.2f} MB")


def transfer_with_bbr() -> None:
    sim = Simulator()
    rng = RngRegistry(root_seed=1)
    path = build_e2e_tcp_path(
        sim, rng, uniform_chain_specs(5, **HOPS), "bbr",
        stream=FiniteStream(FILE_BYTES),
    )
    sim.run(until=60.0)
    sender = path.sender
    assert sender.finished, "transfer did not complete"
    elapsed = sender.completed_at
    print("TCP BBR:")
    print(f"  completed in        {elapsed:.2f} s "
          f"({FILE_BYTES * 8 / elapsed / 1e6:.2f} Mbps goodput)")
    print(f"  mean packet OWD     {path.recorder.owd_mean() * 1000:.1f} ms")
    print(f"  p99 packet OWD      {path.recorder.owd_percentile(99) * 1000:.1f} ms")
    print(f"  retransmissions     {sender.retransmissions}")
    print(f"  sender bytes sent   {sender.wire_bytes_sent / 1e6:.2f} MB")


if __name__ == "__main__":
    print(f"Transferring a {FILE_BYTES / 1e6:.0f} MB file over "
          "5 hops x (20 Mbps, 10 ms, 1% loss)\n")
    transfer_with_leotp()
    print()
    transfer_with_bbr()
