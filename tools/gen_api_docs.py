#!/usr/bin/env python
"""Generate docs/API.md from the package/module/class docstrings.

The reference is *derived*, never hand-edited: every ``repro`` package
and module contributes its docstring, and every public class/function
its signature plus the first paragraph of its docstring.  Output is
deterministic (alphabetical within each package, stable signatures), so
CI can verify the committed file is in sync::

    PYTHONPATH=src python tools/gen_api_docs.py           # rewrite docs/API.md
    PYTHONPATH=src python tools/gen_api_docs.py --check   # exit 1 if stale

Keeping the reference generated means the docstring pass IS the API
documentation pass — paper section/figure anchors live next to the code
they describe and show up here automatically.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import pkgutil
import sys
from pathlib import Path

ROOT_PACKAGE = "repro"
OUTPUT = Path(__file__).resolve().parent.parent / "docs" / "API.md"

HEADER = """\
# API reference

Generated from docstrings by `tools/gen_api_docs.py` — do not edit by
hand; run `PYTHONPATH=src python tools/gen_api_docs.py` after changing
docstrings (CI's docs job fails if this file is stale).

Paper anchors (`Sec.`, `Fig.`, `eq.`, `Algorithm`) refer to *LEOTP: An
Information-Centric Transport Layer Protocol for LEO Satellite Networks*
(ICDCS 2023); see [PAPER.md](../PAPER.md) and
[EXPERIMENTS.md](../EXPERIMENTS.md).
"""


def first_paragraph(doc: str | None) -> str:
    if not doc:
        return "*(undocumented)*"
    paragraph: list[str] = []
    for line in inspect.cleandoc(doc).splitlines():
        if not line.strip():
            break
        paragraph.append(line.strip())
    return " ".join(paragraph)


def iter_modules(pkg_name: str):
    """(name, module) for the package and its non-package submodules."""
    pkg = importlib.import_module(pkg_name)
    yield pkg_name, pkg
    for info in sorted(pkgutil.iter_modules(pkg.__path__, pkg_name + "."),
                       key=lambda i: i.name):
        if not info.ispkg:
            yield info.name, importlib.import_module(info.name)


def public_members(module):
    """Public classes/functions *defined in* the module, in source order."""
    members = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue
        try:
            line = inspect.getsourcelines(obj)[1]
        except (OSError, TypeError):
            line = 0
        members.append((line, name, obj))
    return [(name, obj) for _, name, obj in sorted(members)]


def signature_of(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (ValueError, TypeError):
        return "(...)"


def discover_packages() -> list[str]:
    root = importlib.import_module(ROOT_PACKAGE)
    names = [ROOT_PACKAGE]
    for info in sorted(pkgutil.walk_packages(root.__path__, ROOT_PACKAGE + "."),
                       key=lambda i: i.name):
        if info.ispkg:
            names.append(info.name)
    return names


def render() -> str:
    lines = [HEADER]
    for pkg_name in discover_packages():
        lines.append(f"\n## `{pkg_name}`\n")
        for mod_name, module in iter_modules(pkg_name):
            if mod_name == pkg_name:
                lines.append(first_paragraph(module.__doc__) + "\n")
                continue
            lines.append(f"### `{mod_name}`\n")
            lines.append(first_paragraph(module.__doc__) + "\n")
            for name, obj in public_members(module):
                kind = "class" if inspect.isclass(obj) else "def"
                sig = "" if inspect.isclass(obj) else signature_of(obj)
                lines.append(f"- **`{kind} {name}{sig}`** — "
                             f"{first_paragraph(obj.__doc__)}")
            if public_members(module):
                lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if docs/API.md is out of date")
    args = parser.parse_args(argv)

    text = render()
    if args.check:
        on_disk = OUTPUT.read_text() if OUTPUT.exists() else ""
        if on_disk != text:
            sys.stderr.write(
                "docs/API.md is stale — run "
                "`PYTHONPATH=src python tools/gen_api_docs.py`\n"
            )
            return 1
        print("docs/API.md is up to date")
        return 0
    OUTPUT.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT.write_text(text)
    print(f"wrote {OUTPUT} ({len(text.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
