#!/usr/bin/env python
"""Fail on broken intra-repo markdown links.

Scans every tracked ``*.md`` file for inline links/images and reference
definitions, resolves relative targets against the linking file, and
exits 1 listing any target that does not exist.  External schemes
(http/https/mailto) are skipped.  Anchored links are checked against the
target file's headings using GitHub's slug rules — ``DESIGN.md#foo``
verifies both that ``DESIGN.md`` exists and that it contains a heading
slugging to ``foo``; pure in-page anchors (``#section``) are checked
against the linking file's own headings.

    python tools/check_links.py            # whole repo
    python tools/check_links.py README.md  # specific files
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

# Inline [text](target) / ![alt](target) and reference [label]: target lines.
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")

FENCE = re.compile(r"```.*?```", re.DOTALL)
HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$", re.MULTILINE)
# GitHub's slugger keeps word chars (unicode letters, digits, underscore),
# spaces, and hyphens; everything else is dropped before spaces -> hyphens.
SLUG_DROP = re.compile(r"[^\w\- ]", re.UNICODE)
MD_LINK_TEXT = re.compile(r"\[([^\]]*)\]\([^)]*\)")


def github_slug(heading: str) -> str:
    """Slug a rendered heading the way GitHub's anchor generator does."""
    text = MD_LINK_TEXT.sub(r"\1", heading)     # [text](url) -> text
    text = text.replace("`", "").replace("*", "")
    return SLUG_DROP.sub("", text.strip().lower()).replace(" ", "-")


def heading_slugs(path: Path, cache: dict[Path, set[str]]) -> set[str]:
    """All anchor slugs in *path*, with GitHub's -1/-2 duplicate suffixes."""
    if path not in cache:
        text = FENCE.sub("", path.read_text(encoding="utf-8"))
        slugs: set[str] = set()
        seen: dict[str, int] = {}
        for match in HEADING.finditer(text):
            slug = github_slug(match.group(1))
            n = seen.get(slug, 0)
            seen[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
        cache[path] = slugs
    return cache[path]


def check_file(path: Path, slug_cache: dict[Path, set[str]]) -> list[str]:
    text = path.read_text(encoding="utf-8")
    # Fenced code blocks routinely contain example "links"; drop them.
    text = FENCE.sub("", text)
    problems = []
    name = str(path.relative_to(ROOT)) if path.is_relative_to(ROOT) else str(path)
    targets = INLINE_LINK.findall(text) + REF_DEF.findall(text)
    for target in targets:
        if target.startswith(SKIP_SCHEMES):
            continue
        candidate, _, anchor = target.partition("#")
        resolved = (path.parent / candidate).resolve() if candidate else path
        if not resolved.exists():
            problems.append(f"{name}: broken link -> {target}")
            continue
        if anchor and resolved.suffix == ".md":
            if anchor.lower() not in heading_slugs(resolved, slug_cache):
                problems.append(
                    f"{name}: broken anchor -> {target} "
                    f"(no heading slugs to #{anchor.lower()})"
                )
    return problems


def markdown_files(args: list[str]) -> list[Path]:
    if args:
        return [Path(a).resolve() for a in args]
    out = subprocess.run(
        ["git", "ls-files", "--cached", "--others", "--exclude-standard",
         "*.md", "**/*.md"],
        cwd=ROOT, capture_output=True, text=True, check=True,
    ).stdout.split()
    return [ROOT / p for p in out]


def main(argv: list[str] | None = None) -> int:
    files = markdown_files(sys.argv[1:] if argv is None else argv)
    problems: list[str] = []
    slug_cache: dict[Path, set[str]] = {}
    for path in sorted(set(files)):
        problems.extend(check_file(path, slug_cache))
    for line in problems:
        print(line, file=sys.stderr)
    if problems:
        print(f"{len(problems)} broken link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(files)} markdown file(s): all links and anchors resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
