#!/usr/bin/env python
"""Fail on broken intra-repo markdown links.

Scans every tracked ``*.md`` file for inline links/images and reference
definitions, resolves relative targets against the linking file, and
exits 1 listing any target that does not exist.  External schemes
(http/https/mailto) and pure in-page anchors (``#section``) are skipped;
an anchor on a file link (``DESIGN.md#foo``) checks only the file.

    python tools/check_links.py            # whole repo
    python tools/check_links.py README.md  # specific files
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

# Inline [text](target) / ![alt](target) and reference [label]: target lines.
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(args: list[str]) -> list[Path]:
    if args:
        return [Path(a).resolve() for a in args]
    out = subprocess.run(
        ["git", "ls-files", "--cached", "--others", "--exclude-standard",
         "*.md", "**/*.md"],
        cwd=ROOT, capture_output=True, text=True, check=True,
    ).stdout.split()
    return [ROOT / p for p in out]


def check_file(path: Path) -> list[str]:
    text = path.read_text(encoding="utf-8")
    # Fenced code blocks routinely contain example "links"; drop them.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    problems = []
    targets = INLINE_LINK.findall(text) + REF_DEF.findall(text)
    for target in targets:
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        candidate = target.split("#", 1)[0]
        if not candidate:
            continue
        resolved = (path.parent / candidate).resolve()
        if not resolved.exists():
            problems.append(f"{path.relative_to(ROOT)}: broken link -> {target}")
    return problems


def main(argv: list[str] | None = None) -> int:
    files = markdown_files(sys.argv[1:] if argv is None else argv)
    problems: list[str] = []
    for path in sorted(set(files)):
        problems.extend(check_file(path))
    for line in problems:
        print(line, file=sys.stderr)
    if problems:
        print(f"{len(problems)} broken link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(files)} markdown file(s): all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
