"""Merge ``--profile`` dumps and print the hottest functions.

``python -m repro.experiments --profile ...`` writes one cProfile dump
per experiment to ``results/profiles/<id>.pstats``.  This tool merges
any number of those dumps into one profile and prints the top-N entries,
so "where does the whole harness spend its time" is one command::

    PYTHONPATH=src python -m repro.experiments --profile fig02 fig10 workload
    python tools/profile_top.py results/profiles/*.pstats
    python tools/profile_top.py results/profiles -n 40 --sort tottime

Directories are expanded *recursively* to every ``.pstats`` file below
them, so sharded experiments — whose worker processes dump one profile
each to ``results/profiles/shards/shard-groupNNN-pidNNN.pstats`` — merge
into the same report as the parent's per-experiment dump with a single
``results/profiles`` argument.  The profile-first rule for kernel work:
run this before optimising, and only touch what is actually at the top.
"""

from __future__ import annotations

import argparse
import os
import pstats
import sys


def collect_paths(args_paths: list[str]) -> list[str]:
    """Expand directories (recursively) to .pstats files; keep files as-is."""
    paths: list[str] = []
    for path in args_paths:
        if os.path.isdir(path):
            entries = sorted(
                os.path.join(root, name)
                for root, _dirs, names in os.walk(path)
                for name in names
                if name.endswith(".pstats")
            )
            if not entries:
                raise FileNotFoundError(f"no .pstats files under {path!r}")
            paths.extend(entries)
        else:
            paths.append(path)
    return paths


def merged_stats(paths: list[str]) -> pstats.Stats:
    stats = pstats.Stats(paths[0])
    for path in paths[1:]:
        stats.add(path)
    return stats


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths", nargs="+",
        help=".pstats files and/or directories containing them",
    )
    parser.add_argument(
        "-n", "--top", type=int, default=25,
        help="number of functions to print (default 25)",
    )
    parser.add_argument(
        "--sort", default="cumulative",
        choices=["cumulative", "tottime", "ncalls"],
        help="ranking key (default cumulative)",
    )
    args = parser.parse_args(argv)

    try:
        paths = collect_paths(args.paths)
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return 1
    stats = merged_stats(paths)
    print(f"merged {len(paths)} profile(s):")
    for path in paths:
        print(f"  {path}")
    print()
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Piped into `head`; the output that mattered already went out.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
