"""Packet-level TCP sender and receiver.

The engine implements the transport behaviours the paper's baselines need:

* cumulative ACKs carrying SACK blocks; the sender runs an RFC 6675-style
  scoreboard (pipe accounting, loss marking by SACK gap) so loss recovery
  performs like a modern kernel stack rather than a textbook NewReno;
* RFC 6298 retransmission timeouts with exponential backoff and Karn's
  algorithm for RTT sampling (ACKs echo the segment timestamp and its
  retransmission flag);
* pluggable congestion control (:mod:`repro.tcp.cc`), supporting both
  window-based (ACK-clocked) and rate-based (paced) algorithms;
* byte-stream sources, including the proxy-fed stream Split TCP uses, so
  per-byte origin timestamps survive proxy hops and end-to-end OWD can be
  measured across a split path.

A connection handshake is not modelled: every experiment measures
steady-state bulk transfer where the 1-RTT setup is immaterial.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Callable, Optional

from repro.common.ranges import ByteRange, RangeSet
from repro.common.rto import RtoEstimator
from repro.netsim.link import Link
from repro.netsim.node import Node
from repro.netsim.packet import Packet
from repro.netsim.trace import FlowRecorder
from repro.simcore.process import Timer
from repro.simcore.simulator import Simulator
from repro.tcp.segment import DEFAULT_MSS, TcpSegment

# ---------------------------------------------------------------------------
# Byte-stream sources
# ---------------------------------------------------------------------------


class ByteStream:
    """What a sender transmits: a byte stream with per-byte timestamps."""

    def available_from(self, seq: int) -> int:
        """Bytes available to send at stream offset ``seq``."""
        raise NotImplementedError

    def timestamp_at(self, seq: int) -> Optional[float]:
        """Origin timestamp of the byte at ``seq`` (None = stamp at send)."""
        return None


class InfiniteStream(ByteStream):
    """An unbounded bulk-transfer stream (iperf-style)."""

    def available_from(self, seq: int) -> int:
        return 1 << 40


class FiniteStream(ByteStream):
    """A fixed-size transfer (e.g. the 100 MB file of Fig. 11)."""

    def __init__(self, total_bytes: int) -> None:
        if total_bytes <= 0:
            raise ValueError("total_bytes must be positive")
        self.total_bytes = total_bytes

    def available_from(self, seq: int) -> int:
        return max(self.total_bytes - seq, 0)


class ProxyStream(ByteStream):
    """A stream fed incrementally by an upstream proxy receiver.

    ``push`` appends bytes carrying their *original* first-transmission
    timestamp; ``timestamp_at`` hands them back in order so downstream
    segments inherit the end-to-end age of the data they carry.
    """

    def __init__(self) -> None:
        self._pushed = 0
        self._chunks: deque[tuple[int, float]] = deque()  # (end_seq, ts)

    @property
    def pushed_bytes(self) -> int:
        return self._pushed

    def push(self, nbytes: int, first_ts: float) -> None:
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        self._pushed += nbytes
        self._chunks.append((self._pushed, first_ts))

    def available_from(self, seq: int) -> int:
        return max(self._pushed - seq, 0)

    def timestamp_at(self, seq: int) -> Optional[float]:
        while self._chunks and self._chunks[0][0] <= seq:
            self._chunks.popleft()
        return self._chunks[0][1] if self._chunks else None

    def buffered_bytes(self, consumed_seq: int) -> int:
        """Bytes pushed but not yet sent by the downstream sender."""
        return max(self._pushed - consumed_seq, 0)


# ---------------------------------------------------------------------------
# Sender
# ---------------------------------------------------------------------------


class _SegmentState:
    """Scoreboard entry for one in-flight segment."""

    __slots__ = (
        "seq", "end", "first_sent", "last_sent", "retx_count",
        "sacked", "lost", "in_pipe",
    )

    def __init__(self, seq: int, end: int, first_sent: float) -> None:
        self.seq = seq
        self.end = end
        self.first_sent = first_sent
        self.last_sent = first_sent
        self.retx_count = 0
        self.sacked = False
        self.lost = False
        self.in_pipe = False

    @property
    def length(self) -> int:
        return self.end - self.seq


class TcpSender(Node):
    """A TCP sending endpoint bound to one destination."""

    LOSS_GAP_BYTES_FACTOR = 3  # SACKed bytes above a hole that mark it lost

    def __init__(
        self,
        sim: Simulator,
        name: str,
        dst_name: str,
        out_link: Optional[Link],
        cc,
        stream: Optional[ByteStream] = None,
        mss: int = DEFAULT_MSS,
        flow_id: Optional[str] = None,
        start_time: float = 0.0,
        stop_time: Optional[float] = None,
    ) -> None:
        super().__init__(sim, name)
        self.dst_name = dst_name
        self.out_link = out_link
        self.cc = cc
        self.stream = stream if stream is not None else InfiniteStream()
        self.mss = mss
        self.flow_id = flow_id or f"{name}->{dst_name}"
        self.stop_time = stop_time
        # Sequence state and scoreboard.
        self.snd_una = 0
        self.snd_nxt = 0
        self._segments: "OrderedDict[int, _SegmentState]" = OrderedDict()
        self._pipe = 0  # bytes believed in flight (RFC 6675)
        self._recovery_point: Optional[int] = None
        # Timers.
        self.rto = RtoEstimator()
        self._rto_timer = Timer(sim, self._on_rto)
        self._pace_pending = False
        # Stats.
        self.delivered_total = 0  # cumulative delivered bytes (ack + sack)
        self.wire_bytes_sent = 0
        self.data_segments_sent = 0
        self.retransmissions = 0
        self.timeouts = 0
        self.completed_at: Optional[float] = None
        self._started = False
        sim.schedule_call(start_time, self.start)

    # ------------------------------------------------------------------

    @property
    def inflight_bytes(self) -> int:
        """Scoreboard pipe: bytes believed to be in the network."""
        return self._pipe

    @property
    def in_recovery(self) -> bool:
        return self._recovery_point is not None

    @property
    def finished(self) -> bool:
        return self.completed_at is not None

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._send_loop()
        self._maybe_schedule_pacing()

    def stop(self) -> None:
        """Quiesce the sender: no further transmissions or timer fires.

        Used when a flow is aborted (e.g. route loss): without this the
        sender's RTO timer keeps firing and retransmitting into the
        network forever — invisible zombie traffic that distorts every
        other flow's bottleneck share.
        """
        self.stop_time = self.sim.now
        self._rto_timer.cancel()

    def notify_churn(self, kind: str) -> None:
        """Deliver a topology churn signal to the congestion module.

        Experiments wire this to a
        :meth:`~repro.churn.events.TopologyEventStream.arm_signal`
        subscription, giving handover-aware CCs (OrbCC, adaptive) their
        ``on_churn`` events.  After the CC reacts, both transmission
        paths are nudged so a raised rate/window takes effect now rather
        than at the next ACK.
        """
        if self.finished:
            return
        self.cc.on_churn(self.sim.now, kind)
        if self.cc.churn_rearm_rto and self._rto_timer.armed:
            # The pending timer (and any backoff folded into it) was
            # calibrated against the pre-handover path.  Restart loss
            # detection on the estimator's measured timescale so data
            # eaten by the re-attach blackout is repaired in ~one RTO,
            # not after a backoff ladder built during the outage.  Pull
            # the expiry *in* only — an imminent timer is already better
            # loss detection than anything the estimator can offer.
            self.rto.refresh()
            # A sender with no RTT samples yet is sitting on the 1 s
            # conventional initial RTO; post-churn, probing the new path
            # at the floor is the faster way to its first sample.
            delay = self.rto.rto_s if self.rto.samples else self.rto.min_rto_s
            # The signal is explicit evidence the inflight rode a dead
            # path: a CC may name an even shorter repair deadline sized
            # to the re-attach blackout.  ACKs from surviving packets
            # re-arm the timer normally before it can fire spuriously.
            if self.cc.churn_retx_delay_s is not None:
                delay = min(delay, self.cc.churn_retx_delay_s)
            expiry = self._rto_timer.expiry
            if expiry is None or self.sim.now + delay < expiry:
                self._rto_timer.arm(delay)
        self._send_loop()
        self._maybe_schedule_pacing()

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------

    def _active(self) -> bool:
        if self.finished:
            return False
        return self.stop_time is None or self.sim.now < self.stop_time

    def _paced(self) -> bool:
        return self.cc.pacing_rate_bps(self.sim.now) is not None

    def _next_lost_segment(self) -> Optional[_SegmentState]:
        for state in self._segments.values():
            if state.lost and not state.sacked:
                return state
        return None

    def _send_one(self) -> bool:
        """Send the highest-priority eligible segment.  True if sent."""
        state = self._next_lost_segment()
        if state is not None:
            self._transmit(state, retransmitted=True)
            return True
        if self.stream.available_from(self.snd_nxt) > 0:
            self._send_new_segment()
            return True
        return False

    def _send_loop(self) -> None:
        """ACK-clocked transmission while the window allows."""
        if not self._active() or self._paced():
            return
        while self._pipe + self.mss <= self.cc.cwnd_bytes:
            if not self._send_one():
                break

    def _maybe_schedule_pacing(self) -> None:
        if not self._active() or not self._paced() or self._pace_pending:
            return
        rate = self.cc.pacing_rate_bps(self.sim.now)
        assert rate is not None
        interval = self.mss * 8.0 / max(rate, 1e3)
        self._pace_pending = True
        self.sim.schedule_call(interval, self._pace_tick)

    def _pace_tick(self) -> None:
        self._pace_pending = False
        if not self._active():
            return
        if not self._paced():
            self._send_loop()
            return
        if self._pipe + self.mss <= self.cc.cwnd_bytes:
            self._send_one()
        self._maybe_schedule_pacing()

    def _send_new_segment(self) -> None:
        length = min(self.mss, self.stream.available_from(self.snd_nxt))
        seq, end = self.snd_nxt, self.snd_nxt + length
        origin_ts = self.stream.timestamp_at(seq)
        first_sent = origin_ts if origin_ts is not None else self.sim.now
        state = _SegmentState(seq, end, first_sent)
        self._segments[seq] = state
        self.snd_nxt = end
        self._transmit(state, retransmitted=False)

    def _transmit(self, state: _SegmentState, retransmitted: bool) -> None:
        seg = TcpSegment(
            flow_id=self.flow_id,
            src=self.name,
            dst=self.dst_name,
            seq=state.seq,
            end_seq=state.end,
            sent_at=self.sim.now,
            first_sent_at=state.first_sent,
            retransmitted=retransmitted,
        )
        seg.tx_delivered = self.delivered_total
        self.wire_bytes_sent += seg.size_bytes
        self.data_segments_sent += 1
        if retransmitted:
            self.retransmissions += 1
            state.retx_count += 1
            state.lost = False  # back in flight
        state.last_sent = self.sim.now
        if not state.in_pipe:
            state.in_pipe = True
            self._pipe += state.length
        if self.out_link is None:
            raise RuntimeError(f"sender {self.name} has no outgoing link")
        self.out_link.send(seg)
        if not self._rto_timer.armed:
            self._rto_timer.arm(self.rto.rto_s)

    def _remove_from_pipe(self, state: _SegmentState) -> None:
        if state.in_pipe:
            state.in_pipe = False
            self._pipe -= state.length

    # ------------------------------------------------------------------
    # ACK processing
    # ------------------------------------------------------------------

    def on_receive(self, packet: Packet, link: Link) -> None:
        if not isinstance(packet, TcpSegment) or not packet.is_ack:
            return
        if packet.flow_id != self.flow_id:
            return
        self._process_ack(packet)
        self._send_loop()
        self._maybe_schedule_pacing()

    def _process_ack(self, ack: TcpSegment) -> None:
        now = self.sim.now
        acked = max(ack.ack_seq - self.snd_una, 0)
        if acked:
            self.snd_una = ack.ack_seq
            for seq in list(self._segments):
                state = self._segments[seq]
                if state.end <= self.snd_una:
                    self._remove_from_pipe(state)
                    del self._segments[seq]
                else:
                    break
        # Apply SACK information to the scoreboard.  Fully SACKed segments
        # are removed outright (receiver reneging is not modelled), which
        # keeps every later scoreboard scan proportional to the number of
        # holes rather than to the whole window.
        sack_advanced = False
        newly_sacked = 0
        highest_sacked = self.snd_una
        for start, end in ack.sack_blocks:
            highest_sacked = max(highest_sacked, end)
            for state in self._iter_segments_between(start, end):
                self._remove_from_pipe(state)
                newly_sacked += state.length
                sack_advanced = True
                del self._segments[state.seq]
        newly_lost = self._mark_lost(highest_sacked) if sack_advanced or acked else 0
        # RTT sampling (Karn: never from retransmitted segments).
        rtt = None
        if ack.echo_ts is not None and not ack.echo_retx:
            rtt = now - ack.echo_ts
            if rtt > 0:
                self.rto.on_sample(rtt)
        # Delivered = cumulatively ACKed plus newly SACKed (kernel-style
        # delivery accounting, which rate-based estimators depend on).
        delivered = acked + newly_sacked
        self.delivered_total += delivered
        rate_sample = None
        if (
            ack.echo_ts is not None
            and not ack.echo_retx
            and ack.echo_delivered is not None
        ):
            span = now - ack.echo_ts
            if span > 0:
                rate_sample = (self.delivered_total - ack.echo_delivered) * 8.0 / span
        if delivered:
            self.cc.on_ack(
                now, delivered, rtt, self._pipe,
                in_recovery=self.in_recovery, rate_sample_bps=rate_sample,
            )
        else:
            self.cc.on_dup_ack(now)
        # Recovery bookkeeping.
        if newly_lost and not self.in_recovery:
            self._recovery_point = self.snd_nxt
            self.cc.on_fast_retransmit(now)
        if self.in_recovery and self.snd_una >= self._recovery_point:
            self._recovery_point = None
        # RTO timer.
        if self._segments:
            self._rto_timer.arm(self.rto.rto_s)
        else:
            self._rto_timer.cancel()
        # Completion of finite transfers.
        if (
            self.completed_at is None
            and isinstance(self.stream, FiniteStream)
            and self.stream.available_from(self.snd_nxt) == 0
            and not self._segments
        ):
            self.completed_at = now

    def _iter_segments_between(self, start: int, end: int) -> list[_SegmentState]:
        # Scoreboard order is ascending seq (OrderedDict, appends only), so
        # the scan can stop at the block end; materialise because callers
        # delete entries while consuming the result.
        matched = []
        for state in self._segments.values():
            if state.seq >= end:
                break
            if start <= state.seq and state.end <= end:
                matched.append(state)
        return matched

    def _mark_lost(self, highest_sacked: int) -> int:
        """RFC 6675-style loss inference: a hole with >= 3 MSS of SACKed
        bytes above it is lost.  Returns the number of newly marked bytes."""
        threshold = self.LOSS_GAP_BYTES_FACTOR * self.mss
        newly = 0
        for state in self._segments.values():
            if state.seq >= highest_sacked:
                break
            if state.sacked or state.lost:
                continue
            if state.retx_count > 0:
                # Already retransmitted once; if the retransmission is also
                # lost, only the RTO can tell — never re-mark on stale SACKs.
                continue
            if highest_sacked - state.end >= threshold:
                state.lost = True
                self._remove_from_pipe(state)
                newly += state.length
        return newly

    def _on_rto(self) -> None:
        if not self._segments:
            return
        self.timeouts += 1
        self.cc.on_rto(self.sim.now)
        self.rto.backoff(2.0)
        self._recovery_point = None
        # Everything unSACKed is presumed lost; retransmit from the front.
        for state in self._segments.values():
            if not state.sacked:
                state.lost = True
                self._remove_from_pipe(state)
        first = self._next_lost_segment()
        if first is not None:
            self._transmit(first, retransmitted=True)
        self._rto_timer.arm(self.rto.rto_s)
        self._send_loop()
        self._maybe_schedule_pacing()


# ---------------------------------------------------------------------------
# Receiver
# ---------------------------------------------------------------------------


class TcpReceiver(Node):
    """A TCP receiving endpoint: reassembly, cumulative+SACK ACKs, metrics."""

    MAX_SACK_BLOCKS = 16

    def __init__(
        self,
        sim: Simulator,
        name: str,
        out_link: Optional[Link],
        recorder: Optional[FlowRecorder] = None,
        deliver: Optional[Callable[[int, float], None]] = None,
        flow_id: Optional[str] = None,
    ) -> None:
        super().__init__(sim, name)
        self.out_link = out_link
        self.recorder = recorder
        self.deliver = deliver
        self.flow_id = flow_id
        self.rcv_next = 0
        self._received = RangeSet()
        # Out-of-order chunks pending in-order delivery: seq -> (end, ts).
        self._pending: dict[int, tuple[int, float]] = {}
        self.bytes_delivered = 0
        self.acks_sent = 0

    def on_receive(self, packet: Packet, link: Link) -> None:
        if not isinstance(packet, TcpSegment) or packet.is_ack:
            return
        if self.flow_id is not None and packet.flow_id != self.flow_id:
            return
        rng = ByteRange(packet.seq, packet.end_seq)
        is_new = not self._received.contains(rng)
        if is_new:
            if self.recorder is not None:
                self.recorder.on_delivery(
                    packet.payload_bytes,
                    self.sim.now - packet.first_sent_at,
                    retransmitted=packet.retransmitted,
                )
            self._received.add(rng)
            self._pending[packet.seq] = (packet.end_seq, packet.first_sent_at)
            self._advance_delivery()
        self._send_ack(packet)

    def _advance_delivery(self) -> None:
        new_next = self._received.first_missing_from(self.rcv_next)
        if new_next > self.rcv_next:
            delivered = new_next - self.rcv_next
            self.bytes_delivered += delivered
            if self.deliver is not None:
                # Hand contiguous chunks downstream with their origin stamps.
                pos = self.rcv_next
                while pos < new_next:
                    chunk = self._pending.pop(pos, None)
                    if chunk is None:
                        # Overlapping retransmission split a chunk; fall back
                        # to a single delivery stamped now.
                        self.deliver(new_next - pos, self.sim.now)
                        break
                    end, ts = chunk
                    end = min(end, new_next)
                    self.deliver(end - pos, ts)
                    pos = end
            self.rcv_next = new_next
        # Garbage-collect stale pending chunks below the frontier.
        for seq in [s for s in self._pending if s < self.rcv_next]:
            del self._pending[seq]

    def _sack_blocks(self) -> list[tuple[int, int]]:
        blocks = []
        for rng in self._received:
            if rng.end <= self.rcv_next:
                continue
            blocks.append((max(rng.start, self.rcv_next), rng.end))
            if len(blocks) >= self.MAX_SACK_BLOCKS:
                break
        return blocks

    def _send_ack(self, data_seg: TcpSegment) -> None:
        ack = TcpSegment(
            flow_id=data_seg.flow_id,
            src=self.name,
            dst=data_seg.src,
            is_ack=True,
            ack_seq=self.rcv_next,
            sent_at=self.sim.now,
            echo_ts=data_seg.sent_at,
            echo_retx=data_seg.retransmitted,
        )
        ack.echo_delivered = data_seg.tx_delivered
        ack.sack_blocks = self._sack_blocks()
        self.acks_sent += 1
        if self.out_link is None:
            raise RuntimeError(f"receiver {self.name} has no outgoing link")
        self.out_link.send(ack)


def make_tcp_sender(
    sim: Simulator,
    name: str,
    dst_name: str,
    out_link: Optional[Link],
    cc,
    *,
    stream: Optional[ByteStream] = None,
    mss: int = DEFAULT_MSS,
    flow_id: Optional[str] = None,
    start_time: float = 0.0,
    stop_time: Optional[float] = None,
) -> TcpSender:
    """Build a :class:`TcpSender` with its congestion module in one step.

    ``cc`` may be a registry name (``"bbr"``), a
    :class:`~repro.tcp.cc.CCSpec` (params forwarded to the algorithm's
    constructor), or an already-built
    :class:`~repro.tcp.cc.CongestionControl` instance.  The single
    construction point keeps ``flows.py`` / ``split.py`` /
    ``gateway/bridge.py`` from re-implementing the ``make_cc`` +
    ``TcpSender`` pairing with subtly different defaults.
    """
    from repro.tcp.cc import CongestionControl, make_cc

    if not isinstance(cc, CongestionControl):
        cc = make_cc(cc, mss=mss)
    return TcpSender(
        sim,
        name,
        dst_name,
        out_link,
        cc,
        stream=stream,
        mss=mss,
        flow_id=flow_id,
        start_time=start_time,
        stop_time=stop_time,
    )
