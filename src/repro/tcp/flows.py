"""Convenience wiring of TCP flows over the standard topologies."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.netsim.link import DuplexLink
from repro.netsim.node import ChainForwarder, wire_chain_forwarders
from repro.netsim.topology import HopSpec, build_chain
from repro.netsim.trace import FlowRecorder
from repro.obs.metrics import METRICS, attach_tcp_samplers
from repro.simcore.random import RngRegistry
from repro.simcore.simulator import Simulator
from repro.tcp.cc import CCSpec, as_cc_spec
from repro.tcp.connection import ByteStream, TcpReceiver, TcpSender, make_tcp_sender
from repro.tcp.segment import DEFAULT_MSS


@dataclass
class TcpPath:
    """A wired end-to-end TCP flow over a chain."""

    sender: TcpSender
    receiver: TcpReceiver
    recorder: FlowRecorder
    links: list[DuplexLink]
    forwarders: list[ChainForwarder]


def build_e2e_tcp_path(
    sim: Simulator,
    rng: RngRegistry,
    hops: Sequence[HopSpec],
    cc_name: Union[str, CCSpec],
    stream: Optional[ByteStream] = None,
    mss: int = DEFAULT_MSS,
    flow_base: str = "tcp",
    start_time: float = 0.0,
    stop_time: Optional[float] = None,
) -> TcpPath:
    """End-to-end TCP across an N-hop chain of transparent forwarders.

    This is the baseline configuration of Figs. 2, 4, 5, 12: one TCP
    connection whose segments are relayed by ``len(hops) - 1`` dumb nodes.
    ``cc_name`` accepts a registry name or a :class:`CCSpec`.
    """
    n = len(hops)
    if n < 1:
        raise ValueError("need at least one hop")
    spec = as_cc_spec(cc_name)
    recorder = FlowRecorder(sim, name=f"{flow_base}:{spec.name}")
    sender = make_tcp_sender(
        sim, f"{flow_base}-snd", f"{flow_base}-rcv", None, spec,
        stream=stream, mss=mss,
        flow_id=flow_base, start_time=start_time, stop_time=stop_time,
    )
    forwarders = [ChainForwarder(sim, f"{flow_base}-fwd{i}") for i in range(n - 1)]
    receiver = TcpReceiver(
        sim, f"{flow_base}-rcv", None, recorder=recorder, flow_id=flow_base
    )
    nodes = [sender, *forwarders, receiver]
    links = build_chain(sim, nodes, list(hops), rng)
    wire_chain_forwarders(nodes, links)
    sender.out_link = links[0].ab
    receiver.out_link = links[-1].ba
    path = TcpPath(sender, receiver, recorder, links, forwarders)
    if METRICS.enabled:
        attach_tcp_samplers(sim, path)
    return path
