"""Packet-level TCP baselines: engine, congestion control, Split TCP."""

from repro.tcp.cc import (
    CC_REGISTRY,
    BbrCC,
    CongestionControl,
    CubicCC,
    HyblaCC,
    PccVivaceCC,
    RenoCC,
    VegasCC,
    WestwoodCC,
    make_cc,
)
from repro.tcp.connection import (
    ByteStream,
    FiniteStream,
    InfiniteStream,
    ProxyStream,
    TcpReceiver,
    TcpSender,
)
from repro.tcp.flows import TcpPath, build_e2e_tcp_path
from repro.tcp.segment import DEFAULT_MSS, TCP_HEADER_BYTES, TcpSegment
from repro.tcp.snoop import SnoopProxy
from repro.tcp.split import SplitTcpPath, SplitTcpProxy, build_split_tcp_path

__all__ = [
    "BbrCC",
    "ByteStream",
    "CC_REGISTRY",
    "CongestionControl",
    "CubicCC",
    "DEFAULT_MSS",
    "FiniteStream",
    "HyblaCC",
    "InfiniteStream",
    "PccVivaceCC",
    "ProxyStream",
    "RenoCC",
    "SnoopProxy",
    "SplitTcpPath",
    "SplitTcpProxy",
    "TCP_HEADER_BYTES",
    "TcpPath",
    "TcpReceiver",
    "TcpSegment",
    "TcpSender",
    "VegasCC",
    "WestwoodCC",
    "build_e2e_tcp_path",
    "build_split_tcp_path",
    "make_cc",
]
