"""Snoop proxy (Balakrishnan et al.): the classic TCP-aware link agent.

The paper's related work contrasts LEOTP's in-network retransmission with
the Snoop proxy, which "caches packets for local retransmission and hides
packet loss from the TCP sender.  However, the proxy does not perform
loss detection and the local retransmission only happens on the last
hop."  This module implements that agent so the comparison can be run:

* data segments passing toward the receiver are cached (bounded buffer);
* duplicate ACKs flowing back are intercepted: if the missing segment is
  cached, it is retransmitted locally and the duplicate ACK is suppressed
  so the sender's congestion control never learns about the loss;
* cumulative ACK progress cleans the cache.

A Snoop agent only helps with loss on its own downstream link — exactly
the limitation the paper calls out.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.netsim.link import Link
from repro.netsim.node import Node
from repro.netsim.packet import Packet
from repro.simcore.simulator import Simulator
from repro.tcp.segment import TcpSegment


class _SnoopFlow:
    __slots__ = ("cache", "cached_bytes", "last_ack", "retx_times")

    def __init__(self) -> None:
        self.cache: "OrderedDict[int, TcpSegment]" = OrderedDict()
        self.cached_bytes = 0
        self.last_ack = 0
        # Per-hole-start time of the last local retransmission (holdoff).
        self.retx_times: dict[int, float] = {}


class SnoopProxy(Node):
    """A TCP-aware proxy for one hop (typically the lossy last hop).

    Wire with :meth:`connect`: data arriving on ``from_sender`` is relayed
    onto ``to_receiver``; ACKs arriving on ``from_receiver`` are relayed
    onto ``to_sender`` (or suppressed when a local retransmission covers
    the loss).
    """

    DUP_ACK_TRIGGER = 1  # Snoop retransmits on the first duplicate ACK
    RETX_HOLDOFF_S = 0.02  # don't re-retransmit the same hole back to back

    def __init__(
        self,
        sim: Simulator,
        name: str,
        cache_bytes: int = 2 << 20,
    ) -> None:
        super().__init__(sim, name)
        self.cache_bytes = cache_bytes
        self._flows: dict[str, _SnoopFlow] = {}
        self._to_receiver: Optional[Link] = None
        self._to_sender: Optional[Link] = None
        self._from_sender_id: Optional[int] = None
        self._from_receiver_id: Optional[int] = None
        # Statistics.
        self.local_retransmissions = 0
        self.suppressed_dup_acks = 0
        self.segments_cached = 0

    def connect(
        self,
        from_sender: Link,
        to_receiver: Link,
        from_receiver: Link,
        to_sender: Link,
    ) -> None:
        self._from_sender_id = id(from_sender)
        self._from_receiver_id = id(from_receiver)
        self._to_receiver = to_receiver
        self._to_sender = to_sender

    def _flow(self, flow_id: str) -> _SnoopFlow:
        flow = self._flows.get(flow_id)
        if flow is None:
            flow = _SnoopFlow()
            self._flows[flow_id] = flow
        return flow

    # ------------------------------------------------------------------

    def on_receive(self, packet: Packet, link: Link) -> None:
        if not isinstance(packet, TcpSegment):
            return
        if id(link) == self._from_sender_id and not packet.is_ack:
            self._on_data(packet)
        elif id(link) == self._from_receiver_id and packet.is_ack:
            self._on_ack(packet)
        # Anything else (ACKs from the sender side, etc.) is dropped; the
        # experiments only run one-directional transfers through Snoop.

    def _on_data(self, seg: TcpSegment) -> None:
        flow = self._flow(seg.flow_id)
        copy = TcpSegment(
            flow_id=seg.flow_id, src=seg.src, dst=seg.dst,
            seq=seg.seq, end_seq=seg.end_seq,
            sent_at=seg.sent_at, first_sent_at=seg.first_sent_at,
            retransmitted=seg.retransmitted,
        )
        copy.tx_delivered = seg.tx_delivered
        if seg.seq not in flow.cache:
            flow.cached_bytes += copy.payload_bytes
            self.segments_cached += 1
        flow.cache[seg.seq] = copy
        while flow.cached_bytes > self.cache_bytes and flow.cache:
            _, evicted = flow.cache.popitem(last=False)
            flow.cached_bytes -= evicted.payload_bytes
        assert self._to_receiver is not None
        self._to_receiver.send(seg)

    def _ack_gaps(self, ack: TcpSegment) -> list[tuple[int, int]]:
        """Reception holes the ACK reveals: between the cumulative ACK and
        each SACK block (and between consecutive blocks)."""
        gaps = []
        frontier = ack.ack_seq
        for start, end in sorted(ack.sack_blocks):
            if start > frontier:
                gaps.append((frontier, start))
            frontier = max(frontier, end)
        return gaps

    def _gap_cached_segments(
        self, flow: _SnoopFlow, gap: tuple[int, int]
    ) -> Optional[list[TcpSegment]]:
        """Cached segments fully covering ``gap``, or None if any part is
        missing (then the sender must recover it)."""
        seq, end = gap
        segments = []
        while seq < end:
            cached = flow.cache.get(seq)
            if cached is None:
                return None
            segments.append(cached)
            seq = cached.end_seq
        return segments

    def _on_ack(self, ack: TcpSegment) -> None:
        flow = self._flow(ack.flow_id)
        assert self._to_sender is not None
        now = self.sim.now
        if ack.ack_seq > flow.last_ack:
            flow.last_ack = ack.ack_seq
            for seq in [s for s in flow.cache if flow.cache[s].end_seq <= ack.ack_seq]:
                flow.cached_bytes -= flow.cache[seq].payload_bytes
                del flow.cache[seq]
            flow.retx_times = {
                s: t for s, t in flow.retx_times.items() if s >= ack.ack_seq
            }
        gaps = self._ack_gaps(ack)
        if not gaps:
            self._to_sender.send(ack)
            return
        # Try to cover every revealed hole from the cache.
        covered: list[TcpSegment] = []
        all_covered = True
        for gap in gaps:
            segments = self._gap_cached_segments(flow, gap)
            if segments is None:
                all_covered = False
            else:
                covered.extend(segments)
        for cached in covered:
            last = flow.retx_times.get(cached.seq, -1.0)
            if now - last < self.RETX_HOLDOFF_S:
                continue
            flow.retx_times[cached.seq] = now
            retx = TcpSegment(
                flow_id=cached.flow_id, src=cached.src, dst=cached.dst,
                seq=cached.seq, end_seq=cached.end_seq,
                sent_at=now, first_sent_at=cached.first_sent_at,
                retransmitted=True,
            )
            retx.tx_delivered = cached.tx_delivered
            self.local_retransmissions += 1
            assert self._to_receiver is not None
            self._to_receiver.send(retx)
        if all_covered:
            # Every hole is being repaired locally: hide the loss signal.
            self.suppressed_dup_acks += 1
            return
        self._to_sender.send(ack)
