"""TCP segment format for the packet-level baseline stack.

Segments model the fields the simulation needs — sequence/ack numbers,
SACK blocks, and wire-size accounting with TCP/IP header overhead — so
baseline goodput is charged the same way LEOTP packets are charged
their header overhead (fair comparison, Sec. V-A setup).
"""

from __future__ import annotations

from typing import Optional

from repro.netsim.packet import Packet

TCP_HEADER_BYTES = 40  # IPv4 + TCP header with timestamp option
DEFAULT_MSS = 1400


class TcpSegment(Packet):
    """A data segment or an ACK.

    Data segments carry the byte range ``[seq, end_seq)``.  ACKs carry the
    cumulative acknowledgement ``ack_seq`` and echo the timestamp (and
    retransmission flag) of the segment that triggered them, so the sender
    can take Karn-compliant RTT samples.
    """

    __slots__ = (
        "flow_id",
        "seq",
        "end_seq",
        "is_ack",
        "ack_seq",
        "sent_at",
        "first_sent_at",
        "retransmitted",
        "echo_ts",
        "echo_retx",
        "sack_blocks",
        "tx_delivered",
        "echo_delivered",
    )

    def __init__(
        self,
        flow_id: str,
        src: str,
        dst: str,
        seq: int = 0,
        end_seq: int = 0,
        is_ack: bool = False,
        ack_seq: int = 0,
        sent_at: float = 0.0,
        first_sent_at: float = 0.0,
        retransmitted: bool = False,
        echo_ts: Optional[float] = None,
        echo_retx: bool = False,
    ) -> None:
        payload = 0 if is_ack else end_seq - seq
        if payload < 0:
            raise ValueError(f"invalid segment range [{seq}, {end_seq})")
        super().__init__(
            size_bytes=TCP_HEADER_BYTES + payload, src=src, dst=dst,
            created_at=sent_at,
        )
        self.flow_id = flow_id
        self.seq = seq
        self.end_seq = end_seq
        self.is_ack = is_ack
        self.ack_seq = ack_seq
        self.sent_at = sent_at
        self.first_sent_at = first_sent_at
        self.retransmitted = retransmitted
        self.echo_ts = echo_ts
        self.echo_retx = echo_retx
        self.sack_blocks: list[tuple[int, int]] = []
        # Delivery-rate sampling (BBR-style): data segments carry the
        # sender's delivered-counter at transmit time; ACKs echo it back.
        self.tx_delivered: Optional[int] = None
        self.echo_delivered: Optional[int] = None

    @property
    def payload_bytes(self) -> int:
        return 0 if self.is_ack else self.end_seq - self.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.is_ack:
            return f"<ACK {self.flow_id} ack={self.ack_seq}>"
        retx = " retx" if self.retransmitted else ""
        return f"<SEG {self.flow_id} [{self.seq},{self.end_seq}){retx}>"
