"""Split TCP: per-hop TCP connections glued by proxies.

The classic performance-enhancing-proxy design the paper analyses in
Sec. II-B / Fig. 4: each hop runs an independent TCP connection; a proxy
terminates the upstream connection, buffers the byte stream, and re-sends
it on its own downstream connection.  Bytes carry their *original* first-
transmission timestamp across proxies so end-to-end OWD (including proxy
queueing — Split TCP's weakness) is measured faithfully.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.netsim.link import Link
from repro.netsim.node import Node
from repro.netsim.packet import Packet
from repro.netsim.trace import FlowRecorder
from repro.simcore.simulator import Simulator
from repro.tcp.cc import CCSpec
from repro.tcp.connection import (
    ByteStream,
    ProxyStream,
    TcpReceiver,
    TcpSender,
    make_tcp_sender,
)
from repro.tcp.segment import DEFAULT_MSS, TcpSegment


class SplitTcpProxy(Node):
    """One proxy: upstream TCP receiver + downstream TCP sender.

    The internal buffer between the two connections is unbounded, as in
    the plain Split TCP the paper evaluates — the resulting backlog at
    intermediate nodes is precisely the pathology Fig. 4 demonstrates.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        up_ack_link: Optional[Link],
        down_data_link: Optional[Link],
        cc_name: Union[str, CCSpec],
        next_hop_name: str,
        up_flow_id: str,
        down_flow_id: str,
        mss: int = DEFAULT_MSS,
    ) -> None:
        super().__init__(sim, name)
        self.stream = ProxyStream()
        self.receiver = TcpReceiver(
            sim, name, out_link=up_ack_link,
            deliver=self._on_deliver, flow_id=up_flow_id,
        )
        self.sender = make_tcp_sender(
            sim, name, next_hop_name, down_data_link,
            cc_name, stream=self.stream,
            mss=mss, flow_id=down_flow_id,
        )

    def _on_deliver(self, nbytes: int, first_ts: float) -> None:
        self.stream.push(nbytes, first_ts)
        self.sender._send_loop()
        self.sender._maybe_schedule_pacing()

    @property
    def buffered_bytes(self) -> int:
        """Backlog between the two connections (proxy queue)."""
        return self.stream.buffered_bytes(self.sender.snd_nxt)

    def on_receive(self, packet: Packet, link: Link) -> None:
        if not isinstance(packet, TcpSegment):
            return
        if packet.is_ack:
            self.sender.receive(packet, link)
        else:
            self.receiver.receive(packet, link)


class SplitTcpPath:
    """A fully wired Split TCP path over an N-hop chain.

    Build with :func:`build_split_tcp_path`; exposes the end sender, the
    proxies, the end receiver, and aggregate backlog for diagnostics.
    """

    def __init__(
        self,
        sender: TcpSender,
        proxies: list[SplitTcpProxy],
        receiver: TcpReceiver,
        links: Optional[list] = None,
        recorder: Optional[FlowRecorder] = None,
    ) -> None:
        self.sender = sender
        self.proxies = proxies
        self.receiver = receiver
        # Exposed for the fault injector (hop targeting) and recovery
        # metrics, so split paths work under the chaos harnesses too.
        self.links = links if links is not None else []
        self.recorder = recorder

    @property
    def total_proxy_backlog_bytes(self) -> int:
        return sum(p.buffered_bytes for p in self.proxies)


def build_split_tcp_path(
    sim: Simulator,
    rng,
    hops: Sequence,
    cc_name: Union[str, CCSpec],
    stream: Optional[ByteStream] = None,
    recorder: Optional[FlowRecorder] = None,
    mss: int = DEFAULT_MSS,
    flow_base: str = "split",
) -> SplitTcpPath:
    """Create sender, N-1 proxies, receiver and wire them over ``hops``.

    ``hops`` is a sequence of :class:`~repro.netsim.topology.HopSpec`; hop
    ``i`` carries the ``i``-th per-hop TCP connection.
    """
    from repro.netsim.topology import build_chain

    n = len(hops)
    if n < 1:
        raise ValueError("need at least one hop")
    sender = make_tcp_sender(
        sim, f"{flow_base}-snd", f"{flow_base}-p0" if n > 1 else f"{flow_base}-rcv",
        None, cc_name, stream=stream, mss=mss,
        flow_id=f"{flow_base}:hop0",
    )
    proxies = [
        SplitTcpProxy(
            sim, f"{flow_base}-p{i}",
            up_ack_link=None, down_data_link=None,
            cc_name=cc_name,
            next_hop_name=(f"{flow_base}-p{i+1}" if i + 1 < n - 1 else f"{flow_base}-rcv"),
            up_flow_id=f"{flow_base}:hop{i}",
            down_flow_id=f"{flow_base}:hop{i+1}",
            mss=mss,
        )
        for i in range(n - 1)
    ]
    receiver = TcpReceiver(
        sim, f"{flow_base}-rcv", out_link=None, recorder=recorder,
        flow_id=f"{flow_base}:hop{n-1}",
    )
    nodes = [sender, *proxies, receiver]
    links = build_chain(sim, nodes, list(hops), rng)
    # Wire outgoing links: data flows forward, ACKs flow backward per hop.
    sender.out_link = links[0].ab
    for i, proxy in enumerate(proxies):
        proxy.receiver.out_link = links[i].ba
        proxy.sender.out_link = links[i + 1].ab
    receiver.out_link = links[-1].ba
    return SplitTcpPath(sender, proxies, receiver, links, recorder)
