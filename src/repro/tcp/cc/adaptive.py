"""A simple learned/adaptive rate policy (online bandit over rate moves).

A deliberately small stand-in for the learning-based controllers of the
Sussex LEO CC study: the sender's rate is adjusted once per monitor
interval (~1 RTT) by one of three discrete actions — *decrease*, *hold*,
*increase* — chosen by a utility-greedy rule with a deterministic
round-robin exploration schedule (every ``explore_every``-th decision
tries the least-recently-used action).  Each interval's observed utility

    ``throughput_mbps - loss_penalty * losses - rtt_penalty * rtt_gradient``

is folded into a per-action EWMA; the greedy step picks the action with
the best running score.  No RNG anywhere, so runs stay bit-reproducible
from ``(scale, seed)`` like everything else in the simulator.

Churn-aware via :meth:`on_churn`: a path switch zeroes the learned
scores (experience from the old bottleneck misleads on the new one) and
re-enters the multiplicative-increase warmup.
"""

from __future__ import annotations

from typing import Optional

from repro.tcp.cc.base import CongestionControl
from repro.tcp.cc.registry import register_cc
from repro.tcp.segment import DEFAULT_MSS

from repro.tcp.cc.orbcc import RESET_KINDS


@register_cc("adaptive")
class AdaptiveCC(CongestionControl):
    name = "adaptive"

    #: Rate multipliers for the three actions.
    ACTIONS = (0.85, 1.0, 1.2)

    def __init__(
        self,
        mss: int = DEFAULT_MSS,
        initial_rate_bps: float = 4e6,
        min_rate_bps: float = 256e3,
        max_rate_bps: float = 2e9,
        ewma_alpha: float = 0.3,
        explore_every: int = 8,
        loss_penalty: float = 8.0,
        rtt_penalty: float = 40.0,
        warmup_gain: float = 1.6,
    ) -> None:
        super().__init__(mss)
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if explore_every < 2:
            raise ValueError("explore_every must be >= 2")
        self.min_rate_bps = float(min_rate_bps)
        self.max_rate_bps = float(max_rate_bps)
        self.ewma_alpha = float(ewma_alpha)
        self.explore_every = int(explore_every)
        self.loss_penalty = float(loss_penalty)
        self.rtt_penalty = float(rtt_penalty)
        self.warmup_gain = float(warmup_gain)

        self._rate = float(initial_rate_bps)
        self._warmup = True
        # Per-action EWMA utility and staleness (decision index last tried).
        self._scores = [0.0, 0.0, 0.0]
        self._last_tried = [-1, -1, -1]
        self._decision = 0
        self._action = 1  # hold
        # Current monitor interval accumulators.
        self._interval_start: Optional[float] = None
        self._acked_bytes = 0
        self._losses = 0
        self._rtt_first: Optional[float] = None
        self._rtt_last: Optional[float] = None
        self._srtt: Optional[float] = None
        self.churn_resets = 0

    # -- interval machinery ---------------------------------------------

    def _interval_len(self) -> float:
        return self._srtt if self._srtt is not None else 0.1

    def _finish_interval(self, now: float) -> None:
        start = self._interval_start if self._interval_start is not None else now
        elapsed = max(now - start, 1e-6)
        thr_mbps = self._acked_bytes * 8.0 / elapsed / 1e6
        grad = 0.0
        if self._rtt_first is not None and self._rtt_last is not None:
            grad = max(self._rtt_last - self._rtt_first, 0.0)
        utility = (
            thr_mbps
            - self.loss_penalty * self._losses
            - self.rtt_penalty * grad
        )
        a = self.ewma_alpha
        idx = self._action
        if self._last_tried[idx] < 0:
            self._scores[idx] = utility
        else:
            self._scores[idx] = (1 - a) * self._scores[idx] + a * utility
        self._last_tried[idx] = self._decision
        self._decision += 1

        if self._warmup:
            if self._losses or grad > 0.05:
                self._warmup = False  # found the ceiling; start learning
            else:
                self._rate = min(self._rate * self.warmup_gain, self.max_rate_bps)
        if not self._warmup:
            self._action = self._pick_action()
            self._rate = self._rate * self.ACTIONS[self._action]
            self._rate = min(max(self._rate, self.min_rate_bps), self.max_rate_bps)

        self._interval_start = now
        self._acked_bytes = 0
        self._losses = 0
        self._rtt_first = None
        self._rtt_last = None

    def _pick_action(self) -> int:
        if self._decision % self.explore_every == 0:
            # Deterministic exploration: revisit the stalest action.
            return min(range(len(self.ACTIONS)), key=lambda i: self._last_tried[i])
        best = max(self._scores)
        return self._scores.index(best)  # ties -> lowest index (decrease)

    # -- CongestionControl interface ------------------------------------

    def on_ack(self, now, acked_bytes, rtt_s, inflight_bytes, in_recovery=False, rate_sample_bps=None) -> None:
        if self._interval_start is None:
            self._interval_start = now
        self._acked_bytes += acked_bytes
        if rtt_s is not None:
            self._srtt = rtt_s if self._srtt is None else 0.875 * self._srtt + 0.125 * rtt_s
            if self._rtt_first is None:
                self._rtt_first = rtt_s
            self._rtt_last = rtt_s
        if now - (self._interval_start or now) >= self._interval_len():
            self._finish_interval(now)

    def on_fast_retransmit(self, now: float) -> None:
        self._losses += 1

    def on_rto(self, now: float) -> None:
        # A timeout is strong evidence of overshoot: back off immediately
        # rather than waiting out the interval.
        self._losses += 3
        self._rate = max(self._rate * 0.5, self.min_rate_bps)
        self._warmup = False

    def on_churn(self, now: float, kind: str) -> None:
        if kind not in RESET_KINDS:
            return
        self.churn_resets += 1
        # Old-path experience misleads on the new bottleneck: forget it
        # and re-probe upward multiplicatively.
        self._scores = [0.0, 0.0, 0.0]
        self._last_tried = [-1, -1, -1]
        self._action = 1
        self._warmup = True
        self._interval_start = now
        self._acked_bytes = 0
        self._losses = 0
        self._rtt_first = None
        self._rtt_last = None

    @property
    def cwnd_bytes(self) -> float:
        # Inflight cap: 2x the rate-delay product at the smoothed RTT.
        rtt = self._srtt if self._srtt is not None else 0.1
        return max(2.0 * self._rate * rtt / 8.0, 4.0 * self.mss)

    def pacing_rate_bps(self, now: float) -> Optional[float]:
        return self._rate

    @property
    def rate_bps(self) -> float:
        return self._rate
