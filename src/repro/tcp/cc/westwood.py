"""TCP Westwood+: bandwidth-estimate-based loss response for wireless links.

Westwood grows like Reno but, on loss, sets ssthresh to the estimated
bandwidth-delay product (BWE x RTTmin) instead of blindly halving — the
"faded-channel" heuristic that helps on random-loss links.
"""

from __future__ import annotations

from typing import Optional

from repro.tcp.cc.base import CongestionControl
from repro.tcp.cc.registry import register_cc
from repro.tcp.segment import DEFAULT_MSS


@register_cc("westwood")
class WestwoodCC(CongestionControl):
    name = "westwood"

    FILTER_GAIN = 0.9  # EWMA low-pass coefficient for the bandwidth estimate

    def __init__(self, mss: int = DEFAULT_MSS) -> None:
        super().__init__(mss)
        self._cwnd = 10.0 * mss  # bytes
        self._ssthresh = float("inf")
        self._bwe_bps = 0.0
        self._rtt_min: Optional[float] = None
        self._last_ack_time: Optional[float] = None

    @property
    def cwnd_bytes(self) -> float:
        return self._cwnd

    @property
    def bandwidth_estimate_bps(self) -> float:
        return self._bwe_bps

    @property
    def in_slow_start(self) -> bool:
        return self._cwnd < self._ssthresh

    def on_ack(self, now, acked_bytes, rtt_s, inflight_bytes, in_recovery=False, rate_sample_bps=None) -> None:
        if rtt_s is not None:
            self._rtt_min = rtt_s if self._rtt_min is None else min(self._rtt_min, rtt_s)
        if self._last_ack_time is not None:
            dt = now - self._last_ack_time
            if dt > 0:
                sample = acked_bytes * 8.0 / dt
                self._bwe_bps = (
                    self.FILTER_GAIN * self._bwe_bps + (1 - self.FILTER_GAIN) * sample
                )
        self._last_ack_time = now
        if in_recovery:
            return  # keep estimating bandwidth, but no window growth
        if self.in_slow_start:
            self._cwnd += acked_bytes
        else:
            self._cwnd += self.mss * acked_bytes / self._cwnd

    def _bdp_bytes(self) -> float:
        if self._rtt_min is None or self._bwe_bps <= 0:
            return 2.0 * self.mss
        return max(self._bwe_bps * self._rtt_min / 8.0, 2.0 * self.mss)

    def on_fast_retransmit(self, now: float) -> None:
        self._ssthresh = self._bdp_bytes()
        if self._cwnd > self._ssthresh:
            self._cwnd = self._ssthresh

    def on_rto(self, now: float) -> None:
        self._ssthresh = self._bdp_bytes()
        self._cwnd = float(self.mss)
