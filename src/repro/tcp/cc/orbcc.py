"""OrbCC-style handover-aware rate control for LEO paths.

Model-based like BBR — windowed max delivery rate, windowed min RTT,
pace at ``gain * btl_bw`` — but built around the one fact BBR's filters
cannot express: in a LEO network the bottleneck *changes identity* at
every handover.  BBR keeps serving a 10-round-old bandwidth maximum that
describes a satellite it is no longer using, and its ProbeBW cruise
gains need many RTTs to re-learn a post-handover capacity jump.  OrbCC
keeps BBR's steady-state machinery (STARTUP -> DRAIN -> CRUISE with the
8-phase gain cycle) and adds a handover arc driven by churn signals
(:meth:`on_churn`):

* on ``PathSwitch`` / ``GsReattach`` / ``RouteRestored`` it *drops* the
  bandwidth and RTT filters — the old path model is evidence about a
  path that no longer exists — keeping only a discounted carry-over
  floor (``carryover * btl_bw``) so pacing never falls off a cliff;
* it rides out the re-acquisition blackout first (``HOLD_HANDOVER``):
  for ``hold_s`` after the signal (sized to the sub-100 ms GSL re-attach
  window) it paces gently at the floor instead of blasting a probe burst
  into a link that is still down and repairing the whole burst after;
* then probes aggressively (``PROBE_HANDOVER``: ``probe_gain`` pacing
  for ``probe_s``) to re-fill the new bottleneck in a couple of RTTs
  instead of tens, and *drains* the probe queue afterwards exactly as
  BBR drains its startup queue — without the drain, every handover
  leaves a standing queue that inflates RTT for the rest of the flow;
* uses short filter windows (bandwidth max over ``bw_window_rounds``
  rounds, RTT min over ``rtt_window_s`` seconds) sized to
  inter-handover intervals rather than wired-Internet route lifetimes.
  There is no PROBE_RTT state: handover resets re-measure RTprop far
  more often than BBR's 10 s staleness timer would.

All knobs are constructor params, reachable via
``CCSpec("orbcc", {...})`` / ``--cc-param``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.tcp.cc.base import CongestionControl
from repro.tcp.cc.registry import register_cc
from repro.tcp.segment import DEFAULT_MSS

#: Churn kinds that mean "the path identity changed": drop the model.
RESET_KINDS = frozenset({"PathSwitch", "GsReattach", "RouteRestored"})

STARTUP = "STARTUP"
DRAIN = "DRAIN"
CRUISE = "CRUISE"
HOLD_HANDOVER = "HOLD_HANDOVER"
PROBE_HANDOVER = "PROBE_HANDOVER"


@register_cc("orbcc")
class OrbCC(CongestionControl):
    name = "orbcc"

    #: On churn the sender also refreshes its RTO timer: backoff racked
    #: up while the old GSL blacked out would otherwise stall loss
    #: detection on the *new* path for seconds (min-RTO doubling wins
    #: every clustered-handover race without this).
    churn_rearm_rto = True

    STARTUP_GAIN = 2.885
    DRAIN_GAIN = 1.0 / 2.885
    CWND_GAIN = 2.0
    HOLD_GAIN = 0.75
    CRUISE_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
    STARTUP_GROWTH = 1.25
    FLOOR_DECAY = 0.85

    def __init__(
        self,
        mss: int = DEFAULT_MSS,
        probe_gain: float = 2.0,
        probe_s: float = 0.6,
        hold_s: float = 0.1,
        carryover: float = 0.85,
        bw_window_rounds: int = 6,
        rtt_window_s: float = 4.0,
        blind_rate_bps: float = 2e6,
    ) -> None:
        super().__init__(mss)
        if probe_gain < 1.0:
            raise ValueError("probe_gain must be >= 1.0")
        if not 0.0 <= carryover <= 1.0:
            raise ValueError("carryover must be in [0, 1]")
        if hold_s < 0.0 or probe_s < 0.0:
            raise ValueError("hold_s and probe_s must be non-negative")
        if blind_rate_bps <= 0:
            raise ValueError("blind_rate_bps must be positive")
        self.probe_gain = float(probe_gain)
        self.probe_s = float(probe_s)
        self.hold_s = float(hold_s)
        self.carryover = float(carryover)
        self.bw_window_rounds = int(bw_window_rounds)
        self.rtt_window_s = float(rtt_window_s)
        self.blind_rate_bps = float(blind_rate_bps)

        self._bw_samples: Deque[tuple[int, float]] = deque()
        self._btl_bw = 0.0
        self._rtt_samples: Deque[tuple[float, float]] = deque()
        self._rt_prop: Optional[float] = None
        self._round = 0
        self._round_start_time = 0.0
        # Startup/full-pipe detection (as in BBR).
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        self._filled_pipe = False
        # Queue drain after STARTUP or PROBE_HANDOVER (as BBR's DRAIN).
        self._draining = False
        # Post-handover hold/probe phases (absolute sim times).
        self._hold_until = -1.0
        self._probe_until = -1.0
        self._probe_needs_drain = False
        self._now = 0.0
        self._floor_bw = 0.0
        self._floor_stale = False
        # Cruise cycling.
        self._cycle_index = 2  # start in a cruise phase, as BBR does
        self._cycle_start = 0.0
        self.churn_resets = 0

    # -- model ----------------------------------------------------------

    def _update_round(self, now: float) -> None:
        rt = self._rt_prop if self._rt_prop is not None else 0.1
        if now - self._round_start_time >= rt:
            self._round += 1
            self._round_start_time = now
            if self._floor_stale and self._floor_bw > 0.0:
                # Fade the stale floor one round at a time: keeps the
                # post-probe cushion briefly but cannot out-pace a
                # genuinely slower new bottleneck for more than ~1 s.
                self._floor_bw *= self.FLOOR_DECAY

    def _update_bw(self, rate_sample_bps: Optional[float]) -> None:
        if rate_sample_bps is not None and rate_sample_bps > 0:
            expiry = self._round + self.bw_window_rounds
            while self._bw_samples and self._bw_samples[-1][1] <= rate_sample_bps:
                self._bw_samples.pop()
            self._bw_samples.append((expiry, rate_sample_bps))
        while self._bw_samples and self._bw_samples[0][0] < self._round:
            self._bw_samples.popleft()
        if self._bw_samples:
            self._btl_bw = self._bw_samples[0][1]
            # Fresh evidence supersedes the carried-over floor.
            if self._btl_bw >= self._floor_bw:
                self._floor_bw = 0.0

    def _update_rtprop(self, now: float, rtt_s: Optional[float]) -> None:
        if rtt_s is None:
            return
        while self._rtt_samples and self._rtt_samples[-1][1] >= rtt_s:
            self._rtt_samples.pop()
        self._rtt_samples.append((now, rtt_s))
        while self._rtt_samples and self._rtt_samples[0][0] < now - self.rtt_window_s:
            self._rtt_samples.popleft()
        self._rt_prop = self._rtt_samples[0][1]

    def _check_full_pipe(self) -> None:
        if self._filled_pipe:
            return
        if self._btl_bw >= self._full_bw * self.STARTUP_GROWTH:
            self._full_bw = self._btl_bw
            self._full_bw_rounds = 0
        else:
            self._full_bw_rounds += 1
            if self._full_bw_rounds >= 3:
                self._filled_pipe = True
                # Exit STARTUP through DRAIN, as BBR does: the 2.885x
                # startup burst is sitting in the bottleneck queue.
                self._draining = True

    def _bdp_bytes(self) -> float:
        bw = self._effective_bw()
        if bw <= 0 or self._rt_prop is None:
            return 10.0 * self.mss
        return bw * self._rt_prop / 8.0

    def _effective_bw(self) -> float:
        return max(self._btl_bw, self._floor_bw)

    @property
    def churn_retx_delay_s(self) -> float:
        # Repair right after the re-attach window: any packet that was
        # in flight when the path switched is assumed gone by then.
        return self.hold_s + 0.05

    def _holding(self, now: float) -> bool:
        return now < self._hold_until

    def _probing(self, now: float) -> bool:
        return self._hold_until <= now < self._probe_until

    def _expire_probe(self, now: float) -> None:
        """Probe window over: drain the probe burst before cruising."""
        if self._probe_needs_drain and now >= self._probe_until:
            self._probe_needs_drain = False
            # The carry-over floor only bridges the re-acquisition gap:
            # past the probe it goes stale and decays round by round
            # (see _update_round).  If the new bottleneck is *slower*
            # than the old one, a persistent floor would pace above it
            # forever — standing queue, loss, multi-second stalls on
            # downgrade handovers.  (Not cleared outright: a blackout
            # spanning the whole probe window would leave bw=0 and drop
            # pacing to the blind rate.)
            self._floor_stale = True
            if not self._holding(now):
                self._draining = True

    # -- CongestionControl interface ------------------------------------

    def on_ack(self, now, acked_bytes, rtt_s, inflight_bytes, in_recovery=False, rate_sample_bps=None) -> None:
        self._now = now
        self._update_round(now)
        self._update_bw(rate_sample_bps)
        self._update_rtprop(now, rtt_s)
        self._check_full_pipe()
        self._expire_probe(now)
        if self._draining and inflight_bytes <= self._bdp_bytes():
            self._draining = False
            self._cycle_index = 2
            self._cycle_start = now
        if self.state == CRUISE:
            rt = self._rt_prop or 0.1
            if now - self._cycle_start > rt:
                self._cycle_index = (self._cycle_index + 1) % len(self.CRUISE_GAINS)
                self._cycle_start = now

    def on_fast_retransmit(self, now: float) -> None:
        # Like BBR: isolated losses are noise, the rate model absorbs them.
        pass

    def on_rto(self, now: float) -> None:
        self._full_bw = 0.0
        self._full_bw_rounds = 0

    def on_churn(self, now: float, kind: str) -> None:
        if kind not in RESET_KINDS:
            return
        self.churn_resets += 1
        self._now = now
        # The old path's filters describe a bottleneck we just left.
        self._floor_bw = self.carryover * self._effective_bw()
        self._floor_stale = False
        self._bw_samples.clear()
        self._btl_bw = 0.0
        self._rtt_samples.clear()
        # Keep _rt_prop as a working guess until the first new sample.
        self._round += 1
        self._round_start_time = now
        self._hold_until = now + self.hold_s
        self._probe_until = self._hold_until + self.probe_s
        self._probe_needs_drain = True
        self._draining = False
        # Allow startup-style growth detection on the new path.
        self._full_bw = 0.0
        self._full_bw_rounds = 0

    @property
    def state(self) -> str:
        if self._holding(self._now):
            return HOLD_HANDOVER
        if self._probing(self._now):
            return PROBE_HANDOVER
        if self._draining:
            return DRAIN
        if not self._filled_pipe:
            return STARTUP
        return CRUISE

    @property
    def cwnd_bytes(self) -> float:
        if self._holding(self._now):
            # Enough to keep the ACK clock alive through the blackout,
            # not enough to dump a burst into a dead link.
            return max(self._bdp_bytes(), 4.0 * self.mss)
        gain = self.CWND_GAIN
        if self._probing(self._now):
            gain = max(self.probe_gain, self.CWND_GAIN)
        elif not self._filled_pipe:
            gain = self.STARTUP_GAIN
        return max(gain * self._bdp_bytes(), 4.0 * self.mss)

    def pacing_rate_bps(self, now: float) -> Optional[float]:
        self._now = now
        self._expire_probe(now)
        bw = self._effective_bw()
        if bw <= 0:
            # No estimate yet.  Unlike BBR's 29 Mbps blind blast, pace
            # the first window at GSL order-of-magnitude: on a LEO path
            # a flow born near a handover otherwise serializes its whole
            # initial window into the re-attach blackout (~80 ms) and
            # stalls on the 1 s conventional initial RTO before it ever
            # measures anything.  Spreading the window across ~150 ms
            # lets its tail survive the blackout and start the model.
            return self.blind_rate_bps
        if self._holding(now):
            return self.HOLD_GAIN * bw
        if self._probing(now):
            return self.probe_gain * bw
        if self._draining:
            return self.DRAIN_GAIN * bw
        if not self._filled_pipe:
            return self.STARTUP_GAIN * bw
        return self.CRUISE_GAINS[self._cycle_index] * bw

    @property
    def btl_bw_bps(self) -> float:
        return self._effective_bw()

    @property
    def rt_prop_s(self) -> Optional[float]:
        return self._rt_prop
