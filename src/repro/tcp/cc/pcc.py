"""PCC Vivace (simplified): online-learning rate control.

PCC sends at an explicit rate and judges each monitor interval (MI) by a
utility function combining throughput, latency gradient, and loss
(u = rate^0.9 - b*rate*dRTT/dt - c*rate*loss).  Paired MIs probe rate
up/down by epsilon; the sender moves along the empirical utility gradient.
This captures the published behaviour the paper's figures rely on: decent
loss tolerance (up to the utility cliff) but sluggish reaction under long
feedback loops, producing queueing during bandwidth drops.
"""

from __future__ import annotations

from typing import Optional

from repro.tcp.cc.base import CongestionControl
from repro.tcp.cc.registry import register_cc
from repro.tcp.segment import DEFAULT_MSS


@register_cc("pcc")
class PccVivaceCC(CongestionControl):
    name = "pcc"

    EPSILON = 0.05            # probe amplitude
    LATENCY_COEF = 900.0      # Vivace's b (per Mbps * s/s)
    LOSS_COEF = 11.35         # Vivace's c
    GRADIENT_TOLERANCE = 0.02  # ignore RTT gradients below measurement noise
    THROUGHPUT_EXPONENT = 0.9
    MIN_RATE_BPS = 0.2e6
    MAX_RATE_BPS = 1e9
    STEP_FRACTION = 0.08      # conversion of utility gradient sign to rate step

    def __init__(self, mss: int = DEFAULT_MSS, initial_rate_bps: float = 2e6) -> None:
        super().__init__(mss)
        self._base_rate = initial_rate_bps
        self._srtt: Optional[float] = None
        # Monitor-interval state.
        self._mi_start = 0.0
        self._mi_acked = 0
        self._mi_losses = 0
        self._mi_first_rtt: Optional[float] = None
        self._mi_last_rtt: Optional[float] = None
        self._mi_phase = 0          # 0: probe up, 1: probe down
        # ACK feedback lags transmission by ~1 RTT = ~1 MI, so the bytes
        # observed during an MI were sent at the *previous* MI's rate; we
        # therefore attribute each window's measurement to the previous
        # MI's (phase, rate).
        self._pending_attribution: Optional[tuple[int, float]] = None
        self._utility_by_phase: dict[int, float] = {}
        self._consecutive_same_direction = 0
        self._last_direction = 0

    # ------------------------------------------------------------------

    def _mi_duration(self) -> float:
        return max(self._srtt if self._srtt is not None else 0.05, 0.01)

    def _current_rate(self) -> float:
        sign = 1.0 if self._mi_phase == 0 else -1.0
        return self._base_rate * (1.0 + sign * self.EPSILON)

    def _utility(self, rate_bps: float, loss_rate: float, rtt_gradient: float) -> float:
        rate_mbps = rate_bps / 1e6
        # Small positive gradients are indistinguishable from serialisation
        # jitter; Vivace's monitor tolerates them (its b coefficient ramps up
        # only under sustained inflation).
        effective_gradient = max(rtt_gradient - self.GRADIENT_TOLERANCE, 0.0)
        return (
            rate_mbps**self.THROUGHPUT_EXPONENT
            - self.LATENCY_COEF * rate_mbps * effective_gradient
            - self.LOSS_COEF * rate_mbps * loss_rate
        )

    def _finish_mi(self, now: float) -> None:
        duration = now - self._mi_start
        if duration <= 0:
            return
        if self._pending_attribution is not None:
            phase, rate = self._pending_attribution
            achieved_bps = self._mi_acked * 8.0 / duration
            sent_estimate = rate * duration / 8.0 / self.mss
            loss_rate = (
                self._mi_losses / max(sent_estimate, 1.0) if sent_estimate > 0 else 0.0
            )
            if self._mi_first_rtt is not None and self._mi_last_rtt is not None:
                rtt_gradient = (self._mi_last_rtt - self._mi_first_rtt) / duration
            else:
                rtt_gradient = 0.0
            self._utility_by_phase[phase] = self._utility(
                achieved_bps, min(loss_rate, 1.0), rtt_gradient
            )
            if 0 in self._utility_by_phase and 1 in self._utility_by_phase:
                self._decide(self._utility_by_phase[0], self._utility_by_phase[1])
                self._utility_by_phase.clear()
        # The MI that elapsed in this window was sent at the current phase's
        # rate; its ACKs will arrive during the next window.
        self._pending_attribution = (self._mi_phase, self._current_rate())
        # Reset the MI accumulators.
        self._mi_start = now
        self._mi_acked = 0
        self._mi_losses = 0
        self._mi_first_rtt = None
        self._mi_last_rtt = None
        self._mi_phase ^= 1

    def _decide(self, utility_up: float, utility_down: float) -> None:
        direction = 1 if utility_up > utility_down else -1
        if direction == self._last_direction:
            self._consecutive_same_direction += 1
        else:
            self._consecutive_same_direction = 1
        self._last_direction = direction
        # Amplify the step while the gradient keeps pointing the same way.
        boost = min(self._consecutive_same_direction, 4)
        step = self.STEP_FRACTION * boost * self._base_rate
        self._base_rate = min(
            max(self._base_rate + direction * step, self.MIN_RATE_BPS),
            self.MAX_RATE_BPS,
        )

    # ------------------------------------------------------------------
    # CongestionControl interface
    # ------------------------------------------------------------------

    def on_ack(self, now, acked_bytes, rtt_s, inflight_bytes, in_recovery=False, rate_sample_bps=None) -> None:
        if rtt_s is not None:
            self._srtt = (
                rtt_s if self._srtt is None else 0.9 * self._srtt + 0.1 * rtt_s
            )
            if self._mi_first_rtt is None:
                self._mi_first_rtt = rtt_s
            self._mi_last_rtt = rtt_s
        self._mi_acked += acked_bytes
        if now - self._mi_start >= self._mi_duration():
            self._finish_mi(now)

    def on_fast_retransmit(self, now: float) -> None:
        self._mi_losses += 1

    def on_rto(self, now: float) -> None:
        self._mi_losses += 4  # a timeout signals a loss burst
        self._base_rate = max(self._base_rate * 0.7, self.MIN_RATE_BPS)

    @property
    def cwnd_bytes(self) -> float:
        # Rate-based: the window only caps runaway inflight.
        rtt = self._srtt if self._srtt is not None else 0.1
        return max(2.0 * self._current_rate() * rtt / 8.0, 4.0 * self.mss)

    def pacing_rate_bps(self, now: float) -> Optional[float]:
        return self._current_rate()

    @property
    def rate_bps(self) -> float:
        return self._base_rate
