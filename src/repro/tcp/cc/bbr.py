"""BBR congestion control (simplified v1 state machine).

Model-based: estimates the bottleneck bandwidth (windowed-max of delivery
rate) and the round-trip propagation delay (windowed-min RTT), paces at
``gain * btl_bw`` and caps inflight at ``2 * BDP``.  The four-phase state
machine (STARTUP / DRAIN / PROBE_BW / PROBE_RTT) follows the published
design; delivery rate is sampled per packet exactly as in BBR (the sender
echoes its delivered-counter through the receiver).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.tcp.cc.base import CongestionControl
from repro.tcp.cc.registry import register_cc
from repro.tcp.segment import DEFAULT_MSS

STARTUP = "STARTUP"
DRAIN = "DRAIN"
PROBE_BW = "PROBE_BW"
PROBE_RTT = "PROBE_RTT"


@register_cc("bbr")
class BbrCC(CongestionControl):
    name = "bbr"

    HIGH_GAIN = 2.885
    DRAIN_GAIN = 1.0 / 2.885
    CWND_GAIN = 2.0
    PROBE_BW_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
    BW_WINDOW_ROUNDS = 10          # max-filter length, in rounds (~RTTs)
    RTPROP_WINDOW_S = 10.0         # min-filter length for RTprop
    PROBE_RTT_DURATION_S = 0.2
    STARTUP_GROWTH = 1.25          # full-pipe test: bw must grow 25 %/round

    def __init__(self, mss: int = DEFAULT_MSS) -> None:
        super().__init__(mss)
        self.state = STARTUP
        self._pacing_gain = self.HIGH_GAIN
        self._cwnd_gain = self.HIGH_GAIN
        # Bandwidth (max) filter: (expiry_round, bw_bps) entries.
        self._bw_samples: Deque[tuple[int, float]] = deque()
        self._btl_bw = 0.0
        # RTprop (min) filter: (time, rtt) entries.
        self._rtt_samples: Deque[tuple[float, float]] = deque()
        self._rt_prop: Optional[float] = None
        # Delivery accounting (diagnostics only; sampling is per packet).
        self._delivered_bytes = 0
        # Round tracking.
        self._round = 0
        self._round_start_time = 0.0
        # Full-pipe detection.
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        self._filled_pipe = False
        # PROBE_BW cycling / PROBE_RTT bookkeeping.
        self._cycle_index = 0
        self._cycle_start = 0.0
        self._probe_rtt_done_at: Optional[float] = None
        self._rtprop_stamp = 0.0
        self._last_inflight = 0

    # ------------------------------------------------------------------
    # Model updates
    # ------------------------------------------------------------------

    def _update_round(self, now: float) -> None:
        rt = self._rt_prop if self._rt_prop is not None else 0.1
        if now - self._round_start_time >= rt:
            self._round += 1
            self._round_start_time = now

    def _update_bw(self, now: float, rate_sample_bps: Optional[float]) -> None:
        """Fold a per-packet delivery-rate sample into the windowed max.

        The sender computes each sample exactly as BBR does —
        ``(delivered_now - delivered_at_segment_send) / (ack_time -
        segment_send_time)`` — which is immune to ACK bursts after
        recovery, unlike any estimator built on the cumulative-ACK series.
        """
        if rate_sample_bps is not None and rate_sample_bps > 0:
            expiry = self._round + self.BW_WINDOW_ROUNDS
            # Monotonic max-filter: drop tail samples dominated by the new
            # one, so the window max is always at the head (O(1) amortised).
            while self._bw_samples and self._bw_samples[-1][1] <= rate_sample_bps:
                self._bw_samples.pop()
            self._bw_samples.append((expiry, rate_sample_bps))
        while self._bw_samples and self._bw_samples[0][0] < self._round:
            self._bw_samples.popleft()
        if self._bw_samples:
            self._btl_bw = self._bw_samples[0][1]

    def _update_rtprop(self, now: float, rtt_s: Optional[float]) -> None:
        if rtt_s is None:
            return
        # Monotonic min-filter over the RTprop window: the head is always
        # the window minimum (O(1) amortised per sample).
        while self._rtt_samples and self._rtt_samples[-1][1] >= rtt_s:
            self._rtt_samples.pop()
        self._rtt_samples.append((now, rtt_s))
        while self._rtt_samples and self._rtt_samples[0][0] < now - self.RTPROP_WINDOW_S:
            self._rtt_samples.popleft()
        new_min = self._rtt_samples[0][1]
        if self._rt_prop is None or new_min <= self._rt_prop:
            self._rtprop_stamp = now
        self._rt_prop = new_min

    def _check_full_pipe(self) -> None:
        if self._filled_pipe:
            return
        if self._btl_bw >= self._full_bw * self.STARTUP_GROWTH:
            self._full_bw = self._btl_bw
            self._full_bw_rounds = 0
        else:
            self._full_bw_rounds += 1
            if self._full_bw_rounds >= 3:
                self._filled_pipe = True

    def _bdp_bytes(self) -> float:
        if self._btl_bw <= 0 or self._rt_prop is None:
            return 10.0 * self.mss
        return self._btl_bw * self._rt_prop / 8.0

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------

    def _advance_state(self, now: float, inflight: int) -> None:
        if self.state == STARTUP and self._filled_pipe:
            self.state = DRAIN
            self._pacing_gain = self.DRAIN_GAIN
            self._cwnd_gain = self.HIGH_GAIN
        if self.state == DRAIN and inflight <= self._bdp_bytes():
            self._enter_probe_bw(now)
        if self.state == PROBE_BW:
            rt = self._rt_prop or 0.1
            if now - self._cycle_start > rt:
                self._cycle_index = (self._cycle_index + 1) % len(self.PROBE_BW_GAINS)
                self._cycle_start = now
                self._pacing_gain = self.PROBE_BW_GAINS[self._cycle_index]
        # PROBE_RTT entry: RTprop estimate stale.
        if (
            self.state != PROBE_RTT
            and self._rt_prop is not None
            and now - self._rtprop_stamp > self.RTPROP_WINDOW_S
        ):
            self.state = PROBE_RTT
            self._pacing_gain = 1.0
            self._cwnd_gain = 1.0
            self._probe_rtt_done_at = now + self.PROBE_RTT_DURATION_S
        if self.state == PROBE_RTT:
            assert self._probe_rtt_done_at is not None
            if now >= self._probe_rtt_done_at:
                self._rtprop_stamp = now
                if self._filled_pipe:
                    self._enter_probe_bw(now)
                else:
                    self.state = STARTUP
                    self._pacing_gain = self.HIGH_GAIN
                    self._cwnd_gain = self.HIGH_GAIN

    def _enter_probe_bw(self, now: float) -> None:
        self.state = PROBE_BW
        self._cycle_index = 2  # start in a cruise phase
        self._cycle_start = now
        self._pacing_gain = self.PROBE_BW_GAINS[self._cycle_index]
        self._cwnd_gain = self.CWND_GAIN

    # ------------------------------------------------------------------
    # CongestionControl interface
    # ------------------------------------------------------------------

    def on_ack(self, now, acked_bytes, rtt_s, inflight_bytes, in_recovery=False, rate_sample_bps=None) -> None:
        self._delivered_bytes += acked_bytes
        self._last_inflight = inflight_bytes
        self._update_round(now)
        self._update_bw(now, rate_sample_bps)
        self._update_rtprop(now, rtt_s)
        self._check_full_pipe()
        self._advance_state(now, inflight_bytes)

    def on_fast_retransmit(self, now: float) -> None:
        # BBR does not react to isolated losses; the model absorbs them.
        pass

    def on_rto(self, now: float) -> None:
        # Conservative restart of the model after a timeout.
        self._full_bw = 0.0
        self._full_bw_rounds = 0

    @property
    def cwnd_bytes(self) -> float:
        if self.state == PROBE_RTT:
            return 4.0 * self.mss
        return max(self._cwnd_gain * self._bdp_bytes(), 4.0 * self.mss)

    def pacing_rate_bps(self, now: float) -> Optional[float]:
        if self._btl_bw <= 0:
            # No estimate yet: pace at an arbitrary moderate default so the
            # first round produces samples.
            return 10e6 * self._pacing_gain
        return self._pacing_gain * self._btl_bw

    @property
    def btl_bw_bps(self) -> float:
        return self._btl_bw

    @property
    def rt_prop_s(self) -> Optional[float]:
        return self._rt_prop
