"""TCP Hybla (Caini & Firrincieli 2004): RTT-compensated AIMD.

Hybla scales window growth by rho = RTT/RTT0 (RTT0 = 25 ms) so long-RTT
(satellite) connections grow as fast as a terrestrial reference flow:
slow start adds ``2^rho - 1`` segments per ACKed segment and congestion
avoidance adds ``rho^2 / cwnd``.
"""

from __future__ import annotations

from repro.tcp.cc.base import CongestionControl
from repro.tcp.cc.registry import register_cc
from repro.tcp.segment import DEFAULT_MSS


@register_cc("hybla")
class HyblaCC(CongestionControl):
    name = "hybla"

    RTT0_S = 0.025

    RHO_CAP = 8.0  # bounds 2^rho growth against pathological RTT estimates

    def __init__(self, mss: int = DEFAULT_MSS) -> None:
        super().__init__(mss)
        self._cwnd = 10.0  # MSS units
        self._ssthresh = float("inf")
        self._rho = 1.0
        self._rtt_min: float | None = None

    @property
    def cwnd_bytes(self) -> float:
        return self._cwnd * self.mss

    @property
    def rho(self) -> float:
        return self._rho

    @property
    def in_slow_start(self) -> bool:
        return self._cwnd < self._ssthresh

    def on_ack(self, now, acked_bytes, rtt_s, inflight_bytes, in_recovery=False, rate_sample_bps=None) -> None:
        if rtt_s is not None:
            # rho derives from the propagation RTT (minimum observed), not
            # the instantaneous RTT — otherwise queueing inflates rho and
            # growth diverges.
            if self._rtt_min is None or rtt_s < self._rtt_min:
                self._rtt_min = rtt_s
            self._rho = min(max(self._rtt_min / self.RTT0_S, 1.0), self.RHO_CAP)
        if in_recovery:
            return  # no window growth while repairing losses
        acked_mss = acked_bytes / self.mss
        if self.in_slow_start:
            self._cwnd += (2.0 ** self._rho - 1.0) * acked_mss
        else:
            self._cwnd += (self._rho**2 / self._cwnd) * acked_mss

    def on_fast_retransmit(self, now: float) -> None:
        self._ssthresh = max(self._cwnd / 2.0, 2.0)
        self._cwnd = self._ssthresh

    def on_rto(self, now: float) -> None:
        self._ssthresh = max(self._cwnd / 2.0, 2.0)
        self._cwnd = 1.0
