"""The congestion-control plugin registry.

Controllers register themselves with the :func:`register_cc` decorator;
:func:`make_cc` (in :mod:`repro.tcp.cc`) instantiates them by name or
from a :class:`~repro.tcp.cc.spec.CCSpec`.  Third-party controllers can
live in any importable module — decorating the class is enough to make
the name selectable from every CLI (``--cc``), no edits to
``repro/tcp/cc/__init__.py`` required::

    from repro.tcp.cc import CongestionControl, register_cc

    @register_cc("mycc")
    class MyCC(CongestionControl):
        ...

Names are case-insensitive (stored lowercased).  A handful of names are
reserved because the run API uses them as *protocol* selectors, not CC
selectors — registering ``"leotp"`` as a TCP congestion control would
shadow the protocol dispatch in :class:`~repro.workload.pool.FlowPool`
and :class:`~repro.experiments.common.PathSpec`.
"""

from __future__ import annotations

from typing import Callable, TypeVar

#: Name -> factory.  Populated exclusively via :func:`register_cc`.
CC_REGISTRY: dict[str, Callable] = {}

#: Names the run API interprets as protocols, never as CC algorithms.
RESERVED_CC_NAMES = frozenset({"leotp", "tcp", "split", "split_tcp", "gateway"})

_F = TypeVar("_F", bound=Callable)


def register_cc(name: str) -> Callable[[_F], _F]:
    """Class decorator registering a congestion-control factory.

    Raises ``ValueError`` on a duplicate registration (two plugins
    claiming one name is always a bug — there is deliberately no
    silent-override mode) and on reserved names (see
    :data:`RESERVED_CC_NAMES`).
    """
    key = name.lower()
    if not key or not key.replace("_", "").replace("-", "").isalnum():
        raise ValueError(f"invalid congestion-control name {name!r}")
    if key in RESERVED_CC_NAMES:
        raise ValueError(
            f"congestion-control name {name!r} is reserved for protocol "
            f"dispatch; reserved names: {sorted(RESERVED_CC_NAMES)}"
        )

    def decorate(factory: _F) -> _F:
        if key in CC_REGISTRY:
            raise ValueError(
                f"congestion control {name!r} already registered "
                f"(by {CC_REGISTRY[key]!r})"
            )
        CC_REGISTRY[key] = factory
        return factory

    return decorate
