"""TCP Vegas (Brakmo & Peterson 1995): delay-based congestion avoidance.

Vegas compares the expected rate (cwnd/baseRTT) with the actual rate
(cwnd/RTT); the difference, in segments of queue occupancy, steers the
window between the alpha and beta thresholds.  The paper uses Vegas as
the representative RTT-based baseline, and notes it is "confused by the
time-varying RTT" of LEO paths (Fig. 13) — a behaviour that emerges
naturally from its reliance on a stable baseRTT.
"""

from __future__ import annotations

from typing import Optional

from repro.tcp.cc.base import CongestionControl
from repro.tcp.cc.registry import register_cc
from repro.tcp.segment import DEFAULT_MSS


@register_cc("vegas")
class VegasCC(CongestionControl):
    name = "vegas"

    ALPHA = 2.0   # segments of queue: grow below this
    BETA = 4.0    # segments of queue: shrink above this
    GAMMA = 1.0   # slow-start exit threshold

    def __init__(self, mss: int = DEFAULT_MSS) -> None:
        super().__init__(mss)
        self._cwnd = 10.0  # MSS units
        self._ssthresh = float("inf")
        self._base_rtt: Optional[float] = None
        self._in_slow_start = True

    @property
    def cwnd_bytes(self) -> float:
        return self._cwnd * self.mss

    @property
    def base_rtt_s(self) -> Optional[float]:
        return self._base_rtt

    @property
    def in_slow_start(self) -> bool:
        return self._in_slow_start

    def _queue_segments(self, rtt_s: float) -> float:
        assert self._base_rtt is not None
        expected = self._cwnd / self._base_rtt
        actual = self._cwnd / rtt_s
        return (expected - actual) * self._base_rtt

    def on_ack(self, now, acked_bytes, rtt_s, inflight_bytes, in_recovery=False, rate_sample_bps=None) -> None:
        acked_mss = acked_bytes / self.mss
        if in_recovery:
            if rtt_s is not None and (self._base_rtt is None or rtt_s < self._base_rtt):
                self._base_rtt = rtt_s
            return
        if rtt_s is None:
            if self._in_slow_start:
                self._cwnd += acked_mss
            return
        if self._base_rtt is None or rtt_s < self._base_rtt:
            self._base_rtt = rtt_s
        diff = self._queue_segments(rtt_s)
        if self._in_slow_start:
            if diff > self.GAMMA or self._cwnd >= self._ssthresh:
                self._in_slow_start = False
            else:
                # Vegas doubles every *other* RTT; half-rate exponential
                # growth approximates that with per-ACK arithmetic.
                self._cwnd += acked_mss / 2.0
                return
        if diff < self.ALPHA:
            self._cwnd += acked_mss / self._cwnd
        elif diff > self.BETA:
            self._cwnd = max(self._cwnd - acked_mss / self._cwnd, 2.0)
        # else: hold

    def on_fast_retransmit(self, now: float) -> None:
        self._ssthresh = max(self._cwnd / 2.0, 2.0)
        self._cwnd = max(self._cwnd * 3.0 / 4.0, 2.0)
        self._in_slow_start = False

    def on_rto(self, now: float) -> None:
        self._ssthresh = max(self._cwnd / 2.0, 2.0)
        self._cwnd = 2.0
        self._in_slow_start = False
