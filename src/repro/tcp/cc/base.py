"""Congestion-control interface and the Reno baseline.

The TCP sender drives its congestion module through a small event API:
``on_ack`` for every new cumulative ACK (with a Karn-valid RTT sample when
available), ``on_fast_retransmit`` when triple-dup-ACK loss recovery kicks
in, and ``on_rto`` on a retransmission timeout.  The module exposes a
window (``cwnd_bytes``) and, for rate-based algorithms, a pacing rate.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from repro.tcp.cc.registry import register_cc
from repro.tcp.segment import DEFAULT_MSS


class CongestionControl(ABC):
    """Base class for all congestion-control algorithms."""

    name = "base"

    #: Handover-aware controllers set this True to ask the sender to
    #: refresh its retransmission timer on churn signals (drop RTO
    #: backoff accumulated during the pre-handover blackout and re-arm
    #: on the estimator's measured timescale).  See
    #: :meth:`repro.tcp.connection.TcpSender.notify_churn`.
    churn_rearm_rto = False

    #: Optional fast-repair deadline (seconds) honored with
    #: ``churn_rearm_rto``: a churn signal is explicit evidence that the
    #: inflight window rode a path that just vanished, so the sender may
    #: pull its retransmission timer in to ``now + churn_retx_delay_s``
    #: (never pushing a nearer expiry out) instead of waiting out a full
    #: RTT-derived RTO.  None disables the pull-in.
    churn_retx_delay_s: Optional[float] = None

    def __init__(self, mss: int = DEFAULT_MSS) -> None:
        if mss <= 0:
            raise ValueError("mss must be positive")
        self.mss = mss

    # -- events ---------------------------------------------------------

    @abstractmethod
    def on_ack(
        self,
        now: float,
        acked_bytes: int,
        rtt_s: Optional[float],
        inflight_bytes: int,
        in_recovery: bool = False,
        rate_sample_bps: Optional[float] = None,
    ) -> None:
        """A new cumulative ACK advanced snd_una by ``acked_bytes``."""

    def on_dup_ack(self, now: float) -> None:
        """A duplicate ACK arrived (before the fast-retransmit threshold)."""

    @abstractmethod
    def on_fast_retransmit(self, now: float) -> None:
        """Loss detected via triple duplicate ACKs."""

    @abstractmethod
    def on_rto(self, now: float) -> None:
        """Retransmission timeout fired."""

    def on_churn(self, now: float, kind: str) -> None:
        """A topology churn event (``PathSwitch``/``GsReattach``/...)
        reached this sender.

        Default: ignore.  Handover-aware controllers (OrbCC) override
        this to drop their stale path model — the bottleneck after a
        handover shares nothing with the one before it.  Delivered via
        :meth:`repro.tcp.connection.TcpSender.notify_churn`, which
        experiments wire to a
        :meth:`repro.churn.TopologyEventStream.arm_signal` subscription.
        """

    # -- outputs ---------------------------------------------------------

    @property
    @abstractmethod
    def cwnd_bytes(self) -> float:
        """Current congestion window in bytes."""

    def pacing_rate_bps(self, now: float) -> Optional[float]:
        """Pacing rate for rate-based algorithms; None = pure ACK clocking."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} cwnd={self.cwnd_bytes:.0f}B>"


@register_cc("reno")
class RenoCC(CongestionControl):
    """Classic NewReno AIMD: the scaffolding Cubic/Hybla/Westwood extend."""

    name = "reno"

    INITIAL_WINDOW_SEGMENTS = 10

    def __init__(self, mss: int = DEFAULT_MSS) -> None:
        super().__init__(mss)
        self._cwnd = float(self.INITIAL_WINDOW_SEGMENTS * mss)
        self._ssthresh = float("inf")

    @property
    def cwnd_bytes(self) -> float:
        return self._cwnd

    @property
    def ssthresh_bytes(self) -> float:
        return self._ssthresh

    @property
    def in_slow_start(self) -> bool:
        return self._cwnd < self._ssthresh

    def on_ack(self, now, acked_bytes, rtt_s, inflight_bytes, in_recovery=False, rate_sample_bps=None) -> None:
        if in_recovery:
            return  # no window growth while repairing losses
        if self.in_slow_start:
            self._cwnd += acked_bytes
        else:
            self._cwnd += self.mss * acked_bytes / self._cwnd

    def on_fast_retransmit(self, now: float) -> None:
        self._ssthresh = max(self._cwnd / 2.0, 2.0 * self.mss)
        self._cwnd = self._ssthresh

    def on_rto(self, now: float) -> None:
        self._ssthresh = max(self._cwnd / 2.0, 2.0 * self.mss)
        self._cwnd = float(self.mss)
