"""Congestion-control algorithms for the TCP baseline stack.

These provide the comparison protocols of the paper's evaluation
(Sec. V): Reno/Cubic/Hybla as loss-based references, BBR and a PCC-style
rate prober as the modern rate-based baselines of Figs. 10-13.  All
share the :class:`CongestionControl` interface consumed by
:class:`~repro.tcp.connection.TcpSender`; :func:`make_cc` maps the
experiment-facing names to instances.
"""

from typing import Callable

from repro.tcp.cc.base import CongestionControl, RenoCC
from repro.tcp.cc.bbr import BbrCC
from repro.tcp.cc.cubic import CubicCC
from repro.tcp.cc.hybla import HyblaCC
from repro.tcp.cc.pcc import PccVivaceCC
from repro.tcp.cc.vegas import VegasCC
from repro.tcp.cc.westwood import WestwoodCC

CC_REGISTRY: dict[str, Callable[..., CongestionControl]] = {
    "reno": RenoCC,
    "cubic": CubicCC,
    "hybla": HyblaCC,
    "westwood": WestwoodCC,
    "vegas": VegasCC,
    "bbr": BbrCC,
    "pcc": PccVivaceCC,
}


def make_cc(name: str, mss: int = 1400) -> CongestionControl:
    """Instantiate a congestion-control algorithm by registry name."""
    try:
        factory = CC_REGISTRY[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown congestion control {name!r}; choose from {sorted(CC_REGISTRY)}"
        ) from None
    return factory(mss=mss)


__all__ = [
    "BbrCC",
    "CC_REGISTRY",
    "CongestionControl",
    "CubicCC",
    "HyblaCC",
    "PccVivaceCC",
    "RenoCC",
    "VegasCC",
    "WestwoodCC",
    "make_cc",
]
