"""Congestion-control algorithms for the TCP baseline stack.

These provide the comparison protocols of the paper's evaluation
(Sec. V): Reno/Cubic/Hybla as loss-based references, BBR and a PCC-style
rate prober as the modern rate-based baselines of Figs. 10-13, plus the
LEO-native contenders of the bake-off (OrbCC-style handover-aware rate
control and a simple learned policy).  All share the
:class:`CongestionControl` interface consumed by
:class:`~repro.tcp.connection.TcpSender`.

Selection is registry-driven: classes self-register with the
:func:`register_cc` decorator (importing this package pulls in every
built-in module, which triggers their registrations), :func:`make_cc`
instantiates by name or from a :class:`CCSpec` carrying per-algorithm
params.  Third-party controllers register from their own module — see
:mod:`repro.tcp.cc.registry`.
"""

from typing import Union

from repro.tcp.cc.registry import CC_REGISTRY, RESERVED_CC_NAMES, register_cc
from repro.tcp.cc.spec import CCSpec, as_cc_spec, parse_cc_params

# Importing the implementation modules triggers their @register_cc
# registrations; the class re-exports keep the old import surface.
from repro.tcp.cc.base import CongestionControl, RenoCC
from repro.tcp.cc.adaptive import AdaptiveCC
from repro.tcp.cc.bbr import BbrCC
from repro.tcp.cc.cubic import CubicCC
from repro.tcp.cc.hybla import HyblaCC
from repro.tcp.cc.orbcc import OrbCC
from repro.tcp.cc.pcc import PccVivaceCC
from repro.tcp.cc.vegas import VegasCC
from repro.tcp.cc.westwood import WestwoodCC


def make_cc(cc: Union[str, "CCSpec"], mss: int = 1400) -> CongestionControl:
    """Instantiate a congestion-control algorithm by name or spec.

    A bare string is coerced (``"bbr"`` → ``CCSpec("bbr")``); a
    :class:`CCSpec`'s params are forwarded as constructor keywords, so
    ``make_cc(CCSpec("orbcc", {"probe_gain": 2.5}))`` is
    ``OrbCC(mss=..., probe_gain=2.5)``.
    """
    spec = as_cc_spec(cc)
    try:
        factory = CC_REGISTRY[spec.name]
    except KeyError:
        raise ValueError(
            f"unknown congestion control {spec.name!r}; "
            f"choose from {sorted(CC_REGISTRY)}"
        ) from None
    try:
        return factory(mss=mss, **spec.params_dict)
    except TypeError as exc:
        raise ValueError(
            f"bad params for congestion control {spec.name!r}: {exc}"
        ) from None


__all__ = [
    "AdaptiveCC",
    "BbrCC",
    "CCSpec",
    "CC_REGISTRY",
    "CongestionControl",
    "CubicCC",
    "HyblaCC",
    "OrbCC",
    "PccVivaceCC",
    "RESERVED_CC_NAMES",
    "RenoCC",
    "VegasCC",
    "WestwoodCC",
    "as_cc_spec",
    "make_cc",
    "parse_cc_params",
    "register_cc",
]
