"""``CCSpec``: a frozen, picklable congestion-control selector.

Everywhere the run API used to thread a bare ``cc_name: str`` it now
accepts ``str | CCSpec``; :func:`as_cc_spec` is the single coercion
point (``"bbr"`` → ``CCSpec("bbr")``), so existing call sites and
pickled :class:`~repro.shard.plan.ShardPlan`s keep working unchanged.

Params are stored as a sorted tuple of ``(key, value)`` pairs so the
spec is hashable and its pickle/repr is deterministic regardless of the
dict-insertion order a caller used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Union

ParamValue = Union[int, float, str, bool]


def _freeze_params(
    params: Union[Mapping[str, ParamValue], tuple, None]
) -> tuple:
    if params is None:
        return ()
    if isinstance(params, Mapping):
        items = params.items()
    else:
        items = tuple(params)
    frozen = tuple(sorted((str(k), v) for k, v in items))
    seen = set()
    for key, _ in frozen:
        if key in seen:
            raise ValueError(f"duplicate CC param {key!r}")
        seen.add(key)
    return frozen


@dataclass(frozen=True)
class CCSpec:
    """A congestion-control choice: registry name plus keyword params.

    ``CCSpec("orbcc", {"probe_gain": 2.5})`` selects the ``orbcc``
    factory and forwards ``probe_gain=2.5`` to its constructor.  The
    name is *not* validated at construction time — plugins may register
    after a spec is built (e.g. a spec unpickled in a worker process
    before ``--cc-module`` imports run) — validation happens in
    :func:`~repro.tcp.cc.make_cc`.
    """

    name: str
    params: tuple = field(default=())

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"CC name must be a non-empty string: {self.name!r}")
        object.__setattr__(self, "name", self.name.lower())
        object.__setattr__(self, "params", _freeze_params(self.params))

    @property
    def params_dict(self) -> dict:
        """Params as a plain keyword dict (insertion order = sorted keys)."""
        return dict(self.params)

    def label(self) -> str:
        """Compact human-readable tag, e.g. ``orbcc(probe_gain=2.5)``."""
        if not self.params:
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.name}({inner})"

    def __str__(self) -> str:
        return self.label()


def as_cc_spec(cc: Union[str, CCSpec], default: Optional[str] = None) -> CCSpec:
    """Coerce a bare name or an existing spec into a :class:`CCSpec`."""
    if isinstance(cc, CCSpec):
        return cc
    if isinstance(cc, str):
        return CCSpec(cc)
    if cc is None and default is not None:
        return CCSpec(default)
    raise TypeError(f"expected a CC name or CCSpec, got {type(cc).__name__}")


def _coerce_value(text: str) -> ParamValue:
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def parse_cc_params(pairs: list) -> dict:
    """Parse repeated CLI ``k=v`` strings into a typed param dict.

    Values coerce ``true``/``false`` → bool, then int, then float, and
    fall back to the raw string.  Used by the ``--cc-param`` flag.
    """
    params: dict = {}
    for pair in pairs or ():
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ValueError(f"--cc-param expects k=v, got {pair!r}")
        params[key] = _coerce_value(value)
    return params
