"""CUBIC congestion control (RFC 8312 window growth)."""

from __future__ import annotations

from typing import Optional

from repro.tcp.cc.base import CongestionControl
from repro.tcp.cc.registry import register_cc
from repro.tcp.segment import DEFAULT_MSS


@register_cc("cubic")
class CubicCC(CongestionControl):
    """CUBIC: window grows as a cubic of time since the last loss.

    Window arithmetic is in MSS units (as in the RFC) and converted to
    bytes at the interface.  Includes the TCP-friendly (Reno-tracking)
    region so the algorithm is not slower than AIMD at small scale.
    """

    name = "cubic"

    C = 0.4           # cubic scaling constant, MSS/s^3
    BETA = 0.7        # multiplicative decrease factor

    def __init__(self, mss: int = DEFAULT_MSS) -> None:
        super().__init__(mss)
        self._cwnd = 10.0          # MSS units
        self._ssthresh = float("inf")
        self._w_max = 0.0
        self._k = 0.0
        self._epoch_start: Optional[float] = None
        self._w_est = 0.0          # TCP-friendly estimate
        self._last_rtt = 0.1

    @property
    def cwnd_bytes(self) -> float:
        return self._cwnd * self.mss

    @property
    def in_slow_start(self) -> bool:
        return self._cwnd < self._ssthresh

    def on_ack(self, now, acked_bytes, rtt_s, inflight_bytes, in_recovery=False, rate_sample_bps=None) -> None:
        if rtt_s is not None:
            self._last_rtt = rtt_s
        if in_recovery:
            return  # no window growth while repairing losses
        acked_mss = acked_bytes / self.mss
        if self.in_slow_start:
            self._cwnd += acked_mss
            return
        if self._epoch_start is None:
            self._epoch_start = now
            if self._w_max <= 0:
                self._w_max = self._cwnd
            self._k = ((self._w_max * (1 - self.BETA)) / self.C) ** (1.0 / 3.0)
            self._w_est = self._cwnd
        t = now - self._epoch_start + self._last_rtt
        w_cubic = self.C * (t - self._k) ** 3 + self._w_max
        # TCP-friendly region: emulate Reno's average growth rate.
        self._w_est += 3.0 * (1 - self.BETA) / (1 + self.BETA) * acked_mss / self._cwnd
        target = max(w_cubic, self._w_est)
        if target > self._cwnd:
            self._cwnd += (target - self._cwnd) / self._cwnd * acked_mss
        else:
            self._cwnd += 0.01 * acked_mss  # minimal probing per RFC 8312

    def _on_loss(self) -> None:
        self._w_max = self._cwnd
        self._cwnd = max(self._cwnd * self.BETA, 2.0)
        self._ssthresh = self._cwnd
        self._epoch_start = None

    def on_fast_retransmit(self, now: float) -> None:
        self._on_loss()

    def on_rto(self, now: float) -> None:
        self._on_loss()
        self._cwnd = 1.0
