"""TCP <-> LEOTP gateways (paper Sec. VII, "Compatible with TCP").

"An alternative solution is to use LEOTP only in the satellite segment.
Transparent proxies are deployed at ground stations to connect the
territorial network and LEOTP."  This module implements that deployment:

* the **ingress gateway** (server-side ground station) terminates the
  terrestrial TCP connection and re-publishes the byte stream as LEOTP
  content (a :class:`~repro.gateway.streaming.StreamingProducer`);
* the **egress gateway** (client-side ground station) pulls the flow
  with a LEOTP Consumer and re-sends it to the client over a second
  terrestrial TCP connection.

The paper notes the bridging is hard because "TCP is sender-driven with
a stateful connection, while LEOTP is a connectionless receiver-driven
protocol"; the pivot here is the gateway buffer: TCP pushes into it,
LEOTP Interests pull out of it.  End-of-stream signalling rides on the
known transfer size (a real gateway would use a FIN-equivalent frame).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.core.config import LeotpConfig
from repro.core.consumer import Consumer
from repro.core.midnode import Midnode
from repro.core.wire import Interest, LeotpPacket
from repro.gateway.streaming import StreamingProducer
from repro.netsim.link import DuplexLink, Link
from repro.netsim.node import ChainForwarder, Node, wire_chain_forwarders
from repro.netsim.packet import Packet
from repro.netsim.topology import HopSpec, build_chain
from repro.netsim.trace import FlowRecorder
from repro.simcore.random import RngRegistry
from repro.simcore.simulator import Simulator
from repro.tcp.cc import CCSpec
from repro.tcp.connection import (
    FiniteStream,
    ProxyStream,
    TcpReceiver,
    TcpSender,
    make_tcp_sender,
)
from repro.tcp.segment import TcpSegment


class IngressGateway(Node):
    """Terminates the server's TCP connection; serves the bytes as LEOTP."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        flow_id: str,
        config: LeotpConfig = LeotpConfig(),
        tcp_flow_id: Optional[str] = None,
    ) -> None:
        super().__init__(sim, name)
        self.producer = StreamingProducer(sim, name, config)
        self.tcp_receiver = TcpReceiver(
            sim, name, out_link=None,
            deliver=self._on_tcp_bytes, flow_id=tcp_flow_id,
        )
        self.flow_id = flow_id
        self.bytes_ingested = 0

    def _on_tcp_bytes(self, nbytes: int, first_ts: float) -> None:
        self.bytes_ingested += nbytes
        self.producer.append(nbytes)

    def on_receive(self, packet: Packet, link: Link) -> None:
        if isinstance(packet, TcpSegment):
            self.tcp_receiver.receive(packet, link)
        elif isinstance(packet, LeotpPacket):
            self.producer.receive(packet, link)


class EgressGateway(Node):
    """Pulls the flow over LEOTP; re-sends it over TCP to the client."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        flow_id: str,
        client_name: str,
        total_bytes: Optional[int],
        config: LeotpConfig = LeotpConfig(),
        cc_name: Union[str, CCSpec] = "cubic",
        recorder: Optional[FlowRecorder] = None,
    ) -> None:
        super().__init__(sim, name)
        self.stream = ProxyStream()
        self.consumer = Consumer(
            sim, name, flow_id, config, total_bytes=total_bytes,
            recorder=recorder, deliver=self._on_leotp_bytes,
        )
        self.tcp_sender = make_tcp_sender(
            sim, name, client_name, None, cc_name, stream=self.stream,
        )

    def _on_leotp_bytes(self, nbytes: int, origin_ts: float) -> None:
        self.stream.push(nbytes, origin_ts)
        self.tcp_sender._send_loop()
        self.tcp_sender._maybe_schedule_pacing()

    @property
    def buffered_bytes(self) -> int:
        return self.stream.buffered_bytes(self.tcp_sender.snd_nxt)

    def on_receive(self, packet: Packet, link: Link) -> None:
        if isinstance(packet, TcpSegment):
            self.tcp_sender.receive(packet, link)
        elif isinstance(packet, LeotpPacket):
            self.consumer.receive(packet, link)


@dataclass
class GatewayPath:
    """A fully wired server -> ingress -> LEO segment -> egress -> client path."""

    server: TcpSender
    ingress: IngressGateway
    satellites: list[Node]
    egress: EgressGateway
    client: TcpReceiver
    recorder: FlowRecorder
    # LEO-segment duplex links, ingress-side first.  Exposing them (plus
    # the consumer/producer/midnodes views below) makes the bridged path
    # a drop-in target for the chaos harness: FaultInjector.register_path
    # names them hop0..hopN and the InvariantMonitor watches the LEOTP
    # segment exactly as it would a plain chain.
    links: list[DuplexLink] = field(default_factory=list)

    @property
    def consumer(self) -> Consumer:
        """The LEOTP Consumer pulling the flow (lives in the egress GW)."""
        return self.egress.consumer

    @property
    def producer(self) -> StreamingProducer:
        """The LEOTP Producer serving the flow (lives in the ingress GW)."""
        return self.ingress.producer

    @property
    def midnodes(self) -> list[Midnode]:
        return [s for s in self.satellites if isinstance(s, Midnode)]

    @property
    def completed(self) -> bool:
        return (
            self.server.finished
            and self.client.bytes_delivered >= (self.server.stream.total_bytes
                                                if isinstance(self.server.stream, FiniteStream)
                                                else 0)
        )


def build_gateway_path(
    sim: Simulator,
    rng: RngRegistry,
    total_bytes: int,
    leo_hops: Sequence[HopSpec],
    terrestrial_spec: Optional[HopSpec] = None,
    config: LeotpConfig = LeotpConfig(),
    tcp_cc: Union[str, CCSpec] = "cubic",
    flow_id: str = "bridged",
) -> GatewayPath:
    """Wire the full bridged deployment over an N-hop LEO segment.

    ``leo_hops`` configures the satellite segment (Midnodes in between);
    ``terrestrial_spec`` both wired segments (default: fast, clean, 5 ms).
    """
    if total_bytes <= 0:
        raise ValueError("total_bytes must be positive")
    terrestrial = terrestrial_spec or HopSpec(rate_bps=100e6, delay_s=0.005)
    recorder = FlowRecorder(sim, name=flow_id)

    server = make_tcp_sender(
        sim, "server", "gw-ingress", None, tcp_cc,
        stream=FiniteStream(total_bytes), flow_id="terrestrial-up",
    )
    ingress = IngressGateway(sim, "gw-ingress", flow_id, config,
                             tcp_flow_id="terrestrial-up")
    egress = EgressGateway(
        sim, "gw-egress", flow_id, "client", total_bytes, config,
        cc_name=tcp_cc, recorder=recorder,
    )
    client = TcpReceiver(sim, "client", None, flow_id=None)

    # Terrestrial segments.
    up = DuplexLink(sim, server, ingress,
                    rate_bps=terrestrial.rate_bps, delay_s=terrestrial.delay_s,
                    name="terrestrial-up")
    down = DuplexLink(sim, egress, client,
                      rate_bps=terrestrial.rate_bps, delay_s=terrestrial.delay_s,
                      name="terrestrial-down")
    server.out_link = up.ab
    ingress.tcp_receiver.out_link = up.ba
    egress.tcp_sender.out_link = down.ab
    client.out_link = down.ba

    # The LEO segment: ingress -- midnodes -- egress.
    satellites: list[Node] = [
        Midnode(sim, f"sat{i}", config) for i in range(len(leo_hops) - 1)
    ]
    leo_nodes: list[Node] = [ingress, *satellites, egress]
    leo_links = build_chain(sim, leo_nodes, list(leo_hops), rng)
    wire_chain_forwarders(leo_nodes, leo_links)
    egress.consumer.out_link = leo_links[-1].ba
    for i, sat in enumerate(satellites):
        if isinstance(sat, Midnode):
            sat.set_upstream(leo_links[i].ba)
    return GatewayPath(server, ingress, satellites, egress, client, recorder,
                       links=leo_links)
