"""A Producer whose content grows over time (streaming ingest).

The plain :class:`~repro.core.producer.Producer` serves a fixed body of
content.  Gateways bridging TCP into LEOTP (paper Sec. VII, "Compatible
with TCP") ingest a byte stream as it arrives from the terrestrial
connection, so Interests may momentarily ask for bytes that do not exist
yet.  :class:`StreamingProducer` parks such Interests and answers them
the moment :meth:`append` makes the data available — the pull-based
equivalent of TCP's "send when the app writes".
"""

from __future__ import annotations

from typing import Optional

from repro.common.ranges import ByteRange
from repro.core.config import LeotpConfig
from repro.core.producer import Producer
from repro.core.wire import Interest
from repro.netsim.link import Link
from repro.netsim.packet import Packet
from repro.simcore.simulator import Simulator


class StreamingProducer(Producer):
    """A LEOTP Producer fed incrementally by :meth:`append`."""

    MAX_PARKED_INTERESTS = 4096

    def __init__(
        self,
        sim: Simulator,
        name: str,
        config: LeotpConfig = LeotpConfig(),
    ) -> None:
        super().__init__(sim, name, config, content_bytes=0)
        self._finalised = False
        # Parked interests: (interest, reply_link), in arrival order.
        self._parked: list[tuple[Interest, Link]] = []
        self.parked_peak = 0

    # ------------------------------------------------------------------

    @property
    def available_bytes(self) -> int:
        assert self.content_bytes is not None
        return self.content_bytes

    @property
    def finalised(self) -> bool:
        return self._finalised

    def append(self, nbytes: int) -> None:
        """Ingest ``nbytes`` of new content and serve any parked Interests."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        if self._finalised:
            raise RuntimeError("cannot append to a finalised stream")
        assert self.content_bytes is not None
        self.content_bytes += nbytes
        self._serve_parked()

    def finalise(self) -> None:
        """Mark the stream complete: future out-of-range Interests drop."""
        self._finalised = True
        self._parked.clear()

    # ------------------------------------------------------------------

    def on_receive(self, packet: Packet, link: Link) -> None:
        if isinstance(packet, Interest) and self._should_park(packet):
            if len(self._parked) < self.MAX_PARKED_INTERESTS:
                self._parked.append((packet, link))
                self.parked_peak = max(self.parked_peak, len(self._parked))
            return
        super().on_receive(packet, link)

    def _should_park(self, interest: Interest) -> bool:
        assert self.content_bytes is not None
        return not self._finalised and interest.range.end > self.content_bytes

    def _serve_parked(self) -> None:
        assert self.content_bytes is not None
        still_parked: list[tuple[Interest, Link]] = []
        for interest, link in self._parked:
            if interest.range.end <= self.content_bytes:
                super().on_receive(interest, link)
            elif interest.range.start < self.content_bytes:
                # Partially available: serve the available prefix now, keep
                # waiting for the rest.
                prefix = Interest(
                    interest.flow_id,
                    ByteRange(interest.range.start, self.content_bytes),
                    interest.timestamp,
                    interest.send_rate_bytes_s,
                    is_retransmission=interest.is_retransmission,
                )
                super().on_receive(prefix, link)
                still_parked.append((
                    Interest(
                        interest.flow_id,
                        ByteRange(self.content_bytes, interest.range.end),
                        interest.timestamp,
                        interest.send_rate_bytes_s,
                        is_retransmission=interest.is_retransmission,
                    ),
                    link,
                ))
            else:
                still_parked.append((interest, link))
        self._parked = still_parked
