"""TCP <-> LEOTP gateways: the paper's incremental-deployment story."""

from repro.gateway.bridge import (
    EgressGateway,
    GatewayPath,
    IngressGateway,
    build_gateway_path,
)
from repro.gateway.streaming import StreamingProducer

__all__ = [
    "EgressGateway",
    "GatewayPath",
    "IngressGateway",
    "StreamingProducer",
    "build_gateway_path",
]
