"""Per-process shard simulation state and the epoch task functions.

A worker process owns a *group* of shards for the whole run: the engine
pins each group to its own single-worker executor, so every epoch task
for group ``g`` lands in the same process and finds the group's live
:class:`_ShardState` objects (simulator, FlowPool, fault injector) in
:data:`_STATES` exactly where the previous epoch left them.  With
``jobs=1`` the engine calls these functions inline and the same dict
serves from the parent process — one code path, two execution modes.

States are keyed by ``(run_token, shard_index)``: the token is unique
per engine invocation, so two runs in one process (tests, back-to-back
experiments) can never see each other's shards.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from repro.faults.schedule import FaultInjector, FaultSchedule, LinkDown
from repro.obs.tracer import TRACER
from repro.shard.exchange import ShardReport
from repro.shard.plan import ShardPlan
from repro.simcore.random import RngRegistry
from repro.simcore.simulator import Simulator
from repro.workload.pool import FlowPool

#: Live shard states of every run this process participates in.
_STATES: dict[tuple[str, int], "_ShardState"] = {}

#: Fault-injection target name for the mid-chain blackout link.
_FAULT_LINK = "midlink"


class _ShardState:
    """One shard's complete simulation: chain, FlowPool, faults, tracer."""

    def __init__(self, plan: ShardPlan, index: int) -> None:
        self.plan = plan
        self.index = index
        self.sim = Simulator()
        self.rng = RngRegistry(plan.shard_seed(index))
        self.pool = FlowPool(
            self.sim,
            self.rng,
            spec=plan.workload_spec(),
            hops=plan.hop_specs(),
            protocol="leotp",
            memory_ceiling_bytes=plan.memory_ceiling_bytes,
            cache_fraction=plan.cache_fraction,
            name=plan.shard_name(index),
        )
        self.injector: Optional[FaultInjector] = None
        if plan.has_fault(index):
            self.injector = FaultInjector(self.sim, self.rng)
            middle = self.pool.links[len(self.pool.links) // 2]
            self.injector.register_link(_FAULT_LINK, middle)
            self.injector.arm(FaultSchedule([
                LinkDown(
                    at_s=plan.fault_at_s,
                    link=_FAULT_LINK,
                    duration_s=plan.fault_duration_s,
                ),
            ]))
        # Per-shard trace event counts (observe mode), merged by the engine.
        self.trace_counts: Counter = Counter()
        self._boundary_stored_before = 0
        self._boundary_evicted = 0

    # -- epoch mechanics ------------------------------------------------

    def apply_allocation(self, allocation: int) -> None:
        """Adopt the exchange's cache allocation at the epoch boundary.

        Shrinking below current occupancy evicts deterministically (the
        pool's fullest-member policy) until the shard fits its new share;
        the boundary identity ``before == after + evicted`` is asserted
        here so accounting bugs fail at the boundary that caused them.
        """
        cache_pool = self.pool.cache_pool
        assert cache_pool is not None  # LEOTP pools always have one
        before = cache_pool.stored_bytes
        evicted_mark = cache_pool.pool_evicted_bytes
        cache_pool.capacity_bytes = allocation
        # Members self-evict at their own capacity before the pool sees
        # the bytes, so a grown allocation must reach them too.
        for member in cache_pool.members:
            member.capacity_bytes = allocation
        # The shard's ledger ceiling follows its allocation: admission
        # still enforces the fixed flow-state share, while the cache side
        # may legitimately grow past the construction-time equal split.
        self.pool.budget.ceiling_bytes = (
            self.pool._flow_share_bytes + allocation
        )
        cache_pool.on_change()
        evicted = cache_pool.pool_evicted_bytes - evicted_mark
        after = cache_pool.stored_bytes
        if before != after + evicted:
            raise AssertionError(
                f"shard {self.index}: cache bytes not conserved at epoch "
                f"boundary ({before} != {after} + {evicted})"
            )
        if after > allocation:
            raise AssertionError(
                f"shard {self.index}: occupancy {after} above allocation "
                f"{allocation} after enforcement"
            )
        self._boundary_stored_before = before
        self._boundary_evicted = evicted

    def run_epoch(self, epoch: int, observe: bool) -> ShardReport:
        until = self.plan.epoch_end_s(epoch)
        if observe:
            was_enabled = TRACER.enabled
            mark = len(TRACER.records)
            TRACER.enable()
            try:
                self.sim.run(until=until)
            finally:
                TRACER.enabled = was_enabled
            self.trace_counts.update(
                rec["event"] for rec in TRACER.records[mark:]
            )
            del TRACER.records[mark:]  # merged into counts; free the buffer
        else:
            self.sim.run(until=until)
        return self.report(epoch)

    def report(self, epoch: int) -> ShardReport:
        pool = self.pool
        cache_pool = pool.cache_pool
        return ShardReport(
            shard=self.index,
            epoch=epoch,
            sim_time_s=self.sim.now,
            events_executed=self.sim.events_executed,
            arrivals=pool.arrivals,
            completed=pool.completed,
            aborted=pool.aborted,
            live_flows=pool.active_flows,
            backlog_bytes=pool.backlog_bytes(),
            cache_stored_bytes=cache_pool.stored_bytes,
            cache_capacity_bytes=cache_pool.capacity_bytes,
            budget_total_bytes=pool.budget.total_bytes,
            budget_breaches=pool.budget.breaches,
            boundary_stored_before=self._boundary_stored_before,
            boundary_evicted_bytes=self._boundary_evicted,
        )

    def finalize(self) -> dict:
        """End the shard's workload and summarise it into one result row."""
        self.pool.finalize()
        summary = self.pool.summary()
        row = {
            "shard": self.index,
            "faulted": self.plan.has_fault(self.index),
            "arrivals": int(summary["arrivals"]),
            "completed": int(summary["completed"]),
            "aborted": int(summary["aborted"]),
            "peak_conc": int(summary["peak_concurrency"]),
            "fct_p50_ms": summary["fct_p50_s"] * 1e3,
            "fct_p90_ms": summary["fct_p90_s"] * 1e3,
            "fct_p99_ms": summary["fct_p99_s"] * 1e3,
            "goodput_kBs": summary.get("goodput_mean_bytes_s", 0.0) / 1e3,
            "budget_peak_MiB": summary["budget_peak_bytes"] / (1 << 20),
            "budget_breaches": int(summary["budget_breaches"]),
            "cache_evictions": int(summary.get("cache_pool_evictions", 0)),
            "admission_rejects": int(summary["admission_rejects"]),
            "events": self.sim.events_executed,
        }
        return row


# ----------------------------------------------------------------------
# Task functions (submitted across the process boundary — keep top-level)
# ----------------------------------------------------------------------


def _state(plan: ShardPlan, run_token: str, index: int) -> _ShardState:
    key = (run_token, index)
    state = _STATES.get(key)
    if state is None:
        state = _STATES[key] = _ShardState(plan, index)
    return state


def run_group_epoch(
    plan: ShardPlan,
    run_token: str,
    indices: list[int],
    epoch: int,
    allocations: tuple[int, ...],
    observe: bool = False,
) -> list[ShardReport]:
    """Advance every shard of one group through one epoch.

    Applies the exchange's allocation first (the epoch-boundary step),
    then simulates up to the epoch's end time.  Shards run sequentially
    within their group; parallelism is across groups.
    """
    reports = []
    for index in indices:
        state = _state(plan, run_token, index)
        state.apply_allocation(allocations[index])
        reports.append(state.run_epoch(epoch, observe))
    return reports


def finalize_group(
    plan: ShardPlan, run_token: str, indices: list[int]
) -> list[tuple[int, dict, dict]]:
    """Finalise and tear down one group's shards.

    Returns ``(shard_index, summary_row, trace_counts)`` per shard and
    drops the group's states, so a long-lived worker process (or the
    parent, with ``jobs=1``) holds nothing after the run.
    """
    out = []
    for index in indices:
        state = _STATES.pop((run_token, index), None)
        if state is None:
            raise RuntimeError(
                f"shard {index} has no live state for run {run_token!r}"
            )
        out.append((index, state.finalize(), dict(state.trace_counts)))
    return out


def drop_run(run_token: str) -> int:
    """Abandon every shard of a run (engine cleanup on error paths)."""
    stale = [key for key in _STATES if key[0] == run_token]
    for key in stale:
        del _STATES[key]
    return len(stale)
