"""Per-process shard simulation state and the epoch task functions.

A worker process owns a *group* of shards for the whole run: the engine
pins each group to its own single-worker executor, so every epoch task
for group ``g`` lands in the same process and finds the group's live
:class:`_ShardState` objects (simulator, FlowPool, fault injector) in
:data:`_STATES` exactly where the previous epoch left them.  With
``jobs=1`` the engine calls these functions inline and the same dicts
serve from the parent process — one code path, two execution modes.

States are keyed by ``(run_token, shard_index)``: the token is unique
per engine invocation, so two runs in one process (tests, back-to-back
experiments) can never see each other's shards.

The cross-boundary protocol is *slim* (DESIGN.md §14): the plan, shard
indices, sink/checkpoint directories, and profiling flag cross once, in
:func:`prepare_group`, and live in a per-run :class:`_GroupContext`.
After that each epoch exchanges only deltas — the engine sends the
allocations that actually changed, the worker returns each report as a
sparse diff against the report it sent last epoch — serialised through
a reusable per-process pickle buffer instead of fresh per-call payloads.
Delta encoding is lossless by construction (the engine reconstructs the
full report before folding it into the exchange), so the determinism
guarantee is untouched.
"""

from __future__ import annotations

import cProfile
import io
import os
import pickle
from collections import Counter
from dataclasses import fields, replace
from typing import Optional

from repro.faults.schedule import FaultInjector, FaultSchedule, LinkDown
from repro.obs.rss import current_rss_bytes
from repro.obs.tracer import TRACER
from repro.shard.checkpoint import load_shard, save_shard, spill_name
from repro.shard.exchange import ShardReport
from repro.shard.plan import ShardPlan
from repro.shard.sink import SpillWriter
from repro.simcore.random import RngRegistry
from repro.simcore.simulator import Simulator
from repro.workload.pool import FlowPool

#: Live shard states of every run this process participates in.
_STATES: dict[tuple[str, int], "_ShardState"] = {}

#: Per-run group context (plan, indices, delta baselines, profiler).
_GROUPS: dict[str, "_GroupContext"] = {}

#: Fault-injection target name for the mid-chain blackout link.
_FAULT_LINK = "midlink"

#: ShardReport field names, in declaration order (the wire format of a
#: "full" report entry is simply the tuple of these values).
_REPORT_FIELDS = tuple(f.name for f in fields(ShardReport))

#: Reusable per-process pickle buffer for epoch payloads (the buffer's
#: grown capacity is retained across epochs; only the bytes copy out).
_ENCODE_BUF = io.BytesIO()


def encode_payload(obj: object) -> bytes:
    """Pickle through the process-local reusable buffer."""
    buf = _ENCODE_BUF
    buf.seek(0)
    buf.truncate()
    pickle.Pickler(buf, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    return buf.getvalue()


def decode_payload(blob: bytes) -> object:
    return pickle.loads(blob)


class ShardError(RuntimeError):
    """A shard's simulation failed; carries the shard id and epoch."""

    def __init__(self, shard: int, epoch: int, message: str) -> None:
        super().__init__(
            f"shard {shard} failed at epoch {epoch}: {message}"
        )
        self.shard = shard
        self.epoch = epoch

    def __reduce__(self):
        # Custom ctor signature: make the exception itself picklable so
        # it survives the executor's result channel intact.
        return (ShardError, (self.shard, self.epoch, self._message()))

    def _message(self) -> str:
        text = self.args[0]
        prefix = f"shard {self.shard} failed at epoch {self.epoch}: "
        return text[len(prefix):] if text.startswith(prefix) else text


class _GroupContext:
    """One run's per-process bookkeeping beyond the shard states."""

    __slots__ = ("plan", "indices", "last_reports", "profiler",
                 "profile_dir", "peak_rss_bytes")

    def __init__(
        self,
        plan: ShardPlan,
        indices: list[int],
        profile_dir: Optional[str],
    ) -> None:
        self.plan = plan
        self.indices = indices
        self.last_reports: dict[int, ShardReport] = {}
        self.profile_dir = profile_dir
        self.profiler: Optional[cProfile.Profile] = None
        self.peak_rss_bytes = 0
        if profile_dir is not None:
            try:
                self.profiler = cProfile.Profile()
            except Exception:  # pragma: no cover - profiler unavailable
                self.profiler = None

    def sample_rss(self) -> None:
        rss = current_rss_bytes()
        if rss is not None and rss > self.peak_rss_bytes:
            self.peak_rss_bytes = rss


class _ShardState:
    """One shard's complete simulation: chain, FlowPool, faults, tracer.

    The whole object — event heap, RNG streams, cache occupancy, live
    flow endpoints — pickles cleanly, which is what checkpoint/resume
    captures.  The result sink inside the FlowPool serialises as a
    ``(path, durable offset)`` pair and reopens in append mode on
    restore (see :class:`repro.shard.sink.SpillWriter`).
    """

    def __init__(self, plan: ShardPlan, index: int) -> None:
        self.plan = plan
        self.index = index
        self.sim = Simulator()
        self.rng = RngRegistry(plan.shard_seed(index))
        self.pool = FlowPool(
            self.sim,
            self.rng,
            spec=plan.workload_spec(),
            hops=plan.hop_specs(),
            protocol="leotp",
            memory_ceiling_bytes=plan.memory_ceiling_bytes,
            cache_fraction=plan.cache_fraction,
            name=plan.shard_name(index),
            cache_policy=plan.cache_policy(),
        )
        self.injector: Optional[FaultInjector] = None
        if plan.has_fault(index):
            self.injector = FaultInjector(self.sim, self.rng)
            middle = self.pool.links[len(self.pool.links) // 2]
            self.injector.register_link(_FAULT_LINK, middle)
            self.injector.arm(FaultSchedule([
                LinkDown(
                    at_s=plan.fault_at_s,
                    link=_FAULT_LINK,
                    duration_s=plan.fault_duration_s,
                ),
            ]))
        # Per-shard trace event counts (observe mode), merged by the engine.
        self.trace_counts: Counter = Counter()
        self._boundary_stored_before = 0
        self._boundary_evicted = 0

    # -- result streaming ----------------------------------------------

    def attach_sink(self, sink_dir: str) -> None:
        """Stream closed flows' rows to this run's per-shard spill file."""
        path = os.path.join(sink_dir, spill_name(self.index))
        self.pool.set_result_sink(SpillWriter(path))

    def spill(self) -> int:
        """Epoch-boundary spill + durable flush; returns the byte offset
        (0 when no sink is attached)."""
        sink = self.pool._result_sink
        if sink is None:
            return 0
        self.pool.spill_closed()
        return sink.flush()

    # -- epoch mechanics ------------------------------------------------

    def apply_allocation(self, allocation: int) -> None:
        """Adopt the exchange's cache allocation at the epoch boundary.

        Shrinking below current occupancy evicts deterministically (the
        pool's fullest-member policy) until the shard fits its new share;
        the boundary identity ``before == after + evicted`` is asserted
        here so accounting bugs fail at the boundary that caused them.
        """
        cache_pool = self.pool.cache_pool
        assert cache_pool is not None  # LEOTP pools always have one
        before = cache_pool.stored_bytes
        evicted_mark = cache_pool.pool_evicted_bytes
        # The shard's ledger ceiling follows its allocation: admission
        # still enforces the fixed flow-state share, while the cache side
        # may legitimately grow past the construction-time equal split.
        self.pool.budget.ceiling_bytes = (
            self.pool._flow_share_bytes + allocation
        )
        # set_capacity re-derives member capacities (weighted shares
        # under a placement policy, the full allocation otherwise) and
        # evicts through the pool counters, so the conservation identity
        # below sees every boundary eviction.
        cache_pool.set_capacity(allocation)
        evicted = cache_pool.pool_evicted_bytes - evicted_mark
        after = cache_pool.stored_bytes
        if before != after + evicted:
            raise AssertionError(
                f"shard {self.index}: cache bytes not conserved at epoch "
                f"boundary ({before} != {after} + {evicted})"
            )
        if after > allocation:
            raise AssertionError(
                f"shard {self.index}: occupancy {after} above allocation "
                f"{allocation} after enforcement"
            )
        self._boundary_stored_before = before
        self._boundary_evicted = evicted

    def mark_boundary_unchanged(self) -> None:
        """Epoch boundary for a shard whose allocation did not change.

        Equivalent to :meth:`apply_allocation` with the current capacity:
        occupancy never exceeds capacity between boundaries (the pool
        enforces on every store), so a same-value apply evicts nothing
        and the boundary marks collapse to ``(stored, 0)``.  The pool's
        ``on_change`` still runs so budget-ledger bookkeeping matches the
        apply path operation for operation.
        """
        cache_pool = self.pool.cache_pool
        assert cache_pool is not None
        cache_pool.on_change()
        stored = cache_pool.stored_bytes
        if stored > cache_pool.capacity_bytes:
            raise AssertionError(
                f"shard {self.index}: occupancy {stored} above unchanged "
                f"allocation {cache_pool.capacity_bytes}"
            )
        self._boundary_stored_before = stored
        self._boundary_evicted = 0

    def run_epoch(self, epoch: int, observe: bool) -> ShardReport:
        until = self.plan.epoch_end_s(epoch)
        if observe:
            was_enabled = TRACER.enabled
            mark = len(TRACER.records)
            TRACER.enable()
            try:
                self.sim.run(until=until)
            finally:
                TRACER.enabled = was_enabled
            self.trace_counts.update(
                rec["event"] for rec in TRACER.records[mark:]
            )
            del TRACER.records[mark:]  # merged into counts; free the buffer
        else:
            self.sim.run(until=until)
        return self.report(epoch)

    def report(self, epoch: int) -> ShardReport:
        pool = self.pool
        cache_pool = pool.cache_pool
        return ShardReport(
            shard=self.index,
            epoch=epoch,
            sim_time_s=self.sim.now,
            events_executed=self.sim.events_executed,
            arrivals=pool.arrivals,
            completed=pool.completed,
            aborted=pool.aborted,
            live_flows=pool.active_flows,
            backlog_bytes=pool.backlog_bytes(),
            cache_stored_bytes=cache_pool.stored_bytes,
            cache_capacity_bytes=cache_pool.capacity_bytes,
            budget_total_bytes=pool.budget.total_bytes,
            budget_breaches=pool.budget.breaches,
            boundary_stored_before=self._boundary_stored_before,
            boundary_evicted_bytes=self._boundary_evicted,
        )

    def finalize(self) -> dict:
        """End the shard's workload and summarise it into one result row."""
        self.pool.finalize()
        sink = self.pool._result_sink
        if sink is not None:
            # Flows aborted by finalize (reason "unfinished") are the
            # last rows of the shard's spill file.
            self.pool.spill_closed()
            sink.close()
        summary = self.pool.summary()
        row = {
            "shard": self.index,
            "faulted": self.plan.has_fault(self.index),
            "arrivals": int(summary["arrivals"]),
            "completed": int(summary["completed"]),
            "aborted": int(summary["aborted"]),
            "peak_conc": int(summary["peak_concurrency"]),
            "fct_p50_ms": summary["fct_p50_s"] * 1e3,
            "fct_p90_ms": summary["fct_p90_s"] * 1e3,
            "fct_p99_ms": summary["fct_p99_s"] * 1e3,
            "goodput_kBs": summary.get("goodput_mean_bytes_s", 0.0) / 1e3,
            "budget_peak_MiB": summary["budget_peak_bytes"] / (1 << 20),
            "budget_breaches": int(summary["budget_breaches"]),
            "cache_evictions": int(summary.get("cache_pool_evictions", 0)),
            "admission_rejects": int(summary["admission_rejects"]),
            "events": self.sim.events_executed,
        }
        if "cross_hit_ratio" in summary:
            # Content shards additionally report cache-sharing outcomes
            # (absent for classic plans, keeping their rows byte-stable).
            row["objects"] = int(summary["content_objects"])
            row["hit_ratio"] = round(summary["cache_hit_ratio"], 6)
            row["cross_hit_ratio"] = round(summary["cross_hit_ratio"], 6)
            row["origin_MB"] = summary["origin_bytes"] / 1e6
            row["origin_load_reduction"] = round(
                summary["origin_load_reduction"], 6
            )
        return row


# ----------------------------------------------------------------------
# Task functions (submitted across the process boundary — keep top-level)
# ----------------------------------------------------------------------


def _state(plan: ShardPlan, run_token: str, index: int) -> _ShardState:
    key = (run_token, index)
    state = _STATES.get(key)
    if state is None:
        state = _STATES[key] = _ShardState(plan, index)
    return state


def _context(run_token: str) -> _GroupContext:
    ctx = _GROUPS.get(run_token)
    if ctx is None:
        raise RuntimeError(f"no prepared group for run {run_token!r}")
    return ctx


def prepare_group(
    plan: ShardPlan,
    run_token: str,
    indices: list[int],
    *,
    sink_dir: Optional[str] = None,
    restore: Optional[tuple[str, dict[int, tuple[str, str]]]] = None,
    profile_dir: Optional[str] = None,
) -> list[int]:
    """One-time group setup: build (or restore) states, cache the plan.

    Everything that used to cross the process boundary every epoch —
    plan, indices, directories — crosses once here and lives in the
    group's :class:`_GroupContext` for the rest of the run.  With
    ``restore`` set, each shard unpickles from its checkpoint file
    (digest-verified) instead of being built fresh.
    """
    ctx = _GroupContext(plan, list(indices), profile_dir)
    _GROUPS[run_token] = ctx
    if ctx.profiler is not None:
        ctx.profiler.enable()
    try:
        for index in indices:
            if restore is not None:
                directory, entries = restore
                name, digest = entries[index]
                state = load_shard(directory, name, digest)
                if not isinstance(state, _ShardState):
                    from repro.shard.checkpoint import CheckpointError

                    raise CheckpointError(
                        f"checkpoint file {name!r} does not hold a shard "
                        f"state (got {type(state).__name__})"
                    )
                _STATES[(run_token, index)] = state
            else:
                state = _state(plan, run_token, index)
                if sink_dir is not None:
                    state.attach_sink(sink_dir)
    finally:
        if ctx.profiler is not None:
            ctx.profiler.disable()
    ctx.sample_rss()
    return list(indices)


def _encode_report(
    ctx: _GroupContext, rep: ShardReport, epoch: int
) -> tuple:
    """Sparse-encode one report against the last one sent for its shard.

    Wire entries are ``(shard, None, values_tuple)`` for a full report
    (first epoch after prepare/restore) or ``(shard, changes_dict,
    None)`` afterwards.  ``epoch`` is implied by the payload and
    ``sim_time_s`` by the plan's epoch boundary, so an idle shard's
    entry carries an empty dict.
    """
    prev = ctx.last_reports.get(rep.shard)
    ctx.last_reports[rep.shard] = rep
    if prev is None:
        return (rep.shard, None, tuple(
            getattr(rep, name) for name in _REPORT_FIELDS
        ))
    changes: dict[str, object] = {}
    for name in _REPORT_FIELDS:
        if name in ("shard", "epoch", "sim_time_s"):
            continue
        value = getattr(rep, name)
        if value != getattr(prev, name):
            changes[name] = value
    expected_time = ctx.plan.epoch_end_s(epoch)
    if rep.sim_time_s != expected_time:
        changes["sim_time_s"] = rep.sim_time_s
    return (rep.shard, changes, None)


def decode_report(
    plan: ShardPlan,
    last: dict[int, ShardReport],
    entry: tuple,
    epoch: int,
) -> ShardReport:
    """Engine-side inverse of :func:`_encode_report` (lossless)."""
    shard, changes, full = entry
    if full is not None:
        rep = ShardReport(**dict(zip(_REPORT_FIELDS, full)))
    else:
        prev = last.get(shard)
        if prev is None:
            raise RuntimeError(
                f"delta report for shard {shard} without a baseline"
            )
        updates = dict(changes)
        updates.setdefault("sim_time_s", plan.epoch_end_s(epoch))
        rep = replace(prev, epoch=epoch, **updates)
    last[shard] = rep
    return rep


def run_group_epoch(run_token: str, payload: bytes) -> bytes:
    """Advance every shard of one group through one epoch.

    ``payload`` is the engine's shared pickle of ``(epoch,
    changed_allocations, observe)`` — one encode serves every group.
    Shards whose allocation is absent from the dict take the cheap
    unchanged-boundary path; the rest apply their new allocation (the
    epoch-boundary step).  Shards run sequentially within their group;
    parallelism is across groups.  Returns the pickled list of
    delta-encoded reports.
    """
    epoch, changed, observe = decode_payload(payload)
    ctx = _context(run_token)
    if ctx.profiler is not None:
        ctx.profiler.enable()
    try:
        entries = []
        for index in ctx.indices:
            try:
                state = _STATES[(run_token, index)]
                allocation = changed.get(index)
                if allocation is None:
                    state.mark_boundary_unchanged()
                else:
                    state.apply_allocation(allocation)
                rep = state.run_epoch(epoch, observe)
                state.spill()
            except ShardError:
                raise
            except Exception as exc:
                raise ShardError(index, epoch, f"{type(exc).__name__}: {exc}")
            entries.append(_encode_report(ctx, rep, epoch))
    finally:
        if ctx.profiler is not None:
            ctx.profiler.disable()
    ctx.sample_rss()
    return encode_payload(entries)


def checkpoint_group(
    run_token: str, directory: str, completed_epochs: int
) -> list[tuple[int, str, str, Optional[int]]]:
    """Durably capture every shard of one group at an epoch boundary.

    Returns ``(shard, file name, digest, spill offset)`` per shard for
    the engine's manifest.  Spills were flushed when the epoch ended, so
    the writer serialises with an empty buffer and the recorded offset
    is exactly the durable prefix a resume must keep.
    """
    ctx = _context(run_token)
    out = []
    for index in ctx.indices:
        state = _STATES[(run_token, index)]
        sink = state.pool._result_sink
        offset = sink.flush() if sink is not None else None
        name, digest = save_shard(directory, index, completed_epochs, state)
        out.append((index, name, digest, offset))
    ctx.sample_rss()
    return out


def finalize_group(
    run_token: str,
) -> tuple[list[tuple[int, dict, dict]], int]:
    """Finalise and tear down one group's shards.

    Returns ``((shard_index, summary_row, trace_counts) per shard,
    worker peak RSS bytes)`` and drops the group's state, so a
    long-lived worker process (or the parent, with ``jobs=1``) holds
    nothing after the run.
    """
    ctx = _context(run_token)
    if ctx.profiler is not None:
        ctx.profiler.enable()
    try:
        out = []
        for index in ctx.indices:
            state = _STATES.pop((run_token, index), None)
            if state is None:
                raise RuntimeError(
                    f"shard {index} has no live state for run {run_token!r}"
                )
            out.append((index, state.finalize(), dict(state.trace_counts)))
    finally:
        if ctx.profiler is not None:
            ctx.profiler.disable()
    ctx.sample_rss()
    if ctx.profiler is not None and ctx.profile_dir is not None:
        group_tag = min(ctx.indices) if ctx.indices else 0
        path = os.path.join(
            ctx.profile_dir,
            f"shard-group{group_tag:03d}-pid{os.getpid()}.pstats",
        )
        ctx.profiler.dump_stats(path)
    peak = ctx.peak_rss_bytes
    del _GROUPS[run_token]
    return out, peak


def drop_run(run_token: str) -> int:
    """Abandon every shard of a run (engine cleanup on error paths)."""
    stale = [key for key in _STATES if key[0] == run_token]
    for key in stale:
        del _STATES[key]
    _GROUPS.pop(run_token, None)
    return len(stale)
