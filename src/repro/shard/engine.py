"""The bulk-synchronous sharded simulation engine.

:func:`run_sharded` drives a :class:`~repro.shard.plan.ShardPlan` to
completion: shards are partitioned into ``jobs`` groups (shard ``i`` in
group ``i % jobs``), each group is pinned to its own single-worker
:class:`~concurrent.futures.ProcessPoolExecutor` so its live simulator
state stays resident in one process for the whole run, and all groups
advance epoch by epoch with a barrier between epochs:

1. every group applies the previous exchange's cache allocations and
   simulates its shards up to the epoch boundary;
2. the engine gathers one :class:`~repro.shard.exchange.ShardReport`
   per shard and folds them — sorted by shard index, integers only —
   into the next :class:`~repro.shard.exchange.ExchangeSignal`.

Because each shard's trajectory depends only on ``(plan, shard_index)``
and the exchange signal, and the signal is a pure function of the sorted
reports, the run's results are bit-identical for every ``jobs`` value —
``jobs=1`` executes the same task functions inline without any executor.
The per-epoch ledger (allocations, occupancy, boundary evictions,
aggregate backlog) is returned alongside the result rows so tests can
check conservation instead of trusting it.
"""

from __future__ import annotations

import itertools
import os
import time
from concurrent.futures import ProcessPoolExecutor

from repro.shard.exchange import (
    ShardReport,
    compute_exchange,
    initial_allocations,
    ledger_row,
)
from repro.shard.plan import ShardPlan
from repro.shard.worker import drop_run, finalize_group, run_group_epoch

_run_counter = itertools.count()


def _groups(n_shards: int, jobs: int) -> list[list[int]]:
    """Shard-to-group assignment: shard ``i`` belongs to group ``i % jobs``."""
    jobs = max(1, min(jobs, n_shards))
    return [
        [i for i in range(n_shards) if i % jobs == g] for g in range(jobs)
    ]


def run_sharded(plan: ShardPlan, jobs: int = 1, observe: bool = False) -> dict:
    """Run a sharded workload; returns rows, the exchange ledger, totals.

    ``jobs`` is purely an execution knob: any value (clamped to
    ``[1, n_shards]``) produces bit-identical ``rows`` and ``ledger``.
    Wall-clock figures (``wall_s``, ``events_per_s``) are reported next
    to — never inside — the deterministic payload.
    """
    groups = _groups(plan.n_shards, jobs)
    run_token = f"{os.getpid()}-{next(_run_counter)}"
    allocations = initial_allocations(plan)
    ledger: list[dict] = []
    started = time.perf_counter()

    executors: list[ProcessPoolExecutor] = []
    if len(groups) > 1:
        executors = [
            ProcessPoolExecutor(max_workers=1) for _ in groups
        ]
    try:
        for epoch in range(plan.n_epochs):
            if executors:
                futures = [
                    ex.submit(
                        run_group_epoch,
                        plan, run_token, group, epoch, allocations, observe,
                    )
                    for ex, group in zip(executors, groups)
                ]
                reports: list[ShardReport] = [
                    r for f in futures for r in f.result()
                ]
            else:
                reports = run_group_epoch(
                    plan, run_token, groups[0], epoch, allocations, observe
                )
            signal = compute_exchange(plan, reports)
            ledger.append(ledger_row(reports, signal))
            allocations = signal.allocations

        if executors:
            futures = [
                ex.submit(finalize_group, plan, run_token, group)
                for ex, group in zip(executors, groups)
            ]
            finals = [item for f in futures for item in f.result()]
        else:
            finals = finalize_group(plan, run_token, groups[0])
    finally:
        if executors:
            for ex in executors:
                ex.shutdown(wait=True)
        else:
            drop_run(run_token)
    wall_s = time.perf_counter() - started

    finals.sort(key=lambda item: item[0])
    rows = [row for _, row, _ in finals]
    trace_counts: dict[str, int] = {}
    for _, _, counts in finals:
        for event, n in counts.items():
            trace_counts[event] = trace_counts.get(event, 0) + n

    total_events = sum(row["events"] for row in rows)
    total_completed = sum(row["completed"] for row in rows)
    n = len(rows)
    rows.append({
        "shard": "total",
        "faulted": sum(1 for row in rows if row["faulted"]),
        "arrivals": sum(row["arrivals"] for row in rows),
        "completed": total_completed,
        "aborted": sum(row["aborted"] for row in rows),
        "peak_conc": max(row["peak_conc"] for row in rows),
        "fct_p50_ms": sum(row["fct_p50_ms"] for row in rows) / n,
        "fct_p90_ms": sum(row["fct_p90_ms"] for row in rows) / n,
        "fct_p99_ms": sum(row["fct_p99_ms"] for row in rows) / n,
        "goodput_kBs": sum(row["goodput_kBs"] for row in rows) / n,
        "budget_peak_MiB": sum(row["budget_peak_MiB"] for row in rows),
        "budget_breaches": sum(row["budget_breaches"] for row in rows),
        "cache_evictions": sum(row["cache_evictions"] for row in rows),
        "admission_rejects": sum(row["admission_rejects"] for row in rows),
        "events": total_events,
    })
    return {
        "rows": rows,
        "ledger": ledger,
        "trace_counts": trace_counts if observe else None,
        "events_executed": total_events,
        "completed": total_completed,
        "jobs": len(groups),
        "wall_s": wall_s,
        "events_per_s": total_events / wall_s if wall_s > 0 else 0.0,
    }
