"""The bulk-synchronous sharded simulation engine.

:func:`run_sharded` drives a :class:`~repro.shard.plan.ShardPlan` to
completion: shards are partitioned into ``jobs`` groups (shard ``i`` in
group ``i % jobs``), each group is pinned to its own single-worker
:class:`~concurrent.futures.ProcessPoolExecutor` so its live simulator
state stays resident in one process for the whole run, and all groups
advance epoch by epoch with a barrier between epochs:

1. every group applies the cache allocations that *changed* since the
   previous exchange and simulates its shards up to the epoch boundary
   (spilling closed flows' result rows to its per-shard sink);
2. the engine gathers one :class:`~repro.shard.exchange.ShardReport`
   per shard — delta-encoded on the wire, reconstructed losslessly
   here — and folds them, sorted by shard index with integers only,
   into the next :class:`~repro.shard.exchange.ExchangeSignal`.

Because each shard's trajectory depends only on ``(plan, shard_index)``
and the exchange signal, and the signal is a pure function of the sorted
reports, the run's results are bit-identical for every ``jobs`` value —
``jobs=1`` executes the same task functions inline without any executor.
The per-epoch ledger (allocations, occupancy, boundary evictions,
aggregate backlog) is returned alongside the result rows so tests can
check conservation instead of trusting it.

Scale features (DESIGN.md §14):

* ``sink_dir`` streams closed flows' rows to per-shard JSONL spills,
  merged into one canonical ``flows.jsonl`` at the end — per-flow
  results never accumulate in RAM or cross the epoch barrier;
* ``checkpoint_dir``/``checkpoint_every`` capture every shard at epoch
  boundaries, and ``resume_from`` continues a checkpointed run (any
  ``jobs`` value) with bit-identical rows, ledger, and spill bytes;
* a worker exception surfaces as :class:`~repro.shard.worker.ShardError`
  naming the failing shard, and every other group's executor is shut
  down immediately instead of leaking.
"""

from __future__ import annotations

import itertools
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Optional

from repro.obs.rss import RssSampler
from repro.shard.checkpoint import (
    CheckpointError,
    plan_fingerprint,
    prune_stale,
    resume_point,
    spill_name,
    write_manifest,
    CHECKPOINT_FORMAT,
)
from repro.shard.exchange import (
    ShardReport,
    compute_exchange,
    initial_allocations,
    ledger_row,
)
from repro.shard.plan import ShardPlan
from repro.shard.sink import merge_spills, truncate_file
from repro.shard.worker import (
    checkpoint_group,
    decode_payload,
    decode_report,
    drop_run,
    encode_payload,
    finalize_group,
    prepare_group,
    run_group_epoch,
)

_run_counter = itertools.count()

#: Merged result-row artifact written into ``sink_dir`` after a run.
MERGED_SPILL_NAME = "flows.jsonl"


def _groups(n_shards: int, jobs: int) -> list[list[int]]:
    """Shard-to-group assignment: shard ``i`` belongs to group ``i % jobs``."""
    jobs = max(1, min(jobs, n_shards))
    return [
        [i for i in range(n_shards) if i % jobs == g] for g in range(jobs)
    ]


def _gather(futures):
    """Collect every group's result; on failure, fail loudly and early.

    All futures are awaited (an epoch barrier anyway) and the first
    exception — typically a :class:`~repro.shard.worker.ShardError`
    naming the failing shard — is re-raised after the remaining results
    are drained, so the caller's cleanup sees a settled pool.
    """
    results = []
    first_error: Optional[BaseException] = None
    for future in futures:
        try:
            results.append(future.result())
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            if first_error is None:
                first_error = exc
    if first_error is not None:
        raise first_error
    return results


def run_sharded(
    plan: ShardPlan,
    jobs: int = 1,
    observe: bool = False,
    *,
    sink_dir: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 1,
    resume_from: Optional[str] = None,
    stop_after_epoch: Optional[int] = None,
    profile_dir: Optional[str] = None,
) -> dict:
    """Run a sharded workload; returns rows, the exchange ledger, totals.

    ``jobs`` is purely an execution knob: any value (clamped to
    ``[1, n_shards]``) produces bit-identical ``rows`` and ``ledger``.
    Wall-clock and RSS figures (``wall_s``, ``events_per_s``, ``rss``)
    are reported next to — never inside — the deterministic payload.

    ``sink_dir``
        stream closed flows' result rows to per-shard JSONL spill files
        (memory-bounded results); merged into ``flows.jsonl`` at the end.
    ``checkpoint_dir`` / ``checkpoint_every``
        capture every shard after each ``checkpoint_every``-th epoch
        (and always after the last); the directory can seed
        ``resume_from`` later.
    ``resume_from``
        continue from a checkpoint directory written by a previous run
        of the *same plan* (any ``jobs`` value); rows, ledger, and spill
        files come out bit-identical to the uninterrupted run.
    ``stop_after_epoch``
        abandon the run after the given epoch completes (post
        checkpoint) — a deterministic stand-in for a mid-run kill, used
        by the resume tests and the nightly CI check.  The partial
        result dict carries ``stopped_after_epoch`` instead of rows.
    ``profile_dir``
        per-worker cProfile dumps (``shard-group*.pstats``) written at
        finalize, mergeable with ``tools/profile_top.py``.  Only worker
        processes profile here; with ``jobs=1`` the inline run is
        covered by the parent's own profiler (``--profile``).
    """
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1")
    groups = _groups(plan.n_shards, jobs)
    run_token = f"{os.getpid()}-{next(_run_counter)}"
    started = time.perf_counter()
    sampler = RssSampler().start()

    # -- resolve fresh-start vs resume ---------------------------------
    restore = None
    if resume_from is not None:
        resume_from = os.path.abspath(resume_from)
        manifest = resume_point(resume_from, plan)
        start_epoch = manifest["completed_epochs"]
        allocations = tuple(manifest["allocations"])
        ledger = [dict(row) for row in manifest["ledger"]]
        manifest_sink = manifest.get("sink_dir")
        if sink_dir is None:
            sink_dir = manifest_sink
        elif manifest_sink is not None and (
            os.path.abspath(sink_dir) != manifest_sink
        ):
            raise CheckpointError(
                f"checkpoint streamed results to {manifest_sink!r}; "
                f"resume must use the same sink_dir, not {sink_dir!r}"
            )
        # Rewind each spill file to the durable offset the checkpoint
        # recorded: rows from unreached epochs are discarded, so the
        # resumed run re-appends them identically.
        if sink_dir is not None:
            for index in range(plan.n_shards):
                entry = manifest["shards"][str(index)]
                offset = entry.get("spill_offset")
                if offset is not None:
                    truncate_file(
                        os.path.join(sink_dir, spill_name(index)), offset
                    )
        restore = (
            resume_from,
            {
                index: (
                    manifest["shards"][str(index)]["file"],
                    manifest["shards"][str(index)]["digest"],
                )
                for index in range(plan.n_shards)
            },
        )
    else:
        start_epoch = 0
        allocations = initial_allocations(plan)
        ledger = []
        if sink_dir is not None:
            sink_dir = os.path.abspath(sink_dir)
            os.makedirs(sink_dir, exist_ok=True)
    if checkpoint_dir is not None:
        checkpoint_dir = os.path.abspath(checkpoint_dir)
        os.makedirs(checkpoint_dir, exist_ok=True)
    if profile_dir is not None:
        profile_dir = os.path.abspath(profile_dir)
        os.makedirs(profile_dir, exist_ok=True)

    executors: list[ProcessPoolExecutor] = []
    if len(groups) > 1:
        executors = [
            ProcessPoolExecutor(max_workers=1) for _ in groups
        ]
    failed = False
    stopped = False
    exchange_payload_bytes = 0
    exchange_report_bytes = 0
    checkpoints_written = 0
    worker_peaks: list[int] = []
    try:
        # -- one-time group setup (plan/indices cross the boundary once)
        worker_profile = profile_dir if executors else None
        if executors:
            _gather([
                ex.submit(
                    prepare_group, plan, run_token, group,
                    sink_dir=sink_dir, restore=restore,
                    profile_dir=worker_profile,
                )
                for ex, group in zip(executors, groups)
            ])
        else:
            prepare_group(
                plan, run_token, groups[0],
                sink_dir=sink_dir, restore=restore,
                profile_dir=worker_profile,
            )

        # -- epoch loop -------------------------------------------------
        last_reports: dict[int, ShardReport] = {}
        applied: Optional[dict[int, int]] = None
        for epoch in range(start_epoch, plan.n_epochs):
            if applied is None:
                # First boundary of this invocation: every shard applies,
                # equivalent to the unchanged-path for shards already at
                # that capacity (a same-value apply evicts nothing).
                changed = dict(enumerate(allocations))
            else:
                changed = {
                    i: alloc
                    for i, alloc in enumerate(allocations)
                    if applied[i] != alloc
                }
            payload = encode_payload((epoch, changed, observe))
            exchange_payload_bytes += len(payload) * len(groups)
            if executors:
                blobs = _gather([
                    ex.submit(run_group_epoch, run_token, payload)
                    for ex in executors
                ])
            else:
                blobs = [run_group_epoch(run_token, payload)]
            entries = [e for blob in blobs for e in decode_payload(blob)]
            exchange_report_bytes += sum(len(blob) for blob in blobs)
            reports = [
                decode_report(plan, last_reports, entry, epoch)
                for entry in entries
            ]
            applied = dict(enumerate(allocations))
            signal = compute_exchange(plan, reports)
            ledger.append(ledger_row(reports, signal))
            allocations = signal.allocations

            # Note: stopping deliberately does NOT force a checkpoint —
            # a mid-run kill lands wherever the cadence last committed,
            # and resume must cope (spill truncation covers the gap).
            at_boundary = (
                (epoch + 1) % checkpoint_every == 0
                or epoch == plan.n_epochs - 1
            )
            if checkpoint_dir is not None and at_boundary:
                _write_checkpoint(
                    plan, run_token, executors, checkpoint_dir,
                    completed_epochs=epoch + 1,
                    allocations=allocations, ledger=ledger,
                    sink_dir=sink_dir,
                )
                checkpoints_written += 1
            if stop_after_epoch is not None and epoch >= stop_after_epoch:
                stopped = True
                break

        if stopped:
            return {
                "stopped_after_epoch": stop_after_epoch,
                "completed_epochs": stop_after_epoch + 1,
                "checkpoints_written": checkpoints_written,
                "checkpoint_dir": checkpoint_dir,
                "ledger": ledger,
            }

        # -- finalize ---------------------------------------------------
        if executors:
            outs = _gather([
                ex.submit(finalize_group, run_token) for ex in executors
            ])
        else:
            outs = [finalize_group(run_token)]
        finals = [item for items, _ in outs for item in items]
        worker_peaks = [peak for _, peak in outs]
    except BaseException:
        failed = True
        raise
    finally:
        if executors:
            for ex in executors:
                ex.shutdown(wait=not failed, cancel_futures=failed)
        else:
            drop_run(run_token)
    wall_s = time.perf_counter() - started
    parent_peak = sampler.stop()

    finals.sort(key=lambda item: item[0])
    rows = [row for _, row, _ in finals]
    trace_counts: dict[str, int] = {}
    for _, _, counts in finals:
        for event, n in counts.items():
            trace_counts[event] = trace_counts.get(event, 0) + n

    total_events = sum(row["events"] for row in rows)
    total_completed = sum(row["completed"] for row in rows)
    n = len(rows)
    rows.append({
        "shard": "total",
        "faulted": sum(1 for row in rows if row["faulted"]),
        "arrivals": sum(row["arrivals"] for row in rows),
        "completed": total_completed,
        "aborted": sum(row["aborted"] for row in rows),
        "peak_conc": max(row["peak_conc"] for row in rows),
        "fct_p50_ms": sum(row["fct_p50_ms"] for row in rows) / n,
        "fct_p90_ms": sum(row["fct_p90_ms"] for row in rows) / n,
        "fct_p99_ms": sum(row["fct_p99_ms"] for row in rows) / n,
        "goodput_kBs": sum(row["goodput_kBs"] for row in rows) / n,
        "budget_peak_MiB": sum(row["budget_peak_MiB"] for row in rows),
        "budget_breaches": sum(row["budget_breaches"] for row in rows),
        "cache_evictions": sum(row["cache_evictions"] for row in rows),
        "admission_rejects": sum(row["admission_rejects"] for row in rows),
        "events": total_events,
    })

    sink_info = None
    if sink_dir is not None:
        merged_path = os.path.join(sink_dir, MERGED_SPILL_NAME)
        merged_bytes = merge_spills(
            [
                os.path.join(sink_dir, spill_name(i))
                for i in range(plan.n_shards)
            ],
            merged_path,
        )
        sink_info = {"dir": sink_dir, "merged_path": merged_path,
                     "merged_bytes": merged_bytes}

    mib = 1 << 20
    worker_peak_sum = sum(worker_peaks)
    rss = None
    if parent_peak is not None:
        total_peak = parent_peak + (worker_peak_sum if executors else 0)
        rss = {
            "parent_peak_mib": parent_peak / mib,
            "worker_peak_mib": worker_peak_sum / mib,
            "total_peak_mib": total_peak / mib,
        }
    return {
        "rows": rows,
        "ledger": ledger,
        "trace_counts": trace_counts if observe else None,
        "events_executed": total_events,
        "completed": total_completed,
        "jobs": len(groups),
        "wall_s": wall_s,
        "events_per_s": total_events / wall_s if wall_s > 0 else 0.0,
        "resumed_from_epoch": start_epoch if resume_from is not None else None,
        "checkpoints_written": checkpoints_written,
        "exchange_payload_bytes": exchange_payload_bytes,
        "exchange_report_bytes": exchange_report_bytes,
        "sink": sink_info,
        "rss": rss,
    }


def _write_checkpoint(
    plan: ShardPlan,
    run_token: str,
    executors: list[ProcessPoolExecutor],
    directory: str,
    *,
    completed_epochs: int,
    allocations: tuple[int, ...],
    ledger: list[dict],
    sink_dir: Optional[str],
) -> None:
    """Capture every shard, then commit the manifest atomically."""
    if executors:
        entry_lists = _gather([
            ex.submit(checkpoint_group, run_token, directory, completed_epochs)
            for ex in executors
        ])
    else:
        entry_lists = [
            checkpoint_group(run_token, directory, completed_epochs)
        ]
    shard_entries: dict[str, dict] = {}
    for entries in entry_lists:
        for index, name, digest, offset in entries:
            shard_entries[str(index)] = {
                "file": name,
                "digest": digest,
                "spill_offset": offset,
            }
    write_manifest(directory, {
        "format": CHECKPOINT_FORMAT,
        "plan_fp": plan_fingerprint(plan),
        "n_shards": plan.n_shards,
        "n_epochs": plan.n_epochs,
        "completed_epochs": completed_epochs,
        "allocations": list(allocations),
        "ledger": ledger,
        "sink_dir": sink_dir,
        "shards": shard_entries,
    })
    # The manifest rename committed this checkpoint; the previous one's
    # shard pickles are now unreferenced.
    prune_stale(directory, {e["file"] for e in shard_entries.values()})
