"""Shard plans: how a constellation-scale workload splits into shards.

A :class:`ShardPlan` describes one sharded run declaratively: how many
ground-station-pair shards, the per-shard chain and workload, the epoch
length of the bulk-synchronous exchange, and the *global* cache budget
that the exchange re-apportions across shards.  The plan is a frozen,
picklable value — worker processes rebuild identical shard state from
``(plan, shard_index)`` alone, which is the first half of the
determinism argument (see DESIGN.md §13; the second half is that the
exchange signal is a pure function of the sorted shard reports).

Shard seeds are derived, not shared: shard ``i`` simulates with
``seed * 10_007 + i``, so shards draw from disjoint deterministic RNG
streams and the *same* shard always sees the same randomness no matter
which worker process it lands on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.content.catalog import ContentSpec
from repro.content.placement import CachePolicy
from repro.netsim.topology import HopSpec, uniform_chain_specs
from repro.workload.arrivals import WorkloadSpec

#: Cache bytes no shard can be apportioned below (one pool's worth of
#: floor keeps a momentarily-idle shard from being starved to zero and
#: then thrashing on its next burst).
MIN_CACHE_ALLOC_BYTES = 64 << 10


@dataclass(frozen=True, kw_only=True)
class ShardPlan:
    """Declarative description of one sharded workload run.

    Defaults mirror the ``workload`` experiment's chain and traffic so
    per-shard behaviour stays comparable with the single-process
    experiment; only the population is new — ``n_shards`` independent
    ground-station pairs instead of one.
    """

    n_shards: int = 16
    seed: int = 0
    # Per-shard workload (one ground-station pair's traffic).
    arrivals_per_shard: int = 650
    arrival_rate_per_s: float = 150.0
    mean_size_bytes: int = 12_000
    size_sigma: float = 1.2
    max_size_bytes: int = 200_000
    # Per-shard chain.
    n_hops: int = 5
    hop_rate_bps: float = 20e6
    hop_delay_s: float = 0.008
    # Per-shard memory: admission ceiling and the cache slice that seeds
    # the global pool (the exchange re-apportions the *sum* of slices).
    memory_ceiling_bytes: int = 8 << 20
    cache_fraction: float = 0.75
    # BSP exchange cadence and post-arrival drain.
    epoch_s: float = 0.5
    drain_s: float = 8.0
    # Every ``fault_every``-th shard (index % fault_every == fault_phase)
    # suffers a mid-chain blackout, so recovery traffic is part of the
    # steady-state the engine must keep deterministic.  0 disables faults.
    fault_every: int = 4
    fault_phase: int = 2
    fault_at_s: float = 1.0
    fault_duration_s: float = 0.4
    # Content-centric mode (repro.content): with ``n_objects > 0`` every
    # shard's flows request named Zipf-popular objects (sizes from the
    # catalog, parameterised by the size fields above) instead of
    # distinct bytes; the catalog is rebuilt deterministically from
    # ``(plan, shard seed)`` on restore, so content shards checkpoint/
    # resume byte-identically.  ``cache_placement`` "legacy" keeps the
    # historic pool behaviour (each member may use the whole budget,
    # fullest-member eviction); any placement name from
    # :data:`repro.content.placement.PLACEMENTS` selects a policy cell.
    n_objects: int = 0
    zipf_s: float = 0.8
    cache_placement: str = "legacy"
    cache_eviction: str = "fullest"

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("need at least one shard")
        if self.arrivals_per_shard < 1:
            raise ValueError("need at least one arrival per shard")
        if self.epoch_s <= 0:
            raise ValueError("epoch length must be positive")
        if not 0.0 < self.cache_fraction < 1.0:
            raise ValueError("cache_fraction must be in (0, 1)")
        if self.n_objects < 0:
            raise ValueError("n_objects must be non-negative")
        # Validate the policy cell eagerly (CachePolicy raises on bad
        # names); "legacy" bypasses the policy machinery entirely.
        self.cache_policy()

    # -- derived geometry ----------------------------------------------

    @property
    def horizon_s(self) -> float:
        """Simulated end time: the arrival window plus the drain."""
        return self.arrivals_per_shard / self.arrival_rate_per_s + self.drain_s

    @property
    def n_epochs(self) -> int:
        return max(1, math.ceil(self.horizon_s / self.epoch_s))

    @property
    def shard_cache_bytes(self) -> int:
        """One shard's cache slice before any exchange re-apportionment."""
        return int(self.memory_ceiling_bytes * self.cache_fraction)

    @property
    def global_cache_bytes(self) -> int:
        """The conserved quantity: total cache bytes across all shards."""
        return self.shard_cache_bytes * self.n_shards

    def shard_seed(self, index: int) -> int:
        """Disjoint deterministic seed for shard ``index``."""
        return self.seed * 10_007 + index

    def shard_name(self, index: int) -> str:
        return f"s{index:02d}"

    def epoch_end_s(self, epoch: int) -> float:
        """Simulated time the given epoch runs up to (last epoch: horizon)."""
        return min((epoch + 1) * self.epoch_s, self.horizon_s)

    def workload_spec(self) -> WorkloadSpec:
        content = None
        if self.n_objects > 0:
            content = ContentSpec(
                n_objects=self.n_objects,
                zipf_s=self.zipf_s,
                mean_object_bytes=self.mean_size_bytes,
                size_sigma=self.size_sigma,
                max_object_bytes=self.max_size_bytes,
            )
        return WorkloadSpec(
            arrival="poisson",
            rate_per_s=self.arrival_rate_per_s,
            n_flows=self.arrivals_per_shard,
            size_dist="lognormal",
            mean_size_bytes=self.mean_size_bytes,
            sigma=self.size_sigma,
            max_size_bytes=self.max_size_bytes,
            content=content,
        )

    def cache_policy(self) -> Optional[CachePolicy]:
        """The pool's placement/eviction cell; None for legacy pools."""
        if self.cache_placement == "legacy":
            if self.cache_eviction != "fullest":
                raise ValueError(
                    "legacy placement implies fullest-member eviction; "
                    "pick a placement to select an eviction policy"
                )
            return None
        return CachePolicy(
            placement=self.cache_placement, eviction=self.cache_eviction
        )

    def hop_specs(self) -> list[HopSpec]:
        return uniform_chain_specs(
            self.n_hops, rate_bps=self.hop_rate_bps, delay_s=self.hop_delay_s
        )

    def has_fault(self, index: int) -> bool:
        return (
            self.fault_every > 0
            and index % self.fault_every == self.fault_phase % self.fault_every
        )
