"""Epoch-boundary checkpoint/resume for sharded runs.

A sharded run longer than a process (or a machine lease) must be able to
stop at an epoch barrier and continue later as if nothing happened.  The
unit of capture is one :class:`~repro.shard.worker._ShardState` — the
live simulator heap, RNG streams, FlowPool struct-of-arrays, cache
occupancy, and fault injector — serialised whole with :mod:`pickle`
(every callback in the object graph is a bound method, a
:func:`functools.partial` over one, or a named callable class; no
closures).  Restoring the pickle into *any* process resumes the shard's
trajectory bit-identically, for the same reason ``--shard-jobs`` never
changes results: nothing in a shard's behaviour depends on process
identity.

On-disk layout (one directory per checkpoint)::

    manifest.json            # atomic commit point (tmp + rename)
    shard-000-e0012.pkl      # one pickle per shard, epoch-stamped
    shard-001-e0012.pkl
    ...

The manifest is written *after* every shard pickle is durable, and shard
pickle names carry the epoch, so a crash mid-checkpoint leaves the
previous manifest pointing at the previous epoch's intact files — the
new partial files are garbage, never a torn checkpoint.  Each manifest
entry records the pickle's SHA-256; :func:`load_shard` refuses bytes
that do not hash to the recorded digest (:class:`CheckpointError`), so
corruption is detected before a half-broken state can resume.

The manifest also records, per shard, the durable byte offset of the
shard's result spill file (see :mod:`repro.shard.sink`): resume
truncates each spill back to its recorded offset, discarding rows from
the unreached epochs, which is what makes kill-then-resume reproduce
the uninterrupted row files byte for byte.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
from typing import Optional

from repro.shard.plan import ShardPlan

#: Manifest schema version; bumped on incompatible layout changes.
CHECKPOINT_FORMAT = 1

MANIFEST_NAME = "manifest.json"


class CheckpointError(RuntimeError):
    """A checkpoint directory is missing, corrupt, or mismatched."""


def plan_fingerprint(plan: ShardPlan) -> str:
    """Stable digest of every plan field (resume refuses a changed plan)."""
    payload = json.dumps(
        dataclasses.asdict(plan), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def shard_pickle_name(index: int, completed_epochs: int) -> str:
    return f"shard-{index:03d}-e{completed_epochs:04d}.pkl"


# ----------------------------------------------------------------------
# Shard pickles (written by workers, in their own processes)
# ----------------------------------------------------------------------

def save_shard(
    directory: str, index: int, completed_epochs: int, state: object
) -> tuple[str, str]:
    """Durably write one shard's state; returns ``(file name, digest)``.

    Written to a temp file and renamed so a crash mid-write cannot leave
    a plausible-looking truncated pickle under the final name.
    """
    blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(blob).hexdigest()
    name = shard_pickle_name(index, completed_epochs)
    path = os.path.join(directory, name)
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return name, digest


def load_shard(directory: str, name: str, digest: str) -> object:
    """Load and verify one shard pickle; :class:`CheckpointError` on any
    missing file or digest mismatch."""
    path = os.path.join(directory, name)
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except OSError as exc:
        raise CheckpointError(
            f"checkpoint shard file {name!r} unreadable: {exc}"
        ) from exc
    actual = hashlib.sha256(blob).hexdigest()
    if actual != digest:
        raise CheckpointError(
            f"checkpoint shard file {name!r} is corrupt: digest {actual} "
            f"does not match manifest {digest}"
        )
    return pickle.loads(blob)


# ----------------------------------------------------------------------
# Manifest (written by the engine, the atomic commit point)
# ----------------------------------------------------------------------

def write_manifest(directory: str, manifest: dict) -> None:
    path = os.path.join(directory, MANIFEST_NAME)
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(manifest, fh, separators=(",", ":"))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def load_manifest(directory: str) -> dict:
    path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(path) as fh:
            manifest = json.load(fh)
    except OSError as exc:
        raise CheckpointError(
            f"no checkpoint manifest at {path!r}: {exc}"
        ) from exc
    except ValueError as exc:
        raise CheckpointError(
            f"checkpoint manifest {path!r} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(manifest, dict):
        raise CheckpointError("checkpoint manifest must be a JSON object")
    if manifest.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"unsupported checkpoint format {manifest.get('format')!r} "
            f"(this build reads format {CHECKPOINT_FORMAT})"
        )
    for key in ("plan_fp", "n_shards", "n_epochs",
                "completed_epochs", "allocations", "ledger", "shards"):
        if key not in manifest:
            raise CheckpointError(f"checkpoint manifest missing {key!r}")
    return manifest


def validate_manifest(manifest: dict, plan: ShardPlan) -> None:
    """Refuse to resume a manifest that does not belong to ``plan``."""
    if manifest["plan_fp"] != plan_fingerprint(plan):
        raise CheckpointError(
            "checkpoint belongs to a different plan (fingerprint mismatch)"
        )
    if manifest["n_shards"] != plan.n_shards:
        raise CheckpointError(
            f"checkpoint has {manifest['n_shards']} shards, "
            f"plan expects {plan.n_shards}"
        )
    completed = manifest["completed_epochs"]
    if not 0 <= completed <= plan.n_epochs:
        raise CheckpointError(
            f"checkpoint claims {completed} completed epochs of "
            f"{plan.n_epochs}"
        )
    shards = manifest["shards"]
    missing = [
        i for i in range(plan.n_shards) if str(i) not in shards
    ]
    if missing:
        raise CheckpointError(
            f"checkpoint manifest missing shard entries: {missing}"
        )


def prune_stale(directory: str, keep: set[str]) -> int:
    """Remove shard pickles not referenced by the just-committed manifest.

    Called after the manifest rename, so the files being deleted are the
    *previous* checkpoint's — the new one is already durable.  Returns
    the number of files removed.
    """
    removed = 0
    for name in os.listdir(directory):
        if (
            name.startswith("shard-")
            and name.endswith(".pkl")
            and name not in keep
        ):
            os.remove(os.path.join(directory, name))
            removed += 1
    return removed


def spill_name(index: int) -> str:
    """Per-shard result spill file name inside a run's sink directory."""
    return f"flows-{index:03d}.jsonl"


def resume_point(directory: str, plan: ShardPlan) -> dict:
    """Load + validate a manifest for ``run_sharded(resume_from=...)``."""
    manifest = load_manifest(directory)
    validate_manifest(manifest, plan)
    return manifest


def spill_offset(manifest: dict, index: int) -> Optional[int]:
    entry = manifest["shards"][str(index)]
    return entry.get("spill_offset")
