"""Deterministic cross-shard state exchange at epoch boundaries.

Shards are weakly coupled: the only state that crosses a shard boundary
is small and aggregate — shared-cache-pool occupancy, gateway backlog,
and the memory-budget ledger.  At each epoch boundary the engine gathers
one :class:`ShardReport` per shard, sorts them by shard index, and
computes an :class:`ExchangeSignal` from the sorted list with *integer
arithmetic only*.  That makes the signal a pure function of the epoch's
reports: it cannot depend on worker count, process scheduling, or float
summation order — the core of the ``--jobs``-independence guarantee.

The cache re-apportionment uses largest-remainder allocation
(:func:`apportion`), which conserves the global budget exactly:
``sum(allocations) == total`` every epoch, byte for byte.  The engine
asserts this (and the per-shard ``stored_before == stored_after +
evicted`` boundary identity) instead of hoping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.shard.plan import MIN_CACHE_ALLOC_BYTES, ShardPlan


@dataclass(frozen=True)
class ShardReport:
    """One shard's small cross-boundary state after an epoch.

    Everything is an int or float scalar — reports cross process
    boundaries every epoch, so they must stay cheap to pickle.
    """

    shard: int
    epoch: int
    sim_time_s: float
    events_executed: int
    # Flow population.
    arrivals: int
    completed: int
    aborted: int
    live_flows: int
    # Cross-shard coupled state.
    backlog_bytes: int          # gateway backlog (responder send buffers)
    cache_stored_bytes: int     # shared-cache-pool occupancy
    cache_capacity_bytes: int   # allocation currently in force
    budget_total_bytes: int     # memory-budget ledger total
    budget_breaches: int
    # Boundary accounting from applying this epoch's allocation.
    boundary_stored_before: int
    boundary_evicted_bytes: int


@dataclass(frozen=True)
class ExchangeSignal:
    """What flows back into every shard for the next epoch."""

    epoch: int
    allocations: tuple[int, ...]     # per-shard cache capacity, conserved
    gateway_backlog_bytes: int       # aggregate, all shards
    ledger_total_bytes: int          # aggregate memory-budget bytes
    cache_stored_bytes: int          # aggregate pool occupancy


def apportion(total: int, weights: list[int]) -> list[int]:
    """Split integer ``total`` by integer ``weights``, conserving exactly.

    Largest-remainder method: each share gets ``total * w // wsum``, and
    the undistributed remainder goes one unit at a time to the largest
    fractional remainders (ties broken by index, so the result is a pure
    function of the inputs).  Zero or negative total yields all zeros;
    an all-zero weight vector falls back to equal weights.
    """
    n = len(weights)
    if n == 0:
        return []
    if total <= 0:
        return [0] * n
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    wsum = sum(weights)
    if wsum == 0:
        weights = [1] * n
        wsum = n
    base = [total * w // wsum for w in weights]
    remainders = [(total * w) % wsum for w in weights]
    leftover = total - sum(base)
    # Stable ranking: largest remainder first, index breaks ties.
    order = sorted(range(n), key=lambda i: (-remainders[i], i))
    for i in order[:leftover]:
        base[i] += 1
    return base


def compute_exchange(plan: ShardPlan, reports: list[ShardReport]) -> ExchangeSignal:
    """Fold one epoch's reports into the next epoch's exchange signal.

    ``reports`` must contain exactly one report per shard; they are
    sorted by shard index here so callers need not care about arrival
    order (futures complete in whatever order the OS schedules).
    """
    if len(reports) != plan.n_shards:
        raise ValueError(
            f"expected {plan.n_shards} reports, got {len(reports)}"
        )
    reports = sorted(reports, key=lambda r: r.shard)
    if [r.shard for r in reports] != list(range(plan.n_shards)):
        raise ValueError("reports do not cover every shard exactly once")

    # Demand-weighted cache re-apportionment: a shard's claim is what it
    # is holding plus what it is trying to push (backlog).  A floor of
    # MIN_CACHE_ALLOC_BYTES per shard is reserved up front so the
    # remainder apportionment cannot starve an idle shard.
    floor = min(MIN_CACHE_ALLOC_BYTES, plan.global_cache_bytes // plan.n_shards)
    distributable = plan.global_cache_bytes - floor * plan.n_shards
    weights = [r.cache_stored_bytes + r.backlog_bytes for r in reports]
    allocations = [
        floor + extra for extra in apportion(distributable, weights)
    ]
    total_alloc = sum(allocations)
    if total_alloc != plan.global_cache_bytes:
        raise AssertionError(
            f"cache budget not conserved: {total_alloc} allocated of "
            f"{plan.global_cache_bytes}"
        )
    return ExchangeSignal(
        epoch=reports[0].epoch,
        allocations=tuple(allocations),
        gateway_backlog_bytes=sum(r.backlog_bytes for r in reports),
        ledger_total_bytes=sum(r.budget_total_bytes for r in reports),
        cache_stored_bytes=sum(r.cache_stored_bytes for r in reports),
    )


def initial_allocations(plan: ShardPlan) -> tuple[int, ...]:
    """Epoch-0 allocation: the equal split every shard was built with."""
    return tuple(apportion(plan.global_cache_bytes, [1] * plan.n_shards))


def ledger_row(reports: list[ShardReport], signal: ExchangeSignal) -> dict:
    """One epoch's row of the engine's cross-shard ledger."""
    reports = sorted(reports, key=lambda r: r.shard)
    return {
        "epoch": signal.epoch,
        "allocations": list(signal.allocations),
        "stored_bytes": [r.cache_stored_bytes for r in reports],
        "boundary_stored_before": [r.boundary_stored_before for r in reports],
        "boundary_evicted_bytes": [r.boundary_evicted_bytes for r in reports],
        "backlog_bytes": signal.gateway_backlog_bytes,
        "ledger_total_bytes": signal.ledger_total_bytes,
        "budget_breaches": sum(r.budget_breaches for r in reports),
    }
