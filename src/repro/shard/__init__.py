"""Sharded parallel simulation engine (DESIGN.md §13).

Partitions a constellation-scale workload into weakly-coupled shards —
one per ground-station pair, each owning its chain, FlowPool, faults,
and tracer slice — and simulates them in parallel processes with a
deterministic bulk-synchronous exchange of small cross-shard state
(cache-pool occupancy, gateway backlog, memory-budget ledger) at fixed
epoch boundaries.  Results are bit-identical for any ``jobs`` value.
"""

from repro.shard.engine import run_sharded
from repro.shard.exchange import (
    ExchangeSignal,
    ShardReport,
    apportion,
    compute_exchange,
    initial_allocations,
    ledger_row,
)
from repro.shard.plan import MIN_CACHE_ALLOC_BYTES, ShardPlan

__all__ = [
    "MIN_CACHE_ALLOC_BYTES",
    "ExchangeSignal",
    "ShardPlan",
    "ShardReport",
    "apportion",
    "compute_exchange",
    "initial_allocations",
    "ledger_row",
    "run_sharded",
]
