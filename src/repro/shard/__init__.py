"""Sharded parallel simulation engine (DESIGN.md §13–§14).

Partitions a constellation-scale workload into weakly-coupled shards —
one per ground-station pair, each owning its chain, FlowPool, faults,
and tracer slice — and simulates them in parallel processes with a
deterministic bulk-synchronous exchange of small cross-shard state
(cache-pool occupancy, gateway backlog, memory-budget ledger) at fixed
epoch boundaries.  Results are bit-identical for any ``jobs`` value.

Scale machinery (DESIGN.md §14): per-shard result streaming with
deterministic merge (:mod:`repro.shard.sink`), epoch-boundary
checkpoint/resume (:mod:`repro.shard.checkpoint`), and a slim
delta-encoded epoch exchange — together they carry the engine from 10⁴
to 10⁵ flows in bounded RSS, resumable across process lifetimes.
"""

from repro.shard.checkpoint import (
    CheckpointError,
    load_manifest,
    plan_fingerprint,
    resume_point,
    spill_name,
)
from repro.shard.engine import MERGED_SPILL_NAME, run_sharded
from repro.shard.exchange import (
    ExchangeSignal,
    ShardReport,
    apportion,
    compute_exchange,
    initial_allocations,
    ledger_row,
)
from repro.shard.plan import MIN_CACHE_ALLOC_BYTES, ShardPlan
from repro.shard.sink import SpillWriter, iter_jsonl, merge_spills
from repro.shard.worker import ShardError

__all__ = [
    "MERGED_SPILL_NAME",
    "MIN_CACHE_ALLOC_BYTES",
    "CheckpointError",
    "ExchangeSignal",
    "ShardError",
    "ShardPlan",
    "ShardReport",
    "SpillWriter",
    "apportion",
    "compute_exchange",
    "initial_allocations",
    "iter_jsonl",
    "ledger_row",
    "load_manifest",
    "merge_spills",
    "plan_fingerprint",
    "resume_point",
    "run_sharded",
    "spill_name",
]
