"""Bounded-memory result streaming for sharded runs.

At 10⁵ flows the per-flow result rows (and, with ``--trace``, the trace
records) no longer fit comfortably in RAM — and gathering them through
the epoch barrier would make the exchange payload grow with the run.
This module is the counterpart of DESIGN.md §14's *streamed results*:

* :class:`SpillWriter` — an append-only JSONL writer with a bounded
  in-RAM buffer.  Records are encoded eagerly (so the buffer holds
  compact ``bytes``, not live dicts) and spill to disk whenever the
  buffer exceeds ``buffer_bytes`` or :meth:`~SpillWriter.flush` is
  called at an epoch boundary.  File bytes depend only on the sequence
  of ``write`` calls — never on buffer size, flush timing, or process
  layout — which is what keeps ``--shard-jobs N`` spills bit-identical.
* :func:`merge_spills` — deterministic compaction of per-shard spill
  files into one final row file (shard order, then within-shard append
  order), used to build the canonical ``flows.jsonl`` artifact that the
  kill-then-resume CI check compares byte for byte.
* :func:`iter_jsonl` / :func:`truncate_file` — streaming reader and the
  resume-path helper that rewinds a spill file to the byte offset the
  checkpoint manifest recorded as durable.

The writer is deliberately dependency-free (``json``/``os`` only): the
same mechanism backs :class:`~repro.workload.pool.FlowPool` result
streaming and :meth:`~repro.obs.tracer.EventTracer.set_stream`, which
import it lazily from their own layers.
"""

from __future__ import annotations

import json
import os
from typing import IO, Iterator, Optional, Union

_PathLike = Union[str, "os.PathLike[str]"]

#: Default in-RAM buffer bound before a spill to disk (bytes of encoded
#: JSONL, not record count — large records spill sooner).
DEFAULT_BUFFER_BYTES = 256 << 10


def encode_record(record: dict) -> bytes:
    """One record's canonical JSONL line (compact separators + newline).

    Key order follows the record's insertion order, matching the trace
    JSONL convention (:func:`repro.obs.tracer.dump_jsonl`); callers that
    need byte-stable files build their records with a fixed key order.
    """
    return (json.dumps(record, separators=(",", ":")) + "\n").encode()


class SpillWriter:
    """Append-only JSONL writer with a bounded in-RAM buffer.

    ``tell()`` reports the *durable* byte offset — bytes actually on
    disk, excluding anything still buffered — which is what checkpoint
    manifests record: on resume the file is truncated back to that
    offset and appending continues as if the interruption never
    happened.

    The file handle opens lazily on the first spill, so an idle writer
    (e.g. a shard whose epoch closed no flows) costs nothing; a writer
    restored from a checkpoint reopens in append mode.
    """

    def __init__(
        self,
        path: _PathLike,
        *,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        append: bool = False,
    ) -> None:
        if buffer_bytes < 0:
            raise ValueError("buffer_bytes must be non-negative")
        self.path = os.fspath(path)
        self.buffer_bytes = buffer_bytes
        self._append = append
        self._fh: Optional[IO[bytes]] = None
        self._buffer: list[bytes] = []
        self._buffered_bytes = 0
        self._durable_bytes = (
            os.path.getsize(self.path)
            if append and os.path.exists(self.path)
            else 0
        )
        self.records_written = 0

    # -- writing --------------------------------------------------------

    def write(self, record: dict) -> None:
        """Buffer one record; spills to disk past the buffer bound."""
        line = encode_record(record)
        self._buffer.append(line)
        self._buffered_bytes += len(line)
        self.records_written += 1
        if self._buffered_bytes > self.buffer_bytes:
            self.flush()

    def flush(self) -> int:
        """Spill the buffer to disk; returns the durable byte offset."""
        if self._buffer:
            if self._fh is None:
                # First spill decides the mode: truncate for fresh runs,
                # append when resuming past a checkpoint truncation.
                self._fh = open(self.path, "ab" if self._append else "wb")
                self._append = True  # later reopens must never truncate
            payload = b"".join(self._buffer)
            self._fh.write(payload)
            self._fh.flush()
            self._durable_bytes += len(payload)
            self._buffer.clear()
            self._buffered_bytes = 0
        return self._durable_bytes

    def tell(self) -> int:
        """Durable byte offset (on-disk bytes; excludes the buffer)."""
        return self._durable_bytes

    @property
    def buffered_records(self) -> int:
        return len(self._buffer)

    def close(self) -> int:
        """Flush and close (idempotent); returns the final byte offset."""
        offset = self.flush()
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        return offset

    # -- pickling (checkpoint support) ----------------------------------

    def __getstate__(self) -> dict:
        """Checkpoint as (path, durable offset): the buffer must be
        flushed first — :meth:`flush` at the epoch boundary precedes any
        checkpoint capture — so an unflushed buffer here is a bug."""
        if self._buffer:
            raise RuntimeError(
                f"SpillWriter({self.path!r}) pickled with "
                f"{len(self._buffer)} unflushed records"
            )
        return {
            "path": self.path,
            "buffer_bytes": self.buffer_bytes,
            "durable_bytes": self._durable_bytes,
            "records_written": self.records_written,
        }

    def __setstate__(self, state: dict) -> None:
        self.path = state["path"]
        self.buffer_bytes = state["buffer_bytes"]
        self._append = True
        self._fh = None
        self._buffer = []
        self._buffered_bytes = 0
        self._durable_bytes = state["durable_bytes"]
        self.records_written = state["records_written"]


# ----------------------------------------------------------------------
# Reading, rewinding, merging
# ----------------------------------------------------------------------

def iter_jsonl(path: _PathLike) -> Iterator[dict]:
    """Stream records back from a spill file (no whole-file list)."""
    with open(path, "rb") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)


def truncate_file(path: _PathLike, offset: int) -> int:
    """Rewind a spill file to a checkpoint's durable offset.

    Returns the number of bytes discarded.  A missing file at offset 0
    is fine (the shard never spilled before the checkpoint); a file
    *shorter* than the recorded offset means the spill the manifest
    promised is gone, which is unrecoverable.
    """
    if offset < 0:
        raise ValueError("offset must be non-negative")
    if not os.path.exists(path):
        if offset == 0:
            return 0
        raise FileNotFoundError(
            f"spill file {os.fspath(path)!r} missing but checkpoint "
            f"recorded {offset} durable bytes"
        )
    size = os.path.getsize(path)
    if size < offset:
        raise ValueError(
            f"spill file {os.fspath(path)!r} holds {size} bytes, shorter "
            f"than the checkpoint's durable offset {offset}"
        )
    if size == offset:
        return 0
    with open(path, "rb+") as fh:
        fh.truncate(offset)
    return size - offset


def merge_spills(
    paths: list[_PathLike], out_path: _PathLike, *, chunk_bytes: int = 1 << 20
) -> int:
    """Concatenate spill files into one, in the given order, streaming.

    The caller fixes the order (the shard engine passes shard-index
    order), and within each file append order is preserved, so the
    merged bytes are a pure function of the per-shard spills — the
    canonical final row set for bit-identity comparisons.  Missing
    inputs are skipped (a shard that closed no flows never created its
    file).  Returns the merged size in bytes.
    """
    total = 0
    with open(out_path, "wb") as out:
        for path in paths:
            if not os.path.exists(path):
                continue
            with open(path, "rb") as src:
                while True:
                    chunk = src.read(chunk_bytes)
                    if not chunk:
                        break
                    out.write(chunk)
                    total += len(chunk)
    return total
