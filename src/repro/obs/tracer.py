"""Structured event tracing with a zero-cost disabled path.

One :class:`EventTracer` instance, :data:`TRACER`, exists per process.
Emit sites across the stack are guarded by its :attr:`~EventTracer.enabled`
flag::

    if TRACER.enabled:
        TRACER.emit(now, "interest_send", self.name, flow=self.flow_id,
                    start=rng.start, end=rng.end)

When tracing is off the guard is a single attribute load and a branch —
no argument tuple, no dict, no call — which is what keeps the
instrumented hot paths inside the ``benchmarks/compare.py`` perf gate
(see DESIGN.md §8 for the measured budget).

Record schema
-------------

Every record is a flat JSON-serialisable dict with three required keys:

``t``
    simulated time in seconds (float),
``event``
    the event kind (str, e.g. ``"interest_send"``, ``"link_drop"``),
``node``
    the emitting component's name (str).

plus event-specific fields (``flow``, ``start``/``end`` byte offsets,
``owd_s``, ``retx``, ``reason``, ``detail``, ...).  The schema is
deliberately open: analysis code must tolerate unknown fields.
:func:`validate_record` checks the required keys and types and is what
``tests/test_obs.py`` and the JSONL round-trip assert against.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from typing import IO, Iterable, Optional, Union

#: Keys every trace record must carry (see module docstring).
RECORD_REQUIRED_KEYS = ("t", "event", "node")


class EventTracer:
    """An append-only buffer of structured trace records.

    The tracer never samples by itself — components push records into it
    at the moment something happens, stamped with the simulated time they
    observed.  ``max_records`` bounds memory on long runs; overflow is
    counted in :attr:`dropped_records` rather than silently ignored.
    """

    __slots__ = ("enabled", "records", "max_records", "dropped_records",
                 "flushed_records", "_stream")

    def __init__(self, max_records: int = 2_000_000) -> None:
        self.enabled = False
        self.records: list[dict] = []
        self.max_records = max_records
        self.dropped_records = 0
        # Streaming export (set_stream): records flushed to disk so far.
        self.flushed_records = 0
        self._stream = None  # Optional[repro.shard.sink.SpillWriter]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Discard all buffered records (does not change ``enabled`` or an
        attached stream — a stream outlives per-run resets by design)."""
        self.records.clear()
        self.dropped_records = 0
        self.flushed_records = 0

    def drain(self) -> list[dict]:
        """Return the buffered records and clear the buffer."""
        out = self.records
        self.records = []
        self.dropped_records = 0
        return out

    # ------------------------------------------------------------------
    # Streaming JSONL export
    # ------------------------------------------------------------------

    @property
    def streaming(self) -> bool:
        return self._stream is not None

    def set_stream(self, path: Union[str, "os.PathLike[str]"]) -> None:
        """Stream to ``path``: on buffer overflow, flush to disk instead
        of dropping.

        With a stream attached, reaching ``max_records`` appends the
        whole buffer to the file and clears it (counted in
        :attr:`flushed_records`), so long runs keep every record at a
        bounded memory footprint.  The file is truncated now and closed
        by :meth:`close_stream`; records still buffered at close time are
        flushed then, keeping file order equal to emission order.

        The writer underneath is the sharded engine's spill mechanism
        (:class:`repro.shard.sink.SpillWriter`), imported lazily so the
        zero-cost disabled path never touches it.
        """
        from repro.shard.sink import SpillWriter

        self.close_stream()
        open(path, "wb").close()  # truncate now, as documented
        self._stream = SpillWriter(path, append=True)

    def flush_stream(self) -> int:
        """Force-append the current buffer to the stream; returns count."""
        if self._stream is None:
            return 0
        n = 0
        for rec in self.records:
            self._stream.write(rec)
            n += 1
        self._stream.flush()
        self.records.clear()
        self.flushed_records += n
        return n

    def close_stream(self) -> int:
        """Flush remaining records and close the stream file (idempotent).

        Returns the total number of records written to the file.
        """
        if self._stream is None:
            return 0
        self.flush_stream()
        self._stream.close()
        self._stream = None
        return self.flushed_records

    # ------------------------------------------------------------------
    # Emission (hot path when enabled; never called when disabled)
    # ------------------------------------------------------------------

    def emit(self, t: float, event: str, node: str, **fields) -> None:
        """Append one record.  Callers must guard with ``if TRACER.enabled``."""
        if len(self.records) >= self.max_records:
            if self._stream is not None:
                self.flush_stream()
            else:
                self.dropped_records += 1
                return
        rec = {"t": t, "event": event, "node": node}
        if fields:
            rec.update(fields)
        self.records.append(rec)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def counts(self) -> Counter:
        """Record count per event kind."""
        return Counter(rec["event"] for rec in self.records)

    def select(
        self,
        event: Optional[str] = None,
        node: Optional[str] = None,
        t_min: Optional[float] = None,
        t_max: Optional[float] = None,
    ) -> list[dict]:
        """Records matching all given filters, in emission order."""
        out = []
        for rec in self.records:
            if event is not None and rec["event"] != event:
                continue
            if node is not None and rec["node"] != node:
                continue
            if t_min is not None and rec["t"] < t_min:
                continue
            if t_max is not None and rec["t"] > t_max:
                continue
            out.append(rec)
        return out


#: The process-global tracer every emit site in the stack writes to.
#: Its identity never changes — enable()/disable() mutate it in place —
#: so components may bind it at import time.
TRACER = EventTracer()


# ----------------------------------------------------------------------
# Schema validation and JSONL persistence
# ----------------------------------------------------------------------

def validate_record(rec: dict) -> None:
    """Raise ``ValueError`` unless ``rec`` satisfies the record schema."""
    if not isinstance(rec, dict):
        raise ValueError(f"record must be a dict, got {type(rec).__name__}")
    for key in RECORD_REQUIRED_KEYS:
        if key not in rec:
            raise ValueError(f"record missing required key {key!r}: {rec}")
    if not isinstance(rec["t"], (int, float)):
        raise ValueError(f"record 't' must be numeric: {rec}")
    if not isinstance(rec["event"], str) or not isinstance(rec["node"], str):
        raise ValueError(f"record 'event'/'node' must be strings: {rec}")


def dump_jsonl(records: Iterable[dict], dest: Union[str, IO[str]]) -> int:
    """Write records as JSON Lines; returns the number written.

    ``dest`` is a path (str or PathLike) or an open text file.  Keys keep emission order
    (``sort_keys`` off) so the required triple leads every line.
    """
    def _write(fh: IO[str]) -> int:
        n = 0
        for rec in records:
            fh.write(json.dumps(rec, separators=(",", ":")))
            fh.write("\n")
            n += 1
        return n

    if isinstance(dest, (str, os.PathLike)):
        with open(dest, "w") as fh:
            return _write(fh)
    return _write(dest)


def load_jsonl(src: Union[str, IO[str]], validate: bool = True) -> list[dict]:
    """Read a JSONL trace/metrics file back into a list of dicts."""
    def _read(fh: IO[str]) -> list[dict]:
        out = []
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if validate:
                validate_record(rec)
            out.append(rec)
        return out

    if isinstance(src, (str, os.PathLike)):
        with open(src) as fh:
            return _read(fh)
    return _read(src)
