"""Observability: structured packet-level tracing and protocol metrics.

The paper's evaluation (Figs. 10-14, 19) argues from *internal* protocol
signals — per-hop cwnd, backpressure rate bounds, buffer length BL, RTO
evolution, cache hit ratio, SHR/VPH counts — not just from endpoint
throughput.  This package gives the reproduction the same lens:

* :mod:`repro.obs.tracer` — a process-global :class:`EventTracer` that
  protocol and network components emit packet-level records into
  (Interest/Data/VPH send/recv/drop, cache hit/miss, SHR triggers, fault
  transitions, invariant violations), with JSONL export;
* :mod:`repro.obs.metrics` — a process-global :class:`MetricsRegistry` of
  periodic samplers (cwnd, rate_bp, BL, RTO, queue estimate, token-bucket
  level per hop) that :func:`repro.core.flow.build_leotp_path` and
  :func:`repro.tcp.flows.build_e2e_tcp_path` register automatically while
  observation is enabled.

Both singletons are **disabled by default** and cost one attribute check
per hook when off (``if TRACER.enabled: ...`` guards every emit site, so
the off path allocates nothing).  Samplers are read-only: enabling
observation never changes protocol behaviour, so traced runs stay
bit-identical to untraced ones.

Typical use::

    from repro.obs import METRICS, TRACER

    TRACER.enable(); METRICS.enable()
    ...build and run a simulation...
    records = TRACER.drain()       # list of schema-valid dicts
    samples = METRICS.drain()
    TRACER.disable(); METRICS.disable()

or, from the command line::

    python -m repro.experiments fig10 --trace --metrics-out out.jsonl
"""

from repro.obs.metrics import (
    METRICS,
    MetricsRegistry,
    attach_leotp_samplers,
    attach_tcp_samplers,
)
from repro.obs.tracer import (
    RECORD_REQUIRED_KEYS,
    TRACER,
    EventTracer,
    dump_jsonl,
    load_jsonl,
    validate_record,
)

__all__ = [
    "EventTracer",
    "METRICS",
    "MetricsRegistry",
    "RECORD_REQUIRED_KEYS",
    "TRACER",
    "attach_leotp_samplers",
    "attach_tcp_samplers",
    "dump_jsonl",
    "load_jsonl",
    "validate_record",
]
