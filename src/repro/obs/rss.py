"""Resident-set-size observation for memory-bounded runs.

The sharded engine's claim is *bounded RSS at 10⁵ flows* — a claim the
benchmarks regression-test rather than assert once (ISSUE 8).  Two
mechanisms, both Linux ``/proc`` based and returning ``None`` where
``/proc`` is unavailable (callers treat missing RSS as "unmeasured",
never as an error):

* :func:`current_rss_bytes` — instantaneous RSS from ``/proc/self/statm``.
  Worker processes sample this at epoch/task boundaries, which tracks
  the peak well because a BSP worker's footprint moves at epoch
  granularity.
* :class:`RssSampler` — a daemon thread sampling the calling process at
  a fixed wall-clock interval, for the engine parent (with ``jobs=1``
  the entire run lives there).  Preferred over ``ru_maxrss``, which is
  a process-*lifetime* high-water mark: in a long pytest process the
  lifetime peak reflects whichever earlier test was hungriest, not the
  run being measured.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Optional

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def current_rss_bytes() -> Optional[int]:
    """This process's resident set right now, or ``None`` off-Linux."""
    try:
        with open("/proc/self/statm", "rb") as fh:
            fields = fh.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        return None


class RssSampler:
    """Background peak-RSS sampler for the calling process.

    ``start()`` spawns a daemon thread; ``stop()`` joins it and returns
    the peak observed (including one final synchronous sample, so even a
    run shorter than the interval gets measured).  ``peak_bytes`` is
    ``None`` when ``/proc`` is unavailable.
    """

    def __init__(self, interval_s: float = 0.05) -> None:
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        self.interval_s = interval_s
        self.peak_bytes: Optional[int] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _sample(self) -> None:
        rss = current_rss_bytes()
        if rss is not None and (self.peak_bytes is None or rss > self.peak_bytes):
            self.peak_bytes = rss

    def _loop(self) -> None:
        while not self._stop.is_set():
            self._sample()
            self._stop.wait(self.interval_s)

    def start(self) -> "RssSampler":
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self._sample()
        if self.peak_bytes is None:
            return self  # /proc unavailable: stay a no-op
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="rss-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> Optional[int]:
        if self._thread is not None:
            self._stop.set()
            self._thread.join()
            self._thread = None
        self._sample()
        return self.peak_bytes
