"""Periodic protocol-state samplers feeding a process-global registry.

Where the tracer (:mod:`repro.obs.tracer`) records *events* at the moment
they happen, the :class:`MetricsRegistry` records *state* on a fixed
cadence: every ``interval_s`` (default 50 ms of simulated time, matching
the invariant monitor's probe) a
:class:`~repro.simcore.process.PeriodicProcess` reads a group of named
sampler callables and appends one row per series.

Rows reuse the tracer's record schema so one validator and one JSONL
format cover both streams::

    {"t": 1.25, "event": "sample", "node": "leotp-mid2", "run": "leotp#0",
     "series": "rate_bp_bytes_s", "value": 2101432.7}

Samplers are **read-only**: they observe protocol state without mutating
it, and their ticks ride the kernel's fire-and-forget path, so enabling
metrics never changes a simulation's results — only adds rows.

:func:`attach_leotp_samplers` wires the full per-hop ladder of a built
LEOTP path (Consumer cwnd/rate/RTO/in-flight, each Midnode's cwnd,
backpressure bound rate_bp (eq. 9), sending-buffer BL, token-bucket level
and cache occupancy, Producer backlog, and per-link queue depth);
:func:`attach_tcp_samplers` does the TCP baselines (cwnd, srtt, pipe,
RTO).  Both are invoked automatically by the path builders while
``METRICS.enabled`` is True.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

#: Default sampling cadence in simulated seconds (see DESIGN.md §8).
DEFAULT_INTERVAL_S = 0.05


class MetricsRegistry:
    """Process-global accumulator of periodic state samples.

    A *run* groups the series of one built path (one flow over one
    simulator); :meth:`new_run` mints sequential run labels so multiple
    paths inside one experiment — and repeated builds across an
    experiment's sweep — stay distinguishable.  :meth:`reset` restarts
    the numbering, which is what makes per-experiment sample streams
    deterministic regardless of process-pool placement.
    """

    __slots__ = ("enabled", "interval_s", "samples", "max_samples",
                 "dropped_samples", "_run_seq")

    def __init__(self, max_samples: int = 2_000_000) -> None:
        self.enabled = False
        self.interval_s = DEFAULT_INTERVAL_S
        self.samples: list[dict] = []
        self.max_samples = max_samples
        self.dropped_samples = 0
        self._run_seq = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Clear samples and restart run numbering (keeps ``enabled``)."""
        self.samples.clear()
        self.dropped_samples = 0
        self._run_seq = 0

    def drain(self) -> list[dict]:
        """Return the buffered samples and clear the buffer."""
        out = self.samples
        self.samples = []
        self.dropped_samples = 0
        return out

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def new_run(self, label: str) -> str:
        """Mint a unique run id for one built path (e.g. ``"leotp#0"``)."""
        run = f"{label}#{self._run_seq}"
        self._run_seq += 1
        return run

    def attach_group(
        self,
        sim,
        run: str,
        samplers: dict[str, tuple[str, Callable[[], float]]],
        interval_s: Optional[float] = None,
    ):
        """Sample every series in ``samplers`` each tick until the run ends.

        ``samplers`` maps series name -> (node name, zero-arg callable).
        A callable may raise or return None (state not built yet — e.g. a
        Midnode flow entry before the first Interest); those ticks are
        skipped for that series.  Returns the PeriodicProcess handle.
        """
        items = list(samplers.items())

        def _tick() -> None:
            now = sim.now
            append = self.samples.append
            for series, (node, fn) in items:
                if len(self.samples) >= self.max_samples:
                    self.dropped_samples += 1
                    continue
                try:
                    value = fn()
                except Exception:
                    continue
                if value is None:
                    continue
                value = float(value)
                if math.isnan(value):
                    continue
                append({"t": now, "event": "sample", "node": node,
                        "run": run, "series": series, "value": value})

        return sim.schedule_periodic(
            self.interval_s if interval_s is None else interval_s, _tick
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def series(self, run: str, name: str) -> tuple[list[float], list[float]]:
        """(times, values) of one series of one run, in sample order."""
        times, values = [], []
        for row in self.samples:
            if row["run"] == run and row["series"] == name:
                times.append(row["t"])
                values.append(row["value"])
        return times, values

    def runs(self) -> list[str]:
        """Distinct run ids, in first-seen order."""
        seen: dict[str, None] = {}
        for row in self.samples:
            seen.setdefault(row["run"], None)
        return list(seen)


#: The process-global registry (same lifetime rules as ``TRACER``).
METRICS = MetricsRegistry()


# ----------------------------------------------------------------------
# Default sampler ladders for the built-in path shapes
# ----------------------------------------------------------------------

def attach_leotp_samplers(sim, path, interval_s: Optional[float] = None) -> str:
    """Register the per-hop sampler ladder for one built LEOTP path.

    Called by :func:`repro.core.flow.build_leotp_path` when
    ``METRICS.enabled``; may also be called explicitly after building a
    custom topology.  Returns the run id.
    """
    consumer = path.consumer
    producer = path.producer
    flow_id = consumer.flow_id
    run = METRICS.new_run(flow_id)
    samplers: dict[str, tuple[str, Callable[[], float]]] = {
        "cwnd_bytes": (consumer.name, lambda: consumer.cc.cwnd_bytes),
        "rate_bytes_s": (consumer.name,
                         lambda: consumer.cc.sending_rate_bytes_s()),
        "rto_s": (consumer.name, lambda: consumer.rto.rto_s),
        "outstanding_bytes": (consumer.name,
                              lambda: consumer.outstanding_bytes),
        "delivered_bytes": (consumer.name, lambda: consumer.delivered_bytes),
        "producer_backlog_bytes": (producer.name,
                                   lambda: producer.backlog_bytes(flow_id)),
    }

    def _mid_state(mid):
        return mid._flows.get(flow_id)

    for mid in path.midnodes:
        def _cwnd(mid=mid):
            st = _mid_state(mid)
            return st.cc.cwnd_bytes if st else None

        def _rate(mid=mid):
            st = _mid_state(mid)
            return st.cc.sending_rate_bytes_s() if st else None

        def _rate_bp(mid=mid):
            st = _mid_state(mid)
            return st.cc.backpressure_rate() if st else None

        def _bl(mid=mid):
            st = _mid_state(mid)
            return st.sender.backlog_bytes if st else None

        def _bucket(mid=mid):
            st = _mid_state(mid)
            return st.sender.bucket.tokens_available if st else None

        samplers.update({
            f"{mid.name}.cwnd_bytes": (mid.name, _cwnd),
            f"{mid.name}.rate_bytes_s": (mid.name, _rate),
            f"{mid.name}.rate_bp_bytes_s": (mid.name, _rate_bp),
            f"{mid.name}.bl_bytes": (mid.name, _bl),
            f"{mid.name}.bucket_tokens": (mid.name, _bucket),
            f"{mid.name}.cache_bytes": (
                mid.name, lambda mid=mid: mid.cache.stored_bytes),
            f"{mid.name}.cache_hit_rate": (
                mid.name, lambda mid=mid: mid.cache.stats.hit_rate),
        })
    # Queue estimate per hop: the drop-tail occupancy of the data-bearing
    # direction (Producer -> Consumer is the ``ab`` direction in a chain).
    for i, duplex in enumerate(getattr(path, "links", []) or []):
        samplers[f"hop{i}.queue_bytes"] = (
            duplex.ab.name, lambda link=duplex.ab: link.queued_bytes)
    METRICS.attach_group(sim, run, samplers, interval_s)
    return run


def attach_tcp_samplers(sim, path, interval_s: Optional[float] = None) -> str:
    """Register the endpoint samplers for one built TCP path."""
    sender = path.sender
    run = METRICS.new_run(sender.flow_id)
    samplers: dict[str, tuple[str, Callable[[], float]]] = {
        "cwnd_bytes": (sender.name, lambda: sender.cc.cwnd_bytes),
        "srtt_s": (sender.name, lambda: sender.rto.srtt_s),
        "rto_s": (sender.name, lambda: sender.rto.rto_s),
        "inflight_bytes": (sender.name, lambda: sender.inflight_bytes),
    }
    for i, duplex in enumerate(getattr(path, "links", []) or []):
        samplers[f"hop{i}.queue_bytes"] = (
            duplex.ab.name, lambda link=duplex.ab: link.queued_bytes)
    METRICS.attach_group(sim, run, samplers, interval_s)
    return run
