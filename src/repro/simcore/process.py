"""Periodic and one-shot timer helpers built on the simulator kernel.

:class:`PeriodicProcess` is the repo's standard way to run a control loop
on the simulated clock — pacing ticks, TR deadline scans, invariant
probes, and the metric samplers of :mod:`repro.obs` all use it.  It
reschedules through the simulator's fast path (no per-tick ``Event``
allocation) and invalidates stale ticks with a generation counter, so
``stop()``/``start()`` cycles cannot double-fire.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.simcore.event import Event
from repro.simcore.simulator import Simulator


class Timer:
    """A restartable one-shot timer.

    Wraps event (re)scheduling so protocol code can express the common
    "arm / re-arm / disarm" pattern (e.g. retransmission timeouts) without
    tracking raw :class:`Event` handles.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], Any]) -> None:
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        return self._event is not None and not self._event.cancelled

    @property
    def expiry(self) -> Optional[float]:
        """Absolute expiry time if armed, else None."""
        if self.armed:
            assert self._event is not None
            return self._event.time
        return None

    def arm(self, delay: float) -> None:
        """(Re)arm the timer ``delay`` seconds from now, replacing any
        previously armed expiry."""
        self.cancel()
        self._event = self._sim.schedule(delay, self._fire)

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()


class PeriodicProcess:
    """Calls ``callback()`` every ``interval`` seconds until stopped.

    The first call fires after ``first_delay`` (default: one interval).
    The interval may be changed between ticks via :attr:`interval`.

    Ticks ride the kernel's :meth:`~repro.simcore.simulator.Simulator.
    schedule_call` fast path, so a periodic process allocates no
    :class:`Event` per tick.  ``stop()`` invalidates the pending tick by
    generation number instead of cancelling it; the stale heap entry
    fires as a no-op and is otherwise invisible.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], Any],
        first_delay: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._stopped = False
        self._gen = 0
        sim.schedule_call(
            interval if first_delay is None else first_delay, self._tick, 0
        )

    @property
    def running(self) -> bool:
        return not self._stopped

    def stop(self) -> None:
        self._stopped = True
        self._gen += 1

    def _tick(self, gen: int) -> None:
        if self._stopped or gen != self._gen:
            return
        self._callback()
        if not self._stopped:
            self._sim.schedule_call(self.interval, self._tick, self._gen)


class TimelineProcess:
    """Fires ``callback(payload)`` at each entry of a sorted timeline.

    The workload generators of :mod:`repro.workload` pre-compute thousands
    of flow arrival times; scheduling them all up front would allocate one
    heap entry per arrival at t=0.  A TimelineProcess instead keeps exactly
    one pending tick at a time — it walks the ``(time, payload)`` entries
    in order, firing every entry due at the current tick through the
    kernel's fire-and-forget path, then sleeps until the next one.

    Entries must be sorted by time (ascending) and non-negative; same-time
    entries fire in list order inside one tick.  Like
    :class:`PeriodicProcess`, ``stop()`` invalidates the pending tick by
    generation number.
    """

    def __init__(
        self,
        sim: Simulator,
        entries: Sequence[tuple[float, Any]],
        callback: Callable[[Any], None],
    ) -> None:
        self._sim = sim
        self._entries = list(entries)
        for i in range(1, len(self._entries)):
            if self._entries[i][0] < self._entries[i - 1][0]:
                raise ValueError("timeline entries must be sorted by time")
        if self._entries and self._entries[0][0] < 0:
            raise ValueError("timeline entries must be non-negative in time")
        self._callback = callback
        self._next = 0
        self._stopped = False
        self._gen = 0
        if self._entries:
            sim.schedule_call(
                max(self._entries[0][0] - sim.now, 0.0), self._tick, 0
            )

    @property
    def remaining(self) -> int:
        """Entries not yet fired."""
        return len(self._entries) - self._next

    @property
    def finished(self) -> bool:
        return self._next >= len(self._entries)

    def stop(self) -> None:
        self._stopped = True
        self._gen += 1

    def _tick(self, gen: int) -> None:
        if self._stopped or gen != self._gen:
            return
        now = self._sim.now
        entries = self._entries
        while self._next < len(entries) and entries[self._next][0] <= now:
            _, payload = entries[self._next]
            self._next += 1
            self._callback(payload)
            if self._stopped:
                return
        if self._next < len(entries):
            self._sim.schedule_call(
                entries[self._next][0] - now, self._tick, self._gen
            )
