"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a scheduled callback.  Events are ordered by
``(time, priority, sequence)`` so that simultaneous events fire in a
deterministic order: first by explicit priority, then by scheduling order.
"""

from __future__ import annotations

from typing import Any, Callable


class Event:
    """A cancellable scheduled callback.

    Events are created by :meth:`repro.simcore.simulator.Simulator.schedule`;
    user code normally only keeps the returned handle to :meth:`cancel` it.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        sim: "Any | None" = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        # Owning simulator (if any): cancellation is lazy, so the kernel
        # counts zombies to know when heap compaction pays off.
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when its time comes.

        Cancelling an already-fired or already-cancelled event is a no-op.
        """
        if not self.cancelled:
            self.cancelled = True
            # The kernel detaches fired events (``_sim = None``), so only a
            # cancel that actually leaves a zombie in the heap is counted.
            if self._sim is not None:
                self._sim._note_cancelled()

    # Heap ordering -------------------------------------------------------

    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<Event t={self.time:.6f} {name} {state}>"
