"""Discrete-event simulation kernel: clock, events, timers, RNG streams."""

from repro.simcore.event import Event
from repro.simcore.process import PeriodicProcess, Timer
from repro.simcore.random import RngRegistry
from repro.simcore.simulator import SimulationError, Simulator

__all__ = [
    "Event",
    "PeriodicProcess",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "Timer",
]
