"""Discrete-event simulation kernel: clock, events, timers, RNG streams.

Protocol-agnostic: nothing here knows about LEOTP.  The kernel provides
the single shared :class:`Simulator` clock all nodes/links run on, cheap
fire-and-forget scheduling (``schedule_call``), allocation-free periodic
processes (used by pacing loops, TR scans, and the observability
samplers of :mod:`repro.obs`), and named deterministic RNG streams that
make every experiment reproducible from ``(scale, seed)`` alone.
"""

from repro.simcore.event import Event
from repro.simcore.process import PeriodicProcess, TimelineProcess, Timer
from repro.simcore.random import RngRegistry
from repro.simcore.simulator import SimulationError, Simulator

__all__ = [
    "Event",
    "PeriodicProcess",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "TimelineProcess",
    "Timer",
]
