"""The discrete-event simulator clock and scheduler.

The simulator is a classic event-heap design: callbacks are scheduled at
absolute or relative simulated times and executed in non-decreasing time
order.  All protocol and network components in :mod:`repro` share a single
:class:`Simulator` instance, which acts as the global, perfectly
synchronised clock (see DESIGN.md, "Clock model" and "Performance model").

Heap entries are ``(time, priority, seq, event_or_None, callback, args)``
tuples: tuple comparison is much cheaper than calling ``Event.__lt__``
millions of times in packet-heavy simulations, and keeping the callback
in the tuple lets the run loop fire it without touching the ``Event``
object at all.  The 4th slot is ``None`` for fire-and-forget callbacks
scheduled through :meth:`Simulator.schedule_call` — the hot path used by
pacing loops and link serialisation, which never cancel — so those skip
the per-call :class:`Event` allocation entirely.

Cancellation is lazy: cancelled entries stay in the heap and are skipped
when popped.  The simulator counts them (:attr:`cancelled_pending`) and
compacts the heap — filter + re-heapify, O(n) — whenever zombies are the
majority, so long timer-churn runs (RTO re-arms, chaos suites) cannot
bloat the heap.  Compaction never changes pop order: entries are totally
ordered by their unique ``(time, priority, seq)`` prefix.

Per-link packet deliveries ride the fire-and-forget path as a *batch*:
a link schedules every delivery through :meth:`Simulator.schedule_call`
(no Event allocated, nothing to cancel one-by-one) and invalidates its
whole in-flight cohort at once with a generation bump when flushed (see
``repro.netsim.link``).  The drain loop itself specialises the common
``run()``/``run(until=...)`` shapes: when no event-count cap or wall
watchdog is armed, the per-event bound checks drop out of the hot loop
entirely.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional

from repro.simcore.event import Event


class SimulationError(RuntimeError):
    """Raised on invalid scheduling requests (e.g. scheduling in the past)."""


# Compaction policy: scan/rebuild only when the heap is non-trivial and
# more than half of it is cancelled zombies (amortised O(1) per cancel).
_COMPACT_MIN_HEAP = 256


class Simulator:
    """Event-driven simulation kernel.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("fires at t=1"))
        sim.run(until=10.0)

    The kernel guarantees deterministic execution: events at identical
    timestamps fire ordered by ``priority`` (lower first) and then by
    scheduling order.
    """

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        self._now: float = 0.0
        self._seq: int = 0
        self._events_executed: int = 0
        self._cancelled_pending: int = 0
        self._compactions: int = 0
        self._running: bool = False

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (for diagnostics/benchmarks)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events currently in the heap."""
        return len(self._heap) - self._cancelled_pending

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap slots (zombies)."""
        return self._cancelled_pending

    @property
    def heap_compactions(self) -> int:
        """Times the heap was rebuilt to shed cancelled entries."""
        return self._compactions

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Returns the :class:`Event` handle, which may be cancelled.
        ``delay`` must be non-negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, callback, args, self)
        heappush(self._heap, (time, priority, seq, event, callback, args))
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now={self._now})"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, callback, args, self)
        heappush(self._heap, (time, priority, seq, event, callback, args))
        return event

    def schedule_call(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> None:
        """Fire-and-forget fast path: like :meth:`schedule`, but returns no
        handle and allocates no :class:`Event`.

        Use it for callbacks that are never cancelled (pacing ticks, link
        serialisation completions, periodic samplers) — the dominant class
        of events in packet-heavy runs.  Semantics (ordering, clock) are
        identical to :meth:`schedule`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        heappush(
            self._heap, (self._now + delay, priority, seq, None, callback, args)
        )

    def schedule_periodic(
        self,
        interval: float,
        callback: Callable[[], Any],
        first_delay: Optional[float] = None,
    ) -> "PeriodicProcess":
        """Batched timer facility: run ``callback()`` every ``interval``
        seconds without allocating an :class:`Event` per tick.

        Returns the :class:`~repro.simcore.process.PeriodicProcess` handle
        (``.stop()``, mutable ``.interval``).
        """
        from repro.simcore.process import PeriodicProcess

        return PeriodicProcess(self, interval, callback, first_delay=first_delay)

    # ------------------------------------------------------------------
    # Cancellation accounting (called by Event.cancel)
    # ------------------------------------------------------------------

    def _note_cancelled(self) -> None:
        self._cancelled_pending += 1
        if (
            len(self._heap) >= _COMPACT_MIN_HEAP
            and self._cancelled_pending * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries (pop order unchanged)."""
        self._heap = [
            entry
            for entry in self._heap
            if entry[3] is None or not entry[3].cancelled
        ]
        heapify(self._heap)
        self._cancelled_pending = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        wall_timeout_s: Optional[float] = None,
    ) -> float:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have executed.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fires earlier, so back-to-back ``run`` calls
        observe a monotonic clock.  Returns the current simulated time.

        ``wall_timeout_s`` is a watchdog against runaway event storms
        (e.g. a fault scenario that triggers a retransmission feedback
        loop): if the run consumes more than that much *wall-clock* time,
        a :class:`SimulationError` reporting the simulated time and event
        count is raised instead of hanging the harness.  It does not
        affect the simulated schedule, only aborts it.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        executed = 0
        deadline = None
        if wall_timeout_s is not None:
            import time as _time

            monotonic = _time.monotonic
            deadline = monotonic() + wall_timeout_s
            check_mask = 0xFFF  # poll the wall clock every 4096 events
        # Local bindings keep the hot loop free of repeated global/attr
        # lookups; self._now is still written through the attribute so
        # callbacks observe the advancing clock.
        heap = self._heap
        pop = heappop
        try:
            if max_events is None and deadline is None:
                # Specialised drain loop for the dominant run()/run(until=)
                # shapes: one pop per event (no peek), single tuple unpack,
                # no per-event bound checks beyond the time horizon.  The
                # boundary entry is pushed back untouched, so a later run()
                # resumes from the exact same heap state.
                bound = float("inf") if until is None else until
                while heap:
                    entry = pop(heap)
                    time, _, _, event, callback, args = entry
                    if time > bound:
                        heappush(heap, entry)
                        break
                    if event is not None:
                        if event.cancelled:
                            self._cancelled_pending -= 1
                            continue
                        event._sim = None  # fired: later cancel() is a no-op
                    self._now = time
                    callback(*args)
                    executed += 1
                    if heap is not self._heap:  # callback triggered compaction
                        heap = self._heap
            else:
                while heap:
                    entry = heap[0]
                    event = entry[3]
                    if event is not None and event.cancelled:
                        pop(heap)
                        self._cancelled_pending -= 1
                        continue
                    if until is not None and entry[0] > until:
                        break
                    if max_events is not None and executed >= max_events:
                        break
                    if (
                        deadline is not None
                        and executed & check_mask == check_mask
                        and monotonic() > deadline
                    ):
                        raise SimulationError(
                            f"wall-clock watchdog expired after {wall_timeout_s}s "
                            f"(simulated t={self._now:.3f}, {executed} events this run)"
                        )
                    pop(heap)
                    if event is not None:
                        event._sim = None  # fired: later cancel() is a no-op
                    self._now = entry[0]
                    entry[4](*entry[5])
                    executed += 1
                    if heap is not self._heap:  # a callback triggered compaction
                        heap = self._heap
        finally:
            self._running = False
            self._events_executed += executed
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def step(self) -> bool:
        """Execute exactly one pending event.  Returns False if none remain.

        Shares the :meth:`run` machinery: the re-entrancy guard is held
        while the callback executes and the clock advances through the
        same path, so ``step()`` inside a running simulation raises
        instead of corrupting the heap.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            heap = self._heap
            while heap:
                entry = heappop(heap)
                event = entry[3]
                if event is not None:
                    if event.cancelled:
                        self._cancelled_pending -= 1
                        continue
                    event._sim = None  # fired: later cancel() is a no-op
                self._now = entry[0]
                entry[4](*entry[5])
                self._events_executed += 1
                return True
            return False
        finally:
            self._running = False

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or None if the heap is empty."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[3] is None or not entry[3].cancelled:
                return entry[0]
            heappop(heap)
            self._cancelled_pending -= 1
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Simulator t={self._now:.6f} pending={self.pending_events} "
            f"zombies={self._cancelled_pending}>"
        )
