"""The discrete-event simulator clock and scheduler.

The simulator is a classic event-heap design: callbacks are scheduled at
absolute or relative simulated times and executed in non-decreasing time
order.  All protocol and network components in :mod:`repro` share a single
:class:`Simulator` instance, which acts as the global, perfectly
synchronised clock (see DESIGN.md, "Clock model").
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.simcore.event import Event


class SimulationError(RuntimeError):
    """Raised on invalid scheduling requests (e.g. scheduling in the past)."""


class Simulator:
    """Event-driven simulation kernel.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("fires at t=1"))
        sim.run(until=10.0)

    The kernel guarantees deterministic execution: events at identical
    timestamps fire ordered by ``priority`` (lower first) and then by
    scheduling order.
    """

    def __init__(self) -> None:
        # Heap entries are (time, priority, seq, event) tuples: tuple
        # comparison is much cheaper than calling Event.__lt__ millions of
        # times in packet-heavy simulations.
        self._heap: list[tuple[float, int, int, Event]] = []
        self._now: float = 0.0
        self._seq: int = 0
        self._events_executed: int = 0
        self._running: bool = False

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (for diagnostics/benchmarks)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of events currently in the heap (including cancelled)."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Returns the :class:`Event` handle, which may be cancelled.
        ``delay`` must be non-negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now={self._now})"
            )
        event = Event(time, priority, self._seq, callback, args)
        heapq.heappush(self._heap, (time, priority, self._seq, event))
        self._seq += 1
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        wall_timeout_s: Optional[float] = None,
    ) -> float:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have executed.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fires earlier, so back-to-back ``run`` calls
        observe a monotonic clock.  Returns the current simulated time.

        ``wall_timeout_s`` is a watchdog against runaway event storms
        (e.g. a fault scenario that triggers a retransmission feedback
        loop): if the run consumes more than that much *wall-clock* time,
        a :class:`SimulationError` reporting the simulated time and event
        count is raised instead of hanging the harness.  It does not
        affect the simulated schedule, only aborts it.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        executed = 0
        deadline = None
        if wall_timeout_s is not None:
            import time

            deadline = time.monotonic() + wall_timeout_s
            check_mask = 0xFFF  # poll the wall clock every 4096 events
        try:
            while self._heap:
                entry = self._heap[0]
                event = entry[3]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and entry[0] > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                if (
                    deadline is not None
                    and executed & check_mask == check_mask
                    and time.monotonic() > deadline
                ):
                    raise SimulationError(
                        f"wall-clock watchdog expired after {wall_timeout_s}s "
                        f"(simulated t={self._now:.3f}, {executed} events this run)"
                    )
                heapq.heappop(self._heap)
                self._now = entry[0]
                event.callback(*event.args)
                self._events_executed += 1
                executed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def step(self) -> bool:
        """Execute exactly one pending event.  Returns False if none remain."""
        while self._heap:
            time, _, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = time
            event.callback(*event.args)
            self._events_executed += 1
            return True
        return False

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or None if the heap is empty."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self._now:.6f} pending={len(self._heap)}>"
