"""Deterministic named random-number streams.

Every stochastic element of an experiment (per-link loss, bandwidth jitter,
workload arrival, ...) draws from its own named stream derived from a single
root seed.  This gives two properties the experiments rely on:

* **Reproducibility** — the same root seed always produces the same run.
* **Isolation** — adding a new consumer of randomness does not perturb the
  draws seen by existing consumers, because streams are keyed by name rather
  than by draw order.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngRegistry:
    """Factory of named, independently-seeded NumPy generators."""

    def __init__(self, root_seed: int = 0) -> None:
        self._root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream seed mixes the root seed with a CRC of the name so that
        distinct names yield (practically) independent streams.
        """
        gen = self._streams.get(name)
        if gen is None:
            mixed = np.random.SeedSequence(
                [self._root_seed, zlib.crc32(name.encode("utf-8"))]
            )
            gen = np.random.default_rng(mixed)
            self._streams[name] = gen
        return gen

    def fork(self, salt: int) -> "RngRegistry":
        """Derive an independent registry (e.g. one per repetition)."""
        return RngRegistry(root_seed=self._root_seed * 1_000_003 + salt)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RngRegistry seed={self._root_seed} streams={len(self._streams)}>"
