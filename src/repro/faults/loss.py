"""Correlated packet-loss processes for fault injection (the bursty LEO
link conditions of Sec. II-A, beyond the Bernoulli loss of Figs. 10-12).

The substrate's built-in loss is Bernoulli: every packet is dropped
independently with probability ``plr``.  Real LEO links fail differently —
rain fade, antenna re-pointing, and interference produce *bursts* where
many consecutive packets die, separated by long clean stretches.  The
classic two-state Gilbert–Elliott chain models this: the link wanders
between a GOOD and a BAD state, each with its own loss probability, and
the state transition probabilities set the burst/gap length distribution
(geometric, with means ``1/p_bad_good`` and ``1/p_good_bad`` packets).

Instances plug into :attr:`repro.netsim.link.Link.loss_model` and advance
their chain once per serialised packet, so runs remain deterministic for
a given named RNG stream.
"""

from __future__ import annotations

import numpy as np

GOOD = 0
BAD = 1


class GilbertElliottLoss:
    """Two-state Markov loss process (callable: packet -> drop?).

    Args:
        rng: dedicated random stream (use a named ``RngRegistry`` stream).
        p_good_bad: per-packet probability of entering the burst state.
        p_bad_good: per-packet probability of leaving the burst state.
        loss_good: loss probability while GOOD (usually 0 or tiny).
        loss_bad: loss probability while BAD (usually large).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        p_good_bad: float = 0.001,
        p_bad_good: float = 0.1,
        loss_good: float = 0.0,
        loss_bad: float = 0.5,
    ) -> None:
        for name, p in (
            ("p_good_bad", p_good_bad),
            ("p_bad_good", p_bad_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        self._rng = rng
        self.p_good_bad = p_good_bad
        self.p_bad_good = p_bad_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.state = GOOD
        self.packets_seen = 0
        self.packets_dropped = 0
        self.bursts_entered = 0

    def __call__(self, packet) -> bool:
        """Advance the chain one packet; True means drop it."""
        self.packets_seen += 1
        if self.state == GOOD:
            if self._rng.random() < self.p_good_bad:
                self.state = BAD
                self.bursts_entered += 1
        else:
            if self._rng.random() < self.p_bad_good:
                self.state = GOOD
        p = self.loss_bad if self.state == BAD else self.loss_good
        lost = p > 0 and self._rng.random() < p
        if lost:
            self.packets_dropped += 1
        return lost

    @property
    def loss_rate(self) -> float:
        return self.packets_dropped / self.packets_seen if self.packets_seen else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "BAD" if self.state == BAD else "GOOD"
        return (
            f"<GilbertElliottLoss {state} seen={self.packets_seen} "
            f"dropped={self.packets_dropped}>"
        )
