"""Declarative fault schedules and the injector that executes them.

A :class:`FaultSchedule` is a plain list of timed fault events — link
outages, flapping, delay spikes, bandwidth collapse, loss bursts
(Bernoulli or Gilbert–Elliott), and node crash/restart.  A
:class:`FaultInjector` binds a schedule to a running topology by name:
links and nodes are registered once, the schedule is ``arm``-ed, and the
faults fire as ordinary simulator events (at priority -1, so a fault at
time *t* applies before any protocol event at the same *t*).

Everything is deterministic: loss bursts draw from named
:class:`~repro.simcore.random.RngRegistry` streams, and the injector
keeps a log of every action it applied for post-run reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Union

from repro.faults.loss import GilbertElliottLoss
from repro.netsim.link import DuplexLink, Link
from repro.netsim.node import Node
from repro.obs.tracer import TRACER
from repro.simcore.random import RngRegistry
from repro.simcore.simulator import Simulator

# ----------------------------------------------------------------------
# Event vocabulary
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FaultEvent:
    """Base class: something bad happens at ``at_s`` (simulated seconds)."""

    at_s: float

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError(f"fault time must be non-negative, got {self.at_s}")


@dataclass(frozen=True)
class LinkDown(FaultEvent):
    """Take a link down for ``duration_s`` (a handover blackout).

    While down the link blackholes every offered packet; on the way down
    its queue (and optionally in-flight packets) are flushed, as when a
    satellite drops below the horizon with frames still buffered.
    """

    link: str = ""
    duration_s: float = 1.0
    flush: bool = True
    drop_inflight: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.link:
            raise ValueError("LinkDown needs a target link name")
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")


@dataclass(frozen=True)
class LinkFlap(FaultEvent):
    """``cycles`` repetitions of down for ``down_s`` then up for ``up_s``."""

    link: str = ""
    down_s: float = 0.2
    up_s: float = 0.5
    cycles: int = 3
    flush: bool = True
    drop_inflight: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.link:
            raise ValueError("LinkFlap needs a target link name")
        if self.down_s <= 0 or self.up_s <= 0 or self.cycles <= 0:
            raise ValueError("down_s, up_s, and cycles must be positive")

    def expand(self) -> list[LinkDown]:
        period = self.down_s + self.up_s
        return [
            LinkDown(
                at_s=self.at_s + k * period,
                link=self.link,
                duration_s=self.down_s,
                flush=self.flush,
                drop_inflight=self.drop_inflight,
            )
            for k in range(self.cycles)
        ]


@dataclass(frozen=True)
class DelaySpike(FaultEvent):
    """Propagation delay jumps to ``factor``x plus ``extra_s`` for a while.

    The reverse transition (delay shrinking back at the end) reorders
    packets in flight — the LEO phenomenon the link layer documents.
    The restore is delta-based, so concurrent retuning by a constellation
    driver is preserved rather than stomped.
    """

    link: str = ""
    duration_s: float = 1.0
    factor: float = 1.0
    extra_s: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.link:
            raise ValueError("DelaySpike needs a target link name")
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.factor < 1.0 or self.extra_s < 0:
            raise ValueError("spikes only add delay (factor >= 1, extra >= 0)")
        if self.factor == 1.0 and self.extra_s == 0.0:
            raise ValueError("spike adds no delay")


@dataclass(frozen=True)
class BandwidthCollapse(FaultEvent):
    """Link rate drops to ``factor`` of nominal for ``duration_s``."""

    link: str = ""
    duration_s: float = 1.0
    factor: float = 0.1

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.link:
            raise ValueError("BandwidthCollapse needs a target link name")
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if not 0 < self.factor <= 1.0:
            raise ValueError("factor must be in (0, 1]")


@dataclass(frozen=True)
class LossBurst(FaultEvent):
    """Bernoulli loss at ``plr`` for ``duration_s`` (then restored)."""

    link: str = ""
    duration_s: float = 1.0
    plr: float = 0.3

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.link:
            raise ValueError("LossBurst needs a target link name")
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if not 0 <= self.plr < 1:
            raise ValueError("plr must be in [0, 1)")


@dataclass(frozen=True)
class CorrelatedLoss(FaultEvent):
    """Attach a Gilbert–Elliott loss process for ``duration_s``."""

    link: str = ""
    duration_s: float = 1.0
    p_good_bad: float = 0.01
    p_bad_good: float = 0.1
    loss_good: float = 0.0
    loss_bad: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.link:
            raise ValueError("CorrelatedLoss needs a target link name")
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")


@dataclass(frozen=True)
class NodeCrash(FaultEvent):
    """Crash a node (wiping volatile state) and restart it later.

    ``restart_after_s`` of ``None`` means the node never comes back.
    """

    node: str = ""
    restart_after_s: Optional[float] = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.node:
            raise ValueError("NodeCrash needs a target node name")
        if self.restart_after_s is not None and self.restart_after_s <= 0:
            raise ValueError("restart_after_s must be positive (or None)")


# ----------------------------------------------------------------------
# Schedule
# ----------------------------------------------------------------------


class FaultSchedule:
    """An ordered collection of fault events."""

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        self._events: list[FaultEvent] = []
        for event in events:
            self.add(event)

    def add(self, event: FaultEvent) -> "FaultSchedule":
        if not isinstance(event, FaultEvent):
            raise TypeError(f"not a FaultEvent: {event!r}")
        self._events.append(event)
        return self

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(sorted(self._events, key=lambda e: e.at_s))

    def __len__(self) -> int:
        return len(self._events)

    @property
    def last_fault_end_s(self) -> float:
        """When the final scheduled disturbance is over (0 if empty)."""
        end = 0.0
        for event in self._events:
            duration = getattr(event, "duration_s", None)
            if duration is None and isinstance(event, NodeCrash):
                duration = event.restart_after_s or 0.0
            if isinstance(event, LinkFlap):
                duration = event.cycles * (event.down_s + event.up_s)
            end = max(end, event.at_s + (duration or 0.0))
        return end

    def validate(self) -> "FaultSchedule":
        """Reject schedules whose events would silently corrupt state.

        Two events of the same kind on the same target whose active
        windows overlap — or merely abut — break the save/restore pairing
        inside the injector: the first event's restore fires after the
        second event's apply and stomps it (e.g. a link marked UP while
        its second outage is still running).  Negative times and
        non-positive durations are already rejected by each event's own
        ``__post_init__``; this catches the cross-event hazards.

        :class:`DelaySpike` is exempt: its restore is delta-based and
        documented to compose with concurrent retuning.  Returns ``self``
        so it chains; :meth:`FaultInjector.arm` calls it automatically.
        """
        windows: dict[tuple[str, str], list[tuple[float, float, FaultEvent]]]
        windows = {}

        def record(key: tuple[str, str], start: float, end: float,
                   event: FaultEvent) -> None:
            windows.setdefault(key, []).append((start, end, event))

        for event in self._events:
            if isinstance(event, DelaySpike):
                continue
            if isinstance(event, LinkFlap):
                for down in event.expand():
                    record(("LinkDown", down.link), down.at_s,
                           down.at_s + down.duration_s, event)
            elif isinstance(event, NodeCrash):
                end = (
                    event.at_s + event.restart_after_s
                    if event.restart_after_s is not None
                    else float("inf")
                )
                record(("NodeCrash", event.node), event.at_s, end, event)
            else:
                link = getattr(event, "link", None)
                duration = getattr(event, "duration_s", None)
                if link is None or duration is None:
                    continue
                record((type(event).__name__, link), event.at_s,
                       event.at_s + duration, event)

        for (kind, target), intervals in sorted(windows.items()):
            intervals.sort(key=lambda iv: (iv[0], iv[1]))
            for (s1, e1, ev1), (s2, e2, ev2) in zip(
                intervals[:-1], intervals[1:]
            ):
                if s2 <= e1:
                    raise ValueError(
                        f"overlapping {kind} events on {target!r}: "
                        f"[{s1}, {e1}) from {ev1!r} collides with "
                        f"[{s2}, {e2}) from {ev2!r}; merge them into one "
                        f"event (restores would fire out of order)"
                    )
        return self


# ----------------------------------------------------------------------
# Injector
# ----------------------------------------------------------------------


class _ScaledProfile:
    """Bandwidth profile proxy multiplying the base rate by a factor."""

    def __init__(self, base, factor: float) -> None:
        self.base = base
        self.factor = factor

    def rate_at(self, t: float) -> float:
        return self.base.rate_at(t) * self.factor


class _LinkBackUp:
    """Scheduled end of a :class:`LinkDown` window.

    A named callable (not a closure) so a shard checkpoint taken *inside*
    a blackout window can pickle the pending restore off the event heap.
    The same applies to every ``_*Restore`` class below.
    """

    __slots__ = ("injector", "links", "label")

    def __init__(self, injector: "FaultInjector", links, label: str) -> None:
        self.injector = injector
        self.links = links
        self.label = label

    def __call__(self) -> None:
        for link in self.links:
            link.up = True
        self.injector._log(f"{self.label} UP")


class _DelayRestore:
    __slots__ = ("injector", "links", "deltas", "label")

    def __init__(self, injector, links, deltas, label: str) -> None:
        self.injector = injector
        self.links = links
        self.deltas = deltas
        self.label = label

    def __call__(self) -> None:
        for link, delta in zip(self.links, self.deltas):
            link.delay_s = max(link.delay_s - delta, 0.0)
        self.injector._log(f"{self.label} delay restored")


class _BandwidthRestore:
    __slots__ = ("injector", "links", "saved", "label")

    def __init__(self, injector, links, saved, label: str) -> None:
        self.injector = injector
        self.links = links
        self.saved = saved
        self.label = label

    def __call__(self) -> None:
        for link, profile in zip(self.links, self.saved):
            link.profile = profile
        self.injector._log(f"{self.label} bandwidth restored")


class _LossRestore:
    __slots__ = ("injector", "links", "saved", "label")

    def __init__(self, injector, links, saved, label: str) -> None:
        self.injector = injector
        self.links = links
        self.saved = saved
        self.label = label

    def __call__(self) -> None:
        for link, plr in zip(self.links, self.saved):
            link.set_loss(plr)
        self.injector._log(f"{self.label} loss restored")


class _LossModelRestore:
    __slots__ = ("injector", "links", "saved", "label")

    def __init__(self, injector, links, saved, label: str) -> None:
        self.injector = injector
        self.links = links
        self.saved = saved
        self.label = label

    def __call__(self) -> None:
        for link, model in zip(self.links, self.saved):
            link.loss_model = model
        self.injector._log(f"{self.label} Gilbert-Elliott loss detached")


class _NodeRestart:
    __slots__ = ("injector", "node", "label")

    def __init__(self, injector, node, label: str) -> None:
        self.injector = injector
        self.node = node
        self.label = label

    def __call__(self) -> None:
        self.node.restart()
        self.injector._log(f"{self.label} restarted")


class FaultInjector:
    """Executes a :class:`FaultSchedule` against registered links/nodes."""

    PRIORITY = -1  # faults beat same-timestamp protocol events

    def __init__(self, sim: Simulator, rng: Optional[RngRegistry] = None) -> None:
        self.sim = sim
        self._rng = rng if rng is not None else RngRegistry(0)
        self._links: dict[str, list[Link]] = {}
        self._nodes: dict[str, Node] = {}
        self.log: list[tuple[float, str]] = []
        self.faults_applied = 0

    # -- registration ---------------------------------------------------

    def register_link(self, name: str, link: Union[Link, DuplexLink]) -> None:
        """Register a link target.  A DuplexLink registers both directions
        under ``name`` plus each one individually as ``name:ab``/``name:ba``.
        """
        if isinstance(link, DuplexLink):
            self._links[name] = [link.ab, link.ba]
            self._links[f"{name}:ab"] = [link.ab]
            self._links[f"{name}:ba"] = [link.ba]
        else:
            self._links[name] = [link]

    def register_node(self, name: str, node: Node) -> None:
        self._nodes[name] = node

    def register_path(self, path) -> None:
        """Register everything in a built path (LeotpPath or TcpPath).

        Duplex links become ``hop0`` .. ``hopN``; every node object found
        on the path is registered under its own ``name``.
        """
        for i, duplex in enumerate(getattr(path, "links", [])):
            self.register_link(f"hop{i}", duplex)
        for attr in ("producer", "consumer", "sender", "receiver"):
            node = getattr(path, attr, None)
            if node is not None:
                self.register_node(node.name, node)
        for node in getattr(path, "intermediates", []) or []:
            self.register_node(node.name, node)
        for node in getattr(path, "forwarders", []) or []:
            self.register_node(node.name, node)
        for node in getattr(path, "satellites", []) or []:
            self.register_node(node.name, node)
        for node in getattr(path, "consumers", []) or []:
            self.register_node(node.name, node)

    def _resolve_links(self, name: str) -> list[Link]:
        links = self._links.get(name)
        if not links:
            known = ", ".join(sorted(self._links)) or "(none)"
            raise KeyError(f"unknown link target {name!r}; registered: {known}")
        return links

    def _resolve_node(self, name: str) -> Node:
        node = self._nodes.get(name)
        if node is None:
            known = ", ".join(sorted(self._nodes)) or "(none)"
            raise KeyError(f"unknown node target {name!r}; registered: {known}")
        return node

    # -- arming ---------------------------------------------------------

    def arm(self, schedule: FaultSchedule) -> None:
        """Schedule every event of ``schedule`` on the simulator.

        The schedule is validated first (see
        :meth:`FaultSchedule.validate`), so internally-inconsistent
        schedules fail loudly at arm time instead of silently
        mis-restoring state mid-run.
        """
        schedule.validate()
        for event in schedule:
            if isinstance(event, LinkFlap):
                for down in event.expand():
                    self._arm_one(down)
            else:
                self._arm_one(event)

    def _arm_one(self, event: FaultEvent) -> None:
        # Resolve targets eagerly so misconfigured schedules fail at arm
        # time, not minutes into a simulation.
        if isinstance(event, NodeCrash):
            self._resolve_node(event.node)
        elif isinstance(event, FaultEvent) and getattr(event, "link", None):
            self._resolve_links(event.link)
        self.sim.schedule_at(
            event.at_s, self._apply, event, priority=self.PRIORITY
        )

    # -- execution ------------------------------------------------------

    def _log(self, message: str) -> None:
        if TRACER.enabled:
            TRACER.emit(self.sim.now, "fault", "injector", detail=message)
        self.log.append((self.sim.now, message))
        self.faults_applied += 1

    def _apply(self, event: FaultEvent) -> None:
        if isinstance(event, LinkDown):
            self._apply_link_down(event)
        elif isinstance(event, DelaySpike):
            self._apply_delay_spike(event)
        elif isinstance(event, BandwidthCollapse):
            self._apply_bandwidth_collapse(event)
        elif isinstance(event, LossBurst):
            self._apply_loss_burst(event)
        elif isinstance(event, CorrelatedLoss):
            self._apply_correlated_loss(event)
        elif isinstance(event, NodeCrash):
            self._apply_node_crash(event)
        else:  # pragma: no cover - future event kinds
            raise TypeError(f"no handler for fault event {event!r}")

    def _apply_link_down(self, event: LinkDown) -> None:
        links = self._resolve_links(event.link)
        dropped = 0
        for link in links:
            link.up = False
            if event.flush:
                dropped += link.flush(drop_inflight=event.drop_inflight)
        self._log(f"{event.link} DOWN for {event.duration_s}s ({dropped} flushed)")
        self.sim.schedule(
            event.duration_s,
            _LinkBackUp(self, links, event.link),
            priority=self.PRIORITY,
        )

    def _apply_delay_spike(self, event: DelaySpike) -> None:
        links = self._resolve_links(event.link)
        deltas = []
        for link in links:
            spiked = link.delay_s * event.factor + event.extra_s
            deltas.append(spiked - link.delay_s)
            link.delay_s = spiked
        self._log(f"{event.link} delay spike (+{deltas[0] * 1000:.1f} ms)")
        self.sim.schedule(
            event.duration_s,
            _DelayRestore(self, links, deltas, event.link),
            priority=self.PRIORITY,
        )

    def _apply_bandwidth_collapse(self, event: BandwidthCollapse) -> None:
        links = self._resolve_links(event.link)
        saved = [link.profile for link in links]
        for link in links:
            link.profile = _ScaledProfile(link.profile, event.factor)
        self._log(f"{event.link} bandwidth collapsed to {event.factor:.0%}")
        self.sim.schedule(
            event.duration_s,
            _BandwidthRestore(self, links, saved, event.link),
            priority=self.PRIORITY,
        )

    def _apply_loss_burst(self, event: LossBurst) -> None:
        links = self._resolve_links(event.link)
        saved = [link.plr for link in links]
        for i, link in enumerate(links):
            link.set_loss(
                event.plr,
                rng=self._rng.stream(f"faults:burst:{event.link}:{i}"),
            )
        self._log(f"{event.link} loss burst plr={event.plr}")
        self.sim.schedule(
            event.duration_s,
            _LossRestore(self, links, saved, event.link),
            priority=self.PRIORITY,
        )

    def _apply_correlated_loss(self, event: CorrelatedLoss) -> None:
        links = self._resolve_links(event.link)
        saved = [link.loss_model for link in links]
        for i, link in enumerate(links):
            link.loss_model = GilbertElliottLoss(
                self._rng.stream(f"faults:ge:{event.link}:{i}"),
                p_good_bad=event.p_good_bad,
                p_bad_good=event.p_bad_good,
                loss_good=event.loss_good,
                loss_bad=event.loss_bad,
            )
        self._log(f"{event.link} Gilbert-Elliott loss attached")
        self.sim.schedule(
            event.duration_s,
            _LossModelRestore(self, links, saved, event.link),
            priority=self.PRIORITY,
        )

    def _apply_node_crash(self, event: NodeCrash) -> None:
        node = self._resolve_node(event.node)
        node.crash()
        self._log(f"{event.node} CRASHED")
        if event.restart_after_s is not None:
            self.sim.schedule(
                event.restart_after_s,
                _NodeRestart(self, node, event.node),
                priority=self.PRIORITY,
            )
