"""Recovery invariants: what must stay true while faults are injected.

An :class:`InvariantMonitor` attaches to a built LEOTP path and watches it
through a run — sampling fast-moving state (RTO, cwnd, buffer levels) on a
periodic probe and auditing terminal state (byte-exact delivery) when the
run finalises.  Checkers are pluggable: each is a small object with a
``name`` plus ``sample``/``finalise`` hooks returning a violation string
or ``None``, so chaos scenarios can add their own assertions.

The default set encodes the paper's implicit correctness claims:

* **byte-exact-delivery** — every byte of the flow reaches the app exactly
  once, in order, despite blackouts/crashes (reliability, Sec. III-B).
* **no-duplicate-delivery** — the in-order delivery stream never hands the
  application a byte twice (duplicates on the wire are fine; duplicates at
  the app are a protocol bug).
* **bounded-requester-window** — the Consumer's in-flight window stays
  bounded during stalls (no Interest storm).
* **bounded-responder-buffers** — Producer/Midnode sending buffers stay
  bounded (the duplicate-absorption machinery works under heavy TR).
* **rto-sanity** — the RTO stays inside [min, max] and per-Interest
  retries respect ``tr_max_retries``.
* **cwnd-sanity** — hop controllers' windows stay positive, finite, and
  below the configured cap even when deliveries stall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.obs.tracer import TRACER
from repro.simcore.process import PeriodicProcess
from repro.simcore.simulator import Simulator


class InvariantViolation(AssertionError):
    """Raised by :meth:`InvariantMonitor.assert_ok` when a check failed."""


@dataclass
class InvariantReport:
    """Outcome of one checker over a whole run."""

    name: str
    ok: bool
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - debug aid
        mark = "ok" if self.ok else "VIOLATED"
        return f"[{mark}] {self.name}" + (f": {self.detail}" if self.detail else "")


@dataclass(frozen=True)
class InvariantLimits:
    """Bounds the sampled invariants assert against."""

    # The Consumer's window cap is adaptive; this is the hard ceiling it
    # must never escape, generous enough for any sane configuration.
    requester_window_limit_bytes: int = 8 << 20
    # Responder buffers target BL_tar (~11 KB); a backlog two orders of
    # magnitude above that means duplicate absorption broke down.
    responder_backlog_limit_bytes: int = 1 << 20


class Invariant:
    """Base checker: override ``sample`` and/or ``finalise``."""

    name = "invariant"

    def sample(self, monitor: "InvariantMonitor") -> Optional[str]:
        return None

    def finalise(self, monitor: "InvariantMonitor") -> Optional[str]:
        return None


class ByteExactDelivery(Invariant):
    name = "byte-exact-delivery"

    def finalise(self, monitor: "InvariantMonitor") -> Optional[str]:
        consumer = monitor.consumer
        total = consumer.total_bytes
        if total is None:
            return None  # open-ended flow: nothing terminal to audit
        if not consumer.finished:
            return (
                f"transfer incomplete: {consumer.bytes_received}/{total} bytes "
                f"received, frontier at {consumer.delivered_bytes}"
            )
        if consumer.delivered_bytes != total and monitor.observes_app_stream:
            return (
                f"app frontier {consumer.delivered_bytes} != flow size {total}"
            )
        if consumer.bytes_received != total:
            return (
                f"first-arrival accounting saw {consumer.bytes_received} bytes "
                f"for a {total}-byte flow"
            )
        return None


class NoDuplicateDelivery(Invariant):
    name = "no-duplicate-delivery"

    def finalise(self, monitor: "InvariantMonitor") -> Optional[str]:
        if not monitor.observes_app_stream:
            return None
        if monitor.app_nonpositive_deliveries:
            return (
                f"{monitor.app_nonpositive_deliveries} non-positive delivery "
                "callbacks (re-delivery or empty delivery)"
            )
        if monitor.app_bytes_delivered != monitor.consumer.delivered_bytes:
            return (
                f"app observed {monitor.app_bytes_delivered} bytes but the "
                f"frontier advanced {monitor.consumer.delivered_bytes}"
            )
        return None


class BoundedRequesterWindow(Invariant):
    name = "bounded-requester-window"

    def sample(self, monitor: "InvariantMonitor") -> Optional[str]:
        limit = monitor.limits.requester_window_limit_bytes
        out = monitor.consumer.outstanding_bytes
        if out > limit:
            return f"{out} bytes in flight (limit {limit})"
        return None

    def finalise(self, monitor: "InvariantMonitor") -> Optional[str]:
        limit = monitor.limits.requester_window_limit_bytes
        peak = monitor.consumer.max_outstanding_bytes
        if peak > limit:
            return f"in-flight peak {peak} bytes (limit {limit})"
        return None


class BoundedResponderBuffers(Invariant):
    name = "bounded-responder-buffers"

    def finalise(self, monitor: "InvariantMonitor") -> Optional[str]:
        limit = monitor.limits.responder_backlog_limit_bytes
        worst: list[str] = []
        for name, sender in monitor.responder_senders():
            if sender.max_backlog_bytes > limit:
                worst.append(f"{name} peaked at {sender.max_backlog_bytes}")
        if worst:
            return f"backlog limit {limit} exceeded: " + "; ".join(worst)
        return None


class RtoSanity(Invariant):
    name = "rto-sanity"

    def sample(self, monitor: "InvariantMonitor") -> Optional[str]:
        rto = monitor.consumer.rto
        if not rto.min_rto_s <= rto.rto_s <= rto.max_rto_s:
            return (
                f"RTO {rto.rto_s:.3f}s outside "
                f"[{rto.min_rto_s}, {rto.max_rto_s}]"
            )
        return None

    def finalise(self, monitor: "InvariantMonitor") -> Optional[str]:
        consumer = monitor.consumer
        if consumer.max_interest_retries > consumer.config.tr_max_retries:
            return (
                f"an Interest was retried {consumer.max_interest_retries} "
                f"times (cap {consumer.config.tr_max_retries})"
            )
        return self.sample(monitor)


class CwndSanity(Invariant):
    name = "cwnd-sanity"

    def sample(self, monitor: "InvariantMonitor") -> Optional[str]:
        import math

        for name, cc in monitor.hop_controllers():
            cwnd = cc.cwnd_bytes
            if not math.isfinite(cwnd) or cwnd <= 0:
                return f"{name} cwnd degenerate: {cwnd}"
            if cwnd > cc.config.max_cwnd_bytes:
                return f"{name} cwnd {cwnd:.0f} above cap {cc.config.max_cwnd_bytes}"
        return None


def default_invariants() -> list[Invariant]:
    return [
        ByteExactDelivery(),
        NoDuplicateDelivery(),
        BoundedRequesterWindow(),
        BoundedResponderBuffers(),
        RtoSanity(),
        CwndSanity(),
    ]


class InvariantMonitor:
    """Watches one LEOTP path; collects violations; renders a report.

    The monitor interposes on the Consumer's in-order delivery callback
    (chaining to any existing one) to observe the exact byte stream the
    application would see.
    """

    MAX_DETAILS_PER_CHECK = 5

    def __init__(
        self,
        sim: Simulator,
        path,
        invariants: Optional[Sequence[Invariant]] = None,
        limits: InvariantLimits = InvariantLimits(),
        sample_interval_s: float = 0.05,
    ) -> None:
        self.sim = sim
        self.path = path
        self.limits = limits
        self.invariants = list(invariants) if invariants is not None else default_invariants()
        self._violations: dict[str, list[str]] = {}
        # Observe the app-level delivery stream.
        self.app_bytes_delivered = 0
        self.app_delivery_calls = 0
        self.app_nonpositive_deliveries = 0
        self.last_app_delivery_at: Optional[float] = None
        self.observes_app_stream = True
        self._chained_deliver = self.consumer.deliver
        self.consumer.deliver = self._on_app_delivery
        self._sampler = PeriodicProcess(sim, sample_interval_s, self._sample)

    # -- topology accessors (used by checkers) --------------------------

    @property
    def consumer(self):
        return self.path.consumer

    @property
    def producer(self):
        return self.path.producer

    @property
    def midnodes(self):
        return getattr(self.path, "midnodes", [])

    def responder_senders(self):
        """(name, PacedSender) pairs for every Responder on the path."""
        for flow_id, sender in self.producer._senders.items():
            yield f"{self.producer.name}:{flow_id}", sender
        for mid in self.midnodes:
            for flow_id, state in mid._flows.items():
                yield f"{mid.name}:{flow_id}", state.sender

    def hop_controllers(self):
        """(name, HopRateController) pairs along the path."""
        yield f"{self.consumer.name}:cc", self.consumer.cc
        for mid in self.midnodes:
            for flow_id, state in mid._flows.items():
                yield f"{mid.name}:{flow_id}:cc", state.cc

    # -- delivery observation -------------------------------------------

    def _on_app_delivery(self, nbytes: int, origin_ts: float) -> None:
        if nbytes <= 0:
            self.app_nonpositive_deliveries += 1
        else:
            self.app_bytes_delivered += nbytes
        self.app_delivery_calls += 1
        self.last_app_delivery_at = self.sim.now
        if self._chained_deliver is not None:
            self._chained_deliver(nbytes, origin_ts)

    # -- checking -------------------------------------------------------

    def _record(self, name: str, detail: str) -> None:
        if TRACER.enabled:
            TRACER.emit(
                self.sim.now, "invariant_violation", name, detail=detail
            )
        details = self._violations.setdefault(name, [])
        if len(details) < self.MAX_DETAILS_PER_CHECK:
            details.append(f"t={self.sim.now:.3f}: {detail}")

    def _sample(self) -> None:
        for inv in self.invariants:
            detail = inv.sample(self)
            if detail:
                self._record(inv.name, detail)

    def finalise(self) -> list[InvariantReport]:
        """Run terminal checks and return one report per invariant."""
        for inv in self.invariants:
            detail = inv.finalise(self)
            if detail:
                self._record(inv.name, detail)
        reports = []
        for inv in self.invariants:
            details = self._violations.get(inv.name, [])
            reports.append(
                InvariantReport(inv.name, ok=not details, detail="; ".join(details))
            )
        return reports

    @property
    def ok(self) -> bool:
        """True while no violation has been recorded (sampled checks only
        until :meth:`finalise` has run)."""
        return not self._violations

    def assert_ok(self) -> None:
        """Finalise and raise :class:`InvariantViolation` on any failure."""
        failed = [r for r in self.finalise() if not r.ok]
        if failed:
            raise InvariantViolation(
                "; ".join(f"{r.name}: {r.detail}" for r in failed)
            )
