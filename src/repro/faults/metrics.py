"""Recovery metrics: how fast and how cleanly a flow survives a fault
(quantifying the link-switching resilience of Sec. V-C / Figs. 16-17).

Computed from a :class:`~repro.netsim.trace.FlowRecorder`'s delivery
records plus sender-side counters:

* **time-to-first-byte-after-fault** — gap between the end of the
  disturbance and the first goodput delivered after it (how long the
  protocol stays stunned once the network heals).
* **goodput ratio** — goodput in a window after the fault versus the same
  sized window before it (the acceptance bar: LEOTP recovers >= 80 %).
* **time-to-recovery** — how far past the fault the protocol needs before
  a sliding window first sustains the target fraction of pre-fault
  goodput.
* **retransmission amplification** — wire bytes the Producer emitted per
  goodput byte delivered (how expensive the recovery was).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional

from repro.netsim.trace import FlowRecorder


@dataclass
class RecoveryReport:
    """Structured recovery summary for one fault window."""

    fault_start_s: float
    fault_end_s: float
    pre_goodput_bps: float
    post_goodput_bps: float
    goodput_ratio: float
    ttfb_after_fault_s: Optional[float]
    time_to_recovery_s: Optional[float]
    retx_amplification: Optional[float]
    delivered_bytes: int

    @property
    def recovered(self) -> bool:
        return self.time_to_recovery_s is not None

    def to_dict(self) -> dict:
        return asdict(self)

    def __str__(self) -> str:  # pragma: no cover - debug aid
        ttfb = (
            f"{self.ttfb_after_fault_s * 1000:.1f} ms"
            if self.ttfb_after_fault_s is not None
            else "never"
        )
        rec = (
            f"{self.time_to_recovery_s:.2f} s"
            if self.time_to_recovery_s is not None
            else "never"
        )
        return (
            f"goodput {self.pre_goodput_bps / 1e6:.2f} -> "
            f"{self.post_goodput_bps / 1e6:.2f} Mbps "
            f"({self.goodput_ratio:.0%}), first byte after {ttfb}, "
            f"recovered in {rec}"
        )


def recovery_report(
    recorder: FlowRecorder,
    fault_start_s: float,
    fault_end_s: float,
    window_s: float = 5.0,
    recovery_fraction: float = 0.8,
    recovery_window_s: float = 1.0,
    wire_bytes_sent: Optional[int] = None,
    post_window_s: Optional[float] = None,
) -> RecoveryReport:
    """Summarise recovery around the fault window ``[start, end]``.

    ``window_s`` sizes both the pre-fault baseline window (ending at
    ``fault_start_s``) and the post-fault window (starting at
    ``fault_end_s``); ``post_window_s`` overrides the latter, e.g. to stop
    measuring when a finite flow completed and goodput legitimately went
    idle.  ``time_to_recovery_s`` is the first time after the fault at
    which goodput over a trailing ``recovery_window_s`` reaches
    ``recovery_fraction`` of the pre-fault baseline.
    """
    if fault_end_s < fault_start_s:
        raise ValueError("fault must end after it starts")
    if window_s <= 0 or recovery_window_s <= 0:
        raise ValueError("windows must be positive")
    if post_window_s is None:
        post_window_s = window_s
    pre_t0 = max(fault_start_s - window_s, 0.0)
    pre = recorder.throughput_bps(pre_t0, fault_start_s)
    post = recorder.throughput_bps(fault_end_s, fault_end_s + post_window_s)
    ratio = post / pre if pre > 0 else (1.0 if post > 0 else 0.0)

    after = [r for r in recorder.records if r.time > fault_end_s]
    ttfb = after[0].time - fault_end_s if after else None

    recovery_at: Optional[float] = None
    if pre > 0 and after:
        target_bytes = recovery_fraction * pre * recovery_window_s / 8.0
        # Slide a trailing window over the post-fault deliveries; recovery
        # is the first instant the window holds the target byte count.
        window: list = []
        acc = 0.0
        for rec in after:
            window.append(rec)
            acc += rec.nbytes
            while window and window[0].time < rec.time - recovery_window_s:
                acc -= window[0].nbytes
                window.pop(0)
            if acc >= target_bytes:
                recovery_at = rec.time - fault_end_s
                break
    elif pre == 0:
        recovery_at = 0.0

    delivered = recorder.total_bytes
    amplification = (
        wire_bytes_sent / delivered
        if wire_bytes_sent is not None and delivered > 0
        else None
    )
    return RecoveryReport(
        fault_start_s=fault_start_s,
        fault_end_s=fault_end_s,
        pre_goodput_bps=pre,
        post_goodput_bps=post,
        goodput_ratio=ratio,
        ttfb_after_fault_s=ttfb,
        time_to_recovery_s=recovery_at,
        retx_amplification=amplification,
        delivered_bytes=delivered,
    )
