"""Fault injection, recovery invariants, and chaos metrics.

This package turns "LEOTP tolerates LEO churn" from an anecdote into an
assertion: declarative :class:`FaultSchedule`\\ s drive scripted outages,
flaps, delay spikes, bandwidth collapse, correlated loss, and node
crashes against a running topology; an :class:`InvariantMonitor` checks
the protocol's correctness claims while the faults land; and
:func:`recovery_report` quantifies how quickly goodput comes back.
"""

from repro.faults.harness import ChaosResult, run_leotp_chaos, run_tcp_chaos
from repro.faults.invariants import (
    BoundedRequesterWindow,
    BoundedResponderBuffers,
    ByteExactDelivery,
    CwndSanity,
    Invariant,
    InvariantLimits,
    InvariantMonitor,
    InvariantReport,
    InvariantViolation,
    NoDuplicateDelivery,
    RtoSanity,
    default_invariants,
)
from repro.faults.loss import GilbertElliottLoss
from repro.faults.metrics import RecoveryReport, recovery_report
from repro.faults.schedule import (
    BandwidthCollapse,
    CorrelatedLoss,
    DelaySpike,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    LinkDown,
    LinkFlap,
    LossBurst,
    NodeCrash,
)

__all__ = [
    "BandwidthCollapse",
    "BoundedRequesterWindow",
    "BoundedResponderBuffers",
    "ByteExactDelivery",
    "ChaosResult",
    "CorrelatedLoss",
    "CwndSanity",
    "DelaySpike",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "GilbertElliottLoss",
    "Invariant",
    "InvariantLimits",
    "InvariantMonitor",
    "InvariantReport",
    "InvariantViolation",
    "LinkDown",
    "LinkFlap",
    "LossBurst",
    "NoDuplicateDelivery",
    "NodeCrash",
    "RecoveryReport",
    "RtoSanity",
    "default_invariants",
    "recovery_report",
    "run_leotp_chaos",
    "run_tcp_chaos",
]
