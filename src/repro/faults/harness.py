"""One-call chaos runs: topology + fault schedule + invariants + metrics.

This stresses the paper's LEO-churn claims (Sec. II-A's handover and
outage dynamics; recovery behaviour of Sec. V-C) well beyond the
figure-level experiments.  When :data:`repro.obs.TRACER` is enabled the
runs also carry packet-level traces, so a failed invariant can be read
back as a recovery timeline via :func:`repro.analysis.run_summary`.

These are the entry points the chaos regression suite, the experiment
matrix, and the examples share.  Each builds a fresh simulator, wires a
chain, arms the fault schedule, runs to ``duration_s`` (under a wall-clock
watchdog), and returns a :class:`ChaosResult` bundling the invariant
reports, the recovery metrics, and the injector's action log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.core import LeotpConfig, build_leotp_path
from repro.faults.invariants import (
    InvariantLimits,
    InvariantMonitor,
    InvariantReport,
    InvariantViolation,
)
from repro.faults.metrics import RecoveryReport, recovery_report
from repro.faults.schedule import FaultInjector, FaultSchedule
from repro.netsim.topology import HopSpec, uniform_chain_specs
from repro.obs import METRICS, TRACER
from repro.simcore import RngRegistry, Simulator
from repro.tcp import build_e2e_tcp_path


@dataclass
class ChaosResult:
    """Everything a chaos scenario produced."""

    protocol: str
    invariants: list[InvariantReport]
    recovery: RecoveryReport
    fault_log: list[tuple[float, str]] = field(default_factory=list)
    completed: Optional[bool] = None  # None for open-ended flows
    completed_at_s: Optional[float] = None
    # Snapshots of the obs streams for this run, when tracing/metrics
    # were enabled before the harness call; None otherwise.
    trace_records: Optional[list] = None
    metric_samples: Optional[list] = None
    # The built topology, for post-run inspection (e.g. a multicast
    # builder's extra consumers).  Not serialised by to_dict().
    path: Optional[Any] = field(default=None, repr=False)

    @property
    def invariants_ok(self) -> bool:
        return all(r.ok for r in self.invariants)

    def obs_summary(self, timeline_limit: int = 25) -> Optional[str]:
        """Human-readable recovery summary, if the run was traced.

        A failed invariant rarely explains itself; the summary shows the
        drop/VPH/retx/fault interleaving that led up to it.
        """
        if self.trace_records is None:
            return None
        from repro.analysis.report import run_summary

        return run_summary(
            self.trace_records, self.metric_samples or (),
            title=f"chaos:{self.protocol}", timeline_limit=timeline_limit,
        )

    def assert_ok(self) -> None:
        failed = [r for r in self.invariants if not r.ok]
        if failed:
            raise InvariantViolation(
                "; ".join(f"{r.name}: {r.detail}" for r in failed)
            )

    def to_dict(self) -> dict:
        return {
            "protocol": self.protocol,
            "invariants": [
                {"name": r.name, "ok": r.ok, "detail": r.detail}
                for r in self.invariants
            ],
            "recovery": self.recovery.to_dict(),
            "fault_log": [
                {"t": t, "action": action} for t, action in self.fault_log
            ],
            "completed": self.completed,
            "completed_at_s": self.completed_at_s,
        }


def _fault_window(schedule: FaultSchedule) -> tuple[float, float]:
    if len(schedule) == 0:
        return 0.0, 0.0
    start = min(event.at_s for event in schedule)
    return start, max(schedule.last_fault_end_s, start)


def run_leotp_chaos(
    schedule: FaultSchedule,
    hops: Optional[Sequence[HopSpec]] = None,
    n_hops: int = 6,
    rate_bps: float = 20e6,
    delay_s: float = 0.008,
    plr: float = 0.0,
    duration_s: float = 15.0,
    total_bytes: Optional[int] = None,
    seed: int = 0,
    config: Optional[LeotpConfig] = None,
    coverage: float = 1.0,
    recovery_window_s: float = 5.0,
    recovery_fraction: float = 0.8,
    limits: InvariantLimits = InvariantLimits(),
    wall_timeout_s: Optional[float] = 120.0,
    builder: Optional[Callable[[Simulator, RngRegistry], Any]] = None,
) -> ChaosResult:
    """Run one LEOTP flow over a faulted chain, with invariants armed.

    ``builder`` swaps the default linear chain for any LEOTP topology
    (gateway bridge, multicast tree, ...): called as ``builder(sim, rng)``
    it must return a path object exposing ``consumer``, ``producer``,
    ``recorder``, and (for link targeting) ``links``; the chain-shape
    arguments (``hops``/``n_hops``/``total_bytes``/``coverage``/...) are
    ignored when a builder is given.
    """
    sim = Simulator()
    rng = RngRegistry(seed)
    if builder is not None:
        path = builder(sim, rng)
        total_bytes = path.consumer.total_bytes
    else:
        if hops is None:
            hops = uniform_chain_specs(
                n_hops, rate_bps=rate_bps, delay_s=delay_s, plr=plr
            )
        path = build_leotp_path(
            sim, rng, list(hops),
            config=config or LeotpConfig(),
            total_bytes=total_bytes,
            coverage=coverage,
        )
    monitor = InvariantMonitor(sim, path, limits=limits)
    injector = FaultInjector(sim, rng)
    injector.register_path(path)
    injector.arm(schedule)
    # Snapshot (not drain) the obs streams around the run, so callers
    # batching several chaos runs under one tracer keep the full log.
    rec_mark, sample_mark = len(TRACER.records), len(METRICS.samples)
    sim.run(until=duration_s, wall_timeout_s=wall_timeout_s)

    fault_start, fault_end = _fault_window(schedule)
    completion = path.consumer.completed_at
    post_window = recovery_window_s
    if completion is not None and completion > fault_end:
        # The flow finished inside the measurement window: only count
        # time it was actually transferring.
        post_window = min(recovery_window_s, completion - fault_end)
    recovery = recovery_report(
        path.recorder, fault_start, fault_end,
        window_s=recovery_window_s,
        post_window_s=post_window,
        recovery_fraction=recovery_fraction,
        wire_bytes_sent=path.producer.wire_bytes_sent,
    )
    return ChaosResult(
        protocol="leotp",
        invariants=monitor.finalise(),
        recovery=recovery,
        fault_log=list(injector.log),
        completed=path.consumer.finished if total_bytes is not None else None,
        completed_at_s=completion,
        trace_records=TRACER.records[rec_mark:] if TRACER.enabled else None,
        metric_samples=METRICS.samples[sample_mark:] if METRICS.enabled else None,
        path=path,
    )


def run_tcp_chaos(
    schedule: FaultSchedule,
    cc_name: str = "bbr",
    hops: Optional[Sequence[HopSpec]] = None,
    n_hops: int = 6,
    rate_bps: float = 20e6,
    delay_s: float = 0.008,
    plr: float = 0.0,
    duration_s: float = 15.0,
    seed: int = 0,
    recovery_window_s: float = 5.0,
    recovery_fraction: float = 0.8,
    wall_timeout_s: Optional[float] = 120.0,
    builder: Optional[Callable[[Simulator, RngRegistry], Any]] = None,
) -> ChaosResult:
    """Run one end-to-end TCP flow over the same faulted chain.

    The LEOTP invariant set does not apply (TCP's in-order delivery is
    structural), so the result carries recovery metrics only — the
    baseline the chaos suite compares LEOTP against.

    ``builder`` mirrors :func:`run_leotp_chaos`'s hook: called as
    ``builder(sim, rng)`` it must return a path exposing ``sender``,
    ``recorder``, and ``links``; the chain-shape arguments are then
    ignored.  This is how the churn experiment runs its TCP baseline
    over the same geometry-driven chain as LEOTP.
    """
    sim = Simulator()
    rng = RngRegistry(seed)
    if builder is not None:
        path = builder(sim, rng)
    else:
        if hops is None:
            hops = uniform_chain_specs(
                n_hops, rate_bps=rate_bps, delay_s=delay_s, plr=plr
            )
        path = build_e2e_tcp_path(sim, rng, list(hops), cc_name)
    injector = FaultInjector(sim, rng)
    injector.register_path(path)
    injector.arm(schedule)
    rec_mark, sample_mark = len(TRACER.records), len(METRICS.samples)
    sim.run(until=duration_s, wall_timeout_s=wall_timeout_s)

    fault_start, fault_end = _fault_window(schedule)
    recovery = recovery_report(
        path.recorder, fault_start, fault_end,
        window_s=recovery_window_s,
        recovery_fraction=recovery_fraction,
        wire_bytes_sent=path.sender.wire_bytes_sent,
    )
    return ChaosResult(
        protocol=f"tcp-{cc_name}",
        invariants=[],
        recovery=recovery,
        fault_log=list(injector.log),
        trace_records=TRACER.records[rec_mark:] if TRACER.enabled else None,
        metric_samples=METRICS.samples[sample_mark:] if METRICS.enabled else None,
        path=path,
    )
