"""Unidirectional links with serialisation, propagation, loss, and queueing.

A :class:`Link` models what `tc netem`/Mininet emulate: a token-serialised
transmitter (``size*8/rate`` per packet), a fixed or mutable propagation
delay, Bernoulli packet loss, and a finite drop-tail byte queue.  Loss is
applied after serialisation (the bits were sent but corrupted en route),
which matches how loss interacts with queue occupancy on real links.

``delay_s`` is a plain attribute so constellation drivers can retune it as
satellites move; packets already in flight keep the delay they departed
with, so a shrinking delay can reorder packets — a real LEO phenomenon the
protocols must tolerate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.netsim.bandwidth import BandwidthProfile, ConstantBandwidth
from repro.netsim.packet import Packet
from repro.obs.tracer import TRACER
from repro.simcore.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.node import Node


@dataclass
class LinkStats:
    """Counters a link accumulates over its lifetime."""

    packets_offered: int = 0
    packets_delivered: int = 0
    packets_dropped_queue: int = 0
    packets_dropped_loss: int = 0
    packets_dropped_flush: int = 0
    bytes_offered: int = 0
    bytes_delivered: int = 0
    busy_time_s: float = 0.0
    queue_byte_seconds: float = 0.0  # integral of queue bytes over time
    max_queue_bytes: int = 0
    _last_queue_change: float = field(default=0.0, repr=False)

    def utilisation(self, elapsed_s: float) -> float:
        """Fraction of ``elapsed_s`` spent transmitting."""
        return self.busy_time_s / elapsed_s if elapsed_s > 0 else 0.0

    def mean_queue_bytes(self, elapsed_s: float) -> float:
        return self.queue_byte_seconds / elapsed_s if elapsed_s > 0 else 0.0


def _trace_drop(link: "Link", packet: Packet, reason: str) -> None:
    """Emit one ``link_drop`` trace record (callers guard on TRACER.enabled)."""
    fields: dict = {"reason": reason, "kind": type(packet).__name__}
    flow_id = getattr(packet, "flow_id", None)
    if flow_id is not None:
        fields["flow"] = flow_id
    rng = getattr(packet, "range", None)
    if rng is not None:
        fields["start"] = rng.start
        fields["end"] = rng.end
    TRACER.emit(link.sim.now, "link_drop", link.name, **fields)


class Link:
    """One-way link from an implicit upstream sender to ``dst``.

    Args:
        sim: the shared simulator.
        dst: receiving node; delivered packets invoke ``dst.receive(pkt, self)``.
        rate_bps: fixed rate, ignored if ``profile`` is given.
        delay_s: one-way propagation delay; mutable at runtime.
        plr: Bernoulli loss probability per packet (applied post-serialisation).
        queue_bytes: drop-tail queue capacity (excluding the packet in
            transmission).  ``None`` means unbounded.
        rng: generator for loss draws; required when ``plr > 0``.
        profile: optional time-varying bandwidth profile.
        name: diagnostic label.
    """

    def __init__(
        self,
        sim: Simulator,
        dst: "Node",
        rate_bps: float = 10e6,
        delay_s: float = 0.01,
        plr: float = 0.0,
        queue_bytes: Optional[int] = 256_000,
        rng: Optional[np.random.Generator] = None,
        profile: Optional[BandwidthProfile] = None,
        name: str = "",
    ) -> None:
        if not 0 <= plr < 1:
            raise ValueError(f"plr must be in [0, 1), got {plr}")
        if delay_s < 0:
            raise ValueError("delay must be non-negative")
        if plr > 0 and rng is None:
            raise ValueError("a loss rng is required when plr > 0")
        self.sim = sim
        self.dst = dst
        self.profile: BandwidthProfile = (
            profile if profile is not None else ConstantBandwidth(rate_bps)
        )
        self.delay_s = delay_s
        self.plr = plr
        self.queue_bytes = queue_bytes
        self.name = name or f"link->{dst.name}"
        self.reply_link: Optional["Link"] = None  # set by DuplexLink
        self.stats = LinkStats()
        self.up = True  # set False to blackhole new packets (path switching)
        # Optional correlated-loss hook layered on top of the Bernoulli
        # draw: called once per serialised packet, returns True to drop it
        # (see repro.faults.loss.GilbertElliottLoss).
        self.loss_model: Optional[Callable[[Packet], bool]] = None
        self._rng = rng
        self._queue: deque[Packet] = deque()
        self._queued_bytes = 0
        self._busy = False
        # In-flight deliveries are fire-and-forget (no Event objects): each
        # carries the flush generation it departed under, and bumping
        # ``_flush_gen`` invalidates the whole in-flight cohort at once —
        # batch cancellation without per-event handles or heap zombie scans.
        self._inflight_count = 0
        self._flush_gen = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def queued_bytes(self) -> int:
        """Bytes waiting in the queue (excluding the packet being serialised)."""
        return self._queued_bytes

    @property
    def queued_packets(self) -> int:
        return len(self._queue)

    def current_rate_bps(self) -> float:
        return self.profile.rate_at(self.sim.now)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def send(self, packet: Packet) -> bool:
        """Offer ``packet`` to the link.  Returns False if it was dropped
        immediately (queue overflow or link down)."""
        self.stats.packets_offered += 1
        self.stats.bytes_offered += packet.size_bytes
        if not self.up:
            self.stats.packets_dropped_flush += 1
            if TRACER.enabled:
                _trace_drop(self, packet, "down")
            return False
        if self._busy:
            if (
                self.queue_bytes is not None
                and self._queued_bytes + packet.size_bytes > self.queue_bytes
            ):
                self.stats.packets_dropped_queue += 1
                if TRACER.enabled:
                    _trace_drop(self, packet, "queue")
                return False
            self._account_queue_change()
            self._queue.append(packet)
            self._queued_bytes += packet.size_bytes
            if self._queued_bytes > self.stats.max_queue_bytes:
                self.stats.max_queue_bytes = self._queued_bytes
            return True
        self._start_transmission(packet)
        return True

    def flush(self, drop_inflight: bool = False) -> int:
        """Drop all queued packets (and optionally in-flight ones).

        Models path switching: packets buffered on a departing satellite are
        lost.  Returns the number of packets dropped.
        """
        self._account_queue_change()
        dropped = len(self._queue)
        self.stats.packets_dropped_flush += dropped
        for pkt in self._queue:
            if TRACER.enabled:
                _trace_drop(self, pkt, "flush")
            pkt.release()  # the queue held the last reference
        self._queue.clear()
        self._queued_bytes = 0
        if drop_inflight:
            # Batch invalidation: every delivery scheduled under the old
            # generation becomes a no-op when it fires (see _deliver).
            dropped += self._inflight_count
            self.stats.packets_dropped_flush += self._inflight_count
            self._inflight_count = 0
            self._flush_gen += 1
        return dropped

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _account_queue_change(self) -> None:
        now = self.sim.now
        self.stats.queue_byte_seconds += self._queued_bytes * (
            now - self.stats._last_queue_change
        )
        self.stats._last_queue_change = now

    def _start_transmission(self, packet: Packet) -> None:
        self._busy = True
        rate = self.profile.rate_at(self.sim.now)
        tx_time = packet.size_bytes * 8.0 / rate
        self.stats.busy_time_s += tx_time
        # Fire-and-forget: serialisation completions are never cancelled
        # (flush() only touches queued and in-flight packets).
        self.sim.schedule_call(tx_time, self._finish_transmission, packet)

    def set_loss(self, plr: float, rng: Optional[np.random.Generator] = None) -> None:
        """Retune the Bernoulli loss rate at runtime (fault injection).

        An rng is attached on demand so links built lossless (and therefore
        without a loss stream) can still have loss injected later.
        """
        if not 0 <= plr < 1:
            raise ValueError(f"plr must be in [0, 1), got {plr}")
        if rng is not None:
            self._rng = rng
        if plr > 0 and self._rng is None:
            raise ValueError("a loss rng is required when plr > 0")
        self.plr = plr

    def _finish_transmission(self, packet: Packet) -> None:
        # The loss model is consulted for every packet (not only Bernoulli
        # survivors) so correlated processes observe every transmission.
        model_lost = self.loss_model is not None and self.loss_model(packet)
        lost = model_lost or (
            self.plr > 0 and self._rng is not None and self._rng.random() < self.plr
        )
        if lost:
            self.stats.packets_dropped_loss += 1
            if TRACER.enabled:
                _trace_drop(self, packet, "loss")
            packet.release()  # corrupted en route: nobody downstream sees it
        else:
            self._inflight_count += 1
            self.sim.schedule_call(
                self.delay_s, self._deliver, packet, self._flush_gen
            )
        # Pull the next packet from the queue, if any.
        if self._queue:
            self._account_queue_change()
            nxt = self._queue.popleft()
            self._queued_bytes -= nxt.size_bytes
            self._start_transmission(nxt)
        else:
            self._busy = False

    def _deliver(self, packet: Packet, gen: int) -> None:
        if gen != self._flush_gen:
            # Departed before a drop_inflight flush: already accounted as
            # dropped there; the stale callback just reclaims the packet.
            packet.release()
            return
        self._inflight_count -= 1
        self.stats.packets_delivered += 1
        self.stats.bytes_delivered += packet.size_bytes
        packet.hops += 1
        self.dst.receive(packet, self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Link {self.name} q={self._queued_bytes}B busy={self._busy}>"


class DuplexLink:
    """A pair of independent unidirectional links between two nodes."""

    def __init__(
        self,
        sim: Simulator,
        node_a: "Node",
        node_b: "Node",
        rate_bps: float = 10e6,
        delay_s: float = 0.01,
        plr: float = 0.0,
        queue_bytes: Optional[int] = 256_000,
        rng_ab: Optional[np.random.Generator] = None,
        rng_ba: Optional[np.random.Generator] = None,
        profile_ab: Optional[BandwidthProfile] = None,
        profile_ba: Optional[BandwidthProfile] = None,
        name: str = "",
    ) -> None:
        label = name or f"{node_a.name}<->{node_b.name}"
        self.ab = Link(
            sim, node_b, rate_bps, delay_s, plr, queue_bytes,
            rng=rng_ab, profile=profile_ab, name=f"{label}:ab",
        )
        self.ba = Link(
            sim, node_a, rate_bps, delay_s, plr, queue_bytes,
            rng=rng_ba, profile=profile_ba, name=f"{label}:ba",
        )
        self.node_a = node_a
        self.node_b = node_b
        self.name = label
        # Receivers answer on the reverse direction of the same duplex;
        # protocols look this up instead of keeping routing tables.
        self.ab.reply_link = self.ba
        self.ba.reply_link = self.ab

    def set_delay(self, delay_s: float) -> None:
        """Update propagation delay in both directions."""
        self.ab.delay_s = delay_s
        self.ba.delay_s = delay_s

    def link_towards(self, node: "Node") -> Link:
        """The unidirectional link whose destination is ``node``."""
        if node is self.node_b:
            return self.ab
        if node is self.node_a:
            return self.ba
        raise ValueError(f"{node.name} is not an endpoint of {self.name}")
