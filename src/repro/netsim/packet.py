"""Base packet type carried by the network substrate.

Protocol layers (:mod:`repro.tcp`, :mod:`repro.core`) subclass
:class:`Packet` and add their own header fields.  The substrate only cares
about ``size_bytes`` (for serialisation delay and queue occupancy) and the
addressing fields used by routers.
"""

from __future__ import annotations

import itertools
from typing import Optional

_packet_ids = itertools.count()

#: Allocate the next packet uid.  Exposed for subclasses that flatten the
#: constructor chain on per-packet hot paths (see repro.core.wire).
next_packet_uid = _packet_ids.__next__


class Packet:
    """A unit of transmission.

    Attributes:
        size_bytes: on-the-wire size, including protocol headers.
        src: name of the originating node (used by routers; optional).
        dst: name of the destination node (used by routers; optional).
        created_at: simulated time the packet object was created, stamped by
            the sender.  Used by trace collection for one-way-delay metrics.
        uid: globally unique packet id (diagnostics only).
    """

    __slots__ = ("size_bytes", "src", "dst", "created_at", "uid", "hops")

    def __init__(
        self,
        size_bytes: int,
        src: Optional[str] = None,
        dst: Optional[str] = None,
        created_at: float = 0.0,
    ) -> None:
        if size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {size_bytes}")
        self.size_bytes = size_bytes
        self.src = src
        self.dst = dst
        self.created_at = created_at
        self.uid = next(_packet_ids)
        self.hops = 0

    def release(self) -> None:
        """Return the packet to a freelist, if its class pools instances.

        Base packets are not pooled — this is a no-op hook so generic
        substrate code (link drop paths) can release unconditionally.
        Pooled subclasses (``repro.core.wire``) override it.
        """

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<{type(self).__name__} uid={self.uid} {self.src}->{self.dst} "
            f"{self.size_bytes}B>"
        )
