"""Nodes: protocol attachment points and simple static routers."""

from __future__ import annotations

from typing import Callable, Optional

from repro.netsim.link import Link
from repro.netsim.packet import Packet
from repro.simcore.simulator import Simulator


class Node:
    """A network node.

    Protocol endpoints either subclass :class:`Node` and override
    :meth:`on_receive`, or install a handler with :meth:`set_handler`.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self._handler: Optional[Callable[[Packet, Link], None]] = None
        self.packets_received = 0
        # Crash emulation (fault injection): a crashed node drops every
        # arriving packet, as a powered-off satellite would.
        self.crashed = False
        self.packets_dropped_crashed = 0

    def set_handler(self, handler: Callable[[Packet, Link], None]) -> None:
        self._handler = handler

    def receive(self, packet: Packet, link: Link) -> None:
        """Entry point invoked by links on delivery."""
        if self.crashed:
            self.packets_dropped_crashed += 1
            return
        self.packets_received += 1
        if self._handler is not None:
            self._handler(packet, link)
        else:
            self.on_receive(packet, link)

    def crash(self) -> None:
        """Take the node down: every packet is dropped until :meth:`restart`.

        Subclasses holding volatile state (caches, flow tables, send
        buffers) override this to wipe it, modelling a real power-cycle.
        """
        self.crashed = True

    def restart(self) -> None:
        """Bring a crashed node back up (with whatever state survives)."""
        self.crashed = False

    def on_receive(self, packet: Packet, link: Link) -> None:
        """Default packet handler; override in subclasses."""
        raise NotImplementedError(
            f"node {self.name} received a packet but has no handler"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"


class Router(Node):
    """Static-table IP-style router: forwards by packet ``dst``.

    Used for dumbbell topologies where multiple flows share a bottleneck.
    Packets whose destination has no route are counted and dropped.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        super().__init__(sim, name)
        self._routes: dict[str, Link] = {}
        self.packets_unrouted = 0

    def add_route(self, dst_name: str, out_link: Link) -> None:
        self._routes[dst_name] = out_link

    def route_for(self, dst_name: str) -> Optional[Link]:
        return self._routes.get(dst_name)

    def remove_route(self, dst_name: str) -> None:
        """Withdraw a route (flow retirement in many-flow workloads)."""
        self._routes.pop(dst_name, None)

    def on_receive(self, packet: Packet, link: Link) -> None:
        out = self._routes.get(packet.dst or "")
        if out is None:
            self.packets_unrouted += 1
            return
        out.send(packet)


class ChainForwarder(Node):
    """A transparent store-and-forward relay for chain topologies.

    Forwards each packet onto the outgoing link associated with the link
    it arrived on — i.e. packets keep travelling in the same direction.
    Used for end-to-end TCP over multi-hop chains and for the non-Midnode
    satellites in LEOTP partial-deployment experiments.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        super().__init__(sim, name)
        self._forwarding: dict[int, Link] = {}
        self.packets_forwarded = 0

    def add_forwarding(self, in_link: Link, out_link: Link) -> None:
        """Packets arriving on ``in_link`` leave on ``out_link``."""
        self._forwarding[id(in_link)] = out_link

    def on_receive(self, packet: Packet, link: Link) -> None:
        out = self._forwarding.get(id(link))
        if out is not None:
            self.packets_forwarded += 1
            out.send(packet)


def wire_chain_forwarders(nodes, links) -> None:
    """Install straight-through forwarding on every ChainForwarder in a chain.

    ``nodes[i]`` sits between ``links[i-1]`` and ``links[i]``; packets
    flowing right continue right, packets flowing left continue left.
    """
    for i, node in enumerate(nodes):
        if not isinstance(node, ChainForwarder):
            continue
        if i == 0 or i == len(nodes) - 1:
            raise ValueError("chain endpoints cannot be forwarders")
        node.add_forwarding(links[i - 1].ab, links[i].ab)
        node.add_forwarding(links[i].ba, links[i - 1].ba)


class SinkNode(Node):
    """Counts and discards everything it receives (for substrate tests)."""

    def __init__(self, sim: Simulator, name: str = "sink") -> None:
        super().__init__(sim, name)
        self.received: list[Packet] = []
        self.receive_times: list[float] = []

    def on_receive(self, packet: Packet, link: Link) -> None:
        self.received.append(packet)
        self.receive_times.append(self.sim.now)
