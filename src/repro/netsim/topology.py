"""Topology builders: chains, dumbbells, and switchable parallel paths.

These wire protocol-agnostic :class:`~repro.netsim.link.DuplexLink` fabric
between caller-supplied nodes.  Protocol packages provide the node objects
(TCP endpoints, LEOTP agents, routers); the builders only create links.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.netsim.bandwidth import BandwidthProfile
from repro.netsim.link import DuplexLink, Link
from repro.netsim.node import Node, Router
from repro.simcore.random import RngRegistry
from repro.simcore.simulator import Simulator


@dataclass(frozen=True)
class HopSpec:
    """Per-hop link parameters.

    ``delay_s`` is the one-way propagation delay of the hop (so the hop RTT
    is ``2*delay_s`` plus serialisation).  ``profile`` overrides
    ``rate_bps`` when provided and applies to both directions unless
    ``profile_reverse`` is also given.
    """

    rate_bps: float = 20e6
    delay_s: float = 0.005
    plr: float = 0.0
    queue_bytes: Optional[int] = 256_000
    profile: Optional[BandwidthProfile] = None
    profile_reverse: Optional[BandwidthProfile] = None

    def scaled(self, **overrides) -> "HopSpec":
        """A copy with some fields replaced (convenience for sweeps)."""
        return replace(self, **overrides)


def build_chain(
    sim: Simulator,
    nodes: Sequence[Node],
    hops: Sequence[HopSpec],
    rng: RngRegistry,
) -> list[DuplexLink]:
    """Connect ``nodes[i]`` to ``nodes[i+1]`` with ``hops[i]``.

    Loss RNG streams are named per hop and direction, so runs are
    reproducible and independent of unrelated randomness.
    """
    if len(nodes) != len(hops) + 1:
        raise ValueError(
            f"need len(nodes) == len(hops)+1, got {len(nodes)} nodes, {len(hops)} hops"
        )
    links = []
    for i, spec in enumerate(hops):
        duplex = DuplexLink(
            sim,
            nodes[i],
            nodes[i + 1],
            rate_bps=spec.rate_bps,
            delay_s=spec.delay_s,
            plr=spec.plr,
            queue_bytes=spec.queue_bytes,
            rng_ab=rng.stream(f"loss:hop{i}:fwd"),
            rng_ba=rng.stream(f"loss:hop{i}:rev"),
            profile_ab=spec.profile,
            profile_ba=(
                spec.profile_reverse
                if spec.profile_reverse is not None
                else spec.profile
            ),
            name=f"hop{i}",
        )
        links.append(duplex)
    return links


def uniform_chain_specs(
    n_hops: int,
    rate_bps: float = 20e6,
    delay_s: float = 0.005,
    plr: float = 0.0,
    queue_bytes: Optional[int] = 256_000,
) -> list[HopSpec]:
    """N identical hops — the paper's controlled-environment topology."""
    if n_hops <= 0:
        raise ValueError("need at least one hop")
    return [
        HopSpec(rate_bps=rate_bps, delay_s=delay_s, plr=plr, queue_bytes=queue_bytes)
        for _ in range(n_hops)
    ]


@dataclass
class Dumbbell:
    """A built dumbbell topology (see :func:`build_dumbbell`)."""

    left_router: Router
    right_router: Router
    bottleneck: DuplexLink
    access_left: list[DuplexLink]
    access_right: list[DuplexLink]


def build_dumbbell(
    sim: Simulator,
    senders: Sequence[Node],
    receivers: Sequence[Node],
    rng: RngRegistry,
    bottleneck: HopSpec,
    access_specs: Optional[Sequence[HopSpec]] = None,
) -> Dumbbell:
    """Classic dumbbell: senders -- L ==bottleneck== R -- receivers.

    ``access_specs[i]`` configures *both* the sender-side and receiver-side
    access link of flow ``i`` (so a flow's extra RTT is split evenly across
    the two access links).  Routes are installed for sender->receiver and
    receiver->sender traffic keyed on node names.
    """
    if len(senders) != len(receivers):
        raise ValueError("need one receiver per sender")
    if access_specs is None:
        access_specs = [HopSpec(rate_bps=100e6, delay_s=0.001)] * len(senders)
    if len(access_specs) != len(senders):
        raise ValueError("need one access spec per flow")

    left = Router(sim, "router-L")
    right = Router(sim, "router-R")
    mid = DuplexLink(
        sim, left, right,
        rate_bps=bottleneck.rate_bps,
        delay_s=bottleneck.delay_s,
        plr=bottleneck.plr,
        queue_bytes=bottleneck.queue_bytes,
        rng_ab=rng.stream("loss:bottleneck:fwd"),
        rng_ba=rng.stream("loss:bottleneck:rev"),
        profile_ab=bottleneck.profile,
        profile_ba=bottleneck.profile_reverse or bottleneck.profile,
        name="bottleneck",
    )
    access_left: list[DuplexLink] = []
    access_right: list[DuplexLink] = []
    for i, (snd, rcv, spec) in enumerate(zip(senders, receivers, access_specs)):
        al = DuplexLink(
            sim, snd, left,
            rate_bps=spec.rate_bps, delay_s=spec.delay_s, plr=spec.plr,
            queue_bytes=spec.queue_bytes,
            rng_ab=rng.stream(f"loss:accessL{i}:fwd"),
            rng_ba=rng.stream(f"loss:accessL{i}:rev"),
            name=f"accessL{i}",
        )
        ar = DuplexLink(
            sim, right, rcv,
            rate_bps=spec.rate_bps, delay_s=spec.delay_s, plr=spec.plr,
            queue_bytes=spec.queue_bytes,
            rng_ab=rng.stream(f"loss:accessR{i}:fwd"),
            rng_ba=rng.stream(f"loss:accessR{i}:rev"),
            name=f"accessR{i}",
        )
        access_left.append(al)
        access_right.append(ar)
        # Forward direction: sender -> left -> right -> receiver.
        left.add_route(rcv.name, mid.ab)
        right.add_route(rcv.name, ar.ab)
        # Reverse direction (ACKs): receiver -> right -> left -> sender.
        right.add_route(snd.name, mid.ba)
        left.add_route(snd.name, al.ba)
    return Dumbbell(left, right, mid, access_left, access_right)


class SwitchedLink:
    """Link facade that forwards sends to the currently active member.

    Presents the small part of the :class:`Link` interface protocol agents
    use (``send``, ``delay_s``, ``stats``-ish counters are reached through
    the underlying members via :attr:`active`).
    """

    def __init__(self, path: "SwitchablePath", towards_b: bool) -> None:
        self._path = path
        self._towards_b = towards_b
        self.name = f"{path.name}:{'ab' if towards_b else 'ba'}"

    @property
    def reply_link(self) -> "SwitchedLink":
        return self._path.ba if self._towards_b else self._path.ab

    @property
    def active(self) -> Link:
        duplex = self._path.active_duplex
        return duplex.ab if self._towards_b else duplex.ba

    @property
    def delay_s(self) -> float:
        return self.active.delay_s

    def send(self, packet) -> bool:
        return self.active.send(packet)


class SwitchablePath:
    """K parallel duplex links between two nodes; one active at a time.

    Models LEO path switching (Fig. 13): when the active path changes,
    packets queued (and optionally in flight) on the old path are lost,
    and the new path typically has a different propagation delay.
    """

    def __init__(
        self,
        sim: Simulator,
        node_a: Node,
        node_b: Node,
        rng: RngRegistry,
        delays_s: Sequence[float],
        rate_bps: float = 20e6,
        plr: float = 0.0,
        queue_bytes: Optional[int] = 256_000,
        flush_on_switch: bool = True,
        drop_inflight_on_switch: bool = True,
        blackout_s: float = 0.0,
        name: str = "switchable",
    ) -> None:
        if len(delays_s) < 2:
            raise ValueError("need at least two parallel paths")
        self.sim = sim
        self.name = name
        self.flush_on_switch = flush_on_switch
        self.drop_inflight_on_switch = drop_inflight_on_switch
        # Real handovers have a connectivity gap: the new path only comes
        # up ``blackout_s`` after the old one disappears.
        self.blackout_s = blackout_s
        self.duplexes = [
            DuplexLink(
                sim, node_a, node_b,
                rate_bps=rate_bps, delay_s=d, plr=plr, queue_bytes=queue_bytes,
                rng_ab=rng.stream(f"loss:{name}:p{i}:fwd"),
                rng_ba=rng.stream(f"loss:{name}:p{i}:rev"),
                name=f"{name}:path{i}",
            )
            for i, d in enumerate(delays_s)
        ]
        self.active_index = 0
        self.switch_count = 0
        self.ab = SwitchedLink(self, towards_b=True)
        self.ba = SwitchedLink(self, towards_b=False)
        self.node_a = node_a
        self.node_b = node_b

    @property
    def active_duplex(self) -> DuplexLink:
        return self.duplexes[self.active_index]

    def switch(self) -> None:
        """Activate the next path, dropping traffic stranded on the old one."""
        old = self.active_duplex
        self.active_index = (self.active_index + 1) % len(self.duplexes)
        self.switch_count += 1
        if self.flush_on_switch:
            old.ab.flush(drop_inflight=self.drop_inflight_on_switch)
            old.ba.flush(drop_inflight=self.drop_inflight_on_switch)
        # The departed path is gone: anything later sent into it (e.g. via a
        # stale learned route) is lost, as on a real link switch.
        old.ab.up = False
        old.ba.up = False
        new = self.active_duplex
        if self.blackout_s > 0:
            # Connectivity gap: the incoming path is not usable yet.
            new.ab.up = False
            new.ba.up = False
            self.sim.schedule_call(self.blackout_s, self._bring_up, new)
        else:
            self._bring_up(new)

    @staticmethod
    def _bring_up(duplex: DuplexLink) -> None:
        duplex.ab.up = True
        duplex.ba.up = True

    def link_towards(self, node: Node) -> SwitchedLink:
        if node is self.node_b:
            return self.ab
        if node is self.node_a:
            return self.ba
        raise ValueError(f"{node.name} is not an endpoint of {self.name}")
