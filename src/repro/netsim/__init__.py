"""Packet-level network substrate: links, nodes, topologies, bandwidth models."""

from repro.netsim.bandwidth import (
    BandwidthProfile,
    ConstantBandwidth,
    HandoverVCurveBandwidth,
    SquareWaveBandwidth,
    TraceBandwidth,
    starlink_download_bandwidth_samples,
    starlink_gsl_trace,
)
from repro.netsim.link import DuplexLink, Link, LinkStats
from repro.netsim.node import Node, Router, SinkNode
from repro.netsim.packet import Packet
from repro.netsim.topology import (
    Dumbbell,
    HopSpec,
    SwitchablePath,
    SwitchedLink,
    build_chain,
    build_dumbbell,
    uniform_chain_specs,
)
from repro.netsim.trace import DeliveryRecord, FlowRecorder, TimeSeriesProbe, cdf

__all__ = [
    "BandwidthProfile",
    "ConstantBandwidth",
    "DeliveryRecord",
    "Dumbbell",
    "DuplexLink",
    "FlowRecorder",
    "HandoverVCurveBandwidth",
    "HopSpec",
    "Link",
    "LinkStats",
    "Node",
    "Packet",
    "Router",
    "SinkNode",
    "SquareWaveBandwidth",
    "SwitchablePath",
    "SwitchedLink",
    "TimeSeriesProbe",
    "TraceBandwidth",
    "build_chain",
    "build_dumbbell",
    "cdf",
    "starlink_download_bandwidth_samples",
    "starlink_gsl_trace",
    "uniform_chain_specs",
]
