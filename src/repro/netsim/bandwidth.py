"""Time-varying bandwidth profiles.

A profile maps simulated time to an instantaneous link rate in bits/s.
Links query their profile at the start of each packet serialisation, which
is the same granularity `tc`-based emulation achieves.

The generators here model the bandwidth phenomena the paper relies on:

* square-wave fluctuation at the bottleneck (Figs. 5 and 14);
* the "V"-curve bandwidth dip around a GSL handover, from the Planet
  high-speed-radio trace the paper cites [30] (Starlink emulation, Sec. V-C);
* small random bias (±0.5 Mbps) on top of the handover curve;
* the long-tailed Starlink download-bandwidth distribution of Fig. 1a,
  matched to the IMC'22 measurement study's published range (2–386 Mbps).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np


class BandwidthProfile:
    """Base class: a constant rate."""

    def __init__(self, rate_bps: float) -> None:
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        self.base_rate_bps = rate_bps

    def rate_at(self, t: float) -> float:
        """Instantaneous rate in bits/s at simulated time ``t``."""
        return self.base_rate_bps

    def mean_rate(self) -> float:
        """Long-run average rate, used by experiments to compute utilisation."""
        return self.base_rate_bps


class ConstantBandwidth(BandwidthProfile):
    """Alias of the base class, for explicitness at call sites."""


class SquareWaveBandwidth(BandwidthProfile):
    """Rate alternating between ``base + amplitude`` and ``base - amplitude``.

    Matches the paper's fluctuation model: "fluctuates as a square wave with
    a fixed period (2s) and amplitude (1Mbps)" around a mean bandwidth.
    The first half-period is the high phase.
    """

    def __init__(
        self,
        rate_bps: float,
        amplitude_bps: float,
        period_s: float = 2.0,
        phase_s: float = 0.0,
    ) -> None:
        super().__init__(rate_bps)
        if amplitude_bps < 0 or amplitude_bps >= rate_bps:
            raise ValueError("amplitude must be in [0, rate)")
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.amplitude_bps = amplitude_bps
        self.period_s = period_s
        self.phase_s = phase_s

    def rate_at(self, t: float) -> float:
        pos = math.fmod(t + self.phase_s, self.period_s)
        if pos < 0:
            pos += self.period_s
        high = pos < self.period_s / 2
        return self.base_rate_bps + (self.amplitude_bps if high else -self.amplitude_bps)


class HandoverVCurveBandwidth(BandwidthProfile):
    """GSL bandwidth around handovers: a periodic "V" dip plus random bias.

    Between handovers the rate ramps linearly down to ``floor_fraction`` of
    the peak at the handover instant and back up afterwards — the "V" shape
    of the paper's cited radio trace.  A per-interval uniform bias in
    ``±bias_bps`` models short-term fluctuation; the bias is drawn
    deterministically from the interval index so the profile is a pure
    function of time (reproducible and cheap).
    """

    def __init__(
        self,
        rate_bps: float,
        handover_interval_s: float = 15.0,
        floor_fraction: float = 0.5,
        bias_bps: float = 0.5e6,
        seed: int = 0,
    ) -> None:
        super().__init__(rate_bps)
        if not 0 < floor_fraction <= 1:
            raise ValueError("floor_fraction must be in (0, 1]")
        if handover_interval_s <= 0:
            raise ValueError("handover interval must be positive")
        self.handover_interval_s = handover_interval_s
        self.floor_fraction = floor_fraction
        self.bias_bps = bias_bps
        self._seed = seed

    def _bias_for_interval(self, idx: int) -> float:
        if self.bias_bps == 0:
            return 0.0
        rng = np.random.default_rng(np.random.SeedSequence([self._seed, idx]))
        return float(rng.uniform(-self.bias_bps, self.bias_bps))

    def rate_at(self, t: float) -> float:
        interval = self.handover_interval_s
        idx = int(t // interval)
        # Distance from the nearest handover instant, normalised to [0, 1]
        # where 0 is mid-interval (peak) and 1 is the handover instant (floor).
        pos = (t - idx * interval) / interval  # in [0, 1)
        closeness = abs(pos - 0.5) * 2.0  # 0 at middle, 1 at the edges
        peak = self.base_rate_bps
        floor = self.base_rate_bps * self.floor_fraction
        rate = peak - (peak - floor) * closeness + self._bias_for_interval(idx)
        return max(rate, 0.05 * self.base_rate_bps)

    def mean_rate(self) -> float:
        # Linear V between peak and floor averages to their midpoint.
        return self.base_rate_bps * (1 + self.floor_fraction) / 2


class TraceBandwidth(BandwidthProfile):
    """Piecewise-constant rate driven by an explicit (time, rate) trace.

    The trace repeats cyclically after its last sample.
    """

    def __init__(self, times_s: Sequence[float], rates_bps: Sequence[float]) -> None:
        if len(times_s) != len(rates_bps) or not times_s:
            raise ValueError("times and rates must be equal-length, non-empty")
        if list(times_s) != sorted(times_s):
            raise ValueError("times must be sorted ascending")
        if times_s[0] != 0:
            raise ValueError("trace must start at t=0")
        if any(r <= 0 for r in rates_bps):
            raise ValueError("all rates must be positive")
        super().__init__(float(rates_bps[0]))
        self._times = np.asarray(times_s, dtype=float)
        self._rates = np.asarray(rates_bps, dtype=float)
        # Cycle length: last sample persists for the mean inter-sample gap.
        if len(times_s) > 1:
            tail = float(np.mean(np.diff(self._times)))
        else:
            tail = 1.0
        self._cycle = float(self._times[-1]) + tail

    def rate_at(self, t: float) -> float:
        pos = math.fmod(t, self._cycle)
        idx = int(np.searchsorted(self._times, pos, side="right")) - 1
        return float(self._rates[max(idx, 0)])

    def mean_rate(self) -> float:
        return float(np.mean(self._rates))


def starlink_download_bandwidth_samples(
    n: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Sample download bandwidths (bits/s) matching Fig. 1a's distribution.

    The IMC'22 Starlink study reports download throughput ranging 2–386 Mbps
    with a right-skewed body centred around ~100 Mbps.  We model this as a
    lognormal clipped to the published range; the exact parametric family is
    immaterial — Fig. 1a is used by the paper only to motivate "bottleneck
    bandwidth is time-varying over two orders of magnitude".
    """
    if n <= 0:
        raise ValueError("n must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    # median ~100 Mbps, sigma chosen so the 2-386 Mbps range covers ~99%.
    samples = rng.lognormal(mean=math.log(100e6), sigma=0.85, size=n)
    return np.clip(samples, 2e6, 386e6)


def starlink_gsl_trace(
    duration_s: float,
    mean_rate_bps: float = 10e6,
    handover_interval_s: float = 15.0,
    step_s: float = 0.25,
    seed: int = 0,
) -> TraceBandwidth:
    """Build a piecewise trace of GSL bandwidth with V-curve handovers.

    Convenience wrapper that samples :class:`HandoverVCurveBandwidth` onto a
    grid, for experiments that want an explicit, inspectable trace.
    """
    if duration_s <= 0 or step_s <= 0:
        raise ValueError("duration and step must be positive")
    profile = HandoverVCurveBandwidth(
        # Peak chosen so the long-run mean equals mean_rate_bps.
        rate_bps=mean_rate_bps / ((1 + 0.5) / 2),
        handover_interval_s=handover_interval_s,
        seed=seed,
    )
    times = np.arange(0.0, duration_s, step_s)
    rates = [profile.rate_at(float(t)) for t in times]
    return TraceBandwidth(times.tolist(), rates)
