"""Measurement collection: per-flow delivery records and time series.

Experiments attach a :class:`FlowRecorder` at the receiving endpoint to
record when each byte range is first delivered and how long it spent in the
network; the recorder then answers the questions the paper's figures ask
(mean/percentile OWD, OWD CDFs, throughput over time, retransmitted-packet
OWD distributions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.simcore.simulator import Simulator


@dataclass
class DeliveryRecord:
    """One delivered data packet at the receiving endpoint."""

    time: float
    nbytes: int
    owd_s: float
    retransmitted: bool = False


class FlowRecorder:
    """Accumulates per-packet delivery records for one flow."""

    def __init__(self, sim: Simulator, name: str = "flow") -> None:
        self.sim = sim
        self.name = name
        self.records: list[DeliveryRecord] = []
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None

    def on_delivery(
        self, nbytes: int, owd_s: float, retransmitted: bool = False
    ) -> None:
        now = self.sim.now
        if self.start_time is None:
            self.start_time = now
        self.end_time = now
        self.records.append(DeliveryRecord(now, nbytes, owd_s, retransmitted))

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        return sum(r.nbytes for r in self.records)

    def throughput_bps(
        self, t_start: Optional[float] = None, t_end: Optional[float] = None
    ) -> float:
        """Goodput over [t_start, t_end] (defaults to first/last delivery)."""
        if not self.records:
            return 0.0
        t0 = self.start_time if t_start is None else t_start
        t1 = self.end_time if t_end is None else t_end
        assert t0 is not None and t1 is not None
        if t1 <= t0:
            return 0.0
        nbytes = sum(r.nbytes for r in self.records if t0 <= r.time <= t1)
        return nbytes * 8.0 / (t1 - t0)

    def owds(self, retransmitted_only: bool = False) -> np.ndarray:
        vals = [
            r.owd_s
            for r in self.records
            if not retransmitted_only or r.retransmitted
        ]
        return np.asarray(vals, dtype=float)

    def owd_mean(self) -> float:
        owds = self.owds()
        return float(owds.mean()) if owds.size else float("nan")

    def owd_percentile(self, q: float) -> float:
        owds = self.owds()
        return float(np.percentile(owds, q)) if owds.size else float("nan")

    def throughput_timeseries(self, bin_s: float = 1.0) -> tuple[np.ndarray, np.ndarray]:
        """(bin_centers, throughput_bps) histogram of goodput over time."""
        if not self.records:
            return np.array([]), np.array([])
        times = np.array([r.time for r in self.records])
        sizes = np.array([r.nbytes for r in self.records], dtype=float)
        t0, t1 = times.min(), times.max()
        nbins = max(int(np.ceil((t1 - t0) / bin_s)), 1)
        edges = t0 + np.arange(nbins + 1) * bin_s
        idx = np.clip(((times - t0) / bin_s).astype(int), 0, nbins - 1)
        per_bin = np.bincount(idx, weights=sizes, minlength=nbins)
        centers = edges[:-1] + bin_s / 2
        return centers, per_bin * 8.0 / bin_s


def cdf(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted values, cumulative probabilities)."""
    vals = np.sort(np.asarray(values, dtype=float))
    if vals.size == 0:
        return vals, vals
    probs = np.arange(1, vals.size + 1) / vals.size
    return vals, probs


class TimeSeriesProbe:
    """Periodically samples a callable into (t, value) arrays.

    Used for queue-length and rate traces (Figs. 5, 14, 15).
    """

    def __init__(self, sim: Simulator, interval_s: float, fn, name: str = "probe"):
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []
        self._fn = fn
        self._interval = interval_s
        self._schedule()

    def _schedule(self) -> None:
        self.sim.schedule_call(self._interval, self._sample)

    def _sample(self) -> None:
        self.times.append(self.sim.now)
        self.values.append(float(self._fn()))
        self._schedule()

    def mean(self, t_start: float = 0.0) -> float:
        vals = [v for t, v in zip(self.times, self.values) if t >= t_start]
        return float(np.mean(vals)) if vals else float("nan")
