"""Multicast extension: Interest aggregation and data fan-out (paper Sec. VII).

The paper observes that LEOTP's information-centric model gives multicast
"inherently": when several Consumers request the same FlowID, Midnode
caches answer duplicate Interests locally, and pending duplicate
Interests can be *aggregated* so each piece of data crosses the upstream
path only once.  This module implements that discussion as a
:class:`MulticastMidnode`:

* a Pending Interest Table (PIT) records which downstream links asked
  for each in-flight range; duplicate Interests are absorbed instead of
  forwarded (retransmission Interests always pass — reliability first);
* arriving Data is fanned out to every PIT-registered downstream, each
  through its own paced sender;
* everything else (SHR, VPH, caching, hop congestion control) is
  inherited from the unicast :class:`~repro.core.midnode.Midnode`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.ranges import ByteRange
from repro.core.config import LeotpConfig
from repro.core.midnode import Midnode
from repro.core.paced import PacedSender
from repro.core.wire import DataPacket, Interest
from repro.netsim.link import Link
from repro.simcore.simulator import Simulator


@dataclass
class _PitEntry:
    rng: ByteRange
    downstreams: list[Link] = field(default_factory=list)
    created_at: float = 0.0


class MulticastMidnode(Midnode):
    """A Midnode that aggregates duplicate Interests and fans out Data."""

    PIT_TIMEOUT_S = 2.0

    def __init__(
        self, sim: Simulator, name: str, config: LeotpConfig = LeotpConfig()
    ) -> None:
        super().__init__(sim, name, config)
        # PIT: (flow_id, range_start) -> entry.  Ranges are MSS-chunked at
        # the Consumers, so exact-start matching covers the common case.
        self._pit: dict[tuple[str, int], _PitEntry] = {}
        # One paced sender per (flow, downstream link) for fan-out.
        self._fanout_senders: dict[tuple[str, int], PacedSender] = {}
        self.interests_aggregated = 0
        self.fanout_packets = 0

    # ------------------------------------------------------------------

    def _fanout_sender(self, flow_id: str, link: Link, state) -> PacedSender:
        key = (flow_id, id(link))
        sender = self._fanout_senders.get(key)
        if sender is None:
            sender = PacedSender(
                self.sim,
                stamp=lambda pkt: self._stamp(state, pkt),
                paced=self.config.hop_by_hop_cc,
                burst_bytes=3.0 * self.config.data_packet_bytes,
                name=f"{self.name}:{flow_id}:fanout{id(link) % 1000}",
            )
            self._fanout_senders[key] = sender
        return sender

    def _on_interest(self, interest: Interest, link: Link) -> None:
        if interest.is_retransmission:
            # Recovery traffic never waits behind the PIT.
            super()._on_interest(interest, link)
            return
        key = (interest.flow_id, interest.range.start)
        entry = self._pit.get(key)
        now = self.sim.now
        downstream = link.reply_link
        if (
            entry is not None
            and entry.rng == interest.range
            and now - entry.created_at < self.PIT_TIMEOUT_S
        ):
            # Another consumer already has this range in flight through us:
            # absorb the duplicate, remember who else wants the data.
            if downstream is not None and downstream not in entry.downstreams:
                entry.downstreams.append(downstream)
            self.interests_aggregated += 1
            # Keep per-downstream rate bookkeeping fresh.
            if self.config.hop_by_hop_cc and downstream is not None:
                state = self._flow(interest.flow_id)
                sender = self._fanout_sender(interest.flow_id, downstream, state)
                sender.set_rate(interest.send_rate_bytes_s)
            return
        # First request for this range: register and process normally
        # (cache answer or upstream forward).
        before_cache = self.cache.contains(interest.flow_id, interest.range)
        if not before_cache and downstream is not None:
            self._pit[key] = _PitEntry(
                interest.range, [downstream], created_at=now
            )
        super()._on_interest(interest, link)

    def _on_data(self, packet: DataPacket, link: Link) -> None:
        # Serve every PIT-registered downstream beyond the primary one.
        entry = self._pit.pop((packet.flow_id, packet.range.start), None)
        super()._on_data(packet, link)
        if packet.is_header or entry is None:
            return
        state = self._flow(packet.flow_id)
        primary = state.downstream_link
        for downstream in entry.downstreams:
            if downstream is primary:
                continue  # already served by the unicast path
            sender = self._fanout_sender(packet.flow_id, downstream, state)
            self.fanout_packets += 1
            sender.enqueue(packet, downstream)

    def crash(self) -> None:
        """Power-cycle: additionally drop the PIT and fan-out senders.

        The inherited crash clears ``_flows`` (whose senders the fan-out
        senders stamp through) but knows nothing of the multicast state;
        keeping it would leave PIT entries pointing at pre-crash ranges
        and senders pacing against stale congestion state.
        """
        for sender in self._fanout_senders.values():
            sender.reset()
        self._fanout_senders.clear()
        self._pit.clear()
        super().crash()

    def expire_pit(self) -> int:
        """Drop PIT entries older than the timeout.  Returns count dropped."""
        now = self.sim.now
        stale = [
            key
            for key, entry in self._pit.items()
            if now - entry.created_at >= self.PIT_TIMEOUT_S
        ]
        for key in stale:
            del self._pit[key]
        return len(stale)
