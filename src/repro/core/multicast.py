"""Multicast extension: Interest aggregation and data fan-out (paper Sec. VII).

The paper observes that LEOTP's information-centric model gives multicast
"inherently": when several Consumers request the same content, Midnode
caches answer duplicate Interests locally, and pending duplicate
Interests can be *aggregated* so each piece of data crosses the upstream
path only once.  This module implements that discussion as a
:class:`MulticastMidnode`:

* a Pending Interest Table (PIT) records which downstream links asked
  for each in-flight range; duplicate Interests are absorbed instead of
  forwarded (retransmission Interests always pass — reliability first);
* arriving Data is fanned out to every PIT-registered downstream, each
  through its own paced sender;
* everything else (SHR, VPH, caching, hop congestion control) is
  inherited from the unicast :class:`~repro.core.midnode.Midnode`.

The PIT keys by *cache key*, not flow id: under a content workload
(:mod:`repro.content`) thousands of subscribers each run their own flow
against the same named object, their Interests aggregate, and fanned-out
copies are re-tagged with each subscriber's flow id so every Consumer
accepts its delivery.  Without a content registry the cache key is the
flow id and the classic shared-FlowID behaviour is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.ranges import ByteRange
from repro.core.config import LeotpConfig
from repro.core.midnode import Midnode
from repro.core.paced import PacedSender
from repro.core.wire import DataPacket, Interest
from repro.netsim.link import Link
from repro.simcore.simulator import Simulator


@dataclass
class _PitEntry:
    rng: ByteRange
    # (subscriber flow id, downstream link) per aggregated requester.
    downstreams: list[tuple[str, Link]] = field(default_factory=list)
    created_at: float = 0.0


class _FanoutStamp:
    """Per-(flow, link) stamp callback for fan-out senders.

    A named class (not a lambda) so multicast trees survive pickling —
    the same pattern as ``midnode._FlowStamp``; see there for why shard
    checkpointing forbids closures in live node state.
    """

    __slots__ = ("midnode", "flow_id")

    def __init__(self, midnode: "MulticastMidnode", flow_id: str) -> None:
        self.midnode = midnode
        self.flow_id = flow_id

    def __call__(self, pkt: DataPacket) -> DataPacket:
        return self.midnode._stamp(self.midnode._flow(self.flow_id), pkt)


class MulticastMidnode(Midnode):
    """A Midnode that aggregates duplicate Interests and fans out Data."""

    PIT_TIMEOUT_S = 2.0

    def __init__(
        self, sim: Simulator, name: str, config: LeotpConfig = LeotpConfig()
    ) -> None:
        super().__init__(sim, name, config)
        # PIT: (cache_key, range_start) -> entry.  Ranges are MSS-chunked
        # at the Consumers, so exact-start matching covers the common case.
        self._pit: dict[tuple[str, int], _PitEntry] = {}
        # One paced sender per (flow, downstream link name) for fan-out.
        # Link names are deterministic (access links are named per flow),
        # so sender naming — and hence traces — is stable across runs.
        self._fanout_senders: dict[tuple[str, str], PacedSender] = {}
        self.interests_aggregated = 0
        self.fanout_packets = 0

    # ------------------------------------------------------------------

    def _fanout_sender(self, flow_id: str, link: Link) -> PacedSender:
        key = (flow_id, link.name)
        sender = self._fanout_senders.get(key)
        if sender is None:
            sender = PacedSender(
                self.sim,
                stamp=_FanoutStamp(self, flow_id),
                paced=self.config.hop_by_hop_cc,
                burst_bytes=3.0 * self.config.data_packet_bytes,
                name=f"{self.name}:{flow_id}:fanout:{link.name}",
            )
            self._fanout_senders[key] = sender
        return sender

    def _on_interest(self, interest: Interest, link: Link) -> None:
        if interest.is_retransmission:
            # Recovery traffic never waits behind the PIT.
            super()._on_interest(interest, link)
            return
        cache_key = self._cache_key(interest.flow_id)
        key = (cache_key, interest.range.start)
        entry = self._pit.get(key)
        now = self.sim.now
        downstream = link.reply_link
        if (
            entry is not None
            and entry.rng == interest.range
            and now - entry.created_at < self.PIT_TIMEOUT_S
        ):
            # Another consumer already has this range in flight through us:
            # absorb the duplicate, remember who else wants the data.
            if downstream is not None:
                sub = (interest.flow_id, downstream)
                if sub not in entry.downstreams:
                    entry.downstreams.append(sub)
            self.interests_aggregated += 1
            # Keep per-downstream rate bookkeeping fresh.
            if self.config.hop_by_hop_cc and downstream is not None:
                sender = self._fanout_sender(interest.flow_id, downstream)
                sender.set_rate(interest.send_rate_bytes_s)
            return
        # First request for this range: register and process normally
        # (cache answer or upstream forward).
        before_cache = self.cache.contains(cache_key, interest.range)
        if not before_cache and downstream is not None:
            self._pit[key] = _PitEntry(
                interest.range,
                [(interest.flow_id, downstream)],
                created_at=now,
            )
        super()._on_interest(interest, link)

    def _on_data(self, packet: DataPacket, link: Link) -> None:
        # Serve every PIT-registered downstream beyond the primary one.
        entry = self._pit.pop(
            (self._cache_key(packet.flow_id), packet.range.start), None
        )
        super()._on_data(packet, link)
        if packet.is_header or entry is None:
            return
        state = self._flow(packet.flow_id)
        primary: Optional[Link] = state.downstream_link
        for flow_id, downstream in entry.downstreams:
            if flow_id == packet.flow_id and downstream is primary:
                continue  # already served by the unicast path
            sender = self._fanout_sender(flow_id, downstream)
            self.fanout_packets += 1
            if flow_id == packet.flow_id:
                sender.enqueue(packet, downstream)
            else:
                # Cross-flow subscriber: re-tag the copy with *its* flow
                # id so its Consumer accepts the delivery.
                copy = DataPacket(
                    flow_id, packet.range, packet.timestamp,
                    origin_ts=packet.origin_ts,
                    echo_interest_owd=packet.echo_interest_owd,
                    retransmitted=packet.retransmitted,
                )
                sender.enqueue(copy, downstream)

    def crash(self) -> None:
        """Power-cycle: additionally drop the PIT and fan-out senders.

        The inherited crash clears ``_flows`` (whose senders the fan-out
        senders stamp through) but knows nothing of the multicast state;
        keeping it would leave PIT entries pointing at pre-crash ranges
        and senders pacing against stale congestion state.
        """
        for sender in self._fanout_senders.values():
            sender.reset()
        self._fanout_senders.clear()
        self._pit.clear()
        super().crash()

    def expire_pit(self) -> int:
        """Drop PIT entries older than the timeout.  Returns count dropped."""
        now = self.sim.now
        stale = [
            key
            for key, entry in self._pit.items()
            if now - entry.created_at >= self.PIT_TIMEOUT_S
        ]
        for key in stale:
            del self._pit[key]
        return len(stale)
