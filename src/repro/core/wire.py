"""LEOTP wire formats: Interest and Data packets (Table I of the paper).

Both packet kinds carry the data name ``(FlowID, [rangeStart, rangeEnd))``
and a ``timestamp`` written by the node that (re)transmits the packet on
the current hop — the input to per-hop OWD measurement.  Interests
additionally piggyback the Requester's ``send_rate``; Data packets whose
``is_header`` flag is set are Void Packet Headers (VPH): a 15-byte
header with ``length = 0`` used as a hole notification.

The paper's header is 15 bytes; packets ride in UDP/IPv4 (+28 bytes).
Python-side convenience fields (``origin_ts``, ``echo_interest_owd``,
``retransmitted``) correspond to information a real implementation either
derives locally or encodes in the timestamp/rate fields.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.common.ranges import ByteRange
from repro.core.config import LEOTP_HEADER_BYTES, UDP_IP_OVERHEAD_BYTES
from repro.netsim.packet import Packet, next_packet_uid

# Every Interest (and every VPH) is exactly one header on the wire; Data
# adds its payload.  Precomputed once — these constructors run per packet.
_WIRE_HEADER_BYTES = LEOTP_HEADER_BYTES + UDP_IP_OVERHEAD_BYTES

# ----------------------------------------------------------------------
# Freelist pooling.
#
# Interest/DataPacket are the two dominant allocation sites in packet-heavy
# runs (one per hop per direction, per packet).  Nodes that provably hold
# the last reference — a Consumer that consumed a stamped Data copy, a
# Responder that answered an Interest, a Link dropping a packet — call
# ``release()`` to push the object onto a per-class freelist; the next
# constructor call pops it instead of allocating.  ``__init__`` rewrites
# *every* slot, so a recycled packet carries no stale state (pinned by
# tests/test_shard.py).  Correctness does not depend on release() coverage:
# unreleased packets are simply collected by the GC as before.
#
# Set LEOTP_PACKET_POOL=0 to disable (allocation-profiling, debugging).
_POOL_ENABLED = os.environ.get("LEOTP_PACKET_POOL", "1") != "0"
_POOL_CAP = 4096  # per class; beyond this, released packets go to the GC
_interest_free: list = []
_data_free: list = []


def packet_pool_stats() -> dict:
    """Freelist occupancy snapshot (diagnostics and tests)."""
    return {
        "enabled": _POOL_ENABLED,
        "interest_free": len(_interest_free),
        "data_free": len(_data_free),
        "cap": _POOL_CAP,
    }


def clear_packet_pools() -> None:
    """Drop all pooled packets (test isolation; cross-run hygiene)."""
    _interest_free.clear()
    _data_free.clear()


class LeotpPacket(Packet):
    """Common base: a named byte range of a flow."""

    __slots__ = ("flow_id", "range", "timestamp", "_in_pool")

    def __init__(
        self,
        flow_id: str,
        rng: ByteRange,
        size_bytes: int,
        timestamp: float,
        src: Optional[str] = None,
        dst: Optional[str] = None,
    ) -> None:
        super().__init__(size_bytes=size_bytes, src=src, dst=dst, created_at=timestamp)
        self.flow_id = flow_id
        self.range = rng
        self.timestamp = timestamp
        self._in_pool = False

    def release(self) -> None:
        """Return this packet to its class freelist.

        Only call when this is provably the last live reference — the
        object will be handed out again by a future constructor call.
        Double release is guarded (second call is a no-op), as is release
        of a subclass outside the pooled pair.
        """
        if not _POOL_ENABLED or self._in_pool:
            return
        cls = type(self)
        if cls is Interest:
            pool = _interest_free
        elif cls is DataPacket:
            pool = _data_free
        else:
            return
        if len(pool) < _POOL_CAP:
            self._in_pool = True
            pool.append(self)


class Interest(LeotpPacket):
    """A data request, flowing Consumer -> Producer.

    ``send_rate_bytes_s`` tells the Responder of this hop how fast to send
    Data (token-bucket input); ``is_retransmission`` marks SHR/TR re-requests
    (statistics only — the wire format is identical).
    """

    __slots__ = ("send_rate_bytes_s", "is_retransmission")

    def __new__(cls, *args, **kwargs) -> "Interest":
        if cls is Interest and _interest_free:
            obj = _interest_free.pop()
            obj._in_pool = False
            return obj
        return object.__new__(cls)

    def __init__(
        self,
        flow_id: str,
        rng: ByteRange,
        timestamp: float,
        send_rate_bytes_s: float,
        is_retransmission: bool = False,
    ) -> None:
        # Flattened constructor (no super() chain): one of the two
        # per-packet allocation sites on the wire hot path.  Every slot is
        # (re)written here — required for freelist reuse via __new__.
        self.size_bytes = _WIRE_HEADER_BYTES
        self.src = None
        self.dst = None
        self.created_at = timestamp
        self.uid = next_packet_uid()
        self.hops = 0
        self.flow_id = flow_id
        self.range = rng
        self.timestamp = timestamp
        self.send_rate_bytes_s = send_rate_bytes_s
        self.is_retransmission = is_retransmission
        self._in_pool = False

    def forwarded(self, timestamp: float, send_rate_bytes_s: float) -> "Interest":
        """A copy re-stamped by a forwarding node (per-hop rewrite)."""
        return Interest(
            self.flow_id, self.range, timestamp, send_rate_bytes_s,
            is_retransmission=self.is_retransmission,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        retx = " retx" if self.is_retransmission else ""
        return f"<Interest {self.flow_id} {self.range}{retx}>"


class DataPacket(LeotpPacket):
    """A data response or a Void Packet Header, flowing Producer -> Consumer.

    Attributes:
        is_header: True for a VPH (``length = 0``, no payload).
        origin_ts: time the Producer first transmitted these bytes; used by
            the Consumer for end-to-end OWD measurement (survives caching).
        echo_interest_owd: the Responder's estimate of the Interest OWD on
            this hop, echoed so the Requester can assemble a full hopRTT
            sample (Sec. III-C's two-part measurement).
        retransmitted: True when this copy repairs a loss (served from a
            Midnode cache or re-served by the Producer).
    """

    __slots__ = ("is_header", "origin_ts", "echo_interest_owd", "retransmitted")

    def __new__(cls, *args, **kwargs) -> "DataPacket":
        if cls is DataPacket and _data_free:
            obj = _data_free.pop()
            obj._in_pool = False
            return obj
        return object.__new__(cls)

    def __init__(
        self,
        flow_id: str,
        rng: ByteRange,
        timestamp: float,
        is_header: bool = False,
        origin_ts: float = 0.0,
        echo_interest_owd: float = 0.0,
        retransmitted: bool = False,
    ) -> None:
        # Flattened constructor (no super() chain), as in Interest; every
        # slot is (re)written — required for freelist reuse via __new__.
        self.size_bytes = (
            _WIRE_HEADER_BYTES if is_header
            else rng.end - rng.start + _WIRE_HEADER_BYTES
        )
        self.src = None
        self.dst = None
        self.created_at = timestamp
        self.uid = next_packet_uid()
        self.hops = 0
        self.flow_id = flow_id
        self.range = rng
        self.timestamp = timestamp
        self.is_header = is_header
        self.origin_ts = origin_ts
        self.echo_interest_owd = echo_interest_owd
        self.retransmitted = retransmitted
        self._in_pool = False

    @property
    def payload_bytes(self) -> int:
        return 0 if self.is_header else self.range.length

    def forwarded(self, timestamp: float, echo_interest_owd: float) -> "DataPacket":
        """A copy re-stamped by a forwarding node (per-hop rewrite)."""
        return DataPacket(
            self.flow_id, self.range, timestamp,
            is_header=self.is_header,
            origin_ts=self.origin_ts,
            echo_interest_owd=echo_interest_owd,
            retransmitted=self.retransmitted,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "VPH" if self.is_header else "Data"
        retx = " retx" if self.retransmitted else ""
        return f"<{kind} {self.flow_id} {self.range}{retx}>"
