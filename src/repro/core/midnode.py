"""The LEOTP Midnode: cache, SHR loss repair, hop-by-hop rate control.

A Midnode is "dummy": it keeps only soft per-flow state (sequence
bookkeeping, a learned downstream link, congestion status) that can be
rebuilt instantly, which is what makes LEOTP robust to topology churn.

Data path (paper Figs. 7 and 9):

* **Interest from downstream** — remember the downstream link for the
  flow, update the Responder-side Interest-OWD estimate and the token
  bucket rate from the piggybacked ``sendRate``; answer from the cache
  when possible, otherwise forward the Interest upstream re-stamped with
  this node's own Requester rate.
* **Data/VPH from upstream** — feed SHR (Algorithm 1); emit VPHs
  downstream ahead of the packet for freshly detected holes; send
  retransmission Interests upstream for holes that crossed the disorder
  threshold; store payload in the cache; enqueue the packet on the
  downstream paced sender.

Ablation flags: with ``enable_cache`` off the node skips SHR and caching
(row B of Table II); with ``hop_by_hop_cc`` off it forwards without
pacing and leaves the piggybacked rate untouched (row C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.ranges import ByteRange, RangeSet
from repro.core.cache import BlockCache
from repro.core.config import LeotpConfig
from repro.core.congestion import HopRateController
from repro.core.paced import PacedSender, ResendSuppressor
from repro.core.shr import SeqHoleDetector
from repro.core.wire import DataPacket, Interest
from repro.netsim.link import Link
from repro.netsim.node import Node
from repro.netsim.packet import Packet
from repro.obs.tracer import TRACER
from repro.simcore.simulator import Simulator


@dataclass
class _FlowState:
    """Soft per-flow state (tens of bytes in a real node)."""

    shr: SeqHoleDetector
    cc: HopRateController
    sender: PacedSender
    downstream_link: Optional[Link] = None
    upstream_link: Optional[Link] = None
    interest_owd_est: float = 0.0
    has_interest_owd: bool = False
    last_downstream_rate: float = 125_000.0
    # Data ranges currently waiting in the sending buffer.  Re-requests for
    # them are absorbed instead of queueing another copy: under heavy TR
    # (e.g. after a handover blackout) repeated cache hits would otherwise
    # fill the buffer with duplicates, starve fresh data behind them, and
    # trigger yet more timeouts — a self-sustaining duplicate storm.
    queued: "RangeSet" = None  # type: ignore[assignment]
    # Re-serve damping: absorption via ``queued`` only covers in-buffer
    # time, but after a crash/blackout the recovery backlog delays data
    # past the Consumer's RTO, and every timeout would re-serve bytes
    # already in flight — inflating the backlog that caused the timeouts.
    suppressor: ResendSuppressor = None  # type: ignore[assignment]


class _SenderBacklog:
    """Late-bound ``sender.backlog_bytes`` thunk.

    A named class (not a closure) so a Midnode's flow state stays
    picklable end to end — shard checkpointing serialises live flows,
    and closures cannot cross a pickle boundary.  The sender is bound
    after construction because the rate controller that consumes this
    thunk is built before the sender it measures.
    """

    __slots__ = ("sender",)

    def __init__(self) -> None:
        self.sender: Optional[PacedSender] = None

    def __call__(self) -> int:
        sender = self.sender
        return sender.backlog_bytes if sender is not None else 0


class _FlowStamp:
    """Late-bound per-flow stamp callback (picklable, see _SenderBacklog)."""

    __slots__ = ("midnode", "state")

    def __init__(self, midnode: "Midnode") -> None:
        self.midnode = midnode
        self.state: Optional[_FlowState] = None

    def __call__(self, pkt: DataPacket) -> DataPacket:
        return self.midnode._stamp(self.state, pkt)


@dataclass
class MidnodeStats:
    """Operation counters (also the Fig. 19 CPU-overhead proxy)."""

    interests_received: int = 0
    interests_forwarded: int = 0
    data_received: int = 0
    data_forwarded: int = 0
    vph_received: int = 0
    vph_sent: int = 0
    retx_interests_sent: int = 0
    cache_responses: int = 0
    crashes: int = 0

    def total_operations(self) -> int:
        return (
            self.interests_received
            + self.data_received
            + self.vph_received
            + self.vph_sent
            + self.retx_interests_sent
            + self.cache_responses
        )


class Midnode(Node):
    """An intermediate LEOTP node (ground station or satellite)."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        config: LeotpConfig = LeotpConfig(),
    ) -> None:
        super().__init__(sim, name)
        self.config = config
        self.cache = BlockCache(config.cache_capacity_bytes, config.cache_block_bytes)
        # Optional flow→object binding (repro.content.ContentRegistry,
        # duck-typed to keep core import-light).  When set, cache keys
        # alias to object names so flows fetching the same named object
        # share blocks; wire/per-flow state stays keyed by flow id.
        self.content = None
        self._flows: dict[str, _FlowState] = {}
        self._upstream_default: Optional[Link] = None
        self._upstream_by_flow: dict[str, Link] = {}
        self.stats = MidnodeStats()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def set_upstream(self, link: Link, flow_id: Optional[str] = None) -> None:
        """Declare the link toward the Producer (per flow or default).

        Downstream links are learned from arriving Interests, mirroring
        ICN breadcrumb forwarding; the upstream direction corresponds to
        the routing layer's next hop and is configured by the topology.
        """
        if flow_id is None:
            self._upstream_default = link
        else:
            self._upstream_by_flow[flow_id] = link

    def _upstream_for(self, flow_id: str) -> Link:
        link = self._upstream_by_flow.get(flow_id, self._upstream_default)
        if link is None:
            raise RuntimeError(f"midnode {self.name}: no upstream link configured")
        return link

    # ------------------------------------------------------------------
    # Crash / restart (fault injection)
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Power-cycle the node: drop the cache and all per-flow soft state.

        This is the scenario the paper's "dummy intermediate node" design
        targets — everything a Midnode knows (cache contents, learned
        downstream links, OWD estimates, congestion state, queued packets)
        can vanish mid-transfer and be rebuilt from subsequent traffic.
        Upstream wiring survives: it belongs to the routing layer, which
        re-establishes next hops independently of the transport.
        """
        super().crash()
        self.stats.crashes += 1
        if TRACER.enabled:
            TRACER.emit(
                self.sim.now, "node_crash", self.name,
                cache_bytes_lost=self.cache.stored_bytes,
                flows_lost=len(self._flows),
            )
        for state in self._flows.values():
            state.sender.reset()
        self._flows.clear()
        # Preserve the cache *geometry* (capacity may have been sized by
        # a placement policy) while dropping every stored byte.
        self.cache = BlockCache(
            self.cache.capacity_bytes,
            self.cache.block_bytes,
            eviction=self.cache.eviction,
        )

    # ------------------------------------------------------------------

    def _flow(self, flow_id: str) -> _FlowState:
        state = self._flows.get(flow_id)
        if state is None:
            cfg = self.config
            backlog = _SenderBacklog()
            cc = HopRateController(
                self.sim, cfg,
                buffer_len_fn=backlog,
                name=f"{self.name}:{flow_id}:cc",
            )
            stamp = _FlowStamp(self)
            sender = PacedSender(
                self.sim,
                stamp=stamp,
                paced=cfg.hop_by_hop_cc,
                burst_bytes=3.0 * cfg.data_packet_bytes,
                name=f"{self.name}:{flow_id}",
            )
            backlog.sender = sender
            state = _FlowState(
                shr=SeqHoleDetector(cfg.shr_disorder_threshold, cfg.shr_max_holes),
                cc=cc,
                sender=sender,
                queued=RangeSet(),
                suppressor=ResendSuppressor(self.sim, cfg.responder_retx_suppress_s),
            )
            stamp.state = state
            self._flows[flow_id] = state
        return state

    def flow_backlog_bytes(self, flow_id: str) -> int:
        state = self._flows.get(flow_id)
        return state.sender.backlog_bytes if state else 0

    def _cache_key(self, flow_id: str) -> str:
        """Cache key for a flow: its bound object name, else the flow id."""
        content = self.content
        if content is None:
            return flow_id
        obj = content.object_of(flow_id)
        return obj if obj is not None else flow_id

    def retire_flow(self, flow_id: str) -> int:
        """Drop a completed flow's soft state and cached blocks.

        Returns the cache bytes freed.  Flow pools call this when the
        Consumer finishes so that a long-lived Midnode serving thousands
        of flows does not accumulate per-flow state; a straggler Interest
        simply rebuilds the (soft) state from scratch.

        Content-bound flows keep their blocks: the bytes live under the
        *object's* cache key and serving them to later consumers of the
        same object is the point of the cache — eviction pressure, not
        flow lifetime, reclaims them.
        """
        state = self._flows.pop(flow_id, None)
        if state is not None:
            state.sender.reset()
        self._upstream_by_flow.pop(flow_id, None)
        if self.config.enable_cache:
            content = self.content
            if content is not None and content.object_of(flow_id) is not None:
                return 0
            return self.cache.drop_flow(flow_id)
        return 0

    def _stamp(self, state: _FlowState, pkt: DataPacket) -> DataPacket:
        if not pkt.is_header:
            state.queued.remove(pkt.range)
            state.suppressor.record(pkt.range)
        if self.config.hop_by_hop_cc:
            out = pkt.forwarded(self.sim.now, state.interest_owd_est)
        else:
            # Endpoint-only control (ablation row C): timestamps survive
            # end-to-end so the Consumer measures the full path.
            out = pkt.forwarded(pkt.timestamp, pkt.echo_interest_owd)
        if out.is_header:
            self.stats.vph_sent += 1
        else:
            self.stats.data_forwarded += 1
        return out

    # ------------------------------------------------------------------
    # Receive dispatch
    # ------------------------------------------------------------------

    def on_receive(self, packet: Packet, link: Link) -> None:
        if isinstance(packet, Interest):
            self._on_interest(packet, link)
        elif isinstance(packet, DataPacket):
            self._on_data(packet, link)

    # ------------------------------------------------------------------
    # Interests (from downstream)
    # ------------------------------------------------------------------

    def _on_interest(self, interest: Interest, link: Link) -> None:
        cfg = self.config
        now = self.sim.now
        self.stats.interests_received += 1
        state = self._flow(interest.flow_id)
        # Learn the downstream route (ICN breadcrumb).
        if link.reply_link is not None:
            state.downstream_link = link.reply_link
        # Responder-side measurements for this hop.
        owd = max(now - interest.timestamp, 0.0)
        if state.has_interest_owd:
            state.interest_owd_est += (owd - state.interest_owd_est) / 8.0
        else:
            state.interest_owd_est = owd
            state.has_interest_owd = True
        state.last_downstream_rate = interest.send_rate_bytes_s
        if cfg.hop_by_hop_cc:
            state.sender.set_rate(interest.send_rate_bytes_s)
            state.cc.next_hop_rate_bytes_s = interest.send_rate_bytes_s
        # Answer from the cache where possible.  The lookup key aliases
        # to the flow's object name under a content workload, so bytes
        # another flow fetched for the same object count as hits here.
        remaining: list[ByteRange] = [interest.range]
        if cfg.enable_cache:
            cross_mark = self.cache.stats.cross_hit_bytes
            pieces = self.cache.lookup(
                self._cache_key(interest.flow_id), interest.range,
                requester=interest.flow_id,
            )
            if pieces:
                covered = []
                for rng, origin_ts in pieces:
                    covered.append(rng)
                    if state.queued.contains(rng):
                        continue  # a copy is already queued for downstream
                    if state.suppressor.suppressed(
                        rng, state.sender.drain_time_s()
                    ):
                        continue  # a copy left the buffer moments ago
                    self.stats.cache_responses += 1
                    response = DataPacket(
                        interest.flow_id, rng, timestamp=now,
                        origin_ts=origin_ts, retransmitted=True,
                    )
                    if state.downstream_link is not None:
                        state.queued.add(rng)
                        if not state.sender.enqueue(response, state.downstream_link):
                            state.queued.remove(rng)
                remaining = self._subtract(interest.range, covered)
            if TRACER.enabled:
                miss_bytes = sum(r.length for r in remaining)
                hit_bytes = interest.range.length - miss_bytes
                TRACER.emit(
                    now, "cache_hit" if hit_bytes > 0 else "cache_miss",
                    self.name, flow=interest.flow_id,
                    start=interest.range.start, end=interest.range.end,
                    hit_bytes=hit_bytes, miss_bytes=miss_bytes,
                    cross_bytes=self.cache.stats.cross_hit_bytes - cross_mark,
                )
        # Forward the uncovered remainder upstream, re-stamped with this
        # node's own Requester rate.
        upstream = self._upstream_for(interest.flow_id)
        state.upstream_link = upstream
        for rng in remaining:
            if cfg.hop_by_hop_cc:
                rate = state.cc.sending_rate_bytes_s()
                ts = now
            else:
                rate = interest.send_rate_bytes_s
                ts = interest.timestamp  # endpoint-measured path (row C)
            fwd = Interest(
                interest.flow_id, rng, timestamp=ts,
                send_rate_bytes_s=rate,
                is_retransmission=interest.is_retransmission,
            )
            self.stats.interests_forwarded += 1
            upstream.send(fwd)
        # The Interest is consumed at this hop (forwarding re-stamps a new
        # one; retained state keeps only ByteRange objects, not the packet).
        interest.release()

    @staticmethod
    def _subtract(total: ByteRange, covered: list[ByteRange]) -> list[ByteRange]:
        from repro.common.ranges import RangeSet

        remaining = RangeSet([total])
        for rng in covered:
            remaining.remove(rng)
        return remaining.intervals()

    # ------------------------------------------------------------------
    # Data and VPHs (from upstream)
    # ------------------------------------------------------------------

    def _on_data(self, packet: DataPacket, link: Link) -> None:
        cfg = self.config
        now = self.sim.now
        state = self._flow(packet.flow_id)
        if packet.is_header:
            self.stats.vph_received += 1
        else:
            self.stats.data_received += 1
            # Requester-side hopRTT sample for the upstream hop.
            if cfg.hop_by_hop_cc:
                sample = max(now - packet.timestamp, 0.0) + packet.echo_interest_owd
                if sample > 0:
                    state.cc.on_data(packet.payload_bytes, sample)
        if cfg.enable_cache:
            actions = state.shr.on_packet(packet.range)
            # VPHs go downstream ahead of the triggering packet.
            if cfg.enable_vph:
                for hole in actions.announce:
                    if TRACER.enabled:
                        TRACER.emit(
                            now, "vph_send", self.name, flow=packet.flow_id,
                            start=hole.start, end=hole.end,
                        )
                    vph = DataPacket(
                        packet.flow_id, hole, timestamp=now, is_header=True,
                    )
                    if state.downstream_link is not None:
                        state.sender.enqueue(vph, state.downstream_link)
            # Confirmed holes are re-requested from the upstream neighbour.
            for hole in actions.request:
                self._send_retx_interest(state, packet.flow_id, hole)
            if not packet.is_header:
                self.cache.store(
                    self._cache_key(packet.flow_id), packet.range,
                    packet.origin_ts, writer=packet.flow_id,
                )
        if state.downstream_link is not None:
            if not packet.is_header and state.queued.contains(packet.range):
                return  # an identical copy is already queued for downstream
            if not packet.is_header:
                state.queued.add(packet.range)
                if not state.sender.enqueue(packet, state.downstream_link):
                    state.queued.remove(packet.range)
            else:
                state.sender.enqueue(packet, state.downstream_link)

    def _send_retx_interest(
        self, state: _FlowState, flow_id: str, hole: ByteRange
    ) -> None:
        upstream = state.upstream_link or self._upstream_for(flow_id)
        rate = (
            state.cc.sending_rate_bytes_s()
            if self.config.hop_by_hop_cc
            else state.last_downstream_rate
        )
        if TRACER.enabled:
            TRACER.emit(
                self.sim.now, "retx_interest", self.name, flow=flow_id,
                start=hole.start, end=hole.end,
            )
        for chunk in hole.split(self.config.mss):
            interest = Interest(
                flow_id, chunk, timestamp=self.sim.now,
                send_rate_bytes_s=rate, is_retransmission=True,
            )
            self.stats.retx_interests_sent += 1
            upstream.send(interest)
