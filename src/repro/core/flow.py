"""High-level wiring of LEOTP transfers over the standard topologies.

:func:`build_leotp_path` assembles Producer → intermediates → Consumer
over an N-hop chain; ``coverage`` selects how many intermediates are
true Midnodes versus transparent forwarders, reproducing the paper's
partial-deployment study (Sec. V-B, Fig. 15).  When the global metrics
registry is enabled, built paths are auto-instrumented with the
read-only samplers of :mod:`repro.obs` — experiments need no wiring
changes to become observable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.core.config import LeotpConfig
from repro.core.consumer import Consumer
from repro.core.midnode import Midnode
from repro.core.producer import Producer
from repro.netsim.link import DuplexLink
from repro.netsim.node import ChainForwarder, Node, wire_chain_forwarders
from repro.netsim.topology import HopSpec, build_chain
from repro.netsim.trace import FlowRecorder
from repro.obs.metrics import METRICS, attach_leotp_samplers
from repro.simcore.random import RngRegistry
from repro.simcore.simulator import Simulator


@dataclass
class LeotpPath:
    """A wired LEOTP transfer over a chain."""

    producer: Producer
    intermediates: list[Node]  # Midnodes and/or plain forwarders
    consumer: Consumer
    recorder: FlowRecorder
    links: list[DuplexLink]

    @property
    def midnodes(self) -> list[Midnode]:
        return [n for n in self.intermediates if isinstance(n, Midnode)]


def midnode_positions(n_intermediate: int, coverage: float) -> list[bool]:
    """Which intermediate positions host a Midnode at the given coverage.

    Positions are spread evenly (e.g. coverage 0.25 puts a Midnode at
    every fourth intermediate node), reproducing the paper's partial
    deployment where "the intermediate nodes can be deployed on part of
    the satellites".
    """
    if not 0.0 <= coverage <= 1.0:
        raise ValueError("coverage must be in [0, 1]")
    if n_intermediate == 0:
        return []
    want = round(coverage * n_intermediate)
    flags = [False] * n_intermediate
    if want == 0:
        return flags
    # Even spread: mark position i when the cumulative quota crosses an
    # integer boundary.
    marked = 0
    for i in range(n_intermediate):
        target = (i + 1) * want // n_intermediate
        if target > marked:
            flags[i] = True
            marked = target
    return flags


def build_leotp_path(
    sim: Simulator,
    rng: RngRegistry,
    hops: Sequence[HopSpec],
    config: LeotpConfig = LeotpConfig(),
    total_bytes: Optional[int] = None,
    coverage: float = 1.0,
    flow_id: str = "leotp",
    start_time: float = 0.0,
    stop_time: Optional[float] = None,
) -> LeotpPath:
    """Producer -- intermediates -- Consumer across an N-hop chain.

    ``coverage`` selects the fraction of intermediate nodes that are LEOTP
    Midnodes; the rest are transparent forwarders (coverage 0 gives the
    paper's "no Midnodes" ablation, where only the endpoints run LEOTP).
    """
    n = len(hops)
    if n < 1:
        raise ValueError("need at least one hop")
    recorder = FlowRecorder(sim, name=flow_id)
    producer = Producer(sim, f"{flow_id}-prod", config, content_bytes=total_bytes)
    flags = midnode_positions(n - 1, coverage)
    intermediates: list[Node] = []
    for i, is_mid in enumerate(flags):
        if is_mid:
            intermediates.append(Midnode(sim, f"{flow_id}-mid{i}", config))
        else:
            intermediates.append(ChainForwarder(sim, f"{flow_id}-fwd{i}"))
    consumer = Consumer(
        sim, f"{flow_id}-cons", flow_id, config,
        total_bytes=total_bytes, recorder=recorder,
        start_time=start_time, stop_time=stop_time,
    )
    nodes: list[Node] = [producer, *intermediates, consumer]
    links = build_chain(sim, nodes, list(hops), rng)
    wire_chain_forwarders(nodes, links)
    # Interests flow consumer -> producer on the .ba directions.
    consumer.out_link = links[-1].ba
    for i, node in enumerate(intermediates):
        if isinstance(node, Midnode):
            node.set_upstream(links[i].ba)
    path = LeotpPath(producer, intermediates, consumer, recorder, links)
    if METRICS.enabled:
        # Observation is read-only: samplers never touch protocol state,
        # so results are bit-identical with metrics on or off.
        attach_leotp_samplers(sim, path)
    return path
