"""The Midnode block cache (paper Sec. IV-A).

Data is stored in 4096-byte-aligned blocks per cache key, addressed by
``(key, block_index)``, with LRU (default) or LFU replacement.  The real
implementation stores payload bytes; the simulation stores coverage
(which byte ranges of each block are present) plus the metadata the
Consumer's measurements need (the Producer's original transmission
timestamp per range).

The cache key is normally the FlowID.  Under a content workload
(:mod:`repro.content`) Midnodes alias the key to the flow's bound
*object name*, so flows fetching the same named object share blocks;
each stored range remembers the flow that wrote it (``writer``), which
is how lookups distinguish genuine cross-flow hits from a flow re-
reading its own retransmitted bytes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from repro.common.ranges import ByteRange, RangeSet

#: Replacement policies a single cache supports.  The shared pool adds
#: ``"fullest"`` on top (a member-choice policy, not a block policy);
#: see :class:`repro.workload.budget.SharedCachePool`.
CACHE_EVICTION_POLICIES = ("lru", "lfu")


@dataclass
class _Block:
    """Coverage and origin timestamps for one 4096-byte block."""

    coverage: RangeSet = field(default_factory=RangeSet)
    # (range, origin_ts, writer flow id) in insertion order; lookups
    # intersect with these.  ``writer`` is None for unattributed stores
    # (single-flow caches, compacted history).
    origins: list[tuple[ByteRange, float, Optional[str]]] = field(
        default_factory=list
    )
    # Access bookkeeping for replacement: ``tick`` is the last-touch
    # counter (recency), ``freq`` the touch count, ``seq`` the creation
    # counter (deterministic LFU tie-break).
    tick: int = 0
    freq: int = 0
    seq: int = 0

    def stored_bytes(self) -> int:
        return len(self.coverage)


@dataclass
class CacheStats:
    lookups: int = 0
    hits: int = 0
    partial_hits: int = 0
    insertions: int = 0
    evictions: int = 0
    # Byte-granular effectiveness: requested vs served, and the subset
    # served from bytes a *different* flow wrote (the content-sharing
    # signal the ``content_study`` experiment reports).
    lookup_bytes: int = 0
    hit_bytes: int = 0
    cross_hits: int = 0
    cross_hit_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def byte_hit_rate(self) -> float:
        return self.hit_bytes / self.lookup_bytes if self.lookup_bytes else 0.0


class BlockCache:
    """Block cache keyed by (cache key, block index)."""

    MAX_ORIGINS_PER_BLOCK = 64

    def __init__(
        self,
        capacity_bytes: int = 64 << 20,
        block_bytes: int = 4096,
        eviction: str = "lru",
    ) -> None:
        if capacity_bytes <= 0 or block_bytes <= 0:
            raise ValueError("capacity and block size must be positive")
        if eviction not in CACHE_EVICTION_POLICIES:
            raise ValueError(
                f"unknown eviction policy {eviction!r}; "
                f"choose from {CACHE_EVICTION_POLICIES}"
            )
        self.capacity_bytes = capacity_bytes
        self.block_bytes = block_bytes
        self.eviction = eviction
        self._blocks: "OrderedDict[tuple[str, int], _Block]" = OrderedDict()
        self._stored_bytes = 0
        self._ticks = 0
        self.stats = CacheStats()

    # ------------------------------------------------------------------

    @property
    def stored_bytes(self) -> int:
        return self._stored_bytes

    def _block_span(self, rng: ByteRange) -> range:
        return range(rng.start // self.block_bytes, (rng.end - 1) // self.block_bytes + 1)

    def _touch(self, block: _Block) -> None:
        """Stamp one access: recency tick + frequency count.

        Pool members override the tick source with a pool-shared counter
        so recency/frequency compare across members (global LRU/LFU).
        """
        self._ticks += 1
        block.tick = self._ticks
        block.freq += 1

    def store(
        self,
        key: str,
        rng: ByteRange,
        origin_ts: float,
        writer: Optional[str] = None,
    ) -> None:
        """Insert a received data range (O(1) per touched block).

        ``key`` is the cache key (FlowID, or the object name under a
        content workload); ``writer`` attributes the bytes to the flow
        that fetched them so later lookups can count cross-flow hits.
        """
        self.stats.insertions += 1
        for bidx in self._block_span(rng):
            bkey = (key, bidx)
            block = self._blocks.get(bkey)
            if block is None:
                block = _Block()
                self._blocks[bkey] = block
                self._touch(block)
                block.seq = block.tick
            else:
                self._blocks.move_to_end(bkey)
                self._touch(block)
            bstart = bidx * self.block_bytes
            part = rng.intersection(ByteRange.unchecked(bstart, bstart + self.block_bytes))
            if part is None:
                continue
            before = block.stored_bytes()
            block.coverage.add(part)
            block.origins.append((part, origin_ts, writer))
            if len(block.origins) > self.MAX_ORIGINS_PER_BLOCK:
                self._compact(block)
            self._stored_bytes += block.stored_bytes() - before
        self._evict_if_needed()

    def lookup(
        self,
        key: str,
        rng: ByteRange,
        requester: Optional[str] = None,
    ) -> list[tuple[ByteRange, float]]:
        """Cached sub-ranges of ``rng`` with their origin timestamps.

        Returns a list of (sub-range, origin_ts); empty on a miss.  The
        union of returned sub-ranges is the cached intersection with
        ``rng`` (they do not overlap each other).  When ``requester`` is
        given, served bytes whose recorded writer is a *different* flow
        are counted as cross-flow hits in :attr:`stats`.
        """
        self.stats.lookups += 1
        self.stats.lookup_bytes += rng.length
        found: list[tuple[ByteRange, float]] = []
        cross_bytes = 0
        remaining = RangeSet([rng])
        for bidx in self._block_span(rng):
            bkey = (key, bidx)
            block = self._blocks.get(bkey)
            if block is None:
                continue
            self._blocks.move_to_end(bkey)
            self._touch(block)
            # Scan this block's stored pieces newest-first so re-stored
            # (retransmitted) data wins, then clip against what is still
            # needed to keep results disjoint.
            for stored_rng, origin_ts, writer in reversed(block.origins):
                if not remaining:
                    break
                part = stored_rng.intersection(rng)
                if part is None or not remaining.overlaps(part):
                    continue
                covered = RangeSet([part])
                for hole in remaining.missing_within(part):
                    covered.remove(hole)
                for sub in covered:
                    found.append((sub, origin_ts))
                    remaining.remove(sub)
                    if (
                        requester is not None
                        and writer is not None
                        and writer != requester
                    ):
                        cross_bytes += sub.length
        if not found:
            return []
        total = sum(r.length for r, _ in found)
        self.stats.hit_bytes += total
        if cross_bytes:
            self.stats.cross_hits += 1
            self.stats.cross_hit_bytes += cross_bytes
        if total >= rng.length:
            self.stats.hits += 1
        else:
            self.stats.partial_hits += 1
        return found

    def contains(self, key: str, rng: ByteRange) -> bool:
        """True if every byte of ``rng`` is cached."""
        for bidx in self._block_span(rng):
            block = self._blocks.get((key, bidx))
            if block is None:
                return False
            bstart = bidx * self.block_bytes
            part = rng.intersection(ByteRange.unchecked(bstart, bstart + self.block_bytes))
            if part is not None and not block.coverage.contains(part):
                return False
        return True

    # -- replacement ----------------------------------------------------

    def lru_candidate(self) -> Optional[int]:
        """Last-touch tick of the block LRU eviction would pick."""
        if not self._blocks:
            return None
        return next(iter(self._blocks.values())).tick

    def lfu_candidate(self) -> Optional[tuple[int, int]]:
        """(freq, seq) of the block LFU eviction would pick."""
        if not self._blocks:
            return None
        return min((b.freq, b.seq) for b in self._blocks.values())

    def evict_one(self) -> int:
        """Evict one block under this cache's policy; returns bytes freed
        (0 if empty).  Shared-pool budgeting (:mod:`repro.workload.budget`)
        uses this to reclaim memory across many caches deterministically."""
        if not self._blocks:
            return 0
        if self.eviction == "lfu":
            # O(n) scan; only paid under memory pressure with LFU selected.
            victim = min(
                self._blocks, key=lambda k: (
                    self._blocks[k].freq, self._blocks[k].seq
                )
            )
            block = self._blocks.pop(victim)
        else:
            _, block = self._blocks.popitem(last=False)
        freed = block.stored_bytes()
        self._stored_bytes -= freed
        self.stats.evictions += 1
        return freed

    def drop_flow(self, key: str) -> int:
        """Discard every block under cache key ``key``; returns bytes freed.

        Called on flow retirement for flow-keyed blocks: once a flow has
        completed, its cached blocks can only serve straggler re-requests,
        so a multi-flow node reclaims them eagerly instead of waiting for
        LRU pressure.  (Content-keyed blocks are *not* dropped at
        retirement — see :meth:`repro.core.midnode.Midnode.retire_flow`.)
        """
        keys = [k for k in self._blocks if k[0] == key]
        freed = 0
        for k in keys:
            freed += self._blocks.pop(k).stored_bytes()
        self._stored_bytes -= freed
        return freed

    @staticmethod
    def _compact(block: _Block) -> None:
        """Collapse a block's origin list onto its coverage intervals.

        Heavy retransmission can pile up many overlapping origin entries;
        compaction rebuilds one entry per covered interval, stamped with
        the block's earliest timestamp (conservative for OWD accounting).
        The writer attribution survives only if the whole block has a
        single writer — mixed history compacts to None (conservative:
        never inflates cross-flow hit counts).
        """
        oldest = min(ts for _, ts, _ in block.origins)
        writers = {w for _, _, w in block.origins}
        writer = writers.pop() if len(writers) == 1 else None
        block.origins = [(iv, oldest, writer) for iv in block.coverage]

    def _evict_if_needed(self) -> None:
        while self._stored_bytes > self.capacity_bytes and self._blocks:
            self.evict_one()
