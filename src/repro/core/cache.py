"""The Midnode block cache (paper Sec. IV-A).

Data is stored in 4096-byte-aligned blocks per flow, addressed by
``(FlowID, block_index)``, with LRU replacement.  The real implementation
stores payload bytes; the simulation stores coverage (which byte ranges of
each block are present) plus the metadata the Consumer's measurements need
(the Producer's original transmission timestamp per range).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.common.ranges import ByteRange, RangeSet


@dataclass
class _Block:
    """Coverage and origin timestamps for one 4096-byte block."""

    coverage: RangeSet = field(default_factory=RangeSet)
    # (range, origin_ts) in insertion order; lookups intersect with these.
    origins: list[tuple[ByteRange, float]] = field(default_factory=list)

    def stored_bytes(self) -> int:
        return len(self.coverage)


@dataclass
class CacheStats:
    lookups: int = 0
    hits: int = 0
    partial_hits: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class BlockCache:
    """LRU block cache keyed by (flow, block index)."""

    MAX_ORIGINS_PER_BLOCK = 64

    def __init__(self, capacity_bytes: int = 64 << 20, block_bytes: int = 4096) -> None:
        if capacity_bytes <= 0 or block_bytes <= 0:
            raise ValueError("capacity and block size must be positive")
        self.capacity_bytes = capacity_bytes
        self.block_bytes = block_bytes
        self._blocks: "OrderedDict[tuple[str, int], _Block]" = OrderedDict()
        self._stored_bytes = 0
        self.stats = CacheStats()

    # ------------------------------------------------------------------

    @property
    def stored_bytes(self) -> int:
        return self._stored_bytes

    def _block_span(self, rng: ByteRange) -> range:
        return range(rng.start // self.block_bytes, (rng.end - 1) // self.block_bytes + 1)

    def store(self, flow_id: str, rng: ByteRange, origin_ts: float) -> None:
        """Insert a received data range (O(1) per touched block)."""
        self.stats.insertions += 1
        for bidx in self._block_span(rng):
            key = (flow_id, bidx)
            block = self._blocks.get(key)
            if block is None:
                block = _Block()
                self._blocks[key] = block
            else:
                self._blocks.move_to_end(key)
            bstart = bidx * self.block_bytes
            part = rng.intersection(ByteRange.unchecked(bstart, bstart + self.block_bytes))
            if part is None:
                continue
            before = block.stored_bytes()
            block.coverage.add(part)
            block.origins.append((part, origin_ts))
            if len(block.origins) > self.MAX_ORIGINS_PER_BLOCK:
                self._compact(block)
            self._stored_bytes += block.stored_bytes() - before
        self._evict_if_needed()

    def lookup(self, flow_id: str, rng: ByteRange) -> list[tuple[ByteRange, float]]:
        """Cached sub-ranges of ``rng`` with their origin timestamps.

        Returns a list of (sub-range, origin_ts); empty on a miss.  The
        union of returned sub-ranges is the cached intersection with
        ``rng`` (they do not overlap each other).
        """
        self.stats.lookups += 1
        found: list[tuple[ByteRange, float]] = []
        remaining = RangeSet([rng])
        for bidx in self._block_span(rng):
            key = (flow_id, bidx)
            block = self._blocks.get(key)
            if block is None:
                continue
            self._blocks.move_to_end(key)
            # Scan this block's stored pieces newest-first so re-stored
            # (retransmitted) data wins, then clip against what is still
            # needed to keep results disjoint.
            for stored_rng, origin_ts in reversed(block.origins):
                if not remaining:
                    break
                part = stored_rng.intersection(rng)
                if part is None or not remaining.overlaps(part):
                    continue
                covered = RangeSet([part])
                for hole in remaining.missing_within(part):
                    covered.remove(hole)
                for sub in covered:
                    found.append((sub, origin_ts))
                    remaining.remove(sub)
        if not found:
            return []
        total = sum(r.length for r, _ in found)
        if total >= rng.length:
            self.stats.hits += 1
        else:
            self.stats.partial_hits += 1
        return found

    def contains(self, flow_id: str, rng: ByteRange) -> bool:
        """True if every byte of ``rng`` is cached."""
        for bidx in self._block_span(rng):
            block = self._blocks.get((flow_id, bidx))
            if block is None:
                return False
            bstart = bidx * self.block_bytes
            part = rng.intersection(ByteRange.unchecked(bstart, bstart + self.block_bytes))
            if part is not None and not block.coverage.contains(part):
                return False
        return True

    def evict_one(self) -> int:
        """Evict the least-recently-used block; returns bytes freed (0 if
        empty).  Shared-pool budgeting (:mod:`repro.workload.budget`) uses
        this to reclaim memory across many caches deterministically."""
        if not self._blocks:
            return 0
        _, block = self._blocks.popitem(last=False)
        freed = block.stored_bytes()
        self._stored_bytes -= freed
        self.stats.evictions += 1
        return freed

    def drop_flow(self, flow_id: str) -> int:
        """Discard every block of ``flow_id``; returns bytes freed.

        Called on flow retirement: once a flow has completed, its cached
        blocks can only serve straggler re-requests, so a multi-flow node
        reclaims them eagerly instead of waiting for LRU pressure.
        """
        keys = [key for key in self._blocks if key[0] == flow_id]
        freed = 0
        for key in keys:
            freed += self._blocks.pop(key).stored_bytes()
        self._stored_bytes -= freed
        return freed

    @staticmethod
    def _compact(block: _Block) -> None:
        """Collapse a block's origin list onto its coverage intervals.

        Heavy retransmission can pile up many overlapping origin entries;
        compaction rebuilds one entry per covered interval, stamped with
        the block's earliest timestamp (conservative for OWD accounting).
        """
        oldest = min(ts for _, ts in block.origins)
        block.origins = [(iv, oldest) for iv in block.coverage]

    def _evict_if_needed(self) -> None:
        while self._stored_bytes > self.capacity_bytes and self._blocks:
            self.evict_one()
