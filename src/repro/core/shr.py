"""Sequence Hole Retransmission: the loss detector of Algorithm 1
(Sec. III-B; its latency benefit is the subject of Figs. 10-11).

Every node runs one :class:`SeqHoleDetector` per flow.  It tracks the
largest byte seen (``lastByte``) and a list of sequence holes.  Processing
one incoming packet (Data or VPH) yields two kinds of actions:

* ``announce``: new holes that must be advertised downstream as Void
  Packet Headers *before* the triggering packet is forwarded, so
  downstream nodes do not detect (and re-request) the same hole;
* ``request``: holes whose skip count crossed the disorder threshold N —
  the node should send a retransmission Interest upstream for them.

Receiving a VPH updates the bookkeeping exactly like data (the range is
"accounted for") but the caller must not cache or deliver it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.ranges import ByteRange


@dataclass
class _Hole:
    rng: ByteRange
    count: int = 0


@dataclass
class ShrActions:
    """What the caller must do after feeding one packet to the detector."""

    announce: list[ByteRange] = field(default_factory=list)
    request: list[ByteRange] = field(default_factory=list)


class SeqHoleDetector:
    """Algorithm 1 (loss detection in SHR), over byte ranges."""

    def __init__(self, disorder_threshold: int = 3, max_holes: int = 1024) -> None:
        if disorder_threshold < 1:
            raise ValueError("disorder threshold must be >= 1")
        self.disorder_threshold = disorder_threshold
        self.max_holes = max_holes
        self.last_byte = 0
        self._holes: list[_Hole] = []
        self.holes_detected = 0
        self.requests_issued = 0
        # Unprimed until the first packet: a detector (re)created mid-flow
        # — a node joining the path, or one whose state was wiped by a
        # crash — adopts the first offset it observes as its baseline.
        # Treating everything before it as a hole would trigger a
        # wholesale re-fetch of the entire delivered prefix.
        self._primed = False

    @property
    def open_holes(self) -> list[ByteRange]:
        return [h.rng for h in self._holes]

    def on_packet(self, rng: ByteRange) -> ShrActions:
        """Feed one received packet (Data or VPH) through Algorithm 1."""
        actions = ShrActions()
        rs, re = rng.start, rng.end
        if not self._primed:
            self._primed = True
            self.last_byte = rs
        if rs > self.last_byte:
            # Case (2): a gap opened in front of this packet.
            hole = ByteRange(self.last_byte, rs)
            actions.announce.append(hole)
            self.holes_detected += 1
            if len(self._holes) < self.max_holes:
                self._holes.append(_Hole(hole))
        elif rs < self.last_byte:
            # Case (3): late/retransmitted data — drop overlapping holes.
            self._delete_overlapping(rng)
        # Update skip counts: every arrival beyond a hole's end is evidence
        # the hole is loss, not disorder.
        still_open: list[_Hole] = []
        for hole in self._holes:
            if rs > hole.rng.end:
                hole.count += 1
                if hole.count > self.disorder_threshold:
                    actions.request.append(hole.rng)
                    self.requests_issued += 1
                    continue  # hole removed: SHR does not track outcomes
            still_open.append(hole)
        self._holes = still_open
        self.last_byte = max(self.last_byte, re)
        return actions

    def _delete_overlapping(self, rng: ByteRange) -> None:
        remaining: list[_Hole] = []
        for hole in self._holes:
            if not hole.rng.overlaps(rng):
                remaining.append(hole)
                continue
            # Partially filled holes shrink to their uncovered pieces.
            if hole.rng.start < rng.start:
                remaining.append(
                    _Hole(ByteRange(hole.rng.start, rng.start), hole.count)
                )
            if rng.end < hole.rng.end:
                remaining.append(_Hole(ByteRange(rng.end, hole.rng.end), hole.count))
        self._holes = remaining
