"""The LEOTP Producer: the data source.

The Producer answers Interests with Data.  It keeps no connection state —
only its own content and, in this reproduction, the first-transmission
timestamp of each byte range (stored in a :class:`BlockCache`) so
retransmitted data carries its original timestamp for end-to-end OWD
measurement, matching how the evaluation measures recovery delay.
"""

from __future__ import annotations

from functools import partial
from typing import Optional

from repro.common.ranges import ByteRange, RangeSet
from repro.core.cache import BlockCache
from repro.core.config import LeotpConfig
from repro.core.paced import PacedSender, ResendSuppressor
from repro.core.wire import DataPacket, Interest
from repro.netsim.link import Link
from repro.netsim.node import Node
from repro.netsim.packet import Packet
from repro.obs.tracer import TRACER
from repro.simcore.simulator import Simulator


class Producer(Node):
    """A LEOTP data source serving one or more flows."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        config: LeotpConfig = LeotpConfig(),
        content_bytes: Optional[int] = None,
    ) -> None:
        super().__init__(sim, name)
        self.config = config
        self.content_bytes = content_bytes  # None = unbounded content
        self._senders: dict[str, PacedSender] = {}
        self._interest_owd: dict[str, float] = {}
        self._served: dict[str, RangeSet] = {}
        self._origins: dict[str, BlockCache] = {}
        # Ranges currently waiting in the sending buffer: duplicate
        # Interests (TR re-requests racing a queued response) are absorbed
        # instead of amplified.
        self._queued: dict[str, RangeSet] = {}
        # Re-serve damping (see ResendSuppressor): a range that left the
        # buffer moments ago is still in flight; serving it again during a
        # recovery storm only deepens the backlog that caused the timeouts.
        self._suppressors: dict[str, ResendSuppressor] = {}
        # Statistics (Fig. 11 measures "traffic the server actually sends").
        self.interests_received = 0
        self.wire_bytes_sent = 0
        self.data_packets_sent = 0
        self.retransmitted_packets = 0

    # ------------------------------------------------------------------

    def _sender_for(self, flow_id: str) -> PacedSender:
        sender = self._senders.get(flow_id)
        if sender is None:
            sender = PacedSender(
                self.sim,
                # partial over the bound method (not a lambda): flow state
                # must survive pickling for shard checkpoint/resume.
                stamp=partial(self._stamp, flow_id),
                paced=True,
                burst_bytes=3.0 * self.config.data_packet_bytes,
                name=f"{self.name}:{flow_id}",
            )
            self._senders[flow_id] = sender
        return sender

    def _stamp(self, flow_id: str, pkt: DataPacket) -> DataPacket:
        now = self.sim.now
        queued = self._queued.get(flow_id)
        if queued is not None:
            queued.remove(pkt.range)
        suppressor = self._suppressors.get(flow_id)
        if suppressor is not None:
            suppressor.record(pkt.range)
        origin = pkt.origin_ts if pkt.retransmitted else now
        if not pkt.retransmitted:
            self._origins.setdefault(
                flow_id,
                BlockCache(64 << 20, self.config.cache_block_bytes),
            ).store(flow_id, pkt.range, now)
        out = DataPacket(
            flow_id,
            pkt.range,
            timestamp=now,
            is_header=False,
            origin_ts=origin,
            echo_interest_owd=self._interest_owd.get(flow_id, 0.0),
            retransmitted=pkt.retransmitted,
        )
        self.wire_bytes_sent += out.size_bytes
        self.data_packets_sent += 1
        if out.retransmitted:
            self.retransmitted_packets += 1
        if TRACER.enabled:
            TRACER.emit(
                now, "data_send", self.name, flow=flow_id,
                start=out.range.start, end=out.range.end,
                retx=out.retransmitted,
            )
        return out

    def backlog_bytes(self, flow_id: str) -> int:
        sender = self._senders.get(flow_id)
        return sender.backlog_bytes if sender else 0

    def retire_flow(self, flow_id: str) -> None:
        """Release every per-flow structure of a completed flow.

        A Producer serving thousands of sequential flows (see
        :mod:`repro.workload`) would otherwise accumulate a sender, a
        served-RangeSet, and an origin cache per flow forever.  Stragglers
        (a TR re-request racing completion) simply rebuild fresh state.
        """
        sender = self._senders.pop(flow_id, None)
        if sender is not None:
            sender.reset()
        self._interest_owd.pop(flow_id, None)
        self._served.pop(flow_id, None)
        self._origins.pop(flow_id, None)
        self._queued.pop(flow_id, None)
        self._suppressors.pop(flow_id, None)

    # ------------------------------------------------------------------

    def on_receive(self, packet: Packet, link: Link) -> None:
        if not isinstance(packet, Interest):
            return
        self.interests_received += 1
        now = self.sim.now
        flow = packet.flow_id
        # Responder-side Interest OWD estimate (half of the hopRTT sample).
        owd = max(now - packet.timestamp, 0.0)
        prev = self._interest_owd.get(flow)
        self._interest_owd[flow] = owd if prev is None else prev + (owd - prev) / 8.0
        sender = self._sender_for(flow)
        sender.set_rate(packet.send_rate_bytes_s)
        reply_link = self._reply_link(link)
        served = self._served.setdefault(flow, RangeSet())
        rng = self._clip_to_content(packet.range)
        if rng is None:
            packet.release()
            return
        queued = self._queued.setdefault(flow, RangeSet())
        suppressor = self._suppressors.get(flow)
        if suppressor is None:
            suppressor = self._suppressors[flow] = ResendSuppressor(
                self.sim, self.config.responder_retx_suppress_s
            )
        for chunk in rng.split(self.config.mss):
            if queued.contains(chunk):
                continue  # a response for this range is already queued
            retransmitted = served.contains(chunk)
            if retransmitted and suppressor.suppressed(
                chunk, sender.drain_time_s()
            ):
                continue  # a copy left the buffer moments ago
            origin_ts = now
            if retransmitted:
                origins = self._origins.get(flow)
                if origins is not None:
                    pieces = origins.lookup(flow, chunk)
                    if pieces:
                        origin_ts = min(ts for _, ts in pieces)
            else:
                served.add(chunk)
            proto = DataPacket(
                flow, chunk, timestamp=now,
                origin_ts=origin_ts, retransmitted=retransmitted,
            )
            # Mark as queued *before* enqueueing: the sender may drain (and
            # stamp/unmark) synchronously when tokens are available.
            queued.add(chunk)
            if not sender.enqueue(proto, reply_link):
                queued.remove(chunk)
        # The Interest is fully answered (responses are fresh DataPackets;
        # retained state keeps only ByteRange objects, not the packet).
        packet.release()

    def _clip_to_content(self, rng: ByteRange) -> Optional[ByteRange]:
        if self.content_bytes is None:
            return rng
        if rng.start >= self.content_bytes:
            return None
        return ByteRange(rng.start, min(rng.end, self.content_bytes))

    def _reply_link(self, in_link: Link):
        """The reverse link of the duplex this Interest arrived on."""
        reply = getattr(in_link, "reply_link", None)
        if reply is None:
            raise RuntimeError(
                f"producer {self.name}: incoming link {in_link.name} has no "
                "reply_link; wire the topology with attach_reply_links()"
            )
        return reply
