"""LEOTP protocol parameters.

Defaults follow the paper: 15-byte LEOTP header over UDP (Sec. IV-B),
4096-byte cache blocks with LRU replacement (Sec. IV-A), SHR disorder
threshold N (Algorithm 1), RFC 6298 RTO with x1.5 backoff for Timeout
Retransmission (Sec. III-B), and the congestion constants k = 0.8 and the
queue threshold M of equation (8) (Sec. III-C).

The ablation flags reproduce Table II's configurations:

=====  ===============  =================
row    enable_cache     hop_by_hop_cc
=====  ===============  =================
A      True             True
B      False            True
C      True             False
D      (no Midnodes — build with coverage=0)
=====  ===============  =================
"""

from __future__ import annotations

from dataclasses import dataclass, replace

LEOTP_HEADER_BYTES = 15
UDP_IP_OVERHEAD_BYTES = 28  # 20 IPv4 + 8 UDP, LEOTP runs over UDP


@dataclass(frozen=True)
class LeotpConfig:
    """Tunable parameters of a LEOTP deployment."""

    # Data plane.
    mss: int = 1400                       # payload bytes per Data packet
    cache_capacity_bytes: int = 64 << 20  # per-Midnode cache
    cache_block_bytes: int = 4096

    # SHR (Sequence Hole Retransmission).
    shr_disorder_threshold: int = 3       # N of Algorithm 1
    shr_max_holes: int = 1024             # safety bound on tracked holes

    # TR (Timeout Retransmission) at the Consumer.
    tr_check_interval_s: float = 0.02
    tr_backoff_factor: float = 1.5
    tr_min_rto_s: float = 0.2
    tr_initial_rto_s: float = 0.5
    tr_max_retries: int = 50
    # Responder-side retransmission damping: a range re-served from a
    # cache (or re-served by the Producer) is not served again within this
    # window, extended by the sending buffer's current drain time.  Kept
    # below tr_min_rto_s so legitimately spaced TR retries are never
    # absorbed; what it kills is the storm where a deep recovery backlog
    # delays data past the RTO and every timeout re-serves bytes that are
    # already on their way down.
    responder_retx_suppress_s: float = 0.15

    # Hop-by-hop congestion control (Sec. III-C).
    initial_cwnd_packets: int = 10
    queue_threshold_bytes: int = 6 * 1400   # M of equation (8)
    cwnd_backoff_factor: float = 0.8        # k of equation (8)
    buffer_target_bytes: int = 8 * 1400     # BL_tar of equation (9)
    # Damping on the backpressure correction term (BL_tar - BL)/hopRTT; a
    # gain of 1 over-reacts to single-packet buffer jitter and produces a
    # bang-bang limit cycle across the hop chain.
    backpressure_gain: float = 0.5
    hoprtt_min_window_s: float = 5.0
    # Window for the Consumer's end-to-end RTT minimum (sizes the in-flight
    # window).  Longer than the hop window: expiry of the true propagation
    # minimum makes the standing Midnode buffers look like new propagation
    # delay and causes periodic re-probing dips.
    e2e_rtt_min_window_s: float = 30.0
    min_rate_bytes_s: float = 25_000.0      # 0.2 Mbps floor
    max_cwnd_bytes: int = 8 << 20
    initial_hoprtt_s: float = 0.05
    # Window growth is delivery-gated: grow only while deliveries track at
    # least this fraction of the window per hopRTT (full-pipe detection).
    utilisation_threshold: float = 0.85
    # The Consumer's in-flight window is rate * e2e RTTmin * this headroom.
    window_headroom: float = 1.1

    # Ablation switches (Table II).
    enable_cache: bool = True   # in-network retransmission (SHR + cache)
    hop_by_hop_cc: bool = True  # False = endpoints-only congestion control
    # Design-choice ablation: disable Void Packet Headers.  Holes are then
    # detected (and re-requested) independently by every downstream node,
    # reproducing the duplicate-retransmission problem VPH exists to solve.
    enable_vph: bool = True

    def with_overrides(self, **kwargs) -> "LeotpConfig":
        """A copy with some fields replaced."""
        return replace(self, **kwargs)

    @property
    def data_packet_bytes(self) -> int:
        """On-the-wire size of a full Data packet."""
        return self.mss + LEOTP_HEADER_BYTES + UDP_IP_OVERHEAD_BYTES

    @property
    def interest_packet_bytes(self) -> int:
        """On-the-wire size of an Interest (header-only plus UDP/IP)."""
        return LEOTP_HEADER_BYTES + UDP_IP_OVERHEAD_BYTES
