"""LEOTP: the paper's information-centric transport protocol."""

from repro.core.cache import BlockCache, CacheStats
from repro.core.config import (
    LEOTP_HEADER_BYTES,
    UDP_IP_OVERHEAD_BYTES,
    LeotpConfig,
)
from repro.core.congestion import (
    CONGESTION_AVOIDANCE,
    SLOW_START,
    HopRateController,
    TokenBucket,
)
from repro.core.consumer import Consumer
from repro.core.flow import LeotpPath, build_leotp_path, midnode_positions
from repro.core.midnode import Midnode, MidnodeStats
from repro.core.multicast import MulticastMidnode
from repro.core.paced import PacedSender
from repro.core.producer import Producer
from repro.core.shr import SeqHoleDetector, ShrActions
from repro.core.wire import DataPacket, Interest, LeotpPacket

__all__ = [
    "BlockCache",
    "CONGESTION_AVOIDANCE",
    "CacheStats",
    "Consumer",
    "DataPacket",
    "HopRateController",
    "Interest",
    "LEOTP_HEADER_BYTES",
    "LeotpConfig",
    "LeotpPacket",
    "LeotpPath",
    "Midnode",
    "MidnodeStats",
    "MulticastMidnode",
    "PacedSender",
    "Producer",
    "SLOW_START",
    "SeqHoleDetector",
    "ShrActions",
    "TokenBucket",
    "UDP_IP_OVERHEAD_BYTES",
    "build_leotp_path",
    "midnode_positions",
]
