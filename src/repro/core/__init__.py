"""LEOTP: the paper's information-centric transport protocol (Sec. III).

The package maps one module per mechanism of the design:

* :mod:`~repro.core.wire` — Interest/Data packets and the byte-range
  naming scheme (Sec. III-A).
* :mod:`~repro.core.consumer` — the pull-based receiver: Timeout
  Retransmission, local SHR, and the last hop's rate control (Sec. III-B/C).
* :mod:`~repro.core.midnode` — the in-network agent: BlockCache,
  hole detection + VPH announcement, hop-by-hop retransmission and rate
  control (Sec. III-B/C, Algorithm 1).
* :mod:`~repro.core.producer` — the stateless-per-packet content source.
* :mod:`~repro.core.congestion` — the hop window of eq. (8) and the
  backpressure rate bound of eq. (9) (Sec. III-C).
* :mod:`~repro.core.shr` — Sequence Hole Retransmission (Algorithm 1).
* :mod:`~repro.core.cache` / :mod:`~repro.core.paced` — block cache and
  token-bucket pacing supporting the above.
* :mod:`~repro.core.flow` — wiring of full paths at a given Midnode
  coverage (the partial-deployment study, Fig. 15).

Instrumentation hooks throughout the package emit to
:data:`repro.obs.TRACER` and are free when tracing is disabled.
"""

from repro.core.cache import BlockCache, CacheStats
from repro.core.config import (
    LEOTP_HEADER_BYTES,
    UDP_IP_OVERHEAD_BYTES,
    LeotpConfig,
)
from repro.core.congestion import (
    CONGESTION_AVOIDANCE,
    SLOW_START,
    HopRateController,
    TokenBucket,
)
from repro.core.consumer import Consumer
from repro.core.flow import LeotpPath, build_leotp_path, midnode_positions
from repro.core.midnode import Midnode, MidnodeStats
from repro.core.multicast import MulticastMidnode
from repro.core.paced import PacedSender
from repro.core.producer import Producer
from repro.core.shr import SeqHoleDetector, ShrActions
from repro.core.wire import DataPacket, Interest, LeotpPacket

__all__ = [
    "BlockCache",
    "CONGESTION_AVOIDANCE",
    "CacheStats",
    "Consumer",
    "DataPacket",
    "HopRateController",
    "Interest",
    "LEOTP_HEADER_BYTES",
    "LeotpConfig",
    "LeotpPacket",
    "LeotpPath",
    "Midnode",
    "MidnodeStats",
    "MulticastMidnode",
    "PacedSender",
    "Producer",
    "SLOW_START",
    "SeqHoleDetector",
    "ShrActions",
    "TokenBucket",
    "UDP_IP_OVERHEAD_BYTES",
    "build_leotp_path",
    "midnode_positions",
]
