"""The Responder's sending buffer and token-bucket drain loop.

Every node that responds with Data (Producer or Midnode) queues outgoing
packets per flow in a :class:`PacedSender`.  The drain rate is the
``sendRate`` piggybacked on the latest Interest from the downstream
Requester (paper Fig. 9); with hop-by-hop control disabled (ablation
row C) the buffer drains immediately and only endpoints pace.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.core.congestion import TokenBucket
from repro.core.wire import DataPacket
from repro.obs.tracer import TRACER
from repro.simcore.simulator import Simulator


class ResendSuppressor:
    """Remembers when byte ranges last left a sending buffer.

    Responders consult it before re-serving a range from cache: a copy
    that departed less than ``floor_s`` ago (extended by however long the
    current backlog takes to drain) is almost certainly still in flight,
    so serving another is pure amplification.  The floor sits below the
    Consumer's minimum RTO, so legitimately spaced TR retries always get
    through; what this suppresses is the recovery-storm regime where
    queueing delay exceeds the RTO.
    """

    MAX_ENTRIES = 8192

    def __init__(self, sim: Simulator, floor_s: float) -> None:
        self.sim = sim
        self.floor_s = floor_s
        self._sent: dict[tuple[int, int], float] = {}
        self.suppressed_count = 0

    def record(self, rng) -> None:
        if self.floor_s <= 0:
            return
        if len(self._sent) >= self.MAX_ENTRIES:
            self._prune()
        self._sent[(rng.start, rng.end)] = self.sim.now

    def suppressed(self, rng, extra_window_s: float = 0.0) -> bool:
        """True if ``rng`` left the buffer within the suppression window."""
        if self.floor_s <= 0:
            return False
        last = self._sent.get((rng.start, rng.end))
        if last is None:
            return False
        window = max(self.floor_s, extra_window_s)
        if self.sim.now - last < window:
            self.suppressed_count += 1
            return True
        return False

    def _prune(self) -> None:
        # Anything older than a generous multiple of the floor can never
        # suppress again (drain-time extensions are transient).
        horizon = self.sim.now - 100.0 * self.floor_s
        self._sent = {k: t for k, t in self._sent.items() if t >= horizon}
        if len(self._sent) >= self.MAX_ENTRIES:  # degenerate clock: hard cap
            self._sent.clear()


class PacedSender:
    """FIFO sending buffer drained through a token bucket onto one link."""

    def __init__(
        self,
        sim: Simulator,
        stamp: Callable[[DataPacket], DataPacket],
        paced: bool = True,
        initial_rate_bytes_s: float = 125_000.0,
        burst_bytes: float = 3000.0,
        max_buffer_bytes: int = 4 << 20,
        name: str = "paced",
    ) -> None:
        self.sim = sim
        self.name = name
        self.paced = paced
        self._stamp = stamp
        self.bucket = TokenBucket(sim, initial_rate_bytes_s, burst_bytes)
        self.max_buffer_bytes = max_buffer_bytes
        self._queue: deque[DataPacket] = deque()
        self._buffered_bytes = 0
        self._link = None
        # Drain ticks are fire-and-forget kernel events (no Event handle
        # allocated per packet); a generation counter invalidates pending
        # ticks on reset() instead of cancelling them.
        self._drain_scheduled = False
        self._drain_gen = 0
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_dropped = 0
        self.max_backlog_bytes = 0  # high-water mark (buffer-bound invariant)

    # ------------------------------------------------------------------

    @property
    def backlog_bytes(self) -> int:
        """Current sending-buffer length (the BL of equation (9))."""
        return self._buffered_bytes

    @property
    def backlog_packets(self) -> int:
        return len(self._queue)

    def drain_time_s(self) -> float:
        """How long the current backlog takes to leave at the paced rate."""
        if not self.paced or self._buffered_bytes == 0:
            return 0.0
        return self._buffered_bytes / self.bucket.rate_bytes_s

    def set_rate(self, rate_bytes_s: float) -> None:
        self.bucket.set_rate(max(rate_bytes_s, 1.0))

    def enqueue(self, packet: DataPacket, link) -> bool:
        """Queue ``packet`` for transmission on ``link``.

        The link argument is remembered: subsequent drains use the most
        recent one (per-flow senders always target a single neighbour).
        Returns False when the buffer overflowed.
        """
        self._link = link
        if self._buffered_bytes + packet.size_bytes > self.max_buffer_bytes:
            self.packets_dropped += 1
            if TRACER.enabled:
                TRACER.emit(
                    self.sim.now, "buffer_drop", self.name,
                    flow=packet.flow_id, start=packet.range.start,
                    end=packet.range.end, backlog=self._buffered_bytes,
                )
            return False
        self._queue.append(packet)
        self._buffered_bytes += packet.size_bytes
        if self._buffered_bytes > self.max_backlog_bytes:
            self.max_backlog_bytes = self._buffered_bytes
        self._drain()
        return True

    def reset(self) -> int:
        """Discard the buffer and cancel any pending drain (node crash).

        Returns the number of packets thrown away.
        """
        dropped = len(self._queue)
        self.packets_dropped += dropped
        self._queue.clear()
        self._buffered_bytes = 0
        self._drain_gen += 1  # any in-flight drain tick becomes stale
        self._drain_scheduled = False
        return dropped

    # ------------------------------------------------------------------

    def _drain(self) -> None:
        while self._queue:
            pkt = self._queue[0]
            if self.paced and not self.bucket.try_consume(pkt.size_bytes):
                self._schedule_drain(self.bucket.delay_until_available(pkt.size_bytes))
                return
            self._queue.popleft()
            self._buffered_bytes -= pkt.size_bytes
            out = self._stamp(pkt)
            self.packets_sent += 1
            self.bytes_sent += out.size_bytes
            assert self._link is not None
            self._link.send(out)

    def _schedule_drain(self, delay: float) -> None:
        if self._drain_scheduled:
            return
        self._drain_scheduled = True
        self.sim.schedule_call(
            max(delay, 1e-6), self._drain_tick, self._drain_gen
        )

    def _drain_tick(self, gen: int) -> None:
        if gen != self._drain_gen:
            return  # stale tick from before a reset()
        self._drain_scheduled = False
        self._drain()
