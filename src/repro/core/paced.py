"""The Responder's sending buffer and token-bucket drain loop.

Every node that responds with Data (Producer or Midnode) queues outgoing
packets per flow in a :class:`PacedSender`.  The drain rate is the
``sendRate`` piggybacked on the latest Interest from the downstream
Requester (paper Fig. 9); with hop-by-hop control disabled (ablation
row C) the buffer drains immediately and only endpoints pace.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.core.congestion import TokenBucket
from repro.core.wire import DataPacket
from repro.simcore.simulator import Simulator


class PacedSender:
    """FIFO sending buffer drained through a token bucket onto one link."""

    def __init__(
        self,
        sim: Simulator,
        stamp: Callable[[DataPacket], DataPacket],
        paced: bool = True,
        initial_rate_bytes_s: float = 125_000.0,
        burst_bytes: float = 3000.0,
        max_buffer_bytes: int = 4 << 20,
        name: str = "paced",
    ) -> None:
        self.sim = sim
        self.name = name
        self.paced = paced
        self._stamp = stamp
        self.bucket = TokenBucket(sim, initial_rate_bytes_s, burst_bytes)
        self.max_buffer_bytes = max_buffer_bytes
        self._queue: deque[DataPacket] = deque()
        self._buffered_bytes = 0
        self._link = None
        self._drain_event = None
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_dropped = 0

    # ------------------------------------------------------------------

    @property
    def backlog_bytes(self) -> int:
        """Current sending-buffer length (the BL of equation (9))."""
        return self._buffered_bytes

    @property
    def backlog_packets(self) -> int:
        return len(self._queue)

    def set_rate(self, rate_bytes_s: float) -> None:
        self.bucket.set_rate(max(rate_bytes_s, 1.0))

    def enqueue(self, packet: DataPacket, link) -> bool:
        """Queue ``packet`` for transmission on ``link``.

        The link argument is remembered: subsequent drains use the most
        recent one (per-flow senders always target a single neighbour).
        Returns False when the buffer overflowed.
        """
        self._link = link
        if self._buffered_bytes + packet.size_bytes > self.max_buffer_bytes:
            self.packets_dropped += 1
            return False
        self._queue.append(packet)
        self._buffered_bytes += packet.size_bytes
        self._drain()
        return True

    # ------------------------------------------------------------------

    def _drain(self) -> None:
        while self._queue:
            pkt = self._queue[0]
            if self.paced and not self.bucket.try_consume(pkt.size_bytes):
                self._schedule_drain(self.bucket.delay_until_available(pkt.size_bytes))
                return
            self._queue.popleft()
            self._buffered_bytes -= pkt.size_bytes
            out = self._stamp(pkt)
            self.packets_sent += 1
            self.bytes_sent += out.size_bytes
            assert self._link is not None
            self._link.send(out)

    def _schedule_drain(self, delay: float) -> None:
        if self._drain_event is not None and not self._drain_event.cancelled:
            return
        self._drain_event = self.sim.schedule(max(delay, 1e-6), self._drain_tick)

    def _drain_tick(self) -> None:
        self._drain_event = None
        self._drain()
