"""Backpressure hop-by-hop congestion control (paper Sec. III-C).

Each hop's *Requester* (the node sending Interests on that hop) runs a
:class:`HopRateController`:

* hopRTT is measured per packet as Interest-OWD + Data-OWD, smoothed with
  an EWMA; ``hopRTT_min`` is the minimum over the last 5 seconds.
* ``cwnd`` follows equation (8): multiplicative increase in slow start,
  +1 MSS per hopRTT in congestion avoidance, and ``k*BDP`` (k = 0.8) when
  the estimated queue exceeds the threshold M, where ``BDP = throughput *
  hopRTT_min`` (6) and ``QueueLen = throughput * (hopRTT - hopRTT_min)``
  (7).
* the advertised rate is ``min(cwnd / hopRTT, rate_bp)`` (10) with the
  backpressure bound ``rate_bp = rate_nextHop + (BL - BL_tar)/hopRTT``
  (9) applied at Midnodes (``BL`` = sending-buffer backlog).

The *Responder* paces Data with a :class:`TokenBucket` driven by the rate
piggybacked on incoming Interests.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.core.config import LeotpConfig
from repro.simcore.simulator import Simulator

SLOW_START = "SLOW_START"
CONGESTION_AVOIDANCE = "CONGESTION_AVOIDANCE"


class TokenBucket:
    """Continuous-replenishment token bucket (the Responder's Rate Limiter)."""

    def __init__(
        self,
        sim: Simulator,
        rate_bytes_s: float,
        burst_bytes: float = 3000.0,
    ) -> None:
        if rate_bytes_s <= 0 or burst_bytes <= 0:
            raise ValueError("rate and burst must be positive")
        self.sim = sim
        self._rate = rate_bytes_s
        self.burst_bytes = burst_bytes
        self._tokens = burst_bytes
        self._last_update = sim.now

    @property
    def rate_bytes_s(self) -> float:
        return self._rate

    @property
    def tokens_available(self) -> float:
        """Current token level, read-only (used by metrics samplers)."""
        elapsed = self.sim.now - self._last_update
        return min(self.burst_bytes, self._tokens + elapsed * self._rate)

    def set_rate(self, rate_bytes_s: float) -> None:
        if rate_bytes_s <= 0:
            raise ValueError("rate must be positive")
        self._replenish()
        self._rate = rate_bytes_s

    def _replenish(self) -> None:
        now = self.sim.now
        self._tokens = min(
            self.burst_bytes, self._tokens + (now - self._last_update) * self._rate
        )
        self._last_update = now

    def try_consume(self, nbytes: int) -> bool:
        self._replenish()
        if self._tokens >= nbytes:
            self._tokens -= nbytes
            return True
        return False

    def delay_until_available(self, nbytes: int) -> float:
        """Seconds until ``nbytes`` tokens will have accumulated (0 if now)."""
        self._replenish()
        deficit = nbytes - self._tokens
        return max(deficit / self._rate, 0.0)


class HopRateController:
    """The Requester-side rate controller of one hop of one flow."""

    def __init__(
        self,
        sim: Simulator,
        config: LeotpConfig,
        buffer_len_fn: Optional[Callable[[], int]] = None,
        name: str = "hopcc",
    ) -> None:
        self.sim = sim
        self.config = config
        self.name = name
        # ``None`` marks an endpoint Requester (the Consumer): no sending
        # buffer, so the backpressure bound does not apply.
        self._buffer_len_fn = buffer_len_fn
        self.state = SLOW_START
        self.cwnd_bytes = float(config.initial_cwnd_packets * config.mss)
        self.hoprtt_s: Optional[float] = None       # EWMA
        self._min_samples: deque[tuple[float, float]] = deque()
        self.hoprtt_min_s: Optional[float] = None
        self.next_hop_rate_bytes_s: Optional[float] = None
        self._delivered_since_tick = 0
        self._last_tick = sim.now
        self.last_throughput_bytes_s = 0.0
        self.ticks = 0
        self.congestion_events = 0
        self.route_changes_detected = 0
        self._high_rtt_streak = 0
        self._streak_low = float("inf")

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def _current_hoprtt(self) -> float:
        return self.hoprtt_s if self.hoprtt_s is not None else self.config.initial_hoprtt_s

    def on_data(self, nbytes: int, hoprtt_sample: float) -> None:
        """Account one received Data packet with its hopRTT sample."""
        if hoprtt_sample > 0:
            if self.hoprtt_s is None:
                self.hoprtt_s = hoprtt_sample
            else:
                self.hoprtt_s += (hoprtt_sample - self.hoprtt_s) / 8.0
            self._update_min(hoprtt_sample)
        self._delivered_since_tick += nbytes
        if self.sim.now - self._last_tick >= self._current_hoprtt():
            self._tick()

    ROUTE_CHANGE_FACTOR = 1.2   # persistent RTT above min*this = new path
    ROUTE_CHANGE_SAMPLES = 12   # consecutive high samples before resetting

    def _update_min(self, sample: float) -> None:
        now = self.sim.now
        window = self.config.hoprtt_min_window_s
        # Monotonic min-filter over the last ``window`` seconds.
        while self._min_samples and self._min_samples[-1][1] >= sample:
            self._min_samples.pop()
        self._min_samples.append((now, sample))
        while self._min_samples and self._min_samples[0][0] < now - window:
            self._min_samples.popleft()
        self.hoprtt_min_s = self._min_samples[0][1]
        # Route-change detection: after a LEO path switch the propagation
        # delay itself moves, and a stale minimum makes the new (longer)
        # path look permanently congested.  A sustained run of samples all
        # well above the minimum cannot be queueing we caused — queues we
        # cause drain within a hopRTT once the window backs off — so treat
        # it as a new path and restart the filter from the recent samples.
        if sample > self.hoprtt_min_s * self.ROUTE_CHANGE_FACTOR:
            self._high_rtt_streak += 1
            self._streak_low = min(self._streak_low, sample)
            if self._high_rtt_streak >= self.ROUTE_CHANGE_SAMPLES:
                self._min_samples.clear()
                self._min_samples.append((now, self._streak_low))
                self.hoprtt_min_s = self._streak_low
                self._high_rtt_streak = 0
                self._streak_low = float("inf")
                self.route_changes_detected += 1
        else:
            self._high_rtt_streak = 0
            self._streak_low = float("inf")

    # ------------------------------------------------------------------
    # Window adjustment: equation (8), once per hopRTT
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_tick
        self._last_tick = now
        self.ticks += 1
        delivered = self._delivered_since_tick
        throughput = delivered / elapsed if elapsed > 0 else 0.0
        self.last_throughput_bytes_s = throughput
        self._delivered_since_tick = 0
        cfg = self.config
        rtt = self._current_hoprtt()
        rtt_min = self.hoprtt_min_s if self.hoprtt_min_s is not None else rtt
        bdp = throughput * rtt_min
        queue_len = throughput * max(rtt - rtt_min, 0.0)
        # The queue threshold scales with the control loop's BDP: a loop
        # spanning many hops (endpoint-only control, long Starlink paths)
        # sees proportionally more RTT jitter than a single-hop loop.
        threshold = max(float(cfg.queue_threshold_bytes), 0.1 * bdp)
        floor = 4.0 * cfg.mss
        # Growth is delivery-coupled, as in any ACK-clocked window scheme:
        # doubling per hopRTT happens only when a full window was actually
        # delivered, and additive increase only while the window is being
        # used — otherwise a stalled path lets the window diverge.
        utilised = delivered >= cfg.utilisation_threshold * self.cwnd_bytes
        if self.state == CONGESTION_AVOIDANCE and delivered == 0:
            # Delivery stall (handover blackout, path outage): additive
            # increase would take seconds to refill the pipe, so restart
            # probing multiplicatively, like TCP's slow start after idle.
            self.state = SLOW_START
        if self.state == SLOW_START:
            if queue_len > threshold:
                self.state = CONGESTION_AVOIDANCE
                self.congestion_events += 1
                self.cwnd_bytes = max(cfg.cwnd_backoff_factor * bdp, floor)
            elif self.ticks > 2 and not utilised:
                # Full pipe: deliveries no longer track the window, so the
                # path is saturated even though this hop shows no queue
                # (the bottleneck is remote).  Settle at the measured BDP.
                self.state = CONGESTION_AVOIDANCE
                self.cwnd_bytes = max(cfg.cwnd_backoff_factor * bdp, floor)
            else:
                self.cwnd_bytes = min(self.cwnd_bytes * 2.0, self.cwnd_bytes + delivered)
        else:
            if queue_len <= threshold:
                if utilised:
                    self.cwnd_bytes += cfg.mss
            else:
                self.congestion_events += 1
                self.cwnd_bytes = max(cfg.cwnd_backoff_factor * bdp, floor)
        self.cwnd_bytes = min(
            max(self.cwnd_bytes, floor), float(cfg.max_cwnd_bytes)
        )

    # ------------------------------------------------------------------
    # Outputs: equations (9) and (10)
    # ------------------------------------------------------------------

    def backpressure_rate(self) -> Optional[float]:
        """Equation (9), or None when it does not constrain this node."""
        if self._buffer_len_fn is None or self.next_hop_rate_bytes_s is None:
            return None
        rtt = self._current_hoprtt()
        bl = self._buffer_len_fn()
        correction = (self.config.buffer_target_bytes - bl) / rtt
        return self.next_hop_rate_bytes_s + self.config.backpressure_gain * correction

    def sending_rate_bytes_s(self) -> float:
        """Equation (10): the rate piggybacked on Interests."""
        rate = self.cwnd_bytes / self._current_hoprtt()
        bp = self.backpressure_rate()
        if bp is not None:
            rate = min(rate, bp)
        return max(rate, self.config.min_rate_bytes_s)
