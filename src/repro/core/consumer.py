"""The LEOTP Consumer: pull-based receiver, TR reliability, rate control
(Sec. III-B reliability, Sec. III-C congestion control; evaluated in
Figs. 4-5 and 10-12).

The Consumer is the only node that tracks ongoing transfers (the paper's
"only the receiver records the states of ongoing packets").  It:

* emits Interests for consecutive MSS-sized ranges, paced at the rate of
  its hop controller (it is the Requester of the last hop);
* runs Timeout Retransmission: unsatisfied Interests are re-sent after an
  RFC 6298 RTO, with x1.5 exponential backoff on repeats;
* resets TR deadlines when a Void Packet Header arrives (the hole is
  already being repaired in-network);
* runs the SHR detector locally, re-requesting confirmed holes at once;
* records per-packet delivery metrics for the experiment harness.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.common.ranges import ByteRange, RangeSet
from repro.common.rto import RtoEstimator
from repro.core.config import LeotpConfig
from repro.core.congestion import HopRateController
from repro.core.shr import SeqHoleDetector
from repro.core.wire import DataPacket, Interest
from repro.netsim.link import Link
from repro.netsim.node import Node
from repro.netsim.packet import Packet
from repro.netsim.trace import FlowRecorder
from repro.obs.tracer import TRACER
from repro.simcore.simulator import Simulator


class _InterestState:
    __slots__ = ("rng", "first_sent", "last_sent", "deadline", "retries")

    def __init__(self, rng: ByteRange, now: float, rto: float) -> None:
        self.rng = rng
        self.first_sent = now
        self.last_sent = now
        self.deadline = now + rto
        self.retries = 0


class Consumer(Node):
    """A LEOTP receiving endpoint fetching one flow."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        flow_id: str,
        config: LeotpConfig = LeotpConfig(),
        total_bytes: Optional[int] = None,
        recorder: Optional[FlowRecorder] = None,
        start_time: float = 0.0,
        stop_time: Optional[float] = None,
        deliver: Optional["Callable[[int, float], None]"] = None,
        on_complete: Optional["Callable[[Consumer], None]"] = None,
    ) -> None:
        super().__init__(sim, name)
        self.flow_id = flow_id
        self.config = config
        self.total_bytes = total_bytes
        self.recorder = recorder
        self.stop_time = stop_time
        # Optional in-order delivery callback (gateways, applications):
        # called with (nbytes, origin_ts) as the contiguous frontier advances.
        self.deliver = deliver
        # Optional completion callback (flow pools, closed-loop workloads):
        # called once, with this Consumer, when the last byte arrives.
        self.on_complete = on_complete
        self._delivered_next = 0
        self.out_link: Optional[Link] = None  # toward the Producer
        self.cc = HopRateController(sim, config, name=f"{name}:cc")
        self.rto = RtoEstimator(
            initial_rto_s=config.tr_initial_rto_s, min_rto_s=config.tr_min_rto_s
        )
        self.shr = SeqHoleDetector(
            config.shr_disorder_threshold, config.shr_max_holes
        )
        self._received = RangeSet()
        self._outstanding: dict[int, _InterestState] = {}
        self._outstanding_bytes = 0
        self._next_offset = 0
        # Windowed minimum of the end-to-end Interest RTT (monotonic deque):
        # the propagation RTT used to size the in-flight window.
        self._rtt_min_samples: deque[tuple[float, float]] = deque()
        self.completed_at: Optional[float] = None
        # Statistics.
        self.interests_sent = 0
        self.retransmission_interests = 0
        self.tr_expirations = 0
        self.vph_received = 0
        self.bytes_received = 0
        self.duplicate_bytes_received = 0  # bytes arriving more than once
        self.max_outstanding_bytes = 0     # in-flight high-water mark
        self.max_interest_retries = 0      # worst per-Interest retry count
        self._started = False
        sim.schedule_call(start_time, self.start)

    # ------------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.completed_at is not None

    @property
    def delivered_bytes(self) -> int:
        """Contiguous in-order bytes handed to the application so far."""
        return self._delivered_next

    @property
    def outstanding_bytes(self) -> int:
        """Bytes covered by Interests currently in flight."""
        return self._outstanding_bytes

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._emit_tick()
        self._tr_tick()

    def _active(self) -> bool:
        if self.finished:
            return False
        return self.stop_time is None or self.sim.now < self.stop_time

    # ------------------------------------------------------------------
    # Interest emission (paced by the hop controller's rate)
    # ------------------------------------------------------------------

    def _have_more_to_request(self) -> bool:
        return self.total_bytes is None or self._next_offset < self.total_bytes

    def _request_rate_bytes_s(self) -> float:
        """The rate piggybacked on Interests (last hop's controller).

        The controller's delivery-gated growth bounds this at roughly
        twice the path's delivery rate even when the bottleneck is remote
        and the last hop never shows a queue.
        """
        return max(self.cc.sending_rate_bytes_s(), self.config.min_rate_bytes_s)

    def _outstanding_cap(self) -> float:
        # Interests in flight cover the *whole path* (request -> Producer ->
        # data back), so the window is the controlled rate times the
        # end-to-end Interest RTT (plus headroom), while the rate itself is
        # governed by the last hop's controller.  This bounds the backlog
        # any Responder can accumulate to a fraction of one RTT's worth.
        rate = self._request_rate_bytes_s()
        rtt_min = self._e2e_rtt_min()
        # The effective round trip includes the standing buffers Midnodes
        # deliberately hold (the BL_tar smoothing reservoir), which the
        # propagation RTT misses.  Blending in the smoothed RTT covers them
        # while the 0.5 gain and the 3x cap keep the feedback loop stable.
        srtt = self.rto.srtt_s if self.rto.srtt_s is not None else rtt_min
        effective_rtt = 0.5 * rtt_min + 0.5 * min(srtt, 3.0 * rtt_min)
        return max(
            self.config.window_headroom * rate * effective_rtt,
            8.0 * self.config.mss,
        )

    def _e2e_rtt_min(self) -> float:
        """Propagation-level Interest RTT (windowed minimum, 10 s)."""
        if self._rtt_min_samples:
            return self._rtt_min_samples[0][1]
        return self.rto.srtt_s if self.rto.srtt_s is not None else 0.1

    def _record_rtt_min(self, sample: float) -> None:
        now = self.sim.now
        window = self.config.e2e_rtt_min_window_s
        while self._rtt_min_samples and self._rtt_min_samples[-1][1] >= sample:
            self._rtt_min_samples.pop()
        self._rtt_min_samples.append((now, sample))
        while self._rtt_min_samples and self._rtt_min_samples[0][0] < now - window:
            self._rtt_min_samples.popleft()

    def _emit_tick(self) -> None:
        """Periodic safety tick: keeps the window filled even when no
        delivery event triggers :meth:`_fill_window` (startup, stalls)."""
        if not self._active():
            return
        self._fill_window()
        rate = self._request_rate_bytes_s()
        self.sim.schedule_call(self.config.mss / rate, self._emit_tick)

    def _fill_window(self) -> None:
        """Emit new Interests up to the in-flight window.

        Emission is delivery-clocked: each arriving Data packet frees
        window space and immediately pulls the next Interest, so in steady
        state the Interest rate equals the delivery rate (the bursts this
        allows are smoothed by the Responders' token buckets).
        """
        while self._have_more_to_request() and (
            self._outstanding_bytes + self.config.mss <= self._outstanding_cap()
        ):
            end = self._next_offset + self.config.mss
            if self.total_bytes is not None:
                end = min(end, self.total_bytes)
            rng = ByteRange.unchecked(self._next_offset, end)
            self._next_offset = end
            self._send_interest(rng, retransmission=False)

    def _send_interest(self, rng: ByteRange, retransmission: bool) -> None:
        if self.out_link is None:
            raise RuntimeError(f"consumer {self.name} has no outgoing link")
        now = self.sim.now
        interest = Interest(
            self.flow_id, rng,
            timestamp=now,
            send_rate_bytes_s=self._request_rate_bytes_s(),
            is_retransmission=retransmission,
        )
        self.interests_sent += 1
        if retransmission:
            self.retransmission_interests += 1
        state = self._outstanding.get(rng.start)
        if state is None:
            state = _InterestState(rng, now, self.rto.rto_s)
            self._outstanding[rng.start] = state
            self._outstanding_bytes += rng.length
            if self._outstanding_bytes > self.max_outstanding_bytes:
                self.max_outstanding_bytes = self._outstanding_bytes
        else:
            state.last_sent = now
            state.retries += 1
            if state.retries > self.max_interest_retries:
                self.max_interest_retries = state.retries
            # Exponential backoff, clamped: during a long outage the
            # uncapped product would push deadlines minutes out and freeze
            # recovery long after connectivity returns.
            timeout = min(
                self.rto.rto_s * (self.config.tr_backoff_factor ** state.retries),
                self.rto.max_rto_s,
            )
            state.deadline = now + timeout
        if TRACER.enabled:
            TRACER.emit(
                now, "interest_send", self.name, flow=self.flow_id,
                start=rng.start, end=rng.end, retx=retransmission,
                rate=interest.send_rate_bytes_s,
            )
        self.out_link.send(interest)

    # ------------------------------------------------------------------
    # Timeout Retransmission
    # ------------------------------------------------------------------

    def _tr_tick(self) -> None:
        if not self._active():
            return
        now = self.sim.now
        for state in list(self._outstanding.values()):
            if state.deadline <= now:
                if state.retries >= self.config.tr_max_retries:
                    continue  # give up silently; reliability bound reached
                self.tr_expirations += 1
                if TRACER.enabled:
                    TRACER.emit(
                        now, "tr_expire", self.name, flow=self.flow_id,
                        start=state.rng.start, end=state.rng.end,
                        retries=state.retries, rto_s=self.rto.rto_s,
                    )
                self._send_interest(state.rng, retransmission=True)
        self.sim.schedule_call(self.config.tr_check_interval_s, self._tr_tick)

    # ------------------------------------------------------------------
    # Reception
    # ------------------------------------------------------------------

    def on_receive(self, packet: Packet, link: Link) -> None:
        if not isinstance(packet, DataPacket) or packet.flow_id != self.flow_id:
            return
        if packet.is_header:
            self._on_vph(packet)
            packet.release()
            return
        now = self.sim.now
        rng = packet.range
        # Congestion feedback: Data-OWD plus the echoed Interest-OWD.  With
        # hop-by-hop control Midnodes re-stamp per hop, so this measures the
        # last hop; with endpoint-only control (ablation C/D) timestamps
        # survive end-to-end and the same sum measures the full path.
        sample = max(now - packet.timestamp, 0.0) + packet.echo_interest_owd
        if not self.config.hop_by_hop_cc and packet.retransmitted:
            # Endpoint-only control: a cache-served copy travelled a shorter
            # path, and its timestamp would poison the path's RTT minimum.
            sample = 0.0
        self.cc.on_data(packet.payload_bytes, sample)
        # SHR at the receiving endpoint: re-request confirmed holes now.
        actions = self.shr.on_packet(rng)
        for hole in actions.request:
            self._request_hole(hole)
        # Delivery accounting (first arrival of each byte only):
        # missing_within() yields exactly the not-yet-received sub-ranges.
        new_bytes = sum(r.length for r in self._received.missing_within(rng))
        self.duplicate_bytes_received += rng.length - new_bytes
        if TRACER.enabled:
            TRACER.emit(
                now, "data_recv", self.name, flow=self.flow_id,
                start=rng.start, end=rng.end, new_bytes=new_bytes,
                owd_s=now - packet.origin_ts, retx=packet.retransmitted,
            )
        if new_bytes > 0:
            self.bytes_received += new_bytes
            if self.recorder is not None:
                self.recorder.on_delivery(
                    new_bytes,
                    now - packet.origin_ts,
                    retransmitted=packet.retransmitted,
                )
        self._received.add(rng)
        if self.deliver is not None:
            new_next = self._received.first_missing_from(self._delivered_next)
            if new_next > self._delivered_next:
                delta = new_next - self._delivered_next
                self._delivered_next = new_next
                self.deliver(delta, packet.origin_ts)
        self._satisfy(rng)
        self._fill_window()
        if (
            self.total_bytes is not None
            and self.completed_at is None
            and self._received.contains(ByteRange(0, self.total_bytes))
        ):
            self.completed_at = now
            if TRACER.enabled:
                TRACER.emit(
                    now, "flow_complete", self.name, flow=self.flow_id,
                    total_bytes=self.total_bytes,
                )
            if self.on_complete is not None:
                self.on_complete(self)
        # Terminal hop: the stamped copy delivered here has no other
        # holder (retained state is the ByteRange, not the packet).
        packet.release()

    def _on_vph(self, packet: DataPacket) -> None:
        """A hole notification: in-network repair is under way, so push the
        TR deadline of the overlapping Interests out by one fresh RTO."""
        self.vph_received += 1
        now = self.sim.now
        if TRACER.enabled:
            TRACER.emit(
                now, "vph_recv", self.name, flow=self.flow_id,
                start=packet.range.start, end=packet.range.end,
            )
        self.shr.on_packet(packet.range)
        for state in self._outstanding.values():
            if state.rng.overlaps(packet.range):
                state.deadline = max(state.deadline, now + self.rto.rto_s)

    def _request_hole(self, hole: ByteRange) -> None:
        """SHR-confirmed hole: immediately re-request overlapping Interests."""
        if TRACER.enabled:
            TRACER.emit(
                self.sim.now, "shr_request", self.name, flow=self.flow_id,
                start=hole.start, end=hole.end,
            )
        for state in list(self._outstanding.values()):
            if state.rng.overlaps(hole) and state.retries < self.config.tr_max_retries:
                self._send_interest(state.rng, retransmission=True)

    def _satisfy(self, rng: ByteRange) -> None:
        # Fast path: Data ranges normally match Interest ranges one-to-one
        # (both are MSS-chunked from the same offsets).
        state = self._outstanding.get(rng.start)
        if state is not None and state.rng == rng:
            self._complete_interest(state)
            return
        for start in list(self._outstanding):
            st = self._outstanding.get(start)
            if st is not None and st.rng.overlaps(rng):
                self._complete_interest(st)

    def _complete_interest(self, state: _InterestState) -> None:
        if not self._received.contains(state.rng):
            return
        if state.retries == 0:
            # Karn's rule: only unambiguous (never-retried) Interests feed
            # the RTT estimators.  Fresh Interests flow continuously, so
            # the estimator cannot starve; sampling retried ones from
            # first_sent would fold outage time into the RTO and freeze
            # recovery for seconds after a handover blackout.
            rtt = self.sim.now - state.last_sent
            if rtt > 0:
                self._record_rtt_min(rtt)
                self.rto.on_sample(rtt)
        del self._outstanding[state.rng.start]
        self._outstanding_bytes -= state.rng.length
