"""Experiment harness: one module per figure/table of the paper.

Every module exposes ``run(scale=1.0, seed=0) -> ExperimentResult``; run a
module directly (``python -m repro.experiments.fig12_plr_throughput``) to
print its table.  ``ALL_EXPERIMENTS`` maps experiment ids to their run
callables for programmatic sweeps.
"""

from repro.experiments import (
    ablation_parameters,
    constellation_study,
    ablation_vph,
    ccbench,
    chaos_suite,
    churn_study,
    content_study,
    fig01_bandwidth,
    fig02_plr_hops,
    fig03_owd_model,
    fig04_split_tradeoff,
    fig05_fluctuation,
    fig10_retx_owd,
    fig11_retx_traffic,
    fig12_plr_throughput,
    fig13_link_switching,
    fig14_fluctuation_tradeoff,
    fig15_fairness,
    fig16_starlink_no_isl,
    fig17_starlink_isl,
    fig18_city_pairs,
    fig19_cpu_overhead,
    gateway_study,
    multicast_study,
    related_snoop,
    table2_ablation,
    workload,
    workload_sharded,
    workload_sharded_xl,
)
from repro.experiments.common import (
    ExperimentResult,
    FlowMetrics,
    PathSpec,
    build_path,
    run_leotp_chain,
    run_tcp_chain,
    scaled_duration,
)
from repro.experiments.runner import RunSpec

ALL_EXPERIMENTS = {
    "fig01": fig01_bandwidth.run,
    "fig02": fig02_plr_hops.run,
    "fig03": fig03_owd_model.run,
    "fig04": fig04_split_tradeoff.run,
    "fig05": fig05_fluctuation.run,
    "fig10": fig10_retx_owd.run,
    "fig11": fig11_retx_traffic.run,
    "fig12": fig12_plr_throughput.run,
    "fig13": fig13_link_switching.run,
    "fig14": fig14_fluctuation_tradeoff.run,
    "fig15": fig15_fairness.run,
    "fig16": fig16_starlink_no_isl.run,
    "fig17": fig17_starlink_isl.run,
    "fig18": fig18_city_pairs.run,
    "fig19": fig19_cpu_overhead.run,
    "table2": table2_ablation.run,
    "ablation_vph": ablation_vph.run,
    "ablation_params": ablation_parameters.run,
    "ccbench": ccbench.run,
    "chaos": chaos_suite.run,
    "churn": churn_study.run,
    "content_study": content_study.run,
    "gateway": gateway_study.run,
    "multicast": multicast_study.run,
    "related_snoop": related_snoop.run,
    "constellation_study": constellation_study.run,
    "workload": workload.run,
    "workload_sharded": workload_sharded.run,
    "workload_sharded_xl": workload_sharded_xl.run,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "FlowMetrics",
    "PathSpec",
    "RunSpec",
    "build_path",
    "run_leotp_chain",
    "run_tcp_chain",
    "scaled_duration",
]
