"""Extreme-scale sharded workload: 10⁵ flows in bounded RSS (DESIGN.md §14).

Runs :func:`repro.shard.run_sharded` over a 100-shard plan — 1,000
arrivals per shard at ``scale=1.0``, i.e. 100,000 flows — exercising the
full scale machinery: per-shard result streaming (closed flows spill to
JSONL and their slots are reclaimed, so resident state is bounded by
*concurrent* flows, not total), epoch-boundary checkpointing, and the
slim delta-encoded exchange.

The printed table aggregates the 100 shard rows into ten bands of ten
(summed counts, mean-of-shard latency columns — the same convention as
the engine's ``total`` row) so it stays readable; the untouched
per-shard rows live in the returned engine output and are bit-identical
for every worker count.  Environment knobs:

``LEOTP_SHARD_JOBS``
    worker processes (default 1); rows are bit-identical for any value.
``LEOTP_SHARD_SINK_DIR``
    spill directory (default ``results/shard_xl``); the merged
    ``flows.jsonl`` lands there.
``LEOTP_SHARD_CHECKPOINT_DIR``
    when set, checkpoint every epoch there — and if the directory
    already holds a valid manifest for this plan, *resume* from it, so
    re-running the experiment after a kill continues instead of
    restarting.
``LEOTP_SHARD_PROFILE_DIR``
    when set (``--profile`` sets it), each shard worker dumps its own
    cProfile there for ``tools/profile_top.py`` to merge.
"""

from __future__ import annotations

import os

from repro.experiments.common import ExperimentResult
from repro.shard import CheckpointError, ShardPlan, resume_point, run_sharded

N_SHARDS = 100
ARRIVALS_PER_SHARD = 1_000  # x 100 shards = 100,000 flows at scale=1.0
MIN_ARRIVALS_PER_SHARD = 5
BAND = 10  # shards summarised per printed row

DEFAULT_SINK_DIR = os.path.join("results", "shard_xl")


def shard_plan(scale: float = 1.0, seed: int = 0) -> ShardPlan:
    """The experiment's plan at a given scale (same plan for any jobs)."""
    arrivals = max(
        MIN_ARRIVALS_PER_SHARD, int(round(ARRIVALS_PER_SHARD * scale))
    )
    return ShardPlan(
        n_shards=N_SHARDS, seed=seed, arrivals_per_shard=arrivals
    )


def _band_row(label: str, rows: list[dict]) -> dict:
    """Aggregate shard rows the way the engine's total row does."""
    n = len(rows)
    return {
        "shards": label,
        "faulted": sum(1 for row in rows if row["faulted"]),
        "arrivals": sum(row["arrivals"] for row in rows),
        "completed": sum(row["completed"] for row in rows),
        "aborted": sum(row["aborted"] for row in rows),
        "peak_conc": max(row["peak_conc"] for row in rows),
        "fct_p50_ms": sum(row["fct_p50_ms"] for row in rows) / n,
        "fct_p90_ms": sum(row["fct_p90_ms"] for row in rows) / n,
        "fct_p99_ms": sum(row["fct_p99_ms"] for row in rows) / n,
        "goodput_kBs": sum(row["goodput_kBs"] for row in rows) / n,
        "budget_peak_MiB": sum(row["budget_peak_MiB"] for row in rows),
        "budget_breaches": sum(row["budget_breaches"] for row in rows),
        "cache_evictions": sum(row["cache_evictions"] for row in rows),
        "admission_rejects": sum(row["admission_rejects"] for row in rows),
        "events": sum(row["events"] for row in rows),
    }


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    jobs = int(os.environ.get("LEOTP_SHARD_JOBS", "1"))
    plan = shard_plan(scale, seed)

    sink_dir = os.environ.get("LEOTP_SHARD_SINK_DIR") or DEFAULT_SINK_DIR
    checkpoint_dir = os.environ.get("LEOTP_SHARD_CHECKPOINT_DIR") or None
    profile_dir = os.environ.get("LEOTP_SHARD_PROFILE_DIR") or None
    resume_from = None
    if checkpoint_dir is not None:
        try:
            resume_point(checkpoint_dir, plan)
            resume_from = checkpoint_dir
        except CheckpointError:
            resume_from = None  # no (valid) prior run: start fresh

    out = run_sharded(
        plan,
        jobs=jobs,
        sink_dir=sink_dir,
        checkpoint_dir=checkpoint_dir,
        resume_from=resume_from,
        profile_dir=profile_dir,
    )

    result = ExperimentResult(
        name="workload_sharded_xl",
        description=(
            f"Extreme-scale sharded workload: {plan.n_shards} shards x "
            f"{plan.arrivals_per_shard} flows "
            f"({plan.n_shards * plan.arrivals_per_shard:,} total), "
            f"streamed results + checkpointed epochs"
        ),
    )
    shard_rows = out["rows"][:-1]
    total = out["rows"][-1]
    for lo in range(0, len(shard_rows), BAND):
        band = shard_rows[lo:lo + BAND]
        hi = lo + len(band) - 1
        result.add(**_band_row(f"{lo:03d}-{hi:03d}", band))
    result.add(**_band_row("total", shard_rows) | {"shards": "total"})
    assert total["completed"] == sum(r["completed"] for r in shard_rows)

    sink = out["sink"]
    result.notes.append(
        f"{out['completed']:,} of {total['arrivals']:,} flows completed; "
        f"{len(out['ledger'])} exchange epochs over {plan.horizon_s:.1f}s "
        f"simulated ({out['events_per_s']:,.0f} events/s)"
    )
    if sink is not None:
        result.notes.append(
            f"per-flow rows streamed to {sink['merged_path']} "
            f"({sink['merged_bytes'] / (1 << 20):.1f} MiB); resident "
            f"slots bounded by concurrency, not flow count"
        )
    if out["rss"] is not None:
        result.notes.append(
            f"peak RSS {out['rss']['total_peak_mib']:.0f} MiB "
            f"(parent {out['rss']['parent_peak_mib']:.0f} MiB + "
            f"{jobs if jobs > 1 else 0} worker(s) "
            f"{out['rss']['worker_peak_mib']:.0f} MiB)"
        )
    result.notes.append(
        f"epoch exchange: {out['exchange_payload_bytes'] / 1e3:.1f} kB "
        f"sent / {out['exchange_report_bytes'] / 1e3:.1f} kB returned "
        f"(delta-encoded; only changed shards transmit)"
    )
    if out["resumed_from_epoch"] is not None:
        result.notes.append(
            f"resumed from checkpoint at epoch {out['resumed_from_epoch']} "
            f"in {checkpoint_dir}"
        )
    elif out["checkpoints_written"]:
        result.notes.append(
            f"{out['checkpoints_written']} checkpoint(s) committed to "
            f"{checkpoint_dir}"
        )
    result.notes.append(
        "per-shard rows (and the spilled flows.jsonl) are bit-identical "
        "for any LEOTP_SHARD_JOBS value"
    )
    return result


if __name__ == "__main__":
    print(run(scale=0.02).table())
