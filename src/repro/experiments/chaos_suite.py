"""Chaos suite — LEOTP vs BBR under scripted faults.

Not a figure from the paper: a robustness matrix that stresses the
mechanisms the paper argues make LEOTP fit LEO networks (in-network
retransmission, near-stateless Midnodes, connectionless flows).  Four
scenarios run over the same 6-hop chain for both protocols:

* **blackout** — one mid-path link drops for 2 s (a handover outage,
  Sec. V-B), losing everything in flight on it;
* **flap** — the same link flaps down/up several times in succession;
* **crash** — a mid-path node power-cycles: a LEOTP Midnode loses its
  cache and all per-flow soft state (the "dummy intermediate node"
  claim, Sec. IV-A); the TCP run crashes the equivalent forwarder;
* **loss_burst** — a Gilbert–Elliott process drives correlated loss
  bursts on the link for several seconds.

Each row reports recovery metrics (time to first byte after the fault,
post/pre goodput ratio, time until goodput is back to 80 % of the
pre-fault level, retransmission amplification) and — for LEOTP — whether
every protocol invariant stayed green while the faults landed.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentResult, scaled_duration
from repro.faults import (
    CorrelatedLoss,
    FaultSchedule,
    LinkDown,
    LinkFlap,
    NodeCrash,
    run_leotp_chaos,
    run_tcp_chaos,
)

RATE_BPS = 20e6
DELAY_S = 0.008
N_HOPS = 6
MID_LINK = "hop3"        # the faulted mid-path link (both protocols)
LEOTP_CRASH_NODE = "leotp-mid2"
TCP_CRASH_NODE = "tcp-fwd2"
BASELINE_CC = "bbr"


def _schedule(scenario: str, fault_at: float, crash_node: str) -> FaultSchedule:
    s = FaultSchedule()
    if scenario == "blackout":
        s.add(LinkDown(at_s=fault_at, link=MID_LINK, duration_s=2.0))
    elif scenario == "flap":
        s.add(LinkFlap(at_s=fault_at, link=MID_LINK,
                       down_s=0.3, up_s=0.5, cycles=3))
    elif scenario == "crash":
        s.add(NodeCrash(at_s=fault_at, node=crash_node, restart_after_s=0.5))
    elif scenario == "loss_burst":
        s.add(CorrelatedLoss(at_s=fault_at, link=MID_LINK, duration_s=3.0,
                             p_good_bad=0.05, p_bad_good=0.2, loss_bad=0.6))
    else:  # pragma: no cover - registry typo guard
        raise ValueError(f"unknown scenario {scenario!r}")
    return s


SCENARIOS = ("blackout", "flap", "crash", "loss_burst")


def _row(scenario: str, result) -> dict:
    r = result.recovery
    row = {
        "scenario": scenario,
        "protocol": result.protocol,
        "pre_goodput_mbps": r.pre_goodput_bps / 1e6,
        "post_goodput_mbps": r.post_goodput_bps / 1e6,
        "goodput_ratio": r.goodput_ratio,
        "ttfb_after_fault_s": r.ttfb_after_fault_s,
        "recovery_s": r.time_to_recovery_s,
        "retx_amplification": r.retx_amplification,
        "invariants_ok": result.invariants_ok if result.invariants else None,
    }
    return row


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    duration = scaled_duration(15.0, scale)
    fault_at = duration / 3.0
    # Sized so the LEOTP flow finishes inside the run at full scale (the
    # terminal byte-exact audit needs a completed transfer) while leaving
    # several seconds of post-fault transfer to measure.
    total_bytes = int(RATE_BPS / 8 * duration * 0.55)
    result = ExperimentResult(
        "Chaos suite",
        "Recovery under blackout/flap/crash/loss bursts; "
        f"{N_HOPS}-hop chain, {RATE_BPS / 1e6:.0f} Mbps, fault at "
        f"t={fault_at:.1f}s",
    )
    for scenario in SCENARIOS:
        leotp = run_leotp_chaos(
            _schedule(scenario, fault_at, LEOTP_CRASH_NODE),
            n_hops=N_HOPS, rate_bps=RATE_BPS, delay_s=DELAY_S,
            duration_s=duration, total_bytes=total_bytes, seed=seed,
        )
        result.add(**_row(scenario, leotp))
        tcp = run_tcp_chaos(
            _schedule(scenario, fault_at, TCP_CRASH_NODE),
            cc_name=BASELINE_CC,
            n_hops=N_HOPS, rate_bps=RATE_BPS, delay_s=DELAY_S,
            duration_s=duration, seed=seed,
        )
        result.add(**_row(scenario, tcp))
    failed = [
        f"{row['scenario']}: invariants violated"
        for row in result.rows
        if row["invariants_ok"] is False
    ]
    for note in failed:
        result.notes.append(note)
    if not failed:
        result.notes.append("all LEOTP invariants green in every scenario")
    return result


if __name__ == "__main__":
    print(run().table())
