"""Congestion-control bake-off under geometry-driven churn.

The comparison-platform experiment ROADMAP asks for: every congestion
control the registry knows — the paper's TCP baselines plus the LEO
contenders (OrbCC-style handover-aware rate control, the adaptive
learned policy) and LEOTP itself — run through one scenario matrix

    {handover cadence} x {offered load} x {loss model} x {CC}

over the same geometry-driven churn engine as the ``churn`` experiment.
One city pair's route over the 1600-satellite shell is sampled per time
slice; the *cadence* axis compresses a longer orbital window into the
same simulated horizon (2x the orbit time = 2x the handovers per sim
second), the *load* axis scales the Poisson arrival rate of the flow
pool, and the *loss* axis switches the chain between the clean
geometry-derived hop specs and a lossy variant with elevated GSL PLR.

Every cell multiplexes a :class:`FlowPool` over the pair's chain while
a :class:`PathDynamicsDriver` tracks the compressed schedule, the churn
adapter blacks out exactly the hops whose real edges changed, and — for
TCP cells — the event stream's churn *signal* hook delivers
``PathSwitch``/``GsReattach``/``RouteLost`` up-calls to every live
sender's congestion module (:meth:`TcpSender.notify_churn`).  Per cell
the row reports FCT percentiles, Jain fairness, and aggregate goodput
from the pool, and per-handover recovery latency measured on a
dedicated long-lived *monitor flow* riding the same chain — a
constant-demand reference transfer that sees every handover, so the
recovery columns compare congestion controllers instead of the pool's
arrival luck.

Deterministic per (scale, seed) and bit-identical under ``--jobs 2``:
geometry is seed-independent, event streams are totally ordered, churn
signals broadcast in sorted flow-id order, and every RNG draw comes
from named streams.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Union

from repro.churn import (
    DEFAULT_OUTAGE_S,
    TopologyEventStream,
    compress_schedule,
    events_from_schedule,
    faults_from_stream,
    handover_stats,
    per_handover_reports,
)
from repro.constellation import (
    NoRouteError,
    PathDynamicsDriver,
    compute_path_schedule,
    representative_hop_count,
    starlink_hop_specs,
)
from repro.core.consumer import Consumer
from repro.experiments.common import ExperimentResult, scaled_duration
from repro.experiments.starlink import _router
from repro.faults.schedule import FaultInjector
from repro.netsim.link import DuplexLink
from repro.netsim.trace import FlowRecorder
from repro.obs import METRICS
from repro.simcore import RngRegistry, Simulator
from repro.tcp.cc import CCSpec, as_cc_spec
from repro.tcp.connection import FiniteStream, TcpReceiver, make_tcp_sender
from repro.workload import FlowPool, WorkloadSpec

#: The benched city pair (distinct handover geometry at both ends).
PAIR = ("BJ-PR", "Beijing", "Paris")

#: Orbital sampling step (matches the starlink/churn experiments).
ORBIT_STEP_S = 2.0

#: Cadence axis: orbit-time : sim-time compression.  40x packs twice the
#: orbital window — twice the handovers — into the same simulated run.
CADENCES = {"low": 20.0, "high": 40.0}

#: Load axis: Poisson arrival rate of the pool (flows/s).
LOADS = {"light": 1.5, "heavy": 4.0}

#: Loss axis: extra packet loss stacked on every GSL hop ("burst"
#: approximates the fade/blockage regime; "clean" is pure geometry).
LOSSES = {"clean": 0.0, "burst": 0.01}

#: CC axis.  "leotp" selects the ICN pool; everything else a TCP pool
#: running that registry algorithm.
CCS = ("leotp", "reno", "cubic", "bbr", "orbcc", "adaptive")

#: Churn kinds forwarded to congestion modules as signals.
SIGNAL_KINDS = ("PathSwitch", "GsReattach", "RouteLost", "RouteRestored")

#: A route-loss gap longer than this aborts live flows ("no_route").
NO_ROUTE_ABORT_S = 0.5

#: Monitor-flow demand: effectively unbounded, so the reference
#: transfer spans every handover in the cell.
MONITOR_BYTES = 10**9

#: Recommended metrics cadence (handover dips live at sub-second scale).
SAMPLER_INTERVAL_S = 0.2


def _cadence_context(compression: float, duration_s: float, seed: int):
    """Compressed schedule, event stream, chain shape for one cadence."""
    orbit = compute_path_schedule(
        _router(True), PAIR[1], PAIR[2],
        duration_s * compression, ORBIT_STEP_S, on_gap="hold",
    )
    compressed = compress_schedule(orbit, compression)
    stream = events_from_schedule(compressed, pair=PAIR[0])
    n_hops = max(representative_hop_count(compressed), 2)
    hops = starlink_hop_specs(n_hops, isls_enabled=True, seed=seed)
    return compressed, stream, n_hops, hops


def _lossy(hops, extra_plr: float):
    """The loss-model axis: stack ``extra_plr`` onto every GSL hop."""
    if extra_plr <= 0.0:
        return list(hops)
    out = []
    last = len(hops) - 1
    for i, hop in enumerate(hops):
        if i == 0 or i == last:
            out.append(replace(hop, plr=hop.plr + extra_plr))
        else:
            out.append(hop)
    return out


def _attach_monitor(sim, pool, spec):
    """One long-lived reference transfer riding the pool's chain.

    Per-handover recovery is measured on *this* flow's delivery
    timeline, not the pool aggregate: at light load the aggregate is
    dominated by arrival luck (whether any flow happens to be mid-burst
    when the handover lands), which buries the congestion controls'
    actual recovery behavior under workload noise.  A persistent bulk
    flow — same demand in every cell — sees every handover and isolates
    the controller's response.  Returns ``(recorder, sender_or_None)``.
    """
    recorder = FlowRecorder(sim, name="ccb:mon")
    if spec.name == "leotp":
        consumer = Consumer(
            sim, "mon-cons", "mon", pool.config,
            total_bytes=MONITOR_BYTES, recorder=recorder,
        )
        access = DuplexLink(
            sim, pool.hub, consumer,
            rate_bps=pool.access_rate_bps, delay_s=pool.access_delay_s,
            name="access-mon",
        )
        consumer.out_link = access.ba
        return recorder, None
    receiver = TcpReceiver(
        sim, "mon-rcv", None, recorder=recorder, flow_id="mon"
    )
    sender = make_tcp_sender(
        sim, "mon-snd", "mon-rcv", None, spec,
        stream=FiniteStream(MONITOR_BYTES), flow_id="mon",
    )
    up = DuplexLink(
        sim, sender, pool.routers[0],
        rate_bps=pool.access_rate_bps, delay_s=pool.access_delay_s,
        name="up-mon",
    )
    down = DuplexLink(
        sim, pool.routers[-1], receiver,
        rate_bps=pool.access_rate_bps, delay_s=pool.access_delay_s,
        name="down-mon",
    )
    sender.out_link = up.ab
    receiver.out_link = down.ba
    for i in range(len(pool.links)):
        pool.routers[i].add_route("mon-rcv", pool.links[i].ab)
        pool.routers[i + 1].add_route("mon-snd", pool.links[i].ba)
    pool.routers[-1].add_route("mon-rcv", down.ab)
    pool.routers[0].add_route("mon-snd", up.ba)
    return recorder, sender


def run_cell(
    cc: Union[str, CCSpec],
    compressed,
    stream: TopologyEventStream,
    n_hops: int,
    hops,
    compression: float,
    rate_per_s: float,
    duration_s: float,
    seed: int,
) -> dict:
    """One bake-off cell: a FlowPool under churn; returns row columns."""
    spec = as_cc_spec(cc)
    sim = Simulator()
    rng = RngRegistry(seed)
    # One pool name for EVERY cell: the pool's RNG streams are keyed by
    # it, so a per-CC name would hand each controller a different
    # arrival/size sequence and the bake-off would compare workloads,
    # not congestion controls.  Same name = paired comparison.
    name = "ccb"
    workload = WorkloadSpec(
        arrival="poisson",
        rate_per_s=rate_per_s,
        n_flows=max(int(duration_s * rate_per_s), 6),
        mean_size_bytes=120_000,
        max_size_bytes=400_000,
    )
    recorder = FlowRecorder(sim, name=f"{name}:agg")
    pool = FlowPool(
        sim, rng, spec=workload, hops=hops,
        protocol="leotp" if spec.name == "leotp" else spec,
        name=name, recorder=recorder,
    )
    mon_rec, mon_sender = _attach_monitor(sim, pool, spec)
    PathDynamicsDriver(
        sim, compressed, pool.links,
        update_interval_s=ORBIT_STEP_S / compression, flush_on_change=False,
    )
    stream.arm_markers(sim)
    if spec.name != "leotp":
        # The churn-signal hook: handover-aware CCs get their up-calls
        # (pool flows in sorted-id order, then the monitor — fixed order
        # keeps the cell bit-identical across runs).
        def _signal(kind: str) -> None:
            pool.notify_churn(kind)
            if mon_sender is not None:
                mon_sender.notify_churn(kind)

        stream.arm_signal(sim, _signal, kinds=SIGNAL_KINDS)
    injector = FaultInjector(sim, rng)
    for i, link in enumerate(pool.links):
        injector.register_link(f"{name}:hop{i}", link)
    injector.arm(faults_from_stream(stream, n_hops, link_prefix=f"{name}:"))
    for event in stream.of_kind("RouteLost"):
        if event.duration_s > NO_ROUTE_ABORT_S:
            sim.schedule_at(
                event.at_s + NO_ROUTE_ABORT_S, pool.abort_live, "no_route"
            )
    if METRICS.enabled:
        pool.attach_samplers()
    sim.run(until=duration_s)
    pool.finalize()
    s = pool.summary()

    times = [
        t for t in stream.handover_times()
        if t + DEFAULT_OUTAGE_S < duration_s
    ]
    # Recovery is judged on the monitor flow: a constant-demand
    # reference transfer present at every handover, immune to the
    # pool's arrival luck (see _attach_monitor).
    reports = per_handover_reports(
        mon_rec, times,
        outage_s=DEFAULT_OUTAGE_S, window_s=1.0,
        recovery_window_s=0.25, horizon_s=duration_s,
    )
    row = {
        "cc": spec.label(),
        "arrivals": int(s["arrivals"]),
        "completed": int(s["completed"]),
        "aborted": int(s["aborted"]),
        "fct_p50_s": s["fct_p50_s"],
        "fct_p90_s": s["fct_p90_s"],
        "fct_p99_s": s["fct_p99_s"],
        "jain_mean": s.get("jain_mean", 0.0),
        "jain_min": s.get("jain_min", 0.0),
        "goodput_mbps": recorder.total_bytes * 8 / duration_s / 1e6,
        "mon_goodput_mbps": mon_rec.total_bytes * 8 / duration_s / 1e6,
        "faults_applied": injector.faults_applied,
    }
    row.update(handover_stats(reports))
    return row


def run_ccbench(
    scale: float = 1.0,
    seed: int = 0,
    cc: Optional[Union[str, CCSpec]] = None,
) -> ExperimentResult:
    """The bake-off matrix: {cadence} x {load} x {loss} x {CC}.

    ``cc`` restricts the CC axis to one controller (the ``--cc`` CLI
    flag; params via ``--cc-param`` ride along on the spec) — handy for
    benching a third-party ``@register_cc`` plugin against the matrix.
    """
    duration_s = scaled_duration(12.0, scale, minimum_s=6.0)
    result = ExperimentResult(
        "CC bake-off",
        "Congestion control under geometry-driven churn: "
        "{cadence} x {load} x {loss} x {CC}",
    )
    ccs: tuple = CCS if cc is None else (as_cc_spec(cc),)
    total_handovers = 0
    for cad_label in sorted(CADENCES):
        compression = CADENCES[cad_label]
        try:
            compressed, stream, n_hops, hops = _cadence_context(
                compression, duration_s, seed
            )
        except NoRouteError as exc:
            result.notes.append(f"{cad_label}: no route ({exc})")
            continue
        handovers = stream.handover_times()
        total_handovers += len(handovers)
        for load_label in sorted(LOADS):
            for loss_label in sorted(LOSSES):
                cell_hops = _lossy(hops, LOSSES[loss_label])
                for cc_choice in ccs:
                    row = run_cell(
                        cc_choice, compressed, stream, n_hops, cell_hops,
                        compression, LOADS[load_label], duration_s, seed,
                    )
                    result.add(
                        cadence=cad_label,
                        load=load_label,
                        loss=loss_label,
                        handovers=len(handovers),
                        **row,
                    )
    result.notes.append(
        f"pair {PAIR[0]}, {total_handovers} handovers across "
        f"{len(CADENCES)} cadences ({duration_s:.0f} s cells; "
        f"compressions {sorted(CADENCES.values())})"
    )
    return result


run = run_ccbench

if __name__ == "__main__":  # pragma: no cover
    print(run().table())
