"""The bridged TCP<->LEOTP deployment versus end-to-end alternatives.

Paper Sec. VII ("Compatible with TCP") proposes running LEOTP only in
the satellite segment, with transparent gateways at the ground
stations.  This experiment quantifies that deployment on the repo's
emulated Starlink segment: a terrestrial TCP server pushes a finite
transfer through the ingress gateway, across a lossy 10 Mbps-bottleneck
LEO segment, out the egress gateway to a terrestrial TCP client — and
the same transfer runs as plain end-to-end TCP and as pure LEOTP over
the identical full chain for comparison.

The LEO segment uses :func:`starlink_hop_specs` (GSL loss 1 %, V-curve
bottleneck), so the gateway's advantage — loss recovered hop-by-hop
inside the LEO segment instead of end-to-end — shows up directly in
client goodput.
"""

from __future__ import annotations

from repro.constellation import starlink_hop_specs
from repro.core import LeotpConfig
from repro.experiments.common import (
    ExperimentResult,
    PathSpec,
    build_path,
    scaled_duration,
)
from repro.gateway import build_gateway_path
from repro.netsim.topology import HopSpec
from repro.simcore import RngRegistry, Simulator

#: LEO-segment hops (two GSLs around two ISLs — a short ISL route).
LEO_HOPS = 4

#: Terrestrial segments on both sides: fast, clean, 5 ms.
TERRESTRIAL = HopSpec(rate_bps=100e6, delay_s=0.005)

SAMPLER_INTERVAL_S = 0.5

_PROTOCOLS = ("gateway-cubic", "e2e-cubic", "leotp")


def run_gateway(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Client-side outcome of one finite transfer per deployment."""
    duration_s = scaled_duration(20.0, scale, minimum_s=8.0)
    # Sized to the 10 Mbps LEO bottleneck so the bridged and LEOTP runs
    # finish inside the horizon; e2e TCP may not (that is the result).
    total_bytes = int(10e6 / 8 * duration_s * 0.3)
    leo_hops = starlink_hop_specs(LEO_HOPS, isls_enabled=True, seed=seed)
    full_chain = (TERRESTRIAL, *leo_hops, TERRESTRIAL)
    result = ExperimentResult(
        "Gateway",
        "TCP<->LEOTP gateway bridging vs end-to-end deployments "
        "(lossy emulated-Starlink LEO segment)",
    )
    for protocol in _PROTOCOLS:
        sim = Simulator()
        rng = RngRegistry(seed)
        if protocol == "gateway-cubic":
            path = build_gateway_path(
                sim, rng, total_bytes, leo_hops,
                terrestrial_spec=TERRESTRIAL, tcp_cc="cubic",
            )
            sim.run(until=duration_s)
            delivered = path.client.bytes_delivered
            completed = path.completed
            buffered = path.egress.buffered_bytes
        elif protocol == "e2e-cubic":
            path = build_path(sim, rng, PathSpec(
                protocol="tcp", hops=full_chain, cc_name="cubic",
                total_bytes=total_bytes,
            ))
            sim.run(until=duration_s)
            delivered = path.receiver.bytes_delivered
            completed = path.sender.finished and delivered >= total_bytes
            buffered = 0
        else:
            path = build_path(sim, rng, PathSpec(
                protocol="leotp", hops=full_chain, config=LeotpConfig(),
                total_bytes=total_bytes,
            ))
            sim.run(until=duration_s)
            delivered = path.consumer.bytes_received
            completed = path.consumer.finished
            buffered = 0
        result.add(
            protocol=protocol,
            total_mbytes=total_bytes / 1e6,
            delivered_mbytes=delivered / 1e6,
            goodput_mbps=delivered * 8 / duration_s / 1e6,
            completed=completed,
            gw_buffered_bytes=buffered,
        )
    return result


run = run_gateway

if __name__ == "__main__":  # pragma: no cover
    print(run().table())
