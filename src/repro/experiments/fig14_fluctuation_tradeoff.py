"""Fig. 14 — throughput-OWD trade-off under bandwidth fluctuation.

Setup (paper Sec. V-B): 10 hops with 20 ms hopRTT each (100 ms end-to-end
propagation); the second hop is the bottleneck at 10 Mbps +- 1 Mbps
square wave (2 s period); other hops run 20 Mbps.  TCP variants all queue
heavily; end-to-end LEOTP has near-optimal latency but poor throughput;
full LEOTP achieves both, with the Midnode buffer target (BL_tar) tracing
the trade-off curve.
"""

from __future__ import annotations

from repro.core import LeotpConfig
from repro.experiments.common import (
    ExperimentResult,
    run_leotp_chain,
    run_tcp_chain,
    scaled_duration,
)
from repro.netsim.bandwidth import SquareWaveBandwidth
from repro.netsim.topology import HopSpec

N_HOPS = 10
PROP_DELAY_MS = 100.0
BUFFER_TARGETS_PKTS = (4, 8, 16, 32)
BASELINES = ("cubic", "hybla", "bbr", "pcc")


def fluctuating_hops() -> list[HopSpec]:
    per_hop = PROP_DELAY_MS / 1000.0 / N_HOPS
    specs = []
    for i in range(N_HOPS):
        if i == 1:
            specs.append(
                HopSpec(
                    rate_bps=10e6, delay_s=per_hop,
                    profile=SquareWaveBandwidth(10e6, 1e6, period_s=2.0),
                )
            )
        else:
            specs.append(HopSpec(rate_bps=20e6, delay_s=per_hop))
    return specs


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    duration = scaled_duration(25.0, scale)
    hops = fluctuating_hops()
    result = ExperimentResult(
        "Fig. 14",
        "Throughput (Mbps) vs mean OWD (ms); fluctuating 10 Mbps bottleneck",
    )
    for cc in BASELINES:
        metrics, _ = run_tcp_chain(cc, hops, duration, seed=seed)
        result.add(
            protocol=cc, variant="-",
            throughput_mbps=metrics.throughput_mbps,
            owd_mean_ms=metrics.owd_mean_ms,
            queuing_delay_ms=metrics.owd_mean_ms - PROP_DELAY_MS,
        )
    # End-to-end LEOTP: no Midnodes (the paper's "near-optimal latency,
    # low throughput" reference point).
    e2e, _ = run_leotp_chain(hops, duration, seed=seed, coverage=0.0)
    result.add(
        protocol="leotp-e2e", variant="-",
        throughput_mbps=e2e.throughput_mbps,
        owd_mean_ms=e2e.owd_mean_ms,
        queuing_delay_ms=e2e.owd_mean_ms - PROP_DELAY_MS,
    )
    # Full LEOTP across the buffer-target sweep (the trade-off knob).
    for target in BUFFER_TARGETS_PKTS:
        config = LeotpConfig(buffer_target_bytes=target * 1400)
        metrics, _ = run_leotp_chain(hops, duration, seed=seed, config=config)
        result.add(
            protocol="leotp", variant=f"BLtar={target}pkt",
            throughput_mbps=metrics.throughput_mbps,
            owd_mean_ms=metrics.owd_mean_ms,
            queuing_delay_ms=metrics.owd_mean_ms - PROP_DELAY_MS,
        )
    return result


if __name__ == "__main__":
    print(run().table())
