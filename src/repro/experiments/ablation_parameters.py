"""Design-choice sensitivity: the constants of the congestion law.

The paper fixes several constants without sweeping them: the congestion
backoff k = 0.8 ("a value not much less than BDP to achieve faster
recovery"), the queue threshold M, the SHR disorder threshold N = 3, and
our damping gain on the backpressure correction.  This ablation sweeps
each around its default on a lossy fluctuating-bottleneck chain and
reports the throughput/latency consequences, so the defaults are
justified by measurement rather than assertion.
"""

from __future__ import annotations

from repro.core import LeotpConfig
from repro.experiments.common import ExperimentResult, run_leotp_chain, scaled_duration
from repro.netsim.bandwidth import SquareWaveBandwidth
from repro.netsim.topology import HopSpec

SWEEPS = {
    "k (cwnd backoff)": [
        ("cwnd_backoff_factor", v) for v in (0.5, 0.7, 0.8, 0.9)
    ],
    "M (queue threshold, pkts)": [
        ("queue_threshold_bytes", v * 1400) for v in (2, 6, 12, 24)
    ],
    "N (SHR disorder threshold)": [
        ("shr_disorder_threshold", v) for v in (1, 3, 6, 12)
    ],
    "backpressure gain": [
        ("backpressure_gain", v) for v in (0.25, 0.5, 1.0)
    ],
}


def _hops() -> list[HopSpec]:
    specs = []
    for i in range(6):
        if i == 1:
            specs.append(HopSpec(
                rate_bps=10e6, delay_s=0.008, plr=0.005,
                profile=SquareWaveBandwidth(10e6, 1e6, period_s=2.0),
            ))
        else:
            specs.append(HopSpec(rate_bps=20e6, delay_s=0.008, plr=0.005))
    return specs


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    duration = scaled_duration(20.0, scale)
    result = ExperimentResult(
        "Parameter ablation",
        "LEOTP constants swept on a lossy, fluctuating 6-hop chain",
    )
    hops = _hops()
    for sweep_name, settings in SWEEPS.items():
        for field, value in settings:
            config = LeotpConfig(**{field: value})
            metrics, _ = run_leotp_chain(hops, duration, seed=seed, config=config)
            display = (
                value // 1400 if field == "queue_threshold_bytes" else value
            )
            result.add(
                parameter=sweep_name,
                value=display,
                is_default=value == getattr(LeotpConfig(), field),
                throughput_mbps=metrics.throughput_mbps,
                owd_mean_ms=metrics.owd_mean_ms,
                owd_p99_ms=metrics.owd_p99_ms,
            )
    return result


if __name__ == "__main__":
    print(run().table())
