"""Shared runner for the emulated-Starlink experiments (Figs. 16-18, Table II).

Reproduces the paper's Sec. V-C methodology: routes over the 1600-satellite
core shell are computed per time slice; a chain whose per-hop delays track
the route carries the transport protocols; the GSL uplink is a 10 Mbps
bottleneck with a handover "V" curve and +-0.5 Mbps bias; GSLs lose 1 % of
packets and ISLs 0.1 %.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

from repro.constellation import (
    ConstellationRouter,
    PathDynamicsDriver,
    PathSchedule,
    RoutingConfig,
    compute_path_schedule,
    representative_hop_count,
    starlink_core_shell,
    starlink_hop_specs,
    top_cities,
)
from repro.core import LeotpConfig, build_leotp_path
from repro.experiments.common import FlowMetrics, metrics_from_recorder
from repro.simcore import RngRegistry, Simulator
from repro.tcp import build_e2e_tcp_path


@lru_cache(maxsize=8)
def _router(isls_enabled: bool) -> ConstellationRouter:
    return ConstellationRouter(
        starlink_core_shell(),
        top_cities(100),
        RoutingConfig(isls_enabled=isls_enabled),
    )


@lru_cache(maxsize=64)
def path_schedule(
    city_a: str, city_b: str, isls_enabled: bool, duration_s: float,
    step_s: float = 2.0,
) -> PathSchedule:
    return compute_path_schedule(
        _router(isls_enabled), city_a, city_b, duration_s, step_s
    )


def run_starlink_flow(
    protocol: str,
    city_a: str,
    city_b: str,
    duration_s: float,
    seed: int = 0,
    isls_enabled: bool = True,
    coverage: float = 1.0,
    config: Optional[LeotpConfig] = None,
) -> tuple[FlowMetrics, dict]:
    """Run one transfer from ``city_a`` (producer/sender) to ``city_b``.

    ``protocol`` is ``"leotp"`` or a TCP congestion-control name.
    Returns flow metrics plus context (hop count, propagation delay).
    """
    schedule = path_schedule(city_a, city_b, isls_enabled, duration_s)
    n_hops = max(representative_hop_count(schedule), 2)
    hops = starlink_hop_specs(n_hops, isls_enabled=isls_enabled, seed=seed)
    sim = Simulator()
    rng = RngRegistry(seed)
    if protocol == "leotp":
        path = build_leotp_path(
            sim, rng, hops, config=config or LeotpConfig(), coverage=coverage
        )
        recorder, links = path.recorder, path.links
        sender_bytes = lambda: path.producer.wire_bytes_sent
        retx = lambda: path.consumer.retransmission_interests
    else:
        path = build_e2e_tcp_path(sim, rng, hops, protocol)
        recorder, links = path.recorder, path.links
        sender_bytes = lambda: path.sender.wire_bytes_sent
        retx = lambda: path.sender.retransmissions
    driver = PathDynamicsDriver(sim, schedule, links, update_interval_s=2.0)
    sim.run(until=duration_s)
    metrics = metrics_from_recorder(
        recorder, duration_s * 0.2, duration_s,
        sender_bytes=sender_bytes(), retransmissions=retx(),
    )
    context = {
        "hop_count": n_hops,
        "mean_prop_delay_ms": schedule.mean_delay_s * 1000,
        "handovers": driver.handover_count,
        "route_changes": len(schedule.change_times()),
    }
    return metrics, context


CITY_PAIRS = {
    "BJ-SH": ("Beijing", "Shanghai"),
    "BJ-HK": ("Beijing", "Hong Kong"),
    "BJ-PR": ("Beijing", "Paris"),
    "BJ-NY": ("Beijing", "New York"),
}
