"""Multicast amplification: one upstream copy serves N consumers.

Paper Sec. VII ("Supporting multicast"): because LEOTP names content
rather than connections, a Midnode can aggregate simultaneous Interests
for the same flow (PIT-style) and fan the single returned copy out to
every requester; staggered requesters are served from the cache.  This
experiment measures the amplification on a one-Midnode tree: producer
wire bytes versus ``n_consumers x total`` as the fan-out grows, plus a
staggered arrival served from cache.
"""

from __future__ import annotations

from repro.core import Consumer, LeotpConfig, MulticastMidnode, Producer
from repro.experiments.common import ExperimentResult, scaled_duration
from repro.netsim.link import DuplexLink
from repro.netsim.trace import FlowRecorder
from repro.simcore import Simulator

SAMPLER_INTERVAL_S = 0.5

#: Fan-out sizes swept at stagger 0 (simultaneous Interests).
FANOUTS = (2, 4, 8)

#: Stagger (seconds) for the cache-service row.
STAGGER_S = 3.0


def _build_tree(sim: Simulator, n_consumers: int, total_bytes: int,
                stagger_s: float):
    """n consumers <- MulticastMidnode <- producer, one shared flow."""
    config = LeotpConfig()
    producer = Producer(sim, "prod", config, content_bytes=total_bytes)
    midnode = MulticastMidnode(sim, "mid", config)
    up = DuplexLink(sim, producer, midnode, rate_bps=20e6, delay_s=0.010)
    midnode.set_upstream(up.ba)
    consumers = []
    for i in range(n_consumers):
        consumer = Consumer(
            sim, f"c{i}", "shared-flow", config,
            total_bytes=total_bytes,
            recorder=FlowRecorder(sim, name=f"c{i}"),
            start_time=i * stagger_s,
        )
        access = DuplexLink(
            sim, midnode, consumer, rate_bps=20e6, delay_s=0.002
        )
        consumer.out_link = access.ba
        consumers.append(consumer)
    return producer, midnode, consumers


def run_multicast(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Producer-side amplification versus fan-out (and under stagger)."""
    duration_s = scaled_duration(30.0, scale, minimum_s=12.0)
    total_bytes = max(int(300 * 1400 * scale), 50 * 1400)
    result = ExperimentResult(
        "Multicast",
        "Interest aggregation + fan-out: producer bytes vs N consumers",
    )
    cases = [(n, 0.0) for n in FANOUTS] + [(4, STAGGER_S)]
    for n_consumers, stagger_s in cases:
        sim = Simulator()
        producer, midnode, consumers = _build_tree(
            sim, n_consumers, total_bytes, stagger_s
        )
        sim.run(until=duration_s)
        finished = sum(1 for c in consumers if c.finished)
        naive = n_consumers * total_bytes
        result.add(
            n_consumers=n_consumers,
            stagger_s=stagger_s,
            finished=finished,
            all_finished=finished == n_consumers,
            producer_mbytes=producer.wire_bytes_sent / 1e6,
            # Amplification: 1.0 = one full copy upstream; the naive
            # unicast baseline is n_consumers.
            upstream_copies=producer.wire_bytes_sent / total_bytes,
            savings_vs_unicast=1.0 - producer.wire_bytes_sent / naive,
            interests_aggregated=midnode.interests_aggregated,
            fanout_packets=midnode.fanout_packets,
            cache_hits=midnode.cache.stats.hits,
        )
    return result


run = run_multicast

if __name__ == "__main__":  # pragma: no cover
    print(run().table())
