"""Fig. 16 — OWD and throughput on the Beijing-Shanghai link, no ISLs.

The bent-pipe (current Starlink) network: every hop is a ground-satellite
link.  The paper reports LEOTP gaining 4.8 % throughput over BBR and
12.4 % over PCC, with mean queueing delay of 16 ms (0.61x BBR's 26 ms);
Hybla underuses the link (loss-bound) and so shows near-optimal delay.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, scaled_duration
from repro.experiments.starlink import CITY_PAIRS, run_starlink_flow

PROTOCOLS = ("leotp", "bbr", "pcc", "hybla")


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    duration = scaled_duration(60.0, scale, minimum_s=10.0)
    city_a, city_b = CITY_PAIRS["BJ-SH"]
    result = ExperimentResult(
        "Fig. 16",
        "Beijing-Shanghai without ISLs: OWD (ms) and throughput (Mbps)",
    )
    for protocol in PROTOCOLS:
        metrics, ctx = run_starlink_flow(
            protocol, city_a, city_b, duration, seed=seed, isls_enabled=False
        )
        result.add(
            protocol=protocol,
            throughput_mbps=metrics.throughput_mbps,
            owd_mean_ms=metrics.owd_mean_ms,
            owd_p99_ms=metrics.owd_p99_ms,
            queuing_delay_ms=metrics.owd_mean_ms - ctx["mean_prop_delay_ms"],
            hops=ctx["hop_count"],
        )
    result.notes.append(
        "paper: LEOTP +4.8 % thr vs BBR, +12.4 % vs PCC; queueing 16 ms = 0.61x BBR"
    )
    return result


if __name__ == "__main__":
    print(run().table())
