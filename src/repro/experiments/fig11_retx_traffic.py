"""Fig. 11 — traffic actually sent by the server for a fixed-size file.

Setup (paper Sec. V-B): a 100 MB transfer over a 5-hop lossy chain.
Sender traffic grows linearly with loss for both protocols, but LEOTP's
slope is ~20 % of BBR's: only first-hop losses reach back to the server;
the rest are repaired from Midnode caches.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    ExperimentResult,
    run_leotp_chain,
    run_tcp_chain,
    scaled_duration,
)
from repro.netsim.topology import uniform_chain_specs

PLRS = (0.0, 0.005, 0.01, 0.02)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    file_bytes = max(int(20e6 * scale), 2_000_000)
    timeout = scaled_duration(120.0, max(scale, 0.5))
    result = ExperimentResult(
        "Fig. 11",
        f"Server traffic (MB) to deliver a {file_bytes / 1e6:.0f} MB file, 5 lossy hops",
    )
    hops_for = lambda plr: uniform_chain_specs(
        5, rate_bps=20e6, delay_s=0.010, plr=plr
    )
    for plr in PLRS:
        leotp, leotp_path = run_leotp_chain(
            hops_for(plr), timeout, seed=seed, total_bytes=file_bytes
        )
        bbr, bbr_path = run_tcp_chain(
            "bbr", hops_for(plr), timeout, seed=seed, total_bytes=file_bytes
        )
        result.add(
            plr_per_hop=plr,
            protocol="leotp",
            sent_mb=leotp_path.producer.wire_bytes_sent / 1e6,
            completed=leotp_path.consumer.finished,
        )
        result.add(
            plr_per_hop=plr,
            protocol="bbr",
            sent_mb=bbr_path.sender.wire_bytes_sent / 1e6,
            completed=bbr_path.sender.finished,
        )
    # Overhead slope comparison (paper: LEOTP slope ~= 20 % of BBR's).
    def slope(protocol: str) -> float:
        rows = result.filtered(protocol=protocol)
        xs = [r["plr_per_hop"] for r in rows]
        ys = [r["sent_mb"] for r in rows]
        return float(np.polyfit(xs, ys, 1)[0])

    s_leotp, s_bbr = slope("leotp"), slope("bbr")
    if s_bbr > 0:
        result.notes.append(
            f"overhead slope ratio LEOTP/BBR = {s_leotp / s_bbr:.2f} (paper: ~0.2)"
        )
    return result


if __name__ == "__main__":
    print(run().table())
