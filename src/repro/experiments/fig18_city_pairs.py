"""Fig. 18 — how distance affects LEOTP and the baselines (with ISLs).

Three city pairs of growing distance (Beijing to Hong Kong / Paris /
New York).  The paper's findings: BBR/PCC delay grows quickly with
distance while LEOTP stays 15-20 ms above the propagation floor; LEOTP's
throughput does not degrade with hop count; and 25 % Midnode coverage
already beats BBR/PCC everywhere, with delay only slightly above full
coverage.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, scaled_duration
from repro.experiments.starlink import CITY_PAIRS, run_starlink_flow

PAIRS = ("BJ-HK", "BJ-PR", "BJ-NY")
VARIANTS = (
    ("leotp", 1.0),
    ("leotp-25%", 0.25),
    ("bbr", None),
    ("pcc", None),
    ("cubic", None),
    ("hybla", None),
)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    duration = scaled_duration(60.0, scale, minimum_s=10.0)
    result = ExperimentResult(
        "Fig. 18",
        "Average OWD (ms) and throughput (Mbps) per city pair, with ISLs",
    )
    for pair in PAIRS:
        city_a, city_b = CITY_PAIRS[pair]
        for label, coverage in VARIANTS:
            protocol = "leotp" if label.startswith("leotp") else label
            metrics, ctx = run_starlink_flow(
                protocol, city_a, city_b, duration, seed=seed,
                isls_enabled=True,
                coverage=coverage if coverage is not None else 1.0,
            )
            result.add(
                pair=pair,
                protocol=label,
                throughput_mbps=metrics.throughput_mbps,
                owd_mean_ms=metrics.owd_mean_ms,
                queuing_delay_ms=metrics.owd_mean_ms - ctx["mean_prop_delay_ms"],
                hops=ctx["hop_count"],
            )
    return result


if __name__ == "__main__":
    print(run().table())
