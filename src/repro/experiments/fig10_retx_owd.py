"""Fig. 10 — OWD distribution of retransmitted packets.

Setup (paper Sec. V-B): 5 hops, 20 Mbps bandwidth and 20 ms hopRTT per
hop, lossy links.  BBR's retransmitted packets arrive roughly one
end-to-end RTT late (~160 ms); LEOTP repairs locally within a hopRTT
(~90 ms), cutting average recovery time by 59-64 %.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    ExperimentResult,
    run_leotp_chain,
    run_tcp_chain,
    scaled_duration,
)
from repro.netsim.topology import uniform_chain_specs

PLRS = (0.005, 0.01, 0.02)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    duration = scaled_duration(30.0, scale)
    result = ExperimentResult(
        "Fig. 10",
        "OWD of retransmitted packets (ms): LEOTP vs BBR, 5 hops, 20 ms hopRTT",
    )
    for plr in PLRS:
        hops = uniform_chain_specs(5, rate_bps=20e6, delay_s=0.010, plr=plr)
        leotp, leotp_path = run_leotp_chain(hops, duration, seed=seed)
        bbr, _ = run_tcp_chain("bbr", hops, duration, seed=seed)
        base_owd = min(leotp.owd_p50_ms, bbr.owd_p50_ms)
        for proto, metrics in (("leotp", leotp), ("bbr", bbr)):
            retx = metrics.retx_owd_mean_ms
            result.add(
                plr_per_hop=plr,
                protocol=proto,
                retx_owd_mean_ms=retx,
                normal_owd_p50_ms=metrics.owd_p50_ms,
                recovery_cost_ms=(retx - base_owd) if retx is not None else None,
            )
    # Average recovery-time reduction across loss rates (paper: 59-64 %).
    leotp_costs = [
        r["recovery_cost_ms"]
        for r in result.rows
        if r["protocol"] == "leotp" and r["recovery_cost_ms"]
    ]
    bbr_costs = [
        r["recovery_cost_ms"]
        for r in result.rows
        if r["protocol"] == "bbr" and r["recovery_cost_ms"]
    ]
    if leotp_costs and bbr_costs:
        reduction = 1 - float(np.mean(leotp_costs)) / float(np.mean(bbr_costs))
        result.notes.append(
            f"mean recovery-cost reduction: {reduction:.0%} (paper: 59-64 %)"
        )
    return result


if __name__ == "__main__":
    print(run().table())
