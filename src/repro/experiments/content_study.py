"""Content-centric workloads: Zipf catalog, placement matrix, fan-out.

The paper's information-centric claim (Sec. II-B, IV-A) is that naming
*content* rather than connections lets Midnode caches serve one flow's
bytes to another.  The classic ``workload`` experiment cannot observe
that: every flow requests distinct bytes, so cross-flow hits are
structurally zero.  This study drives the same 5-hop chain with a
content workload (:mod:`repro.content`): flows request named objects
drawn from a seeded Zipf catalog, so concurrent consumers overlap on
the hot objects and the caches get real sharing to exploit.

Three sections, tagged by the ``section`` column:

* ``matrix`` — a cache placement x eviction sweep.  ``classic`` is the
  no-catalog baseline (cross-flow hit ratio ~0 by construction);
  ``legacy`` is the catalog workload on the historic pool policy (every
  member may fill the whole budget, fullest-member eviction); the
  remaining cells pair a placement from
  :data:`repro.content.placement.PLACEMENTS` with an eviction order.
  Each cell reports the cache hit ratio, the *cross-flow* hit ratio
  (bytes served from another flow's fetches), origin load and its
  reduction versus delivered bytes, and FCT percentiles.
* ``fanout`` — multicast-tree fan-out driven by the same catalog: many
  subscribers of the hottest object, each its own flow, pull through a
  two-level :class:`~repro.core.multicast.MulticastMidnode` tree; the
  content registry aliases their cache keys so Interests aggregate and
  one upstream copy serves every wave.
* ``sharded`` — a content-enabled :class:`~repro.shard.ShardPlan` cell
  run through the BSP engine, proving catalog state survives the epoch
  exchange: rows are bit-identical for any ``LEOTP_SHARD_JOBS`` and
  across kill-then-resume (see ``tests/test_content.py``).

The cache budget is deliberately smaller than the catalog (2 MiB versus
~3 MiB of objects at full scale) so placement and eviction choices have
something to decide; with an over-provisioned cache every cell would
converge to the compulsory-miss floor.
"""

from __future__ import annotations

import os

from repro.content import (
    CachePolicy,
    ContentCatalog,
    ContentRegistry,
    ContentSpec,
    EVICTION_POLICIES,
    PLACEMENTS,
    object_name,
)
from repro.core import Consumer, LeotpConfig, MulticastMidnode, Producer
from repro.experiments.common import ExperimentResult
from repro.netsim.link import DuplexLink
from repro.netsim.topology import uniform_chain_specs
from repro.netsim.trace import FlowRecorder
from repro.obs.metrics import METRICS
from repro.shard import ShardPlan, run_sharded
from repro.simcore import RngRegistry, Simulator
from repro.workload import FlowPool, WorkloadSpec

SAMPLER_INTERVAL_S = 0.2

# Chain and traffic: the ``workload`` experiment's shape, so content
# effects are attributable to the catalog rather than a different path.
N_HOPS = 5
HOP_RATE_BPS = 20e6
HOP_DELAY_S = 0.008
ARRIVAL_RATE_PER_S = 150.0
N_ARRIVALS = 800
MIN_ARRIVALS = 40
DRAIN_S = 8.0

# Catalog: ~240 objects, mean 12 kB => ~2.9 MB of distinct content at
# full scale, against a 2 MiB cache budget (4 MiB ceiling, half cache).
N_OBJECTS = 240
MIN_OBJECTS = 16
ZIPF_S = 1.1
MEAN_OBJECT_BYTES = 12_000
SIZE_SIGMA = 0.6
MAX_OBJECT_BYTES = 65_536
MEMORY_CEILING_BYTES = 4 << 20
CACHE_FRACTION = 0.5

# Fan-out tree: subscribers of the hottest object over 8 leaf Midnodes,
# arriving in staggered waves so later waves hit warm leaf caches.
N_SUBSCRIBERS = 1000
MIN_SUBSCRIBERS = 24
N_LEAVES = 8
WAVES = 5
WAVE_GAP_S = 0.4


def _content_spec(scale: float) -> ContentSpec:
    return ContentSpec(
        n_objects=max(int(round(N_OBJECTS * scale)), MIN_OBJECTS),
        zipf_s=ZIPF_S,
        mean_object_bytes=MEAN_OBJECT_BYTES,
        size_sigma=SIZE_SIGMA,
        max_object_bytes=MAX_OBJECT_BYTES,
    )


def _matrix_cells() -> list[tuple[str, str, bool]]:
    """(placement, eviction, content?) rows of the ``matrix`` section."""
    cells: list[tuple[str, str, bool]] = [
        ("classic", "fullest", False),  # no catalog: sharing floor
        ("legacy", "fullest", True),    # catalog on the historic pool
    ]
    for placement in PLACEMENTS:
        for eviction in EVICTION_POLICIES:
            cells.append((placement, eviction, True))
    return cells


def _run_cell(
    scale: float, seed: int, placement: str, eviction: str, content: bool
) -> dict[str, float]:
    n_flows = max(int(round(N_ARRIVALS * scale)), MIN_ARRIVALS)
    spec = WorkloadSpec(
        arrival="poisson",
        rate_per_s=ARRIVAL_RATE_PER_S,
        n_flows=n_flows,
        size_dist="lognormal",
        mean_size_bytes=MEAN_OBJECT_BYTES,
        sigma=SIZE_SIGMA,
        max_size_bytes=MAX_OBJECT_BYTES,
        content=_content_spec(scale) if content else None,
    )
    policy = None
    if placement not in ("classic", "legacy"):
        policy = CachePolicy(placement=placement, eviction=eviction)
    sim = Simulator()
    rng = RngRegistry(seed)
    pool = FlowPool(
        sim,
        rng,
        spec=spec,
        hops=uniform_chain_specs(
            N_HOPS, rate_bps=HOP_RATE_BPS, delay_s=HOP_DELAY_S
        ),
        protocol="leotp",
        memory_ceiling_bytes=MEMORY_CEILING_BYTES,
        cache_fraction=CACHE_FRACTION,
        cache_policy=policy,
    )
    if METRICS.enabled:
        pool.attach_samplers()
    sim.run(until=n_flows / ARRIVAL_RATE_PER_S + DRAIN_S)
    pool.finalize()
    s = pool.summary()
    return {
        "section": "matrix",
        "placement": placement,
        "eviction": eviction if policy is not None else "fullest",
        "arrivals": int(s["arrivals"]),
        "completed": int(s["completed"]),
        "objects": int(s.get("content_objects", 0)),
        "hit_ratio": round(s.get("cache_hit_ratio", 0.0), 6),
        "cross_hit_ratio": round(s.get("cross_hit_ratio", 0.0), 6),
        "origin_MB": round(s.get("origin_bytes", 0.0) / 1e6, 6),
        "origin_load_reduction": round(
            s.get("origin_load_reduction", 0.0), 6
        ),
        "fct_p50_ms": s["fct_p50_s"] * 1e3,
        "fct_p90_ms": s["fct_p90_s"] * 1e3,
        "cache_evictions": int(s.get("cache_pool_evictions", 0)),
        "budget_breaches": int(s["budget_breaches"]),
    }


def _run_fanout(scale: float, seed: int) -> dict[str, float]:
    """Thousands of subscribers of one hot object through a Midnode tree."""
    n_subs = max(int(round(N_SUBSCRIBERS * scale)), MIN_SUBSCRIBERS)
    rng = RngRegistry(seed)
    catalog = ContentCatalog.build(
        _content_spec(scale), rng.stream("content:catalog")
    )
    hot = object_name(0)  # rank 0 = most popular
    obj_bytes = catalog.object_size(0)

    sim = Simulator()
    config = LeotpConfig()
    registry = ContentRegistry()
    producer = Producer(sim, "prod", config, content_bytes=obj_bytes)
    root = MulticastMidnode(sim, "root", config)
    root.content = registry
    up = DuplexLink(sim, producer, root, rate_bps=HOP_RATE_BPS, delay_s=0.010)
    root.set_upstream(up.ba)
    leaves = []
    for i in range(N_LEAVES):
        leaf = MulticastMidnode(sim, f"leaf{i}", config)
        leaf.content = registry
        trunk = DuplexLink(
            sim, root, leaf, rate_bps=HOP_RATE_BPS, delay_s=HOP_DELAY_S
        )
        leaf.set_upstream(trunk.ba)
        leaves.append(leaf)
    consumers = []
    for i in range(n_subs):
        flow_id = f"sub{i:05d}"
        registry.bind(flow_id, hot)
        consumer = Consumer(
            sim, flow_id, flow_id, config,
            total_bytes=obj_bytes,
            recorder=FlowRecorder(sim, name=flow_id),
            start_time=(i % WAVES) * WAVE_GAP_S,
        )
        leaf = leaves[i % N_LEAVES]
        access = DuplexLink(sim, leaf, consumer, rate_bps=20e6, delay_s=0.002)
        consumer.out_link = access.ba
        consumers.append(consumer)
    sim.run(until=WAVES * WAVE_GAP_S + 20.0)

    finished = sum(1 for c in consumers if c.finished)
    naive = n_subs * obj_bytes
    mids = [root, *leaves]
    cross_b = sum(m.cache.stats.cross_hit_bytes for m in mids)
    lookup_b = sum(m.cache.stats.lookup_bytes for m in mids)
    return {
        "section": "fanout",
        "placement": "tree",
        "eviction": "lru",
        "arrivals": n_subs,
        "completed": finished,
        "objects": 1,
        "hit_ratio": round(
            sum(m.cache.stats.hit_bytes for m in mids) / lookup_b, 6
        ) if lookup_b else 0.0,
        "cross_hit_ratio": round(cross_b / lookup_b, 6) if lookup_b else 0.0,
        "origin_MB": round(producer.wire_bytes_sent / 1e6, 6),
        "origin_load_reduction": round(
            1.0 - producer.wire_bytes_sent / naive, 6
        ),
        "upstream_copies": round(producer.wire_bytes_sent / obj_bytes, 3),
        "interests_aggregated": sum(m.interests_aggregated for m in mids),
        "fanout_packets": sum(m.fanout_packets for m in mids),
    }


# Sharded cell: 4 ground-station pairs on the content workload, the
# gateway/lru policy cell, every fourth shard blacked out mid-run.
SHARD_N_SHARDS = 4
SHARD_ARRIVALS = 220
SHARD_MIN_ARRIVALS = 24
SHARD_OBJECTS = 160
SHARD_MIN_OBJECTS = 16


def content_plan(scale: float = 1.0, seed: int = 0) -> ShardPlan:
    """The study's sharded content plan (same plan for any job count)."""
    return ShardPlan(
        n_shards=SHARD_N_SHARDS,
        seed=seed,
        arrivals_per_shard=max(
            int(round(SHARD_ARRIVALS * scale)), SHARD_MIN_ARRIVALS
        ),
        mean_size_bytes=MEAN_OBJECT_BYTES,
        size_sigma=SIZE_SIGMA,
        max_size_bytes=MAX_OBJECT_BYTES,
        memory_ceiling_bytes=MEMORY_CEILING_BYTES,
        cache_fraction=CACHE_FRACTION,
        n_objects=max(int(round(SHARD_OBJECTS * scale)), SHARD_MIN_OBJECTS),
        zipf_s=ZIPF_S,
        cache_placement="gateway",
        cache_eviction="lru",
    )


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        "content_study",
        "Zipf content catalog over a shared chain: cache placement x "
        "eviction matrix, multicast fan-out, and a sharded content cell",
    )
    for placement, eviction, content in _matrix_cells():
        result.add(**_run_cell(scale, seed, placement, eviction, content))
    result.add(**_run_fanout(scale, seed))

    jobs = int(os.environ.get("LEOTP_SHARD_JOBS", "1"))
    out = run_sharded(content_plan(scale, seed), jobs=jobs)
    for row in out["rows"]:
        result.add(section="sharded", **row)

    result.notes.append(
        "matrix: cross_hit_ratio = cache bytes served from another flow's "
        "fetches / bytes looked up; classic row is the no-catalog floor "
        "(~0 by construction)"
    )
    result.notes.append(
        "fanout: one hot object, subscribers in staggered waves; "
        "upstream_copies ~ 1 means Interest aggregation collapsed the "
        "tree's upstream traffic to a single copy"
    )
    result.notes.append(
        "sharded rows are bit-identical for any LEOTP_SHARD_JOBS value "
        "and across checkpoint kill/resume"
    )
    return result


if __name__ == "__main__":
    print(run(scale=0.25).table())
