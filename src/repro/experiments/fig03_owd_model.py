"""Fig. 3 — theoretical per-packet OWD distribution, e2e vs hop-by-hop.

Monte-Carlo over 100 000 packets on a 10-hop path with 0.5 % loss and
10 ms delay per hop.  The paper reports p99/max of 300/700 ms under
end-to-end retransmission versus 120/160 ms hop-by-hop.
"""

from __future__ import annotations

from repro.analysis import simulate_owd_e2e, simulate_owd_hbh
from repro.experiments.common import ExperimentResult


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    n_packets = max(int(100_000 * scale), 5_000)
    result = ExperimentResult(
        "Fig. 3",
        "Per-packet OWD (ms): 10 hops, 0.5 % loss & 10 ms per hop",
    )
    e2e = simulate_owd_e2e(n_packets, 10, 0.005, 0.010, seed=seed)
    hbh = simulate_owd_hbh(n_packets, 10, 0.005, 0.010, seed=seed + 1)
    for label, dist in (("end-to-end", e2e), ("hop-by-hop", hbh)):
        result.add(
            scheme=label,
            mean_ms=dist.mean_s * 1000,
            p99_ms=dist.percentile_s(99) * 1000,
            max_ms=dist.max_s * 1000,
        )
    result.notes.append("paper: e2e p99/max = 300/700 ms; hbh = 120/160 ms")
    return result


if __name__ == "__main__":
    print(run().table())
