"""Beyond the paper: how the constellation design shapes LEOTP's numbers.

The paper evaluates one shell (the 1600-satellite, 1150 km Starlink core).
The constellation model here is parametric, so we also run the modern
low-altitude Starlink shell and a Kuiper-like design and report what
changes: hop counts, propagation delay, route churn, and LEOTP vs BBR
performance on the same Beijing-Paris route.
"""

from __future__ import annotations

from repro.constellation import (
    ConstellationRouter,
    PathDynamicsDriver,
    RoutingConfig,
    WalkerConstellation,
    compute_path_schedule,
    representative_hop_count,
    starlink_hop_specs,
    top_cities,
)
from repro.core import build_leotp_path
from repro.experiments.common import ExperimentResult, metrics_from_recorder, scaled_duration
from repro.simcore import RngRegistry, Simulator
from repro.tcp import build_e2e_tcp_path

SHELLS = {
    # name: (planes, sats/plane, altitude m, inclination deg)
    "starlink-core-1150km": (32, 50, 1_150_000.0, 53.0),
    "starlink-550km": (72, 22, 550_000.0, 53.0),
    "kuiper-630km": (34, 34, 630_000.0, 51.9),
}
CITY_A, CITY_B = "Beijing", "Paris"


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    duration = scaled_duration(40.0, scale, minimum_s=10.0)
    result = ExperimentResult(
        "Constellation study",
        f"{CITY_A}->{CITY_B} with ISLs across constellation designs",
    )
    for name, (planes, spp, alt, incl) in SHELLS.items():
        shell = WalkerConstellation(
            num_planes=planes, sats_per_plane=spp,
            altitude_m=alt, inclination_deg=incl,
        )
        router = ConstellationRouter(shell, top_cities(100), RoutingConfig())
        schedule = compute_path_schedule(router, CITY_A, CITY_B, duration, 2.0)
        n_hops = max(representative_hop_count(schedule), 2)
        hops = starlink_hop_specs(n_hops, isls_enabled=True, seed=seed)
        for protocol in ("leotp", "bbr"):
            sim = Simulator()
            rng = RngRegistry(seed)
            if protocol == "leotp":
                path = build_leotp_path(sim, rng, hops)
            else:
                path = build_e2e_tcp_path(sim, rng, hops, "bbr")
            PathDynamicsDriver(sim, schedule, path.links, update_interval_s=2.0)
            sim.run(until=duration)
            metrics = metrics_from_recorder(
                path.recorder, duration * 0.2, duration
            )
            result.add(
                shell=name,
                protocol=protocol,
                satellites=shell.num_satellites,
                hops=n_hops,
                prop_delay_ms=schedule.mean_delay_s * 1000,
                route_changes=len(schedule.change_times()),
                throughput_mbps=metrics.throughput_mbps,
                owd_mean_ms=metrics.owd_mean_ms,
            )
    result.notes.append(
        "lower shells shorten per-hop delay but add hops and churn; "
        "LEOTP's hop-local control is insensitive to both, BBR is not"
    )
    return result


if __name__ == "__main__":
    print(run().table())
