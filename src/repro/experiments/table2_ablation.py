"""Table II — ablation of LEOTP's two key modules on three Starlink links.

Rows (paper Sec. V-C):
  A — full LEOTP;
  B — hop-by-hop congestion control, no cache (no in-network retx);
  C — in-network retransmission, endpoint congestion control;
  D — endpoints only (no Midnodes).

Expected ordering: hop-by-hop CC dominates throughput (A,B >> C,D);
in-network retransmission trims delay and adds throughput (A >= B,
C >= D), with the gap growing with distance and loss.
"""

from __future__ import annotations

from repro.core import LeotpConfig
from repro.experiments.common import ExperimentResult, scaled_duration
from repro.experiments.starlink import CITY_PAIRS, run_starlink_flow

PAIRS = ("BJ-HK", "BJ-PR", "BJ-NY")
ROWS = (
    ("A", LeotpConfig(), 1.0),
    ("B", LeotpConfig(enable_cache=False), 1.0),
    ("C", LeotpConfig(hop_by_hop_cc=False), 1.0),
    ("D", LeotpConfig(hop_by_hop_cc=False), 0.0),
)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    duration = scaled_duration(60.0, scale, minimum_s=10.0)
    result = ExperimentResult(
        "Table II",
        "Ablation: throughput (Mbps) and mean OWD (ms) per configuration",
    )
    for pair in PAIRS:
        city_a, city_b = CITY_PAIRS[pair]
        for row, config, coverage in ROWS:
            metrics, ctx = run_starlink_flow(
                "leotp", city_a, city_b, duration, seed=seed,
                isls_enabled=True, coverage=coverage, config=config,
            )
            result.add(
                pair=pair,
                config=row,
                throughput_mbps=metrics.throughput_mbps,
                owd_mean_ms=metrics.owd_mean_ms,
            )
    return result


if __name__ == "__main__":
    print(run().table())
