"""Shared experiment infrastructure: runners, result tables, scaling.

Every experiment module exposes ``run(scale=1.0, seed=0) -> ExperimentResult``.
``scale`` shortens simulated durations (benchmarks use small scales so the
whole harness completes quickly); the reported numbers in EXPERIMENTS.md
use ``scale=1.0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from repro.content.placement import (
    CachePolicy,
    member_capacities,
    placement_weights,
)
from repro.core import LeotpConfig, LeotpPath
from repro.core import build_leotp_path as _build_leotp_path
from repro.core.cache import CACHE_EVICTION_POLICIES, BlockCache
from repro.netsim.topology import HopSpec
from repro.netsim.trace import FlowRecorder
from repro.simcore import RngRegistry, Simulator
from repro.tcp import FiniteStream, SplitTcpPath, TcpPath
from repro.tcp import build_e2e_tcp_path as _build_e2e_tcp_path
from repro.tcp import build_split_tcp_path as _build_split_tcp_path
from repro.tcp.cc import CCSpec, as_cc_spec
from repro.tcp.connection import ByteStream
from repro.tcp.segment import DEFAULT_MSS

BASELINE_CCS = ("cubic", "hybla", "westwood", "vegas", "bbr", "pcc")

#: Protocols :func:`build_path` can wire.
PATH_PROTOCOLS = ("leotp", "tcp", "split_tcp")


@dataclass(frozen=True, kw_only=True)
class PathSpec:
    """Declarative description of one transfer path over a chain.

    One spec type covers every protocol the experiments compare; fields
    irrelevant to the selected ``protocol`` are ignored by
    :func:`build_path`:

    * ``protocol="leotp"`` uses ``config``/``coverage`` and the optional
      cache placement cell ``cache_policy``/``cache_total_bytes``;
    * ``protocol="tcp"`` (end-to-end) and ``"split_tcp"`` use
      ``cc_name``/``mss``; ``cc_name`` accepts a registry name or a
      :class:`~repro.tcp.cc.CCSpec` (stored coerced to a spec);
    * ``stop_time`` is honoured by leotp and tcp (split proxies have no
      per-connection stop).

    ``cache_policy`` (a :class:`repro.content.CachePolicy`) sizes the
    Midnode caches along the chain from one placement-weighted budget of
    ``cache_total_bytes`` (default: ``n_midnodes x`` the config's
    per-cache capacity, so ``placement="uniform"`` reproduces the
    historic per-node sizing exactly) and selects each cache's eviction
    order.  The pool-level ``"fullest"`` eviction name degrades to LRU
    here: single-path caches are independent, so there is no shared
    budget for a fullest-member policy to arbitrate.

    All fields are keyword-only: call sites stay readable and reorderable.
    """

    protocol: str = "leotp"
    hops: tuple[HopSpec, ...] = ()
    cc_name: Union[str, CCSpec] = "cubic"
    config: Optional[LeotpConfig] = None
    coverage: float = 1.0
    total_bytes: Optional[int] = None
    flow_id: Optional[str] = None
    start_time: float = 0.0
    stop_time: Optional[float] = None
    mss: int = DEFAULT_MSS
    cache_policy: Optional[CachePolicy] = None
    cache_total_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        # Coerce bare names so the frozen spec always carries a CCSpec
        # (hashable, picklable, param-capable); string call sites and
        # pickled plans keep working unchanged.
        object.__setattr__(self, "cc_name", as_cc_spec(self.cc_name))
        if self.protocol not in PATH_PROTOCOLS:
            raise ValueError(
                f"unknown protocol {self.protocol!r}; "
                f"choose from {PATH_PROTOCOLS}"
            )
        if len(self.hops) < 1:
            raise ValueError("need at least one hop")
        if self.cache_policy is not None and self.protocol != "leotp":
            raise ValueError("cache_policy applies only to LEOTP paths")
        if self.cache_total_bytes is not None and self.cache_total_bytes < 1:
            raise ValueError("cache_total_bytes must be positive")


BuiltPath = Union[LeotpPath, TcpPath, SplitTcpPath]


def build_path(
    sim: Simulator,
    rng: RngRegistry,
    spec: PathSpec,
    *,
    stream: Optional[ByteStream] = None,
    recorder: Optional[FlowRecorder] = None,
) -> BuiltPath:
    """Build one transfer path from a declarative :class:`PathSpec`.

    The single facade over :func:`repro.core.build_leotp_path`,
    :func:`repro.tcp.build_e2e_tcp_path`, and
    :func:`repro.tcp.build_split_tcp_path` — experiments describe *what*
    to build and this function dispatches to the protocol's wiring.

    ``stream`` (TCP source) and ``recorder`` (split-path measurement
    hook) are runtime objects rather than configuration, so they stay
    out of the frozen spec.  For TCP, ``spec.total_bytes`` is a
    convenience that builds a ``FiniteStream`` when ``stream`` is None.
    """
    hops = list(spec.hops)
    if spec.protocol == "leotp":
        path = _build_leotp_path(
            sim, rng, hops,
            config=spec.config if spec.config is not None else LeotpConfig(),
            total_bytes=spec.total_bytes,
            coverage=spec.coverage,
            flow_id=spec.flow_id if spec.flow_id is not None else "leotp",
            start_time=spec.start_time,
            stop_time=spec.stop_time,
        )
        if spec.cache_policy is not None:
            _apply_cache_policy(
                path, spec.cache_policy, spec.cache_total_bytes
            )
        return path
    if stream is None and spec.total_bytes is not None:
        stream = FiniteStream(spec.total_bytes)
    if spec.protocol == "tcp":
        return _build_e2e_tcp_path(
            sim, rng, hops, spec.cc_name,
            stream=stream, mss=spec.mss,
            flow_base=spec.flow_id if spec.flow_id is not None else "tcp",
            start_time=spec.start_time,
            stop_time=spec.stop_time,
        )
    return _build_split_tcp_path(
        sim, rng, hops, spec.cc_name,
        stream=stream, recorder=recorder, mss=spec.mss,
        flow_base=spec.flow_id if spec.flow_id is not None else "split",
    )


def _apply_cache_policy(
    path: LeotpPath,
    policy: CachePolicy,
    total_bytes: Optional[int],
) -> None:
    """Re-size the chain's Midnode caches per the placement cell.

    Runs right after wiring, while every cache is still empty, so
    swapping the cache objects loses nothing.  Placement weights map
    onto the chain's Midnodes in producer→consumer order: ``"gateway"``
    emphasises the chain ends (the ground-segment caches), ``"hot_orbit"``
    the middle of the chain.
    """
    mids = path.midnodes
    if not mids:
        return
    if total_bytes is None:
        total_bytes = mids[0].config.cache_capacity_bytes * len(mids)
    weights = placement_weights(policy.placement, len(mids))
    eviction = (
        policy.eviction
        if policy.eviction in CACHE_EVICTION_POLICIES
        else "lru"  # pool-level "fullest" has no per-path meaning
    )
    for mid, cap in zip(mids, member_capacities(total_bytes, weights)):
        mid.cache = BlockCache(
            cap, mid.config.cache_block_bytes, eviction=eviction
        )


def build_leotp_path(
    sim: Simulator,
    rng: RngRegistry,
    hops: Sequence[HopSpec],
    config: Optional[LeotpConfig] = None,
    total_bytes: Optional[int] = None,
    coverage: float = 1.0,
    flow_id: str = "leotp",
    start_time: float = 0.0,
    stop_time: Optional[float] = None,
) -> LeotpPath:
    """Thin wrapper over :func:`build_path` (kept for existing call sites)."""
    return build_path(sim, rng, PathSpec(
        protocol="leotp", hops=tuple(hops), config=config,
        total_bytes=total_bytes, coverage=coverage, flow_id=flow_id,
        start_time=start_time, stop_time=stop_time,
    ))


def build_e2e_tcp_path(
    sim: Simulator,
    rng: RngRegistry,
    hops: Sequence[HopSpec],
    cc_name: str,
    stream: Optional[ByteStream] = None,
    mss: int = DEFAULT_MSS,
    flow_base: str = "tcp",
    start_time: float = 0.0,
    stop_time: Optional[float] = None,
) -> TcpPath:
    """Thin wrapper over :func:`build_path` (kept for existing call sites)."""
    return build_path(sim, rng, PathSpec(
        protocol="tcp", hops=tuple(hops), cc_name=cc_name, mss=mss,
        flow_id=flow_base, start_time=start_time, stop_time=stop_time,
    ), stream=stream)


def build_split_tcp_path(
    sim: Simulator,
    rng: RngRegistry,
    hops: Sequence[HopSpec],
    cc_name: str,
    stream: Optional[ByteStream] = None,
    recorder: Optional[FlowRecorder] = None,
    mss: int = DEFAULT_MSS,
    flow_base: str = "split",
) -> SplitTcpPath:
    """Thin wrapper over :func:`build_path` (kept for existing call sites)."""
    return build_path(sim, rng, PathSpec(
        protocol="split_tcp", hops=tuple(hops), cc_name=cc_name, mss=mss,
        flow_id=flow_base,
    ), stream=stream, recorder=recorder)


@dataclass
class ExperimentResult:
    """Rows of measurements for one figure/table."""

    name: str
    description: str
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, **row) -> None:
        self.rows.append(row)

    def column(self, key: str) -> list:
        return [row.get(key) for row in self.rows]

    def filtered(self, **match) -> list[dict]:
        return [
            row
            for row in self.rows
            if all(row.get(k) == v for k, v in match.items())
        ]

    def to_csv(self) -> str:
        """Render the rows as CSV (header = union of row keys, in order)."""
        import csv
        import io

        keys: list[str] = []
        for row in self.rows:
            for key in row:
                if key not in keys:
                    keys.append(key)
        buf = io.StringIO()
        writer = csv.DictWriter(buf, fieldnames=keys)
        writer.writeheader()
        for row in self.rows:
            writer.writerow(row)
        return buf.getvalue()

    def to_dict(self) -> dict:
        """JSON-serialisable form (for archiving runs)."""
        return {
            "name": self.name,
            "description": self.description,
            "rows": self.rows,
            "notes": self.notes,
        }

    def save(self, directory) -> str:
        """Write <slug>.csv and return its path."""
        import os
        import re

        os.makedirs(directory, exist_ok=True)
        slug = re.sub(r"[^a-z0-9]+", "_", self.name.lower()).strip("_")
        path = os.path.join(directory, f"{slug}.csv")
        with open(path, "w") as fh:
            fh.write(self.to_csv())
        return path

    def table(self) -> str:
        """Render the rows as a fixed-width text table."""
        if not self.rows:
            return f"== {self.name} ==\n(no rows)"
        keys: list[str] = []
        for row in self.rows:
            for key in row:
                if key not in keys:
                    keys.append(key)
        widths = {
            k: max(len(k), *(len(_fmt(r.get(k))) for r in self.rows))
            for k in keys
        }
        lines = [f"== {self.name} ==", self.description]
        lines.append("  ".join(k.ljust(widths[k]) for k in keys))
        lines.append("  ".join("-" * widths[k] for k in keys))
        for row in self.rows:
            lines.append(
                "  ".join(_fmt(row.get(k)).ljust(widths[k]) for k in keys)
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


@dataclass
class FlowMetrics:
    """Summary of one measured flow."""

    throughput_mbps: float
    owd_mean_ms: float
    owd_p50_ms: float
    owd_p99_ms: float
    owd_max_ms: float
    retx_owd_mean_ms: Optional[float]
    sender_bytes: int
    retransmissions: int


def metrics_from_recorder(
    recorder: FlowRecorder,
    t_start: float,
    t_end: float,
    sender_bytes: int = 0,
    retransmissions: int = 0,
) -> FlowMetrics:
    owds = recorder.owds() * 1000.0
    retx_owds = recorder.owds(retransmitted_only=True) * 1000.0
    return FlowMetrics(
        throughput_mbps=recorder.throughput_bps(t_start, t_end) / 1e6,
        owd_mean_ms=float(owds.mean()) if owds.size else float("nan"),
        owd_p50_ms=float(np.percentile(owds, 50)) if owds.size else float("nan"),
        owd_p99_ms=float(np.percentile(owds, 99)) if owds.size else float("nan"),
        owd_max_ms=float(owds.max()) if owds.size else float("nan"),
        retx_owd_mean_ms=float(retx_owds.mean()) if retx_owds.size else None,
        sender_bytes=sender_bytes,
        retransmissions=retransmissions,
    )


def run_tcp_chain(
    cc_name: str,
    hops: Sequence[HopSpec],
    duration_s: float,
    seed: int = 0,
    warmup_fraction: float = 0.2,
    total_bytes: Optional[int] = None,
    split: bool = False,
) -> tuple[FlowMetrics, TcpPath]:
    """Run one TCP flow (end-to-end or Split) over a chain and measure it."""
    sim = Simulator()
    rng = RngRegistry(seed)
    spec = PathSpec(
        protocol="split_tcp" if split else "tcp",
        hops=tuple(hops), cc_name=cc_name, total_bytes=total_bytes,
    )
    if split:
        recorder = FlowRecorder(sim, name=f"split:{cc_name}")
        path = build_path(sim, rng, spec, recorder=recorder)
        sender = path.sender
    else:
        built = build_path(sim, rng, spec)
        recorder, sender, path = built.recorder, built.sender, built
    sim.run(until=duration_s)
    warmup = duration_s * warmup_fraction
    metrics = metrics_from_recorder(
        recorder, warmup, duration_s,
        sender_bytes=sender.wire_bytes_sent,
        retransmissions=sender.retransmissions,
    )
    return metrics, path


def run_leotp_chain(
    hops: Sequence[HopSpec],
    duration_s: float,
    seed: int = 0,
    config: Optional[LeotpConfig] = None,
    coverage: float = 1.0,
    warmup_fraction: float = 0.2,
    total_bytes: Optional[int] = None,
) -> tuple[FlowMetrics, LeotpPath]:
    """Run one LEOTP flow over a chain and measure it."""
    sim = Simulator()
    rng = RngRegistry(seed)
    path = build_path(sim, rng, PathSpec(
        protocol="leotp", hops=tuple(hops), config=config,
        coverage=coverage, total_bytes=total_bytes,
    ))
    sim.run(until=duration_s)
    warmup = duration_s * warmup_fraction
    metrics = metrics_from_recorder(
        path.recorder, warmup, duration_s,
        sender_bytes=path.producer.wire_bytes_sent,
        retransmissions=path.consumer.retransmission_interests,
    )
    return metrics, path


def scaled_duration(base_s: float, scale: float, minimum_s: float = 3.0) -> float:
    """Scale an experiment duration, never below a useful minimum."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    return max(base_s * scale, minimum_s)
