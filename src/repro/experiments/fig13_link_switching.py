"""Fig. 13 — throughput against path-switching frequency.

Setup (paper Sec. V-B): two parallel paths with different RTTs (80 and
90 ms end to end), 20 Mbps everywhere; the route flips between them
periodically, losing whatever is in flight on the abandoned path.  More
frequent switching hurts every protocol, but LEOTP's connectionless
design degrades the least (paper: +34 % over BBR, +15 % over PCC at a
1 s interval); Vegas collapses because the alternating RTT confuses it.
"""

from __future__ import annotations

from typing import Optional

from repro.core import Consumer, LeotpConfig, Midnode, Producer
from repro.experiments.common import ExperimentResult, metrics_from_recorder, scaled_duration
from repro.netsim.link import DuplexLink
from repro.netsim.node import ChainForwarder
from repro.netsim.topology import SwitchablePath
from repro.netsim.trace import FlowRecorder
from repro.simcore import PeriodicProcess, RngRegistry, Simulator
from repro.tcp import TcpReceiver, TcpSender, make_cc

SWITCH_INTERVALS_S = (1.0, 2.0, 4.0, 8.0)
BASELINES = ("bbr", "pcc", "cubic", "vegas")
RATE = 20e6
BLACKOUT_S = 0.0      # paper models switching as in-flight loss only
ACCESS_DELAY = 0.002          # endpoints <-> relays, each way
MIDDLE_DELAYS = (0.036, 0.041)  # two parallel paths: e2e RTT 80 / 90 ms


def _build_fabric(sim: Simulator, rng: RngRegistry, left, right):
    """left -- access -- (switchable middle) -- access -- right."""
    relay_l = ChainForwarder(sim, "relay-l")
    relay_r = ChainForwarder(sim, "relay-r")
    access_l = DuplexLink(sim, left, relay_l, rate_bps=RATE, delay_s=ACCESS_DELAY,
                          name="access-l")
    access_r = DuplexLink(sim, relay_r, right, rate_bps=RATE, delay_s=ACCESS_DELAY,
                          name="access-r")
    middle = SwitchablePath(
        sim, relay_l, relay_r, rng, delays_s=list(MIDDLE_DELAYS), rate_bps=RATE,
        blackout_s=BLACKOUT_S,
    )
    # Relays forward between the access links and every middle member link.
    for duplex in middle.duplexes:
        relay_l.add_forwarding(access_l.ab, duplex.ab)
        relay_l.add_forwarding(duplex.ba, access_l.ba)
        relay_r.add_forwarding(duplex.ab, access_r.ab)
        relay_r.add_forwarding(access_r.ba, duplex.ba)
    # Sends into the middle go through the facade (always the active path).
    relay_l.add_forwarding(access_l.ab, middle.ab)
    relay_r.add_forwarding(access_r.ba, middle.ba)
    return access_l, middle, access_r


def _run_tcp(cc_name: str, interval_s: float, duration: float, seed: int) -> float:
    sim = Simulator()
    rng = RngRegistry(seed)
    recorder = FlowRecorder(sim)
    sender = TcpSender(sim, "snd", "rcv", None, make_cc(cc_name))
    receiver = TcpReceiver(sim, "rcv", None, recorder=recorder)
    access_l, middle, access_r = _build_fabric(sim, rng, sender, receiver)
    sender.out_link = access_l.ab
    receiver.out_link = access_r.ba
    PeriodicProcess(sim, interval_s, middle.switch)
    sim.run(until=duration)
    return recorder.throughput_bps(duration * 0.2, duration) / 1e6


def _run_leotp(interval_s: float, duration: float, seed: int) -> float:
    """LEOTP over two parallel satellite paths, each with its own Midnodes.

    The route flips between the paths; Midnodes on the abandoned path are
    simply left behind with their soft state (the mobility scenario LEOTP
    is designed for) and everything in flight there is lost.
    """
    sim = Simulator()
    rng = RngRegistry(seed)
    config = LeotpConfig()
    recorder = FlowRecorder(sim)
    producer = Producer(sim, "prod", config)
    consumer = Consumer(sim, "cons", "flow", config, recorder=recorder)
    gs_up = Midnode(sim, "gs-up", config)      # producer-side ground station
    gs_down = Midnode(sim, "gs-down", config)  # consumer-side ground station
    access_up = DuplexLink(sim, producer, gs_up, rate_bps=RATE,
                           delay_s=ACCESS_DELAY)
    access_down = DuplexLink(sim, gs_down, consumer, rate_bps=RATE,
                             delay_s=ACCESS_DELAY)
    consumer.out_link = access_down.ba
    gs_up.set_upstream(access_up.ba)

    paths = []  # per path: (list of duplex links, last link toward gs_down)
    for p, one_way in enumerate(MIDDLE_DELAYS):
        per_hop = one_way / 3.0
        sats = [Midnode(sim, f"sat{p}-{i}", config) for i in range(2)]
        nodes = [gs_up, *sats, gs_down]
        links = []
        for i in range(3):
            links.append(DuplexLink(
                sim, nodes[i], nodes[i + 1], rate_bps=RATE, delay_s=per_hop,
                name=f"path{p}-hop{i}",
            ))
        sats[0].set_upstream(links[0].ba)
        sats[1].set_upstream(links[1].ba)
        paths.append(links)

    active = [0]

    def set_active(idx: int, up: bool) -> None:
        for duplex in paths[idx]:
            duplex.ab.up = up
            duplex.ba.up = up

    set_active(0, True)
    set_active(1, False)
    gs_down.set_upstream(paths[0][-1].ba)

    def switch() -> None:
        old = active[0]
        active[0] = (old + 1) % len(paths)
        for duplex in paths[old]:
            duplex.ab.flush(drop_inflight=True)
            duplex.ba.flush(drop_inflight=True)
        set_active(old, False)
        new = active[0]
        # The new path only comes up after the handover blackout.
        sim.schedule(BLACKOUT_S, set_active, new, True)
        gs_down.set_upstream(paths[new][-1].ba)

    PeriodicProcess(sim, interval_s, switch)
    sim.run(until=duration)
    return recorder.throughput_bps(duration * 0.2, duration) / 1e6


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    duration = scaled_duration(20.0, scale)
    result = ExperimentResult(
        "Fig. 13",
        "Throughput (Mbps) vs path-switch interval; parallel 80/90 ms paths",
    )
    for interval in SWITCH_INTERVALS_S:
        result.add(
            switch_interval_s=interval, protocol="leotp",
            throughput_mbps=_run_leotp(interval, duration, seed),
        )
        for cc in BASELINES:
            result.add(
                switch_interval_s=interval, protocol=cc,
                throughput_mbps=_run_tcp(cc, interval, duration, seed),
            )
    return result


if __name__ == "__main__":
    print(run().table())
