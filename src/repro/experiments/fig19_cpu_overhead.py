"""Fig. 19 — the CPU overhead of a LEOTP Midnode.

The paper measures real CPU utilisation and finds it low, growing slowly
with bandwidth above 20 Mbps and insensitive to loss.  Our substrate is a
simulator, so we substitute the closest observable quantity (documented
in DESIGN.md): the Midnode's per-second protocol *operation count*
(packets processed, cache actions, VPH/retransmission events).  The
paper's claims map onto this proxy directly: operations grow (sub-)
linearly with bandwidth — a Midnode is I/O-bound — and barely move with
packet loss.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, run_leotp_chain, scaled_duration
from repro.netsim.topology import uniform_chain_specs

BANDWIDTHS_MBPS = (5, 10, 20, 40)
PLRS = (0.0, 0.01, 0.02)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    duration = scaled_duration(15.0, scale)
    result = ExperimentResult(
        "Fig. 19",
        "Midnode operations per second (CPU-utilisation proxy)",
    )
    for rate_mbps in BANDWIDTHS_MBPS:
        for plr in PLRS:
            hops = uniform_chain_specs(
                3, rate_bps=rate_mbps * 1e6, delay_s=0.005, plr=plr
            )
            metrics, path = run_leotp_chain(hops, duration, seed=seed)
            mid = path.midnodes[0]
            ops_per_s = mid.stats.total_operations() / duration
            result.add(
                bandwidth_mbps=rate_mbps,
                plr_per_hop=plr,
                ops_per_s=ops_per_s,
                throughput_mbps=metrics.throughput_mbps,
                ops_per_mbit=(
                    ops_per_s / metrics.throughput_mbps
                    if metrics.throughput_mbps > 0
                    else None
                ),
            )
    result.notes.append(
        "ops/s grows ~linearly with offered bandwidth and is insensitive to "
        "loss (ops/Mbit stays flat), matching the paper's CPU curve shape"
    )
    return result


if __name__ == "__main__":
    print(run().table())
