"""Constellation-scale sharded workload (DESIGN.md §13).

Runs :func:`repro.shard.run_sharded` over a 16-shard plan — one shard
per ground-station pair, every fourth shard suffering a mid-chain
blackout — for an order of magnitude more concurrent flows than the
single-pool ``workload`` experiment: 10,400 arrivals at ``scale=1.0``.

The table has one row per shard plus a ``total`` row.  Rows are
bit-identical for every worker count: set ``LEOTP_SHARD_JOBS=N`` (or
pass ``--shard-jobs N`` to ``python -m repro.experiments``) to simulate
shard groups in N parallel processes; wall-clock figures never enter
the rows.  Cross-shard cache re-apportionment happens every 0.5 s of
simulated time; the notes record the exchange ledger's invariants.
"""

from __future__ import annotations

import os

from repro.experiments.common import ExperimentResult
from repro.shard import ShardPlan, run_sharded

N_SHARDS = 16
ARRIVALS_PER_SHARD = 650  # x 16 shards = 10,400 flows at scale=1.0
MIN_ARRIVALS_PER_SHARD = 20


def shard_plan(scale: float = 1.0, seed: int = 0) -> ShardPlan:
    """The experiment's plan at a given scale (same plan for any jobs)."""
    arrivals = max(
        MIN_ARRIVALS_PER_SHARD, int(round(ARRIVALS_PER_SHARD * scale))
    )
    return ShardPlan(
        n_shards=N_SHARDS, seed=seed, arrivals_per_shard=arrivals
    )


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    jobs = int(os.environ.get("LEOTP_SHARD_JOBS", "1"))
    plan = shard_plan(scale, seed)
    out = run_sharded(
        plan,
        jobs=jobs,
        profile_dir=os.environ.get("LEOTP_SHARD_PROFILE_DIR") or None,
    )

    result = ExperimentResult(
        name="workload_sharded",
        description=(
            f"Sharded constellation workload: {plan.n_shards} ground-"
            f"station pairs x {plan.arrivals_per_shard} flows, BSP cache "
            f"exchange every {plan.epoch_s:g}s"
        ),
    )
    for row in out["rows"]:
        result.add(**row)

    ledger = out["ledger"]
    evicted = sum(sum(row["boundary_evicted_bytes"]) for row in ledger)
    breaches = sum(row["budget_breaches"] for row in ledger)
    result.notes.append(
        f"{len(ledger)} exchange epochs over {plan.horizon_s:.1f}s simulated; "
        f"global cache budget {plan.global_cache_bytes / (1 << 20):.0f} MiB "
        f"conserved every epoch (boundary evictions "
        f"{evicted / (1 << 10):.0f} KiB, ledger breaches {breaches})"
    )
    result.notes.append(
        "rows are bit-identical for any LEOTP_SHARD_JOBS value; "
        "wall-clock never enters the table"
    )
    return result


if __name__ == "__main__":
    print(run(scale=0.2).table())
