"""Fig. 17 — OWD and throughput on the Beijing-New York link, with ISLs.

The future ISL mesh: a long transcontinental path (~19 hops in the
paper's emulation).  LEOTP gains ~8 % throughput over BBR and ~12 % over
PCC while keeping queueing delay near 20 ms where BBR's reaches ~100 ms;
its p99 OWD beats even under-utilising Hybla thanks to in-network
retransmission.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, scaled_duration
from repro.experiments.starlink import CITY_PAIRS, run_starlink_flow

PROTOCOLS = ("leotp", "bbr", "pcc", "hybla")


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    duration = scaled_duration(60.0, scale, minimum_s=10.0)
    city_a, city_b = CITY_PAIRS["BJ-NY"]
    result = ExperimentResult(
        "Fig. 17",
        "Beijing-New York with ISLs: OWD (ms) and throughput (Mbps)",
    )
    for protocol in PROTOCOLS:
        metrics, ctx = run_starlink_flow(
            protocol, city_a, city_b, duration, seed=seed, isls_enabled=True
        )
        result.add(
            protocol=protocol,
            throughput_mbps=metrics.throughput_mbps,
            owd_mean_ms=metrics.owd_mean_ms,
            owd_p99_ms=metrics.owd_p99_ms,
            queuing_delay_ms=metrics.owd_mean_ms - ctx["mean_prop_delay_ms"],
            hops=ctx["hop_count"],
        )
    result.notes.append(
        "paper: LEOTP +8.0 % thr vs BBR, +12.2 % vs PCC; queueing 20 vs 100 ms"
    )
    return result


if __name__ == "__main__":
    print(run().table())
