"""Related-work comparison: LEOTP versus the Snoop proxy (paper Sec. VI).

The paper dismisses the Snoop proxy because "the proxy does not perform
loss detection and the local retransmission only happens on the last
hop."  We measure exactly that: a 5-hop chain where the loss is either
(a) concentrated on the last hop — Snoop's best case — or (b) spread
over every hop, where only LEOTP's per-hop recovery helps.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    metrics_from_recorder,
    run_leotp_chain,
    run_tcp_chain,
    scaled_duration,
)
from repro.netsim.topology import HopSpec, build_chain
from repro.netsim.trace import FlowRecorder
from repro.simcore import RngRegistry, Simulator
from repro.tcp import SnoopProxy, TcpReceiver, TcpSender, make_cc
from repro.netsim.node import ChainForwarder, wire_chain_forwarders

N_HOPS = 5
RATE = 20e6
DELAY = 0.008
TOTAL_PLR = 0.02  # the same loss budget, placed differently


def _hops(spread: bool) -> list[HopSpec]:
    if spread:
        per_hop = 1 - (1 - TOTAL_PLR) ** (1 / N_HOPS)
        return [HopSpec(rate_bps=RATE, delay_s=DELAY, plr=per_hop)] * N_HOPS
    specs = [HopSpec(rate_bps=RATE, delay_s=DELAY)] * (N_HOPS - 1)
    specs.append(HopSpec(rate_bps=RATE, delay_s=DELAY, plr=TOTAL_PLR))
    return specs


def _run_snoop(hops, duration: float, seed: int) -> float:
    """cubic through a Snoop agent one hop before the receiver."""
    sim = Simulator()
    rng = RngRegistry(seed)
    recorder = FlowRecorder(sim)
    sender = TcpSender(sim, "snd", "rcv", None, make_cc("cubic"), flow_id="f")
    relays = [ChainForwarder(sim, f"fwd{i}") for i in range(N_HOPS - 2)]
    snoop = SnoopProxy(sim, "snoop")
    receiver = TcpReceiver(sim, "rcv", None, recorder=recorder, flow_id="f")
    nodes = [sender, *relays, snoop, receiver]
    links = build_chain(sim, nodes, list(hops), rng)
    wire_chain_forwarders(nodes, links)
    sender.out_link = links[0].ab
    receiver.out_link = links[-1].ba
    snoop.connect(
        from_sender=links[-2].ab, to_receiver=links[-1].ab,
        from_receiver=links[-1].ba, to_sender=links[-2].ba,
    )
    sim.run(until=duration)
    return recorder.throughput_bps(duration * 0.2, duration) / 1e6


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    duration = scaled_duration(20.0, scale)
    result = ExperimentResult(
        "Snoop comparison",
        "Throughput (Mbps): same 2 % loss budget on the last hop vs spread",
    )
    for spread in (False, True):
        hops = _hops(spread)
        placement = "spread over all hops" if spread else "last hop only"
        cubic, _ = run_tcp_chain("cubic", hops, duration, seed=seed)
        result.add(loss_placement=placement, protocol="cubic",
                   throughput_mbps=cubic.throughput_mbps)
        result.add(loss_placement=placement, protocol="cubic+snoop",
                   throughput_mbps=_run_snoop(hops, duration, seed))
        leotp, _ = run_leotp_chain(hops, duration, seed=seed)
        result.add(loss_placement=placement, protocol="leotp",
                   throughput_mbps=leotp.throughput_mbps)
    result.notes.append(
        "Snoop matches LEOTP only when the loss sits on its own hop; "
        "spread the same loss and only per-hop recovery keeps throughput"
    )
    return result


if __name__ == "__main__":
    print(run().table())
