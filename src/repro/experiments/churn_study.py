"""Geometry-driven handover churn: recovery per handover at real cadences.

The chaos suite stresses hand-scripted faults on static chains; this
experiment makes *orbital mechanics* the fault generator.  Routes over
the 1600-satellite core shell are sampled per time slice for two
city pairs, a long orbital window is time-compressed so the full
handover census lands inside the simulated horizon, and the churn
engine turns the route diffs into typed topology events and a
:class:`FaultSchedule`.  The unmodified chaos harnesses then run LEOTP,
split-TCP/BBR, and end-to-end BBR over chains whose delays track the
compressed schedule while the adapted faults black out exactly the hops
whose real edges changed — with the invariant monitor armed and
recovery measured *per handover*.

A second section multiplexes a small :class:`FlowPool` workload over
each pair's chain under the same churn, exercising mid-flow path
switches at flow-pool scale: in-flight Interests drain through
timeout/SHR retransmission across short switches, and route-loss gaps
longer than :data:`NO_ROUTE_ABORT_S` abort affected flows with a
recorded ``no_route`` reason instead of crashing the run.

Everything is deterministic per (scale, seed) and bit-identical under
``--jobs 2``: geometry is seed-independent, event streams are totally
ordered, and every RNG draw comes from named streams.
"""

from __future__ import annotations

from typing import Optional

from repro.churn import (
    DEFAULT_OUTAGE_S,
    TopologyEventStream,
    compress_schedule,
    events_from_schedule,
    faults_from_stream,
    handover_stats,
    per_handover_reports,
)
from repro.constellation import (
    NoRouteError,
    PathDynamicsDriver,
    compute_path_schedule,
    representative_hop_count,
    starlink_hop_specs,
)
from repro.core import LeotpConfig
from repro.experiments.common import (
    ExperimentResult,
    PathSpec,
    build_path,
    scaled_duration,
)
from repro.experiments.starlink import _router
from repro.faults import run_leotp_chaos, run_tcp_chaos
from repro.netsim.trace import FlowRecorder
from repro.obs import METRICS
from repro.simcore import RngRegistry, Simulator
from repro.workload import FlowPool, WorkloadSpec

#: Intercontinental pairs with distinct handover geometry (two
#: ground-station attachments each; four stations total).
PAIRS = {
    "BJ-PR": ("Beijing", "Paris"),
    "NY-LD": ("New York", "London"),
}

#: Orbital sampling step (matches the starlink experiments).
ORBIT_STEP_S = 2.0

#: Orbit-time : sim-time compression.  A pair on this shell sees a route
#: change every ~30-40 s of orbit time; compressing 20x packs the full
#: handover census of a 4-minute orbital window into a 12 s run (the
#: same methodological move as the paper's accelerated 15 s handover
#: interval in Sec. V-C).
COMPRESSION = 20.0

#: A route-loss gap longer than this aborts the pool's live flows with
#: reason "no_route" (shorter gaps are ridden out by retransmission).
NO_ROUTE_ABORT_S = 0.5

#: Recommended metrics cadence (handover dips live at sub-second scale).
SAMPLER_INTERVAL_S = 0.2

_PROTOCOLS = ("leotp", "split-bbr", "bbr")


def _pair_context(slug: str, city_a: str, city_b: str,
                  duration_s: float, seed: int):
    """Schedule, event stream, chain specs, and faults for one pair."""
    orbit = compute_path_schedule(
        _router(True), city_a, city_b,
        duration_s * COMPRESSION, ORBIT_STEP_S, on_gap="hold",
    )
    compressed = compress_schedule(orbit, COMPRESSION)
    stream = events_from_schedule(compressed, pair=slug)
    n_hops = max(representative_hop_count(compressed), 2)
    hops = starlink_hop_specs(n_hops, isls_enabled=True, seed=seed)
    return compressed, stream, n_hops, hops


def _single_flow_row(
    protocol: str,
    compressed,
    stream: TopologyEventStream,
    n_hops: int,
    hops,
    duration_s: float,
    seed: int,
    total_bytes: Optional[int],
    cc_spec=None,
) -> dict:
    """Run one monitored flow under the pair's churn; return row columns."""
    from repro.tcp.cc import as_cc_spec

    cc_spec = as_cc_spec(cc_spec if cc_spec is not None else "bbr")
    faults = faults_from_stream(stream, n_hops)
    update_s = ORBIT_STEP_S / COMPRESSION

    def attach_dynamics(sim, path) -> None:
        PathDynamicsDriver(
            sim, compressed, path.links,
            update_interval_s=update_s, flush_on_change=False,
        )
        stream.arm_markers(sim)

    if protocol == "leotp":

        def build(sim: Simulator, rng: RngRegistry):
            path = build_path(sim, rng, PathSpec(
                protocol="leotp", hops=tuple(hops),
                config=LeotpConfig(), total_bytes=total_bytes,
            ))
            attach_dynamics(sim, path)
            return path

        res = run_leotp_chaos(
            faults, duration_s=duration_s, seed=seed, builder=build,
        )
    else:
        spec_protocol = "split_tcp" if protocol == "split-bbr" else "tcp"

        def build(sim: Simulator, rng: RngRegistry):
            recorder = (
                FlowRecorder(sim, name="split")
                if spec_protocol == "split_tcp" else None
            )
            path = build_path(
                sim, rng,
                PathSpec(
                    protocol=spec_protocol, hops=tuple(hops),
                    cc_name=cc_spec,
                ),
                recorder=recorder,
            )
            attach_dynamics(sim, path)
            return path

        res = run_tcp_chaos(
            faults, cc_name=cc_spec, duration_s=duration_s, seed=seed,
            builder=build,
        )

    # A finite transfer that completes mid-run stops delivering; without
    # clamping, every later handover would read as "unrecovered".  Only
    # handovers inside the flow's delivery lifetime are measured.
    horizon = duration_s
    if res.completed and res.path.recorder.end_time is not None:
        horizon = min(horizon, res.path.recorder.end_time)
    times = [t for t in stream.handover_times() if t + DEFAULT_OUTAGE_S < horizon]
    reports = per_handover_reports(
        res.path.recorder, times,
        outage_s=DEFAULT_OUTAGE_S, window_s=1.0,
        recovery_window_s=0.25, horizon_s=horizon,
    )
    delivered = res.path.recorder.total_bytes
    # Keep the paper's row names for the default; a --cc override shows
    # the substituted controller in the protocol column.
    label = protocol
    if protocol != "leotp" and cc_spec.label() != "bbr":
        label = protocol.replace("bbr", cc_spec.label())
    row = {
        "protocol": label,
        "goodput_mbps": delivered * 8 / duration_s / 1e6,
        "completed": res.completed,
        "invariant_violations": sum(1 for r in res.invariants if not r.ok),
        "invariants_ok": res.invariants_ok,
        "faults_applied": len([a for _, a in res.fault_log if "DOWN" in a]),
    }
    row.update(handover_stats(reports))
    return row


def _pool_row(
    slug: str,
    compressed,
    stream: TopologyEventStream,
    n_hops: int,
    hops,
    duration_s: float,
    seed: int,
) -> dict:
    """A FlowPool workload over the pair's chain under the same churn."""
    from repro.faults.schedule import FaultInjector

    sim = Simulator()
    rng = RngRegistry(seed)
    name = slug.lower().replace("-", "")
    spec = WorkloadSpec(
        arrival="poisson",
        rate_per_s=2.0,
        n_flows=max(int(duration_s), 6),
        mean_size_bytes=40_000,
        max_size_bytes=200_000,
    )
    pool = FlowPool(
        sim, rng, spec=spec, hops=hops, protocol="leotp", name=name,
    )
    PathDynamicsDriver(
        sim, compressed, pool.links,
        update_interval_s=ORBIT_STEP_S / COMPRESSION, flush_on_change=False,
    )
    stream.arm_markers(sim)
    injector = FaultInjector(sim, rng)
    for i, link in enumerate(pool.links):
        injector.register_link(f"{name}:hop{i}", link)
    injector.arm(
        faults_from_stream(stream, n_hops, link_prefix=f"{name}:")
    )
    # A transient routing gap must not crash the run: gaps longer than
    # the abort threshold fail the affected flows with a recorded
    # reason; shorter ones drain through TR/SHR retransmission.
    for event in stream.of_kind("RouteLost"):
        if event.duration_s > NO_ROUTE_ABORT_S:
            sim.schedule_at(
                event.at_s + NO_ROUTE_ABORT_S, pool.abort_live, "no_route"
            )
    if METRICS.enabled:
        pool.attach_samplers()
    sim.run(until=duration_s)
    pool.finalize()
    s = pool.summary()
    return {
        "protocol": "leotp-pool",
        "arrivals": int(s["arrivals"]),
        "pool_completed": int(s["completed"]),
        "pool_aborted": int(s["aborted"]),
        "aborted_no_route": int(s.get("aborted_no_route", 0.0)),
        "budget_breaches": int(s["budget_breaches"]),
        "faults_applied": injector.faults_applied,
    }


def run_churn(
    scale: float = 1.0, seed: int = 0, cc=None
) -> ExperimentResult:
    """LEOTP vs split-TCP vs end-to-end TCP under geometry churn.

    ``cc`` (name or :class:`~repro.tcp.cc.CCSpec`) swaps the congestion
    control used by the TCP rows — default BBR, matching the paper's
    baseline.
    """
    from repro.tcp.cc import as_cc_spec

    cc_spec = as_cc_spec(cc if cc is not None else "bbr")
    duration_s = scaled_duration(24.0, scale, minimum_s=8.0)
    # Sized to finish inside the run at the 10 Mbps GSL bottleneck even
    # with handover dips, so ByteExactDelivery audits a complete flow.
    total_bytes = int(10e6 / 8 * duration_s * 0.35)
    result = ExperimentResult(
        "Churn",
        "Per-handover recovery under geometry-driven topology churn "
        "(1600-sat shell, time-compressed routes)",
    )
    total_handovers = 0
    for slug in sorted(PAIRS):
        city_a, city_b = PAIRS[slug]
        try:
            compressed, stream, n_hops, hops = _pair_context(
                slug, city_a, city_b, duration_s, seed
            )
        except NoRouteError as exc:
            result.notes.append(f"{slug}: no route ({exc})")
            continue
        handovers = stream.handover_times()
        total_handovers += len(handovers)
        counts = stream.counts()
        base = {
            "pair": slug,
            "hops": n_hops,
            "handovers": len(handovers),
            "links_removed": counts.get("LinkRemoved", 0),
            "gs_reattach": counts.get("GsReattach", 0),
            "route_losses": counts.get("RouteLost", 0),
        }
        for protocol in _PROTOCOLS:
            row = _single_flow_row(
                protocol, compressed, stream, n_hops, hops,
                duration_s, seed,
                total_bytes if protocol == "leotp" else None,
                cc_spec=cc_spec,
            )
            result.add(**base, **row)
        result.add(**base, **_pool_row(
            slug, compressed, stream, n_hops, hops, duration_s, seed
        ))
    result.notes.append(
        f"{total_handovers} geometry-driven handovers across "
        f"{len(PAIRS)} city pairs over {duration_s * COMPRESSION:.0f} s "
        f"of orbit time (compressed {COMPRESSION:.0f}x into "
        f"{duration_s:.0f} s runs)"
    )
    return result


run = run_churn

if __name__ == "__main__":  # pragma: no cover
    print(run().table())
