"""Run experiments from the command line.

Usage::

    python -m repro.experiments                 # run everything at scale 0.5
    python -m repro.experiments fig12 table2    # run a subset
    python -m repro.experiments --scale 1.0 fig16
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import ALL_EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "experiments", nargs="*",
        help=f"experiment ids (default: all of {', '.join(ALL_EXPERIMENTS)})",
    )
    parser.add_argument("--scale", type=float, default=0.5,
                        help="duration scale factor (default 0.5)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    names = args.experiments or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")
    for name in names:
        t0 = time.time()
        result = ALL_EXPERIMENTS[name](scale=args.scale, seed=args.seed)
        print(result.table())
        print(f"(wall {time.time() - t0:.0f}s, scale {args.scale})\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
