"""Run experiments from the command line.

Usage::

    python -m repro.experiments                 # run everything at scale 0.5
    python -m repro.experiments fig12 table2    # run a subset
    python -m repro.experiments --scale 1.0 fig16
    python -m repro.experiments --jobs 8        # process-pool fan-out
    python -m repro.experiments --profile fig12 # cProfile dump per experiment
    python -m repro.experiments fig10 --trace   # packet-level trace + summary
    python -m repro.experiments fig10 --trace --metrics-out out.jsonl
    python -m repro.experiments ccbench --cc orbcc --cc-param probe_gain=2.5
    python -m repro.experiments ccbench --cc-module my_pkg.my_cc --cc mycc

``--cc NAME`` overrides/selects the congestion control for the
CC-aware experiments (``workload``, ``churn``, ``ccbench``); repeated
``--cc-param k=v`` flags forward constructor params.  ``--cc-module``
imports a module first (in every worker process) so third-party
``@register_cc`` controllers are selectable without editing repro.

``--jobs N`` runs experiments in up to N worker processes.  Each worker
owns its own Simulator and RngRegistry, so the printed rows are
bit-identical to a serial run — only the wall-clock changes.

``--trace`` enables the :mod:`repro.obs` layer for each experiment: after
the result table it prints a human-readable recovery summary (event
counts, recovery latency, cache efficiency, per-hop rate ladder, and a
timeline of drops/repairs) and writes the packet-level records to
``results/obs/<id>_trace.jsonl`` (override with ``--trace-out``; only
valid for a single experiment).  ``--metrics-out PATH`` additionally
writes the periodic protocol-state samples as JSONL; it implies
observation even without ``--trace``.  Observation is read-only, so the
result tables are bit-identical with or without these flags.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.common import ExperimentResult
from repro.experiments.runner import RunSpec, run_experiments


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "experiments", nargs="*",
        help=f"experiment ids (default: all of {', '.join(ALL_EXPERIMENTS)})",
    )
    parser.add_argument("--scale", type=float, default=0.5,
                        help="duration scale factor (default 0.5)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run experiments in up to N processes (default 1: serial); "
             "rows are bit-identical to the serial run",
    )
    parser.add_argument(
        "--shard-jobs", type=int, default=None, metavar="N",
        help="worker processes inside sharded experiments (sets "
             "LEOTP_SHARD_JOBS; rows are bit-identical for any value)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="cProfile each experiment, dumping results/profiles/<id>.pstats",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="enable packet-level tracing + protocol metrics; prints a "
             "recovery summary and writes results/obs/<id>_trace.jsonl",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="trace JSONL destination (single experiment only; implies --trace)",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write periodic protocol-state samples as JSONL (implies observation)",
    )
    parser.add_argument(
        "--sampler-interval", type=float, default=None, metavar="SECONDS",
        help="metrics sampler cadence for observed runs (default: the "
             "experiment's SAMPLER_INTERVAL_S, else 0.05)",
    )
    parser.add_argument(
        "--cc", metavar="NAME", default=None,
        help="congestion control for CC-aware experiments (workload, "
             "churn, ccbench): a registry name, e.g. orbcc; "
             "ccbench restricts its CC axis to this one controller",
    )
    parser.add_argument(
        "--cc-param", metavar="K=V", action="append", default=None,
        help="constructor param for --cc (repeatable), e.g. "
             "--cc-param probe_gain=2.5; values parse as "
             "bool/int/float/str",
    )
    parser.add_argument(
        "--cc-module", metavar="DOTTED.PATH", default=None,
        help="import this module first so its @register_cc controllers "
             "become selectable via --cc without editing repro",
    )
    args = parser.parse_args(argv)

    names = args.experiments or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")
    if args.shard_jobs is not None:
        os.environ["LEOTP_SHARD_JOBS"] = str(args.shard_jobs)
    profile_dir = "results/profiles" if args.profile else None
    if args.profile:
        # Sharded experiments run in worker processes the experiment-level
        # profiler cannot see; each worker dumps its own pstats here and
        # tools/profile_top.py merges them with the parent profile.
        os.environ["LEOTP_SHARD_PROFILE_DIR"] = os.path.join(
            "results", "profiles", "shards"
        )
    observe = args.trace or args.trace_out is not None or args.metrics_out is not None
    if args.trace_out is not None and len(names) > 1:
        parser.error("--trace-out needs exactly one experiment id")

    cc_spec = None
    if args.cc_param and not args.cc:
        parser.error("--cc-param requires --cc")
    if args.cc_module is not None:
        import importlib

        importlib.import_module(args.cc_module)
    if args.cc is not None:
        from repro.tcp.cc import CC_REGISTRY, CCSpec, parse_cc_params

        name = args.cc.lower()
        if name != "leotp" and name not in CC_REGISTRY:
            parser.error(
                f"unknown congestion control {args.cc!r}; known: "
                f"leotp, {', '.join(sorted(CC_REGISTRY))}"
            )
        try:
            cc_spec = CCSpec(name, parse_cc_params(args.cc_param))
        except ValueError as exc:
            parser.error(str(exc))

    spec = RunSpec(
        scale=args.scale, seed=args.seed, observe=observe,
        profile_dir=profile_dir, sampler_interval_s=args.sampler_interval,
        cc=cc_spec, cc_module=args.cc_module,
    )
    t_start = time.time()
    outcomes = run_experiments(names, spec, jobs=args.jobs)
    all_samples: list[dict] = []
    for outcome in outcomes:
        result = ExperimentResult(**outcome.result)
        print(result.table())
        if outcome.name == "workload":
            from repro.analysis.report import workload_summary

            print(workload_summary(result.rows))
        if outcome.name == "churn":
            from repro.analysis.report import churn_summary

            print(churn_summary(result.rows))
        if outcome.name == "content_study":
            from repro.analysis.report import content_summary

            print(content_summary(result.rows))
        if outcome.name == "ccbench":
            from repro.analysis.report import ccbench_summary

            print(ccbench_summary(result.rows))
        line = f"(wall {outcome.wall_s:.0f}s, scale {args.scale}"
        if outcome.profile_path:
            line += f", profile {outcome.profile_path}"
        print(line + ")\n")
        if observe:
            from repro.analysis.report import run_summary
            from repro.obs import dump_jsonl

            records = outcome.trace_records or []
            samples = outcome.metric_samples or []
            # Tag rows with their experiment so a merged metrics file
            # stays attributable.
            for row in samples:
                row.setdefault("experiment", outcome.name)
            all_samples.extend(samples)
            print(run_summary(records, samples, title=outcome.name))
            trace_path = args.trace_out
            if trace_path is None:
                os.makedirs("results/obs", exist_ok=True)
                trace_path = os.path.join("results/obs", f"{outcome.name}_trace.jsonl")
            dump_jsonl(records, trace_path)
            print(f"trace: {len(records)} records -> {trace_path}\n")
    if args.metrics_out is not None:
        from repro.obs import dump_jsonl

        dump_jsonl(all_samples, args.metrics_out)
        print(f"metrics: {len(all_samples)} samples -> {args.metrics_out}")
    if len(outcomes) > 1:
        print(
            f"total wall {time.time() - t_start:.0f}s for {len(outcomes)} "
            f"experiments (jobs={args.jobs})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
