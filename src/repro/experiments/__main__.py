"""Run experiments from the command line.

Usage::

    python -m repro.experiments                 # run everything at scale 0.5
    python -m repro.experiments fig12 table2    # run a subset
    python -m repro.experiments --scale 1.0 fig16
    python -m repro.experiments --jobs 8        # process-pool fan-out
    python -m repro.experiments --profile fig12 # cProfile dump per experiment

``--jobs N`` runs experiments in up to N worker processes.  Each worker
owns its own Simulator and RngRegistry, so the printed rows are
bit-identical to a serial run — only the wall-clock changes.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.common import ExperimentResult
from repro.experiments.runner import run_experiments


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "experiments", nargs="*",
        help=f"experiment ids (default: all of {', '.join(ALL_EXPERIMENTS)})",
    )
    parser.add_argument("--scale", type=float, default=0.5,
                        help="duration scale factor (default 0.5)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run experiments in up to N processes (default 1: serial); "
             "rows are bit-identical to the serial run",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="cProfile each experiment, dumping results/profiles/<id>.pstats",
    )
    args = parser.parse_args(argv)

    names = args.experiments or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")
    profile_dir = "results/profiles" if args.profile else None

    t_start = time.time()
    outcomes = run_experiments(
        names, scale=args.scale, seed=args.seed,
        jobs=args.jobs, profile_dir=profile_dir,
    )
    for outcome in outcomes:
        result = ExperimentResult(**outcome.result)
        print(result.table())
        line = f"(wall {outcome.wall_s:.0f}s, scale {args.scale}"
        if outcome.profile_path:
            line += f", profile {outcome.profile_path}"
        print(line + ")\n")
    if len(outcomes) > 1:
        print(
            f"total wall {time.time() - t_start:.0f}s for {len(outcomes)} "
            f"experiments (jobs={args.jobs})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
