"""Fig. 5 — queueing delay and congestion loss under bandwidth variation.

Setup (paper Sec. II-A): the bottleneck averages 10 Mbps and fluctuates
as a square wave (2 s period, 1 Mbps amplitude); other segments run at
20 Mbps.  The end-to-end propagation delay sweeps 20 -> 100 ms.  With a
longer feedback loop, BBR's queueing delay grows until it exceeds the
loss-based algorithms'; congestion loss grows for everyone.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, run_tcp_chain, scaled_duration
from repro.netsim.bandwidth import SquareWaveBandwidth
from repro.netsim.topology import HopSpec

ALGORITHMS = ("cubic", "hybla", "bbr")
PROP_DELAYS_MS = (20, 40, 60, 80, 100)
N_HOPS = 5


def _hops(total_prop_delay_s: float) -> list[HopSpec]:
    per_hop = total_prop_delay_s / N_HOPS
    specs = []
    for i in range(N_HOPS):
        if i == 1:  # the fluctuating bottleneck
            specs.append(
                HopSpec(
                    rate_bps=10e6,
                    delay_s=per_hop,
                    profile=SquareWaveBandwidth(10e6, 1e6, period_s=2.0),
                    queue_bytes=128_000,
                )
            )
        else:
            specs.append(HopSpec(rate_bps=20e6, delay_s=per_hop, queue_bytes=128_000))
    return specs


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    duration = scaled_duration(25.0, scale)
    result = ExperimentResult(
        "Fig. 5",
        "Queueing delay (ms) and congestion loss (pkt/s) vs propagation delay",
    )
    for prop_ms in PROP_DELAYS_MS:
        hops = _hops(prop_ms / 1000.0)
        for cc in ALGORITHMS:
            metrics, path = run_tcp_chain(cc, hops, duration, seed=seed)
            queue_drops = sum(
                duplex.ab.stats.packets_dropped_queue for duplex in path.links
            )
            result.add(
                prop_delay_ms=prop_ms,
                algorithm=cc,
                queuing_delay_ms=metrics.owd_mean_ms - prop_ms,
                congestion_loss_per_s=queue_drops / duration,
                throughput_mbps=metrics.throughput_mbps,
            )
    return result


if __name__ == "__main__":
    print(run().table())
