"""Design-choice ablation: what Void Packet Headers actually buy.

Not a paper figure — an ablation of the paper's third contribution
("a novel in-network retransmission mechanism using VPH as notifications,
which reduces redundant retransmissions").  We run the same lossy chain
with and without VPH and count retransmission requests and duplicate
data: without VPH every downstream node independently detects and
re-requests the same hole, so the retransmission-Interest count grows
with path depth; with VPH it tracks the actual loss count.
"""

from __future__ import annotations

from repro.core import LeotpConfig
from repro.experiments.common import ExperimentResult, run_leotp_chain, scaled_duration
from repro.netsim.topology import uniform_chain_specs

HOP_COUNTS = (4, 8)
PLR = 0.01


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    duration = scaled_duration(20.0, scale)
    result = ExperimentResult(
        "VPH ablation",
        "Retransmission requests per network loss, with/without VPH",
    )
    for n_hops in HOP_COUNTS:
        hops = uniform_chain_specs(n_hops, rate_bps=20e6, delay_s=0.008, plr=PLR)
        for vph in (True, False):
            config = LeotpConfig(enable_vph=vph)
            metrics, path = run_leotp_chain(
                hops, duration, seed=seed, config=config
            )
            losses = sum(
                d.ab.stats.packets_dropped_loss + d.ba.stats.packets_dropped_loss
                for d in path.links
            )
            retx_requests = (
                sum(m.stats.retx_interests_sent for m in path.midnodes)
                + path.consumer.retransmission_interests
            )
            result.add(
                hops=n_hops,
                vph="on" if vph else "off",
                losses=losses,
                retx_requests=retx_requests,
                requests_per_loss=retx_requests / losses if losses else None,
                throughput_mbps=metrics.throughput_mbps,
                producer_mb=path.producer.wire_bytes_sent / 1e6,
            )
    return result


if __name__ == "__main__":
    print(run().table())
