"""Fig. 15 — intra-protocol fairness under equal and different RTTs.

Setup (paper Sec. V-B): a dumbbell with a 5 Mbps / 30 ms-RTT bottleneck;
three flows start staggered.  With equal RTTs both LEOTP and BBR share
fairly; with RTTs of 90/120/150 ms BBR favours the long-RTT flow while
LEOTP stays fair, because all LEOTP flows compete on the *same* segment.

Durations are scaled down from the paper's 600 s run; the convergence
behaviour is visible within tens of seconds.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis import jain_fairness
from repro.core import Consumer, LeotpConfig, Midnode, Producer
from repro.experiments.common import ExperimentResult, scaled_duration
from repro.netsim.link import DuplexLink
from repro.netsim.topology import HopSpec, build_dumbbell
from repro.netsim.trace import FlowRecorder
from repro.simcore import RngRegistry, Simulator
from repro.tcp import TcpReceiver, TcpSender, make_cc

BOTTLENECK_RATE = 5e6
N_FLOWS = 3


def _flow_rtts(same_rtt: bool) -> list[float]:
    # Total end-to-end RTTs; the bottleneck contributes 30 ms.
    return [0.060] * N_FLOWS if same_rtt else [0.090, 0.120, 0.150]


def _access_delay(rtt_total: float) -> float:
    # RTT = 2*(2 access hops + bottleneck one-way): access one-way delay.
    bottleneck_one_way = 0.015
    return max((rtt_total / 2 - bottleneck_one_way) / 2, 0.0005)


def _run_bbr(same_rtt: bool, duration: float, stagger: float, seed: int):
    sim = Simulator()
    rng = RngRegistry(seed)
    recorders = [FlowRecorder(sim, name=f"f{i}") for i in range(N_FLOWS)]
    senders, receivers = [], []
    for i in range(N_FLOWS):
        sender = TcpSender(
            sim, f"s{i}", f"r{i}", None, make_cc("bbr"),
            flow_id=f"f{i}", start_time=i * stagger,
        )
        receiver = TcpReceiver(
            sim, f"r{i}", None, recorder=recorders[i], flow_id=f"f{i}"
        )
        senders.append(sender)
        receivers.append(receiver)
    specs = [
        HopSpec(rate_bps=100e6, delay_s=_access_delay(rtt))
        for rtt in _flow_rtts(same_rtt)
    ]
    bell = build_dumbbell(
        sim, senders, receivers, rng,
        bottleneck=HopSpec(rate_bps=BOTTLENECK_RATE, delay_s=0.015),
        access_specs=specs,
    )
    for i in range(N_FLOWS):
        senders[i].out_link = bell.access_left[i].ab
        receivers[i].out_link = bell.access_right[i].ba
    sim.run(until=duration)
    return _measure(recorders, duration, stagger)


def _run_leotp(same_rtt: bool, duration: float, stagger: float, seed: int):
    sim = Simulator()
    rng = RngRegistry(seed)
    config = LeotpConfig()
    mid_c = Midnode(sim, "mid-consumer-side", config)
    mid_p = Midnode(sim, "mid-producer-side", config)
    bottleneck = DuplexLink(
        sim, mid_c, mid_p, rate_bps=BOTTLENECK_RATE, delay_s=0.015,
        name="bottleneck",
    )
    mid_c.set_upstream(bottleneck.ab)  # toward the producer side
    recorders = []
    for i, rtt in enumerate(_flow_rtts(same_rtt)):
        flow = f"f{i}"
        recorder = FlowRecorder(sim, name=flow)
        recorders.append(recorder)
        producer = Producer(sim, f"p{i}", config)
        consumer = Consumer(
            sim, f"c{i}", flow, config, recorder=recorder,
            start_time=i * stagger,
        )
        access_delay = _access_delay(rtt)
        access_c = DuplexLink(
            sim, consumer, mid_c, rate_bps=100e6, delay_s=access_delay,
            name=f"access-c{i}",
        )
        access_p = DuplexLink(
            sim, mid_p, producer, rate_bps=100e6, delay_s=access_delay,
            name=f"access-p{i}",
        )
        consumer.out_link = access_c.ab
        mid_p.set_upstream(access_p.ab, flow_id=flow)
    sim.run(until=duration)
    return _measure(recorders, duration, stagger)


def _measure(recorders, duration: float, stagger: float):
    """Final-window throughputs plus the Jain index just after the last
    flow joined (how quickly the allocation converges)."""
    final = (duration * 0.7, duration)
    throughputs = [rec.throughput_bps(*final) / 1e6 for rec in recorders]
    join = (N_FLOWS - 1) * stagger
    early = (join, min(join + max(stagger, 2.0), duration))
    early_thr = [rec.throughput_bps(*early) / 1e6 for rec in recorders]
    early_jain = jain_fairness(early_thr) if any(early_thr) else 0.0
    return throughputs, early_jain


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    duration = scaled_duration(60.0, scale, minimum_s=9.0)
    stagger = duration / 10.0
    result = ExperimentResult(
        "Fig. 15",
        "Per-flow throughput (Mbps) and Jain index on a 5 Mbps dumbbell",
    )
    for same_rtt in (True, False):
        rtt_label = "same" if same_rtt else "different"
        for proto, runner in (("leotp", _run_leotp), ("bbr", _run_bbr)):
            throughputs, early_jain = runner(same_rtt, duration, stagger, seed)
            result.add(
                rtts=rtt_label,
                protocol=proto,
                flow1_mbps=throughputs[0],
                flow2_mbps=throughputs[1],
                flow3_mbps=throughputs[2],
                jain_index=jain_fairness(throughputs),
                jain_after_join=early_jain,
            )
    result.notes.append(
        "jain_after_join = fairness in the window right after the last flow "
        "starts (convergence speed); jain_index = final window"
    )
    return result


if __name__ == "__main__":
    print(run().table())
