"""Fig. 1a — the Starlink download-bandwidth distribution.

The paper motivates LEOTP with the measured Starlink bandwidth
distribution (2-386 Mbps, right-skewed).  We regenerate the distribution
from the synthetic sampler matched to the published statistics and report
its percentiles.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.netsim.bandwidth import starlink_download_bandwidth_samples


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    n = max(int(20_000 * scale), 1_000)
    samples = starlink_download_bandwidth_samples(
        n, np.random.default_rng(seed)
    ) / 1e6
    result = ExperimentResult(
        "Fig. 1a", "Starlink download bandwidth distribution (Mbps)"
    )
    for q in (1, 10, 25, 50, 75, 90, 99):
        result.add(percentile=q, bandwidth_mbps=float(np.percentile(samples, q)))
    result.add(percentile="min", bandwidth_mbps=float(samples.min()))
    result.add(percentile="max", bandwidth_mbps=float(samples.max()))
    result.notes.append(
        f"{n} samples; paper/IMC'22 range is 2-386 Mbps with a ~100 Mbps body"
    )
    return result


if __name__ == "__main__":
    print(run().table())
