"""Fig. 2 — TCP throughput degradation in error-prone multi-hop links.

Setup (paper Sec. II-A): every hop has 20 Mbps bandwidth, 10 ms hop RTT
(5 ms one-way) and 0.5 % loss; the hop count sweeps 1 -> 10.  Loss-based
Cubic/Hybla collapse below 2 Mbps by 5 hops, while BBR/PCC degrade
mildly (-9 % / -33 % at 10 hops in the paper).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, run_tcp_chain, scaled_duration
from repro.netsim.topology import uniform_chain_specs

ALGORITHMS = ("cubic", "hybla", "bbr", "pcc")
HOP_COUNTS = (1, 2, 5, 10)
PLR_PER_HOP = 0.005


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    duration = scaled_duration(20.0, scale)
    # Loss-based variants have long sawtooth periods, so single runs are
    # noisy; average a few seeds at full scale (one at benchmark scale).
    repeats = 3 if scale >= 0.3 else 1
    result = ExperimentResult(
        "Fig. 2",
        "Throughput (Mbps) vs hop count; 20 Mbps, 10 ms, 0.5 % loss per hop",
    )
    for n_hops in HOP_COUNTS:
        hops = uniform_chain_specs(
            n_hops, rate_bps=20e6, delay_s=0.005, plr=PLR_PER_HOP
        )
        for cc in ALGORITHMS:
            runs = [
                run_tcp_chain(cc, hops, duration, seed=seed + rep)[0]
                for rep in range(repeats)
            ]
            result.add(
                hops=n_hops,
                algorithm=cc,
                throughput_mbps=sum(m.throughput_mbps for m in runs) / repeats,
                seeds=repeats,
            )
    return result


if __name__ == "__main__":
    print(run().table())
