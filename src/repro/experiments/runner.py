"""Serial and process-parallel experiment execution.

``run_experiments`` is the single entry point behind
``python -m repro.experiments``: it runs a list of experiment ids either
in-process (``jobs=1``) or fanned out over a process pool (``jobs>1``).
How each experiment runs is described by one :class:`RunSpec` — scale,
seed, observation, profiling, and the sampler-cadence override — shared
by every id in the batch.

Determinism guarantee: every experiment constructs its own
:class:`~repro.simcore.Simulator` and :class:`~repro.simcore.RngRegistry`
from ``(scale, seed)`` alone — no state is shared between experiments —
so the parallel rows are bit-identical to the serial rows.  Both paths
execute the *same* worker function (:func:`run_one`); the pool only
changes which process it runs in.  ``tests/test_parallel_runner.py``
asserts the bit-identity per experiment id.
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class RunSpec:
    """How to run experiments: everything except *which* experiment.

    Replaces the loose ``(scale, seed, profile_dir, observe)`` argument
    tuple: one picklable value carries the run configuration through the
    CLI, the pool workers, and programmatic sweeps.

    ``sampler_interval_s`` overrides the metrics sampler cadence for
    observed runs; when None, an experiment module may provide its own
    default via a module-level ``SAMPLER_INTERVAL_S``, falling back to
    :data:`repro.obs.metrics.DEFAULT_INTERVAL_S` (50 ms).

    ``cc`` (a :class:`~repro.tcp.cc.CCSpec`; bare names are coerced)
    selects/overrides the congestion control for experiments that take a
    ``cc`` keyword (``workload``, ``churn``, ``ccbench``); ids that
    don't accept it ignore the field.  The spec is frozen and picklable,
    so it rides through the process pool unchanged.

    ``cc_module`` names a module imported (for its ``@register_cc`` side
    effects) inside :func:`run_one` — i.e. in every pool worker, not
    just the parent process — so a third-party controller selected via
    ``--cc`` resolves under ``--jobs N`` too.
    """

    scale: float = 1.0
    seed: int = 0
    observe: bool = False
    profile_dir: Optional[str] = None
    sampler_interval_s: Optional[float] = None
    cc: Optional[object] = None
    cc_module: Optional[str] = None

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.sampler_interval_s is not None and self.sampler_interval_s <= 0:
            raise ValueError("sampler_interval_s must be positive")
        if self.cc is not None:
            from repro.tcp.cc import as_cc_spec

            object.__setattr__(self, "cc", as_cc_spec(self.cc))


@dataclass
class RunOutcome:
    """One experiment's result rows plus run metadata."""

    name: str
    result: dict          # ExperimentResult.to_dict()
    wall_s: float
    profile_path: Optional[str] = None
    # Populated when observe=True: repro.obs record/sample dicts.
    trace_records: Optional[list] = None
    metric_samples: Optional[list] = None


def _sampler_interval_for(run, spec: RunSpec) -> float:
    """Resolve the sampler cadence: spec override > module default > global."""
    from repro.obs.metrics import DEFAULT_INTERVAL_S

    if spec.sampler_interval_s is not None:
        return spec.sampler_interval_s
    module = sys.modules.get(getattr(run, "__module__", ""))
    interval = getattr(module, "SAMPLER_INTERVAL_S", None)
    return interval if interval is not None else DEFAULT_INTERVAL_S


def run_one(name: str, spec: RunSpec = RunSpec()) -> RunOutcome:
    """Run one experiment id; the unit of work for serial and pool runs.

    Imports lazily so pool workers (``spawn`` start method included) pay
    the import cost once per process, not per task.

    With ``spec.observe``, the global tracer and metrics registry are
    reset and enabled around this experiment alone, and the drained
    record/sample streams ride back on the outcome.  Resetting *per
    experiment* (not per process) keeps the streams independent of pool
    placement, so traced runs stay bit-identical across ``jobs`` values.
    """
    from repro.experiments import ALL_EXPERIMENTS

    if spec.cc_module is not None:
        import importlib

        importlib.import_module(spec.cc_module)
    run = ALL_EXPERIMENTS[name]
    kwargs = {}
    if spec.cc is not None:
        import inspect

        if "cc" in inspect.signature(run).parameters:
            kwargs["cc"] = spec.cc
    profile_path = None
    trace_records = None
    metric_samples = None
    saved_interval = None
    if spec.observe:
        from repro.obs import METRICS, TRACER

        TRACER.reset()
        METRICS.reset()
        TRACER.enable()
        METRICS.enable()
        saved_interval = METRICS.interval_s
        METRICS.interval_s = _sampler_interval_for(run, spec)
    t0 = time.time()
    try:
        if spec.profile_dir is not None:
            import cProfile

            os.makedirs(spec.profile_dir, exist_ok=True)
            profile_path = os.path.join(spec.profile_dir, f"{name}.pstats")
            profiler = cProfile.Profile()
            profiler.enable()
            try:
                result = run(scale=spec.scale, seed=spec.seed, **kwargs)
            finally:
                profiler.disable()
                profiler.dump_stats(profile_path)
        else:
            result = run(scale=spec.scale, seed=spec.seed, **kwargs)
    finally:
        if spec.observe:
            trace_records = TRACER.drain()
            metric_samples = METRICS.drain()
            TRACER.disable()
            METRICS.disable()
            METRICS.interval_s = saved_interval
    return RunOutcome(
        name=name,
        result=result.to_dict(),
        wall_s=time.time() - t0,
        profile_path=profile_path,
        trace_records=trace_records,
        metric_samples=metric_samples,
    )


def run_experiments(
    names: Sequence[str],
    spec: RunSpec = RunSpec(),
    jobs: int = 1,
) -> list[RunOutcome]:
    """Run ``names`` under ``spec``; outcomes come back in request order.

    ``jobs > 1`` fans the experiments out over a process pool — even for
    a single id, so a one-experiment ``--jobs 2`` run genuinely exercises
    the pool path (the bit-identity checks rely on that).  Output order
    (and content — see the module docstring) is identical to the serial
    run regardless of completion order.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if not names:
        return []
    if jobs == 1:
        return [run_one(name, spec) for name in names]

    outcomes: dict[str, RunOutcome] = {}
    with ProcessPoolExecutor(max_workers=min(jobs, len(names))) as pool:
        futures = {
            pool.submit(run_one, name, spec): name for name in names
        }
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                outcome = future.result()  # propagate worker exceptions
                outcomes[outcome.name] = outcome
    return [outcomes[name] for name in names]
