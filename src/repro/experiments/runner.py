"""Serial and process-parallel experiment execution.

``run_experiments`` is the single entry point behind
``python -m repro.experiments``: it runs a list of experiment ids either
in-process (``jobs=1``) or fanned out over a process pool (``jobs>1``).

Determinism guarantee: every experiment constructs its own
:class:`~repro.simcore.Simulator` and :class:`~repro.simcore.RngRegistry`
from ``(scale, seed)`` alone — no state is shared between experiments —
so the parallel rows are bit-identical to the serial rows.  Both paths
execute the *same* worker function (:func:`run_one`); the pool only
changes which process it runs in.  ``tests/test_parallel_runner.py``
asserts the bit-identity per experiment id.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass
class RunOutcome:
    """One experiment's result rows plus run metadata."""

    name: str
    result: dict          # ExperimentResult.to_dict()
    wall_s: float
    profile_path: Optional[str] = None
    # Populated when observe=True: repro.obs record/sample dicts.
    trace_records: Optional[list] = None
    metric_samples: Optional[list] = None


def run_one(
    name: str,
    scale: float,
    seed: int,
    profile_dir: Optional[str] = None,
    observe: bool = False,
) -> RunOutcome:
    """Run one experiment id; the unit of work for serial and pool runs.

    Imports lazily so pool workers (``spawn`` start method included) pay
    the import cost once per process, not per task.

    With ``observe=True``, the global tracer and metrics registry are
    reset and enabled around this experiment alone, and the drained
    record/sample streams ride back on the outcome.  Resetting *per
    experiment* (not per process) keeps the streams independent of pool
    placement, so traced runs stay bit-identical across ``jobs`` values.
    """
    from repro.experiments import ALL_EXPERIMENTS

    run = ALL_EXPERIMENTS[name]
    profile_path = None
    trace_records = None
    metric_samples = None
    if observe:
        from repro.obs import METRICS, TRACER

        TRACER.reset()
        METRICS.reset()
        TRACER.enable()
        METRICS.enable()
    t0 = time.time()
    try:
        if profile_dir is not None:
            import cProfile

            os.makedirs(profile_dir, exist_ok=True)
            profile_path = os.path.join(profile_dir, f"{name}.pstats")
            profiler = cProfile.Profile()
            profiler.enable()
            try:
                result = run(scale=scale, seed=seed)
            finally:
                profiler.disable()
                profiler.dump_stats(profile_path)
        else:
            result = run(scale=scale, seed=seed)
    finally:
        if observe:
            trace_records = TRACER.drain()
            metric_samples = METRICS.drain()
            TRACER.disable()
            METRICS.disable()
    return RunOutcome(
        name=name,
        result=result.to_dict(),
        wall_s=time.time() - t0,
        profile_path=profile_path,
        trace_records=trace_records,
        metric_samples=metric_samples,
    )


def run_experiments(
    names: Sequence[str],
    scale: float,
    seed: int,
    jobs: int = 1,
    profile_dir: Optional[str] = None,
    observe: bool = False,
) -> list[RunOutcome]:
    """Run ``names`` and return their outcomes in the requested order.

    ``jobs > 1`` fans the experiments out over a process pool.  Output
    order (and content — see the module docstring) is identical to the
    serial run regardless of completion order.  ``observe=True`` enables
    tracing/metrics per experiment (see :func:`run_one`).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if not names:
        return []
    if jobs == 1 or len(names) == 1:
        return [run_one(name, scale, seed, profile_dir, observe) for name in names]

    outcomes: dict[str, RunOutcome] = {}
    with ProcessPoolExecutor(max_workers=min(jobs, len(names))) as pool:
        futures = {
            pool.submit(run_one, name, scale, seed, profile_dir, observe): name
            for name in names
        }
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                outcome = future.result()  # propagate worker exceptions
                outcomes[outcome.name] = outcome
    return [outcomes[name] for name in names]
