"""Many-flow contention on a 5-hop chain: LEOTP vs. BBR and Cubic.

The paper evaluates single transfers; real gateway traffic is a churning
population of mostly-small flows.  This experiment drives the
:class:`~repro.workload.pool.FlowPool` with a Poisson arrival process of
heavy-tailed (lognormal) object sizes over one shared 5-hop chain, for
each protocol in turn, and reports the scale-aware outcome: flow
completion times (p50/p90/p99), per-flow goodput, windowed Jain fairness
(1 s windows), and the memory-budget ledger — peak accounted bytes,
shared-cache-pool evictions, and admission rejects.

Every run is bounded by a hard 8 MiB memory ceiling shared between the
Midnode caches (3/4) and per-flow soft state (1/4); ``budget_breaches``
staying at 0 is the accounting proof that the pool's eviction and
admission policies enforce it.

Scaling: ``scale`` multiplies the number of arrivals (2000 at full
scale, 1000 at the CLI default of 0.5); the arrival rate is fixed so the
offered load — about 70 % of the bottleneck — does not change with scale.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.netsim.topology import uniform_chain_specs
from repro.obs.metrics import METRICS
from repro.simcore import RngRegistry, Simulator
from repro.workload import FlowPool, WorkloadSpec

#: Per-experiment sampler cadence override (picked up by the runner):
#: pool-level gauges move slowly, so 200 ms is plenty and keeps the
#: sample stream proportionate to the run length.
SAMPLER_INTERVAL_S = 0.2

PROTOCOLS = ("leotp", "bbr", "cubic")
N_HOPS = 5
HOP_RATE_BPS = 20e6
HOP_DELAY_S = 0.008
ARRIVAL_RATE_PER_S = 150.0
MEAN_SIZE_BYTES = 12_000
SIZE_SIGMA = 1.2
MAX_SIZE_BYTES = 200_000
MEMORY_CEILING_BYTES = 8 << 20
DRAIN_S = 8.0  # extra simulated time after the last arrival


def run(scale: float = 1.0, seed: int = 0, cc=None) -> ExperimentResult:
    """Many-flow workload; ``cc`` (name or CCSpec) swaps the TCP rows' CC."""
    protocols: tuple = PROTOCOLS
    if cc is not None:
        from repro.tcp.cc import as_cc_spec

        protocols = ("leotp", as_cc_spec(cc))
    n_flows = max(int(round(2000 * scale)), 60)
    spec = WorkloadSpec(
        arrival="poisson",
        rate_per_s=ARRIVAL_RATE_PER_S,
        n_flows=n_flows,
        size_dist="lognormal",
        mean_size_bytes=MEAN_SIZE_BYTES,
        sigma=SIZE_SIGMA,
        max_size_bytes=MAX_SIZE_BYTES,
    )
    result = ExperimentResult(
        "Workload",
        f"{n_flows} Poisson flow arrivals (lognormal sizes, mean "
        f"{MEAN_SIZE_BYTES} B) multiplexed over a shared "
        f"{N_HOPS}-hop chain, {MEMORY_CEILING_BYTES >> 20} MiB memory budget",
    )
    duration_s = n_flows / ARRIVAL_RATE_PER_S + DRAIN_S
    for protocol in protocols:
        sim = Simulator()
        rng = RngRegistry(seed)
        pool = FlowPool(
            sim,
            rng,
            spec=spec,
            hops=uniform_chain_specs(
                N_HOPS, rate_bps=HOP_RATE_BPS, delay_s=HOP_DELAY_S
            ),
            protocol=protocol,
            memory_ceiling_bytes=MEMORY_CEILING_BYTES,
        )
        if METRICS.enabled:
            pool.attach_samplers()
        sim.run(until=duration_s)
        pool.finalize()
        s = pool.summary()
        result.add(
            protocol=str(protocol),
            arrivals=int(s["arrivals"]),
            completed=int(s["completed"]),
            aborted=int(s["aborted"]),
            peak_conc=int(s["peak_concurrency"]),
            fct_p50_ms=s["fct_p50_s"] * 1e3,
            fct_p90_ms=s["fct_p90_s"] * 1e3,
            fct_p99_ms=s["fct_p99_s"] * 1e3,
            goodput_kBs=s.get("goodput_mean_bytes_s", 0.0) / 1e3,
            jain_mean=s["jain_mean"],
            jain_min=s["jain_min"],
            budget_peak_MiB=s["budget_peak_bytes"] / (1 << 20),
            budget_breaches=int(s["budget_breaches"]),
            cache_evictions=int(s.get("cache_pool_evictions", 0)),
            admission_rejects=int(s["admission_rejects"]),
        )
    result.notes.append(
        "jain_mean/jain_min = windowed (1 s) Jain index over concurrently "
        "active flows; budget_breaches = ledger updates above the ceiling "
        "(0 proves the budget held)"
    )
    return result


if __name__ == "__main__":
    print(run().table())
