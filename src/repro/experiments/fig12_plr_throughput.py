"""Fig. 12 — throughput against per-hop loss rate.

Setup (paper Sec. V-B): a 5-hop chain at 20 Mbps per hop; per-hop loss
sweeps 0 -> 1 %.  Loss-based Cubic/Hybla/Westwood collapse below 5 Mbps
by 0.1 %; BBR and PCC lose 12 % and 23 % by 1 %; LEOTP loses ~1 %.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    run_leotp_chain,
    run_tcp_chain,
    scaled_duration,
)
from repro.netsim.topology import uniform_chain_specs

PLRS = (0.0, 0.001, 0.0025, 0.005, 0.01)
BASELINES = ("cubic", "hybla", "westwood", "bbr", "pcc")


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    duration = scaled_duration(20.0, scale)
    repeats = 3 if scale >= 0.3 else 1  # average out loss-based sawtooth noise
    result = ExperimentResult(
        "Fig. 12", "Throughput (Mbps) vs per-hop loss rate, 5-hop chain"
    )
    for plr in PLRS:
        hops = uniform_chain_specs(5, rate_bps=20e6, delay_s=0.005, plr=plr)
        leotp_runs = [
            run_leotp_chain(hops, duration, seed=seed + rep)[0]
            for rep in range(repeats)
        ]
        result.add(
            plr_per_hop=plr, protocol="leotp",
            throughput_mbps=sum(m.throughput_mbps for m in leotp_runs) / repeats,
        )
        for cc in BASELINES:
            runs = [
                run_tcp_chain(cc, hops, duration, seed=seed + rep)[0]
                for rep in range(repeats)
            ]
            result.add(
                plr_per_hop=plr, protocol=cc,
                throughput_mbps=sum(m.throughput_mbps for m in runs) / repeats,
            )
    # Degradation summary at the top loss rate.
    for proto in ("leotp", "bbr", "pcc"):
        rows = result.filtered(protocol=proto)
        base = rows[0]["throughput_mbps"]
        worst = rows[-1]["throughput_mbps"]
        if base > 0:
            result.notes.append(
                f"{proto}: {100 * (1 - worst / base):.1f} % drop at 1 %/hop "
                "(paper: leotp 1 %, bbr 12 %, pcc 23 %)"
            )
    return result


if __name__ == "__main__":
    print(run().table())
