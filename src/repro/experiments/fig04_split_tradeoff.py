"""Fig. 4 — the throughput-OWD trade-off of Split TCP versus TCP.

Setup (paper Sec. II-B): 10-hop network, 20 Mbps / 10 ms RTT / 0.5 % loss
per hop.  Splitting raises the throughput of every variant dramatically
(each hop has better link quality) but buys it with >600 ms of extra
queueing at the proxies.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, run_tcp_chain, scaled_duration
from repro.netsim.topology import uniform_chain_specs

ALGORITHMS = ("cubic", "hybla", "bbr", "pcc")


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    duration = scaled_duration(20.0, scale)
    hops = uniform_chain_specs(10, rate_bps=20e6, delay_s=0.005, plr=0.005)
    result = ExperimentResult(
        "Fig. 4",
        "Split TCP vs TCP: throughput (Mbps) and mean OWD (ms), 10 lossy hops",
    )
    for cc in ALGORITHMS:
        for split in (False, True):
            metrics, _ = run_tcp_chain(cc, hops, duration, seed=seed, split=split)
            result.add(
                algorithm=cc,
                mode="split" if split else "e2e",
                throughput_mbps=metrics.throughput_mbps,
                owd_mean_ms=metrics.owd_mean_ms,
            )
    return result


if __name__ == "__main__":
    print(run().table())
